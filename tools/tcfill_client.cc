/**
 * @file
 * tcfill_client: batched sweep client for a running tcfilld daemon.
 * Builds a (workload × opts × fill-latency) cross product, ships it
 * as one tcfill-svc-v1 sweep request, and prints each result with its
 * provenance — "store" (persistent store hit), "memory" (daemon-side
 * coalescing or a shard's pool cache) or "computed".
 *
 * Usage:
 *   tcfill_client --socket PATH [options] [workload[,...] | all]
 *
 * Options:
 *   --socket PATH          daemon socket (required)
 *   --opts LIST            comma list of moves,reassoc,scaled,
 *                          placement,dce — or all / none / extended
 *   --opts-list "A;B;C"    sweep several --opts specs (semicolon
 *                          separated; overrides --opts)
 *   --fill-latency N       fill pipeline latency in cycles (default 5)
 *   --fill-latency-list "N;M"  sweep several fill latencies
 *   --max-insts N          retire at most N instructions (0 = all)
 *   --scale N              workload scale factor (default 1)
 *   --no-trace-cache       fetch from the I-cache only
 *   --no-inactive-issue    disable inactive issue
 *   --tc-entries N         trace cache entries (default 2048)
 *   --stats-json FILE      write a tcfill-stats-v1 document with a
 *                          `service` provenance section
 *   --progress             live sweep progress on stderr
 *   --require SOURCE       exit 1 unless every result came from
 *                          SOURCE (store | memory | computed)
 *   --server-stats         print the daemon's stats JSON and exit
 *   --ping                 check the daemon is alive and exit
 *   --shutdown             ask the daemon to exit
 *   --help, -h             this text
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/progress.hh"
#include "service/client.hh"
#include "sim/stats_io.hh"
#include "workloads/suite.hh"

using namespace tcfill;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: tcfill_client --socket PATH [options]\n"
        "                     [workload[,workload...] | all]\n"
        "  --opts LIST | --opts-list \"A;B;C\" | --fill-latency N\n"
        "  --fill-latency-list \"N;M\" | --max-insts N | --scale N\n"
        "  --no-trace-cache | --no-inactive-issue | --tc-entries N\n"
        "  --stats-json FILE | --progress | --require SOURCE\n"
        "  --server-stats | --ping | --shutdown\n"
        "run `tcfill_client --help` for full option descriptions\n";
    std::exit(2);
}

FillOptimizations
parseOpts(const std::string &spec)
{
    if (spec == "all")
        return FillOptimizations::all();
    if (spec == "none")
        return FillOptimizations::none();
    if (spec == "extended")
        return FillOptimizations::extended();

    FillOptimizations opts;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string tok = spec.substr(
            pos, comma == std::string::npos ? spec.size() - pos
                                            : comma - pos);
        if (tok == "moves") {
            opts.markMoves = true;
        } else if (tok == "reassoc") {
            opts.reassociate = true;
        } else if (tok == "scaled") {
            opts.scaledAdds = true;
        } else if (tok == "placement") {
            opts.placement = true;
        } else if (tok == "dce") {
            opts.deadCodeElim = true;
        } else if (!tok.empty()) {
            fatal("unknown optimization '%s'", tok.c_str());
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return opts;
}

std::vector<std::string>
splitList(const std::string &spec, char sep)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t at = spec.find(sep, pos);
        std::string tok = spec.substr(
            pos,
            at == std::string::npos ? spec.size() - pos : at - pos);
        if (!tok.empty())
            out.push_back(tok);
        if (at == std::string::npos)
            break;
        pos = at + 1;
    }
    return out;
}

std::vector<std::string>
parseWorkloads(const std::string &spec)
{
    std::vector<std::string> names;
    if (spec == "all") {
        for (const auto &w : workloads::suite())
            names.push_back(w.name);
        return names;
    }
    for (const std::string &tok : splitList(spec, ','))
        names.push_back(workloads::find(tok).name);
    if (names.empty())
        fatal("no workloads in '%s'", spec.c_str());
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string workload = "compress";
    unsigned scale = 1;
    std::vector<std::string> opts_specs;
    std::vector<std::uint64_t> latencies;
    std::uint64_t max_insts = 0;
    bool no_trace_cache = false;
    bool no_inactive_issue = false;
    unsigned tc_entries = 0;
    std::string stats_json;
    std::string require;
    bool show_progress = false;
    bool server_stats = false;
    bool do_ping = false;
    bool do_shutdown = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            std::cout <<
                "usage: tcfill_client --socket PATH [options]\n"
                "                     [workload[,workload...] | all]\n"
                "\n"
                "  --socket PATH          daemon socket (required)\n"
                "  --opts LIST            moves,reassoc,scaled,\n"
                "                         placement,dce or\n"
                "                         all/none/extended\n"
                "  --opts-list \"A;B;C\"    sweep several --opts specs\n"
                "  --fill-latency N       fill latency (default 5)\n"
                "  --fill-latency-list \"N;M\"  sweep fill latencies\n"
                "  --max-insts N          retire at most N insts\n"
                "  --scale N              workload scale (default 1)\n"
                "  --no-trace-cache       fetch from the I-cache only\n"
                "  --no-inactive-issue    disable inactive issue\n"
                "  --tc-entries N         trace cache entries\n"
                "  --stats-json FILE      tcfill-stats-v1 document\n"
                "                         with a `service` section\n"
                "  --progress             live progress on stderr\n"
                "  --require SOURCE       fail unless every result\n"
                "                         came from SOURCE (store |\n"
                "                         memory | computed)\n"
                "  --server-stats         print daemon stats and exit\n"
                "  --ping                 liveness check and exit\n"
                "  --shutdown             ask the daemon to exit\n";
            return 0;
        } else if (arg == "--socket") {
            socket_path = next();
        } else if (arg == "--opts") {
            opts_specs = {next()};
        } else if (arg == "--opts-list") {
            opts_specs = splitList(next(), ';');
            fatal_if(opts_specs.empty(), "--opts-list is empty");
        } else if (arg == "--fill-latency") {
            latencies = {std::strtoull(next(), nullptr, 10)};
        } else if (arg == "--fill-latency-list") {
            for (const std::string &tok : splitList(next(), ';'))
                latencies.push_back(
                    std::strtoull(tok.c_str(), nullptr, 10));
            fatal_if(latencies.empty(),
                     "--fill-latency-list is empty");
        } else if (arg == "--max-insts") {
            max_insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--scale") {
            scale = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
            fatal_if(scale == 0, "--scale must be >= 1");
        } else if (arg == "--no-trace-cache") {
            no_trace_cache = true;
        } else if (arg == "--no-inactive-issue") {
            no_inactive_issue = true;
        } else if (arg == "--tc-entries") {
            tc_entries = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--stats-json") {
            stats_json = next();
        } else if (arg == "--require") {
            require = next();
            fatal_if(require != "store" && require != "memory" &&
                         require != "computed",
                     "--require expects store|memory|computed");
        } else if (arg == "--progress") {
            show_progress = true;
        } else if (arg == "--server-stats") {
            server_stats = true;
        } else if (arg == "--ping") {
            do_ping = true;
        } else if (arg == "--shutdown") {
            do_shutdown = true;
        } else if (arg.rfind("--", 0) == 0) {
            usage();
        } else {
            workload = arg;
        }
    }

    if (socket_path.empty())
        usage();

    service::ServiceClient client;
    std::string err;
    fatal_if(!client.connect(socket_path, err), "%s", err.c_str());

    if (do_ping) {
        fatal_if(!client.ping(err), "%s", err.c_str());
        std::printf("pong\n");
        return 0;
    }
    if (server_stats) {
        std::string payload;
        fatal_if(!client.serverStats(payload, err), "%s", err.c_str());
        std::cout << payload << "\n";
        return 0;
    }
    if (do_shutdown) {
        fatal_if(!client.shutdownServer(err), "%s", err.c_str());
        std::printf("shutdown acknowledged\n");
        return 0;
    }

    if (opts_specs.empty())
        opts_specs = {"all"};
    if (latencies.empty())
        latencies = {5};

    // Cross product in deterministic order: workload-major, then opts,
    // then latency — matching the nested-loop order a script would use.
    std::vector<service::ServiceClient::Point> points;
    for (const std::string &name : parseWorkloads(workload)) {
        for (const std::string &spec : opts_specs) {
            for (std::uint64_t lat : latencies) {
                service::ServiceClient::Point p;
                p.workload = name;
                p.scale = scale;
                SimConfig cfg =
                    SimConfig::withOpts(parseOpts(spec), lat);
                cfg.name = "opts=" + spec;
                if (latencies.size() > 1)
                    cfg.name += "+lat=" + std::to_string(lat);
                cfg.maxInsts = max_insts;
                if (no_trace_cache)
                    cfg.useTraceCache = false;
                if (no_inactive_issue)
                    cfg.inactiveIssue = false;
                if (tc_entries != 0)
                    cfg.tcache.entries = tc_entries;
                p.config = cfg;
                points.push_back(std::move(p));
            }
        }
    }

    obs::ConsoleProgress console(std::cerr, "service sweep");
    obs::ProgressFn progress;
    if (show_progress)
        progress = [&console](const obs::SweepProgress &p) {
            console(p);
        };

    std::vector<SimResult> results;
    service::ServiceClient::SweepSummary summary;
    fatal_if(!client.sweep(points, results, summary, err, progress),
             "%s", err.c_str());
    if (show_progress)
        console.finish();

    bool first = true;
    for (const SimResult &res : results) {
        if (!first)
            std::cout << "\n";
        first = false;
        res.dump(std::cout);
    }
    std::printf("service: %llu points | %llu store, %llu memory, "
                "%llu computed\n",
                static_cast<unsigned long long>(summary.points),
                static_cast<unsigned long long>(summary.storeHits),
                static_cast<unsigned long long>(summary.memoryHits),
                static_cast<unsigned long long>(summary.computed));

    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        fatal_if(!os, "cannot open '%s'", stats_json.c_str());
        ServiceSweepSummary svc;
        svc.points = summary.points;
        svc.storeHits = summary.storeHits;
        svc.memoryHits = summary.memoryHits;
        svc.computed = summary.computed;
        writeStatsJson(os, "tcfill_client", results, nullptr,
                       /*include_host=*/false, &svc);
    }

    if (!require.empty()) {
        for (const SimResult &res : results) {
            if (res.cacheHit != require) {
                std::fprintf(stderr,
                             "require failed: %s/%s came from '%s', "
                             "not '%s'\n",
                             res.workload.c_str(), res.config.c_str(),
                             res.cacheHit.c_str(), require.c_str());
                return 1;
            }
        }
    }
    return 0;
}
