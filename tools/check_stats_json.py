#!/usr/bin/env python3
"""Validate (and optionally diff) tcfill stats JSON documents.

Usage:
    check_stats_json.py STATS.json
        Validate one document against the tcfill-stats-v1 schema:
        required fields and types, internal consistency (ipc ==
        retired/cycles, rates inside [0, 1], sweep counters add up).
        Optional sections are validated when present: the per-result
        `timeline` series (tcfill-timeline-v1: intervals must tile
        retired/cycles exactly, delta rows must match the counter
        column set, phase labels must be in range, the passMask
        column is all-or-nothing), the fill `policy` decision record
        (non-static --fill-policy runs: per-phase window accounting
        must sum, masks in range), the sampled-run host.sample
        accounting, the self-profiler's host.profile, and the
        top-level `service` provenance section tcfill_client sweeps
        carry (store + memory + computed must equal points; every
        result's cacheHit must name a known source).

    check_stats_json.py EVENTS.json --validate-trace-events
        Validate a Chrome/Perfetto trace-event export (--trace-events):
        top-level {"traceEvents": [...]}, every event carries
        ph/pid/tid/name, non-metadata events carry ts, complete events
        carry dur, and both known process tracks are named.

    check_stats_json.py OLD.json NEW.json [--ipc-tol FRAC]
        Validate both documents, then compare IPC per
        (workload, config) key and report every point whose relative
        change exceeds --ipc-tol (default 0: report any difference).
        Exits non-zero when a shared point regressed beyond tolerance;
        points present in only one document are reported but are not
        an error (sweeps grow).

    check_stats_json.py LIVE.json REPLAY.json --compare-replay
        Enforce the record/replay determinism contract: after
        stripping run provenance that legitimately differs between a
        live and a replayed run (mode, cacheHit, the host wall-clock
        sections and the sweep bookkeeping), the two documents must be
        byte-identical when canonically re-serialized. On divergence,
        reports the first differing counter per result and exits 1.

    check_stats_json.py SCAN.json WAKEUP.json --compare-timing
        Enforce the scheduler timing-identity contract (DESIGN.md
        section 13): two runs of the same workloads under different
        scheduler implementations must agree on every deterministic
        counter. Same volatile-key stripping as --compare-replay
        (host wall-clock and run provenance are not timing); on
        divergence, names the first differing counter per result.
        The fill `policy` section is deliberately NOT stripped:
        policy decisions feed back into segment construction, so they
        are timing-affecting and must be identical too.

    check_stats_json.py BASELINE.json BENCH_OUT.json... --compare-perf
        Perf-smoke gate: BASELINE.json is the pinned
        tcfill-bench-baseline-v1 snapshot (BENCH_baseline.json); each
        following file is a google-benchmark --benchmark_out document
        (bench/perf_simulator, bench/perf_sample, ...) and their
        benchmark rows are merged so one gate covers every baselined
        binary. Fails when any baselined benchmark's sim_insts_per_s
        falls below (1 - tol) x baseline (--perf-tol, default 0.25).
        The committed baseline is the throughput the optimization
        shipped with (or, for perf_simulator, the pre-optimization
        floor), so this is a floor against catastrophic regression
        that absorbs host-speed variance, not a precision measurement.

Exit status: 0 clean, 1 validation/diff failure, 2 usage error.
Stdlib only, so it runs in CI and on dev machines without a venv.
"""

import argparse
import json
import math
import sys

SCHEMA = "tcfill-stats-v1"
TIMELINE_SCHEMA = "tcfill-timeline-v1"

# host.sample: sampled-run mechanics accounting (mode == "sample").
SAMPLE_HOST_FIELDS = (
    "checkpoints", "checkpointPages", "restores", "restoredPages",
    "ffInsts", "simpoints", "jobs",
)

# Where a result came from: simulated fresh, served by an in-memory
# cache (SimRunner pool or daemon coalescing), or read back from the
# persistent service result store.
CACHE_HIT_VALUES = ("computed", "memory", "store")

# field name -> required type(s). bool is checked before int because
# bool is a subclass of int in Python.
RESULT_FIELDS = {
    "config": str,
    "workload": str,
    "mode": str,
    "maxInsts": int,
    "cacheHit": str,
    "sourceDigest": str,
    "retired": int,
    "cycles": int,
    "ipc": (int, float),
    "tcHits": int,
    "tcMisses": int,
    "tcHitRate": (int, float),
    "bpredAccuracy": (int, float),
    "mispredicts": int,
    "inactiveRescues": int,
    "mispredictStallCycles": int,
    "segmentsBuilt": int,
    "avgSegmentLength": (int, float),
    "dynMoves": int,
    "dynReassoc": int,
    "dynScaled": int,
    "dynMoveIdioms": int,
    "dynElided": int,
    "bypassDelayed": int,
    "fracMoves": (int, float),
    "fracReassoc": (int, float),
    "fracScaled": (int, float),
    "fracTransformed": (int, float),
    "fracMoveIdioms": (int, float),
    "fracElided": (int, float),
    "fracBypassDelayed": (int, float),
}

RATE_FIELDS = [
    "tcHitRate", "bpredAccuracy", "fracMoves", "fracReassoc",
    "fracScaled", "fracTransformed", "fracMoveIdioms", "fracElided",
    "fracBypassDelayed",
]

# Optional per-result `policy` section (non-static --fill-policy runs).
# These are DECISION counters, not diagnostics: policy choices feed
# back into segment construction and therefore into timing, so the
# section deliberately stays in the deterministic document body where
# --compare-timing and --compare-replay include it (unlike the
# host.* wall-clock sections, which are stripped as volatile).
POLICY_FIELDS = {
    "kind": str,
    "finalMask": int,
    "windows": int,
    "switches": int,
    "phasesSeen": int,
    "movesMarked": int,
    "reassociations": int,
    "scaledAdds": int,
    "deadElided": int,
}

POLICY_KINDS = ("static", "phase", "feedback", "oracle")

# Every pass bit that exists (fill/passes.hh kPassMaskEvery).
POLICY_MASK_MAX = 31


class Checker:
    def __init__(self, path):
        self.path = path
        self.errors = []

    def error(self, where, msg):
        self.errors.append(f"{self.path}: {where}: {msg}")

    def check_type(self, where, obj, field, types):
        if field not in obj:
            self.error(where, f"missing field '{field}'")
            return False
        v = obj[field]
        if types is int and isinstance(v, bool):
            self.error(where, f"'{field}' is bool, expected int")
            return False
        if types is bool:
            ok = isinstance(v, bool)
        else:
            ok = isinstance(v, types) and not isinstance(v, bool)
        if not ok:
            self.error(where,
                       f"'{field}' has type {type(v).__name__}")
            return False
        return True

    def check_result(self, i, r):
        where = f"results[{i}]"
        if not isinstance(r, dict):
            self.error(where, "not an object")
            return
        for field, types in RESULT_FIELDS.items():
            self.check_type(where, r, field, types)
        if self.errors:
            return
        if r["mode"] not in ("live", "record", "replay", "sample"):
            self.error(where, f"unknown mode {r['mode']!r}")
        if r["cacheHit"] not in CACHE_HIT_VALUES:
            self.error(where, f"unknown cacheHit {r['cacheHit']!r}")
        # Internal consistency.
        if r["cycles"] > 0:
            want = r["retired"] / r["cycles"]
            if not math.isclose(r["ipc"], want, rel_tol=1e-12):
                self.error(where,
                           f"ipc {r['ipc']} != retired/cycles {want}")
        elif r["ipc"] != 0:
            self.error(where, "ipc nonzero with zero cycles")
        total = r["tcHits"] + r["tcMisses"]
        if total > 0:
            want = r["tcHits"] / total
            if not math.isclose(r["tcHitRate"], want, rel_tol=1e-12):
                self.error(where, "tcHitRate inconsistent")
        for f in RATE_FIELDS:
            if not 0.0 <= r[f] <= 1.0:
                self.error(where, f"'{f}' = {r[f]} outside [0, 1]")
        if "timeline" in r:
            self.check_timeline(where, r)
        if "policy" in r:
            self.check_policy(where, r)
        if "host" in r:
            self.check_host(where, r)

    def check_policy(self, where, r):
        p = r["policy"]
        where = f"{where}.policy"
        if not isinstance(p, dict):
            self.error(where, "not an object")
            return
        for field, types in POLICY_FIELDS.items():
            self.check_type(where, p, field, types)
        phases = p.get("phases")
        if not isinstance(phases, list):
            self.error(where, "phases missing or not an array")
            return
        if self.errors:
            return
        if p["kind"] not in POLICY_KINDS:
            self.error(where, f"unknown kind {p['kind']!r}")
        if not 0 <= p["finalMask"] <= POLICY_MASK_MAX:
            self.error(where, f"finalMask {p['finalMask']} outside "
                              f"[0, {POLICY_MASK_MAX}]")
        windows = 0
        for i, ps in enumerate(phases):
            w = f"{where}.phases[{i}]"
            if not isinstance(ps, dict):
                self.error(w, "not an object")
                return
            for f in ("phase", "mask", "windows", "insts", "cycles"):
                if not self.check_type(w, ps, f, int):
                    return
            if not self.check_type(w, ps, "ipc", (int, float)):
                return
            if not 0 <= ps["mask"] <= POLICY_MASK_MAX:
                self.error(w, f"mask {ps['mask']} outside "
                              f"[0, {POLICY_MASK_MAX}]")
            if ps["windows"] <= 0:
                self.error(w, f"windows {ps['windows']} <= 0")
            if ps["cycles"] > 0:
                want = ps["insts"] / ps["cycles"]
                if not math.isclose(ps["ipc"], want, rel_tol=1e-12):
                    self.error(w, f"ipc {ps['ipc']} != "
                                  f"insts/cycles {want}")
            elif ps["ipc"] != 0:
                self.error(w, "ipc nonzero with zero cycles")
            windows += ps["windows"]
        # Every closed window is attributed to exactly one phase (the
        # feedback policy tracks no phases and uses one -1 bucket).
        if phases and windows != p["windows"]:
            self.error(where, f"phase windows sum to {windows}, "
                              f"section reports {p['windows']}")
        if p["windows"] > 0 and not phases:
            self.error(where, "windows closed but phases array empty")

    def check_timeline(self, where, r):
        tl = r["timeline"]
        where = f"{where}.timeline"
        if not isinstance(tl, dict):
            self.error(where, "not an object")
            return
        if tl.get("schema") != TIMELINE_SCHEMA:
            self.error(where, f"expected schema '{TIMELINE_SCHEMA}', "
                              f"got {tl.get('schema')!r}")
        for f in ("interval", "phases"):
            self.check_type(where, tl, f, int)
        counters = tl.get("counters")
        if not isinstance(counters, list) or \
                not all(isinstance(c, str) for c in counters):
            self.error(where, "counters missing or not a string array")
            return
        ivs = tl.get("intervals")
        if not isinstance(ivs, list):
            self.error(where, "intervals missing or not an array")
            return
        if self.errors:
            return
        if tl["interval"] <= 0:
            self.error(where, f"interval {tl['interval']} <= 0")
        phases = tl["phases"]
        # A mask probe is all-or-nothing: every interval carries
        # passMask (adaptive fill policy attached) or none does
        # (static/legacy runs — whose bytes must not change).
        masked = sum(1 for iv in ivs
                     if isinstance(iv, dict) and "passMask" in iv)
        if masked not in (0, len(ivs)):
            self.error(where, f"passMask on {masked} of {len(ivs)} "
                              f"intervals (must be all or none)")
        next_inst, next_cycle = 0, 0
        for i, iv in enumerate(ivs):
            w = f"{where}.intervals[{i}]"
            if not isinstance(iv, dict):
                self.error(w, "not an object")
                return
            for f in ("startInst", "insts", "startCycle", "cycles",
                      "phase"):
                if not self.check_type(w, iv, f, int):
                    return
            if not self.check_type(w, iv, "ipc", (int, float)):
                return
            # Intervals tile the run: each starts where its
            # predecessor ended, in both instructions and cycles.
            if iv["startInst"] != next_inst:
                self.error(w, f"startInst {iv['startInst']}, "
                              f"expected {next_inst}")
            if iv["startCycle"] != next_cycle:
                self.error(w, f"startCycle {iv['startCycle']}, "
                              f"expected {next_cycle}")
            if iv["insts"] <= 0:
                self.error(w, f"insts {iv['insts']} <= 0")
            next_inst = iv["startInst"] + iv["insts"]
            next_cycle = iv["startCycle"] + iv["cycles"]
            if iv["cycles"] > 0:
                want = iv["insts"] / iv["cycles"]
                if not math.isclose(iv["ipc"], want, rel_tol=1e-12):
                    self.error(w, f"ipc {iv['ipc']} != "
                                  f"insts/cycles {want}")
            elif iv["ipc"] != 0:
                self.error(w, "ipc nonzero with zero cycles")
            if phases > 0:
                if not 0 <= iv["phase"] < phases:
                    self.error(w, f"phase {iv['phase']} outside "
                                  f"[0, {phases})")
            elif iv["phase"] != -1:
                self.error(w, f"phase {iv['phase']} with phase "
                              f"tagging off (expected -1)")
            if "passMask" in iv:
                if not self.check_type(w, iv, "passMask", int):
                    return
                if not 0 <= iv["passMask"] <= POLICY_MASK_MAX:
                    self.error(w, f"passMask {iv['passMask']} "
                                  f"outside [0, {POLICY_MASK_MAX}]")
            deltas = iv.get("deltas")
            if not isinstance(deltas, list) or \
                    len(deltas) != len(counters):
                self.error(w, "deltas missing or length != counters")
            elif not all(isinstance(d, int) and
                         not isinstance(d, bool) and d >= 0
                         for d in deltas):
                self.error(w, "deltas hold a non-counter value")
        if next_inst != r["retired"]:
            self.error(where, f"interval insts sum to {next_inst}, "
                              f"result retired {r['retired']}")
        if next_cycle != r["cycles"]:
            self.error(where, f"interval cycles sum to {next_cycle}, "
                              f"result cycles {r['cycles']}")

    def check_host(self, where, r):
        h = r["host"]
        where = f"{where}.host"
        self.check_type(where, h, "hostSeconds", (int, float))
        self.check_type(where, h, "simInstsPerSec", (int, float))
        if "profile" in h:
            prof = h["profile"]
            if not isinstance(prof, dict):
                self.error(f"{where}.profile", "not an object")
            else:
                for name, row in prof.items():
                    w = f"{where}.profile.{name}"
                    if not isinstance(row, dict):
                        self.error(w, "not an object")
                        continue
                    self.check_type(w, row, "seconds", (int, float))
                    self.check_type(w, row, "calls", int)
        if r["mode"] == "sample":
            if "sample" not in h:
                self.error(where,
                           "sampled result missing host.sample")
                return
            s = h["sample"]
            for f in SAMPLE_HOST_FIELDS:
                self.check_type(f"{where}.sample", s, f, int)
            if self.errors:
                return
            if s["jobs"] < 1:
                self.error(f"{where}.sample", "jobs < 1")
            if s["simpoints"] < 1:
                self.error(f"{where}.sample", "simpoints < 1")
            if s["restores"] > 0 and s["checkpoints"] == 0:
                self.error(f"{where}.sample",
                           "restores without checkpoints")

    def check_document(self, doc):
        if not isinstance(doc, dict):
            self.error("document", "top level is not an object")
            return
        if doc.get("schema") != SCHEMA:
            self.error("schema",
                       f"expected '{SCHEMA}', got {doc.get('schema')!r}")
        self.check_type("document", doc, "generator", str)
        results = doc.get("results")
        if not isinstance(results, list):
            self.error("results", "missing or not an array")
            return
        for i, r in enumerate(results):
            self.check_result(i, r)
        if "service" in doc:
            s = doc["service"]
            where = "service"
            if not isinstance(s, dict):
                self.error(where, "not an object")
                return
            for f in ("points", "storeHits", "memoryHits", "computed"):
                self.check_type(where, s, f, int)
            if not self.errors:
                served = (s["storeHits"] + s["memoryHits"] +
                          s["computed"])
                if served != s["points"]:
                    self.error(where, "storeHits + memoryHits + "
                                      "computed != points")
        if "sweep" in doc:
            s = doc["sweep"]
            where = "sweep"
            for f in ("points", "done", "cacheHits", "liveRuns"):
                self.check_type(where, s, f, int)
            if not self.errors:
                if s["cacheHits"] + s["liveRuns"] != s["points"]:
                    self.error(where,
                               "cacheHits + liveRuns != points")
                if s["done"] > s["points"]:
                    self.error(where, "done > points")
        if "host" in doc:
            h = doc["host"]
            for f in ("workers", "wallSeconds", "busySeconds",
                      "utilization", "pointsPerSec"):
                self.check_type("host", h, f, (int, float))


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: cannot load: {e}", file=sys.stderr)
        sys.exit(1)


def validate(path):
    doc = load(path)
    c = Checker(path)
    c.check_document(doc)
    for e in c.errors:
        print(e, file=sys.stderr)
    return doc, not c.errors


def by_point(doc):
    """Index results by (workload, config); last record wins so a
    deliberate cache-hit repeat compares against the same physics."""
    return {(r["workload"], r["config"]): r for r in doc["results"]}


def diff(old_path, old, new_path, new, tol):
    old_pts, new_pts = by_point(old), by_point(new)
    regressed = False
    for key in sorted(old_pts.keys() | new_pts.keys()):
        label = f"{key[0]}/{key[1]}"
        if key not in old_pts:
            print(f"  + {label}: only in {new_path}")
            continue
        if key not in new_pts:
            print(f"  - {label}: only in {old_path}")
            continue
        a, b = old_pts[key]["ipc"], new_pts[key]["ipc"]
        if a == b:
            continue
        rel = abs(b - a) / a if a else math.inf
        mark = "!!" if rel > tol else "~"
        print(f"  {mark} {label}: ipc {a:.6f} -> {b:.6f} "
              f"({(b / a - 1) * 100 if a else math.inf:+.3f}%)")
        if rel > tol:
            regressed = True
    return not regressed


# Keys whose values legitimately differ between a live/recording run
# and a replay of its trace: run-mode provenance, cache/source
# provenance and anything derived from host wall-clock time.
REPLAY_VOLATILE_RESULT_KEYS = ("mode", "cacheHit", "sourceDigest",
                               "host")
REPLAY_VOLATILE_DOC_KEYS = ("generator", "sweep", "service", "host")


def canonical_replay_view(doc):
    """The document reduced to its deterministic simulation content."""
    view = {k: v for k, v in doc.items()
            if k not in REPLAY_VOLATILE_DOC_KEYS}
    view["results"] = [
        {k: v for k, v in r.items()
         if k not in REPLAY_VOLATILE_RESULT_KEYS}
        for r in doc["results"]
    ]
    return view


def first_divergence(live_r, replay_r):
    """Name the first counter that differs between two result records
    (document key order, i.e. the order the simulator emitted)."""
    for key in live_r:
        if key in REPLAY_VOLATILE_RESULT_KEYS:
            continue
        if key not in replay_r:
            return key, live_r[key], "<missing>"
        if live_r[key] != replay_r[key]:
            return key, live_r[key], replay_r[key]
    for key in replay_r:
        if key not in live_r and key not in REPLAY_VOLATILE_RESULT_KEYS:
            return key, "<missing>", replay_r[key]
    return None


def compare_identical(a_path, a_doc, b_path, b_doc, a_role, b_role,
                      contract):
    """Shared engine for --compare-replay and --compare-timing: the
    two documents must be identical modulo the volatile keys."""
    a = canonical_replay_view(a_doc)
    b = canonical_replay_view(b_doc)
    a_bytes = json.dumps(a, sort_keys=True)
    b_bytes = json.dumps(b, sort_keys=True)
    if a_bytes == b_bytes:
        n = len(a_doc["results"])
        print(f"{contract}: {n} result"
              f"{'s' if n != 1 else ''} byte-identical "
              f"(modulo {', '.join(REPLAY_VOLATILE_RESULT_KEYS)})")
        return True

    a_pts, b_pts = by_point(a_doc), by_point(b_doc)
    for key in sorted(a_pts.keys() | b_pts.keys()):
        label = f"{key[0]}/{key[1]}"
        if key not in a_pts:
            print(f"  !! {label}: only in {b_path}")
            continue
        if key not in b_pts:
            print(f"  !! {label}: only in {a_path}")
            continue
        div = first_divergence(a_pts[key], b_pts[key])
        if div:
            field, a_v, b_v = div
            print(f"  !! {label}: first diverging counter "
                  f"'{field}': {a_v} ({a_role}) vs {b_v} ({b_role})")
    print(f"{contract} FAILED: {a_path} vs {b_path}")
    return False


def compare_replay(live_path, live, replay_path, replay):
    return compare_identical(live_path, live, replay_path, replay,
                             "live", "replay", "replay deterministic")


def compare_timing(scan_path, scan, wakeup_path, wakeup):
    return compare_identical(scan_path, scan, wakeup_path, wakeup,
                             "scan", "wakeup",
                             "scheduler timing identity")


# ---- trace-event export validation --------------------------------------

# Event phases tcfill emits: complete spans, instants, counters,
# metadata. Anything else means the writer grew without this check.
TRACE_EVENT_PHASES = {"X", "i", "C", "M"}


def validate_trace_events(path):
    doc = load(path)
    errors = []

    def error(i, msg):
        errors.append(f"{path}: traceEvents[{i}]: {msg}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        print(f"{path}: top level is not {{\"traceEvents\": [...]}}",
              file=sys.stderr)
        return False
    evs = doc["traceEvents"]
    if not isinstance(evs, list):
        print(f"{path}: traceEvents is not an array", file=sys.stderr)
        return False
    named_pids = set()
    for i, e in enumerate(evs):
        if not isinstance(e, dict):
            error(i, "not an object")
            continue
        ph = e.get("ph")
        if ph not in TRACE_EVENT_PHASES:
            error(i, f"unknown ph {ph!r}")
            continue
        for f in ("pid", "tid"):
            if not isinstance(e.get(f), int) or \
                    isinstance(e.get(f), bool):
                error(i, f"missing or non-integer '{f}'")
        if not isinstance(e.get("name"), str) or not e["name"]:
            error(i, "missing or empty 'name'")
        if ph != "M":
            ts = e.get("ts")
            if not isinstance(ts, (int, float)) or \
                    isinstance(ts, bool):
                error(i, "missing or non-numeric 'ts'")
            elif ts < 0:
                error(i, f"negative ts {ts}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or \
                    isinstance(dur, bool):
                error(i, "complete event missing numeric 'dur'")
            elif dur < 0:
                error(i, f"negative dur {dur}")
        if ph == "i" and e.get("s") not in ("t", "p", "g"):
            error(i, f"instant scope {e.get('s')!r} not in t/p/g")
        if ph == "C" and not isinstance(e.get("args"), dict):
            error(i, "counter event missing args object")
        if ph == "M" and e.get("name") == "process_name":
            named_pids.add(e.get("pid"))
    # Both emitters name their process track up front; an export with
    # payload events on an unnamed pid points at a wiring bug.
    payload_pids = {e.get("pid") for e in evs
                    if isinstance(e, dict) and e.get("ph") != "M"}
    for pid in sorted(p for p in payload_pids if p is not None):
        if pid not in named_pids:
            errors.append(f"{path}: pid {pid} has events but no "
                          f"process_name metadata")
    for e in errors[:20]:
        print(e, file=sys.stderr)
    if len(errors) > 20:
        print(f"{path}: ... and {len(errors) - 20} more errors",
              file=sys.stderr)
    if not errors:
        print(f"{path}: OK ({len(evs)} trace events)")
    return not errors


# ---- perf-smoke gate ----------------------------------------------------

BASELINE_SCHEMA = "tcfill-bench-baseline-v1"
PERF_COUNTER = "sim_insts_per_s"


def bench_out_rates(doc):
    """sim_insts_per_s per benchmark from a google-benchmark
    --benchmark_out document, preferring the _median aggregate when
    repetitions were used."""
    rates = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if PERF_COUNTER not in b:
            continue
        base, sep, agg = name.rpartition("_")
        if sep and agg in ("median", "mean"):
            # Medians overwrite plain/mean entries; means only fill
            # gaps so a median-less run still gates.
            if agg == "median" or base not in rates:
                rates[base] = b[PERF_COUNTER]
        elif name not in rates:
            rates[name] = b[PERF_COUNTER]
    return rates


def compare_perf(base_path, base, out_paths, outs, tol):
    if base.get("schema") != BASELINE_SCHEMA:
        print(f"{base_path}: expected schema '{BASELINE_SCHEMA}', "
              f"got {base.get('schema')!r}", file=sys.stderr)
        return False
    # Merge rows across every bench-out document (one per benchmark
    # binary); duplicate benchmark names across binaries would shadow
    # each other, so reject them loudly.
    rates = {}
    for path, out in zip(out_paths, outs):
        for name, rate in bench_out_rates(out).items():
            if name in rates:
                print(f"  !! {name}: appears in more than one "
                      f"bench-out document (again in {path})")
                return False
            rates[name] = rate
    out_path = ", ".join(out_paths)
    ok = True
    for name, entry in sorted(base.get("benchmarks", {}).items()):
        want = entry[PERF_COUNTER]
        floor = (1.0 - tol) * want
        if name not in rates:
            print(f"  !! {name}: baselined but absent from "
                  f"{out_path}")
            ok = False
            continue
        got = rates[name]
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"  {name}: {got:,.0f} {PERF_COUNTER} vs baseline "
              f"{want:,.0f} (floor {floor:,.0f}, "
              f"{got / want:.2f}x) {verdict}")
        if got < floor:
            ok = False
    if not ok:
        print(f"perf smoke FAILED: throughput below "
              f"(1 - {tol}) x {base_path}")
    return ok


def main():
    ap = argparse.ArgumentParser(
        description="Validate / diff tcfill stats JSON documents.")
    ap.add_argument("files", nargs="+", metavar="STATS.json",
                    help="one file to validate, two to diff")
    ap.add_argument("--ipc-tol", type=float, default=0.0,
                    help="relative IPC change tolerated in diff mode "
                         "(default 0: any change fails)")
    ap.add_argument("--compare-replay", action="store_true",
                    help="two-file mode: require identical simulation "
                         "content (record/replay determinism check)")
    ap.add_argument("--compare-timing", action="store_true",
                    help="two-file mode: require identical simulation "
                         "content between two scheduler "
                         "implementations (timing-identity check)")
    ap.add_argument("--compare-perf", action="store_true",
                    help="multi-file mode: BASELINE.json vs one or "
                         "more google-benchmark --benchmark_out "
                         "documents (perf-smoke regression gate)")
    ap.add_argument("--perf-tol", type=float, default=0.25,
                    help="relative throughput drop tolerated by "
                         "--compare-perf (default 0.25)")
    ap.add_argument("--validate-trace-events", action="store_true",
                    help="validate Chrome/Perfetto trace-event "
                         "exports (--trace-events files) instead of "
                         "stats documents")
    opts = ap.parse_args()
    modes = [m for m in ("--compare-replay", "--compare-timing",
                         "--compare-perf", "--validate-trace-events")
             if getattr(opts, m[2:].replace("-", "_"))]
    if len(modes) > 1:
        ap.error("pick one of " + ", ".join(modes))
    if opts.validate_trace_events:
        ok = all([validate_trace_events(p) for p in opts.files])
        sys.exit(0 if ok else 1)
    if opts.compare_perf:
        if len(opts.files) < 2:
            ap.error("--compare-perf needs a baseline and at least "
                     "one bench-out file")
        # None of the files is a tcfill-stats-v1 document: skip schema
        # validation and gate directly.
        base = load(opts.files[0])
        outs = [load(p) for p in opts.files[1:]]
        ok = compare_perf(opts.files[0], base, opts.files[1:], outs,
                          opts.perf_tol)
        sys.exit(0 if ok else 1)
    if len(opts.files) > 2:
        ap.error("expected one or two files")
    if modes and len(opts.files) != 2:
        ap.error(f"{modes[0]} needs exactly two files")

    ok = True
    docs = []
    for path in opts.files:
        doc, valid = validate(path)
        docs.append(doc)
        ok = ok and valid
        if valid:
            n = len(doc["results"])
            print(f"{path}: OK ({n} result{'s' if n != 1 else ''})")
    if ok and len(docs) == 2:
        if opts.compare_replay:
            ok = compare_replay(opts.files[0], docs[0], opts.files[1],
                                docs[1])
        elif opts.compare_timing:
            ok = compare_timing(opts.files[0], docs[0], opts.files[1],
                                docs[1])
        else:
            ok = diff(opts.files[0], docs[0], opts.files[1], docs[1],
                      opts.ipc_tol)
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
