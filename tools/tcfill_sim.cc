/**
 * @file
 * tcfill_sim: command-line driver for the simulator. Runs one
 * workload under a fully configurable machine and prints the result
 * summary (optionally the full component statistics).
 *
 * Usage:
 *   tcfill_sim [options] [workload]
 *
 * Options:
 *   --list                 list available workloads and exit
 *   --scale N              workload scale factor (default 1)
 *   --max-insts N          retire at most N instructions (0 = all)
 *   --opts LIST            comma list of moves,reassoc,scaled,
 *                          placement,dce — or all / none / extended
 *   --fill-latency N       fill pipeline latency in cycles (default 5)
 *   --no-trace-cache       fetch from the I-cache only
 *   --no-inactive-issue    disable inactive issue
 *   --no-promotion         disable branch promotion
 *   --tc-entries N         trace cache entries (default 2048)
 *   --stats                dump full component statistics
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "sim/processor.hh"
#include "workloads/suite.hh"

using namespace tcfill;

namespace
{

FillOptimizations
parseOpts(const std::string &spec)
{
    if (spec == "all")
        return FillOptimizations::all();
    if (spec == "none")
        return FillOptimizations::none();
    if (spec == "extended")
        return FillOptimizations::extended();

    FillOptimizations opts;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string tok = spec.substr(
            pos, comma == std::string::npos ? spec.size() - pos
                                            : comma - pos);
        if (tok == "moves") {
            opts.markMoves = true;
        } else if (tok == "reassoc") {
            opts.reassociate = true;
        } else if (tok == "scaled") {
            opts.scaledAdds = true;
        } else if (tok == "placement") {
            opts.placement = true;
        } else if (tok == "dce") {
            opts.deadCodeElim = true;
        } else if (!tok.empty()) {
            fatal("unknown optimization '%s'", tok.c_str());
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return opts;
}

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: tcfill_sim [options] [workload]\n"
        "  --list | --scale N | --max-insts N | --opts LIST\n"
        "  --fill-latency N | --no-trace-cache | --no-inactive-issue\n"
        "  --no-promotion | --tc-entries N | --stats\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "compress";
    unsigned scale = 1;
    bool dump_stats = false;
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.name = "opts=all";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--list") {
            for (const auto &w : workloads::suite()) {
                std::printf("%-14s (%-5s) %s\n", w.name.c_str(),
                            w.shortName.c_str(), w.traits.c_str());
            }
            return 0;
        } else if (arg == "--scale") {
            scale = static_cast<unsigned>(std::strtoul(next(),
                                                       nullptr, 10));
        } else if (arg == "--max-insts") {
            cfg.maxInsts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--opts") {
            std::string spec = next();
            cfg.fill.opts = parseOpts(spec);
            cfg.name = "opts=" + spec;
            cfg.tcache.moveBits = cfg.fill.opts.markMoves;
            cfg.tcache.scaledBits = cfg.fill.opts.scaledAdds;
            cfg.tcache.placementBits = cfg.fill.opts.placement;
        } else if (arg == "--fill-latency") {
            cfg.fill.latency = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--no-trace-cache") {
            cfg.useTraceCache = false;
        } else if (arg == "--no-inactive-issue") {
            cfg.inactiveIssue = false;
        } else if (arg == "--no-promotion") {
            cfg.fill.promoteBranches = false;
        } else if (arg == "--tc-entries") {
            cfg.tcache.entries = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg.rfind("--", 0) == 0) {
            usage();
        } else {
            workload = arg;
        }
    }

    Program prog = workloads::build(workload, scale);
    Processor proc(prog, cfg);
    SimResult res = proc.run();
    res.dump(std::cout);
    if (dump_stats) {
        std::cout << "\n";
        proc.dumpStats(std::cout);
    }
    return 0;
}
