/**
 * @file
 * tcfill_sim: command-line driver for the simulator. Runs one
 * workload under a fully configurable machine and prints the result
 * summary (optionally the full component statistics).
 *
 * Usage:
 *   tcfill_sim [options] [workload[,workload...] | all]
 *
 * Options:
 *   --list                 list available workloads and exit
 *   --threads N, -j N      worker threads for multi-workload runs
 *                          (default: all cores; TCFILL_THREADS also
 *                          honored)
 *   --scale N              workload scale factor (default 1)
 *   --max-insts N          retire at most N instructions (0 = all)
 *   --opts LIST            comma list of moves,reassoc,scaled,
 *                          placement,dce — or all / none / extended
 *   --fill-latency N       fill pipeline latency in cycles (default 5)
 *   --no-trace-cache       fetch from the I-cache only
 *   --no-inactive-issue    disable inactive issue
 *   --no-promotion         disable branch promotion
 *   --tc-entries N         trace cache entries (default 2048)
 *   --stats                dump full component statistics
 */

#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/processor.hh"
#include "sim/runner.hh"
#include "workloads/suite.hh"

using namespace tcfill;

namespace
{

FillOptimizations
parseOpts(const std::string &spec)
{
    if (spec == "all")
        return FillOptimizations::all();
    if (spec == "none")
        return FillOptimizations::none();
    if (spec == "extended")
        return FillOptimizations::extended();

    FillOptimizations opts;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string tok = spec.substr(
            pos, comma == std::string::npos ? spec.size() - pos
                                            : comma - pos);
        if (tok == "moves") {
            opts.markMoves = true;
        } else if (tok == "reassoc") {
            opts.reassociate = true;
        } else if (tok == "scaled") {
            opts.scaledAdds = true;
        } else if (tok == "placement") {
            opts.placement = true;
        } else if (tok == "dce") {
            opts.deadCodeElim = true;
        } else if (!tok.empty()) {
            fatal("unknown optimization '%s'", tok.c_str());
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return opts;
}

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: tcfill_sim [options] [workload[,workload...] | all]\n"
        "  --list | --threads N | -j N | --scale N | --max-insts N\n"
        "  --opts LIST | --fill-latency N | --no-trace-cache\n"
        "  --no-inactive-issue | --no-promotion | --tc-entries N\n"
        "  --stats\n";
    std::exit(2);
}

std::vector<std::string>
parseWorkloads(const std::string &spec)
{
    std::vector<std::string> names;
    if (spec == "all") {
        for (const auto &w : workloads::suite())
            names.push_back(w.name);
        return names;
    }
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string tok = spec.substr(
            pos, comma == std::string::npos ? spec.size() - pos
                                            : comma - pos);
        if (!tok.empty())
            names.push_back(workloads::find(tok).name);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (names.empty())
        fatal("no workloads in '%s'", spec.c_str());
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "compress";
    unsigned scale = 1;
    unsigned threads = 0;  // 0 = SimRunner::defaultThreads()
    bool dump_stats = false;
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.name = "opts=all";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--list") {
            for (const auto &w : workloads::suite()) {
                std::printf("%-14s (%-5s) %s\n", w.name.c_str(),
                            w.shortName.c_str(), w.traits.c_str());
            }
            return 0;
        } else if (arg == "--threads" || arg == "-j") {
            threads = static_cast<unsigned>(std::strtoul(next(),
                                                         nullptr, 10));
        } else if (arg == "--scale") {
            scale = static_cast<unsigned>(std::strtoul(next(),
                                                       nullptr, 10));
        } else if (arg == "--max-insts") {
            cfg.maxInsts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--opts") {
            std::string spec = next();
            cfg.fill.opts = parseOpts(spec);
            cfg.name = "opts=" + spec;
            cfg.tcache.moveBits = cfg.fill.opts.markMoves;
            cfg.tcache.scaledBits = cfg.fill.opts.scaledAdds;
            cfg.tcache.placementBits = cfg.fill.opts.placement;
        } else if (arg == "--fill-latency") {
            cfg.fill.latency = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--no-trace-cache") {
            cfg.useTraceCache = false;
        } else if (arg == "--no-inactive-issue") {
            cfg.inactiveIssue = false;
        } else if (arg == "--no-promotion") {
            cfg.fill.promoteBranches = false;
        } else if (arg == "--tc-entries") {
            cfg.tcache.entries = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg.rfind("--", 0) == 0) {
            usage();
        } else {
            workload = arg;
        }
    }

    std::vector<std::string> names = parseWorkloads(workload);

    if (names.size() == 1 && dump_stats) {
        // Component statistics need the live Processor, so the
        // single-workload stats path runs in-process.
        Program prog = workloads::build(names[0], scale);
        Processor proc(prog, cfg);
        SimResult res = proc.run();
        res.dump(std::cout);
        std::cout << "\n";
        proc.dumpStats(std::cout);
        return 0;
    }
    fatal_if(dump_stats && names.size() > 1,
             "--stats works with a single workload only");

    // One simulation per workload, executed concurrently on the
    // runner pool; results print in the requested order.
    SimRunner pool(threads);
    std::vector<std::shared_future<SimResult>> futs;
    for (const auto &name : names)
        futs.push_back(pool.submit(name, cfg, scale));
    bool first = true;
    for (auto &fut : futs) {
        if (!first)
            std::cout << "\n";
        first = false;
        SimResult res = fut.get();
        res.config = cfg.name;
        res.dump(std::cout);
    }
    return 0;
}
