/**
 * @file
 * tcfill_sim: command-line driver for the simulator. Runs one
 * workload under a fully configurable machine and prints the result
 * summary (optionally the full component statistics).
 *
 * Usage:
 *   tcfill_sim [options] [workload[,workload...] | all]
 *
 * Options:
 *   --list                 list available workloads and exit
 *   --list-workloads       print registered workload names, one per
 *                          line (machine-readable form of --list)
 *   --threads N, -j N      worker threads for multi-workload runs
 *                          (default: all cores; TCFILL_THREADS also
 *                          honored)
 *   --scale N              workload scale factor (default 1)
 *   --max-insts N          retire at most N instructions (0 = all)
 *   --opts LIST            comma list of moves,reassoc,scaled,
 *                          placement,dce — or all / none / extended
 *   --fill-latency N       fill pipeline latency in cycles (default 5)
 *   --no-trace-cache       fetch from the I-cache only
 *   --no-inactive-issue    disable inactive issue
 *   --no-promotion         disable branch promotion
 *   --tc-entries N         trace cache entries (default 2048)
 *   --scheduler KIND       instruction scheduler: wakeup (default,
 *                          event-driven) or scan (per-cycle rescan
 *                          reference; identical timing — used by the
 *                          timing-identity CI job)
 *   --stats                dump full component statistics
 *   --stats-dump           dump component statistics as JSON
 *   --stats-json FILE      write a tcfill-stats-v1 JSON document with
 *                          one record per workload (byte-identical
 *                          across reruns and -j values by default)
 *   --stats-host           include wall-clock sections in --stats-json
 *                          (and, for in-process runs, the host
 *                          self-profiler's host.profile section)
 *   --stats-interval N     timeline telemetry: snapshot every
 *                          timing-counter delta each N retired insts
 *                          into a `timeline` section of --stats-json
 *                          (deterministic; DESIGN.md §15)
 *   --stats-phases K       tag timeline intervals with one of K BBV
 *                          phase clusters (requires --stats-interval)
 *   --trace-events FILE    write a Chrome/Perfetto trace-event JSON
 *                          file (per-stage spans, fill finalizations,
 *                          squash episodes; single workload — with
 *                          --sample, host checkpoint/restore spans)
 *   --pipe-trace FILE      write a JSONL pipeline lifecycle trace
 *                          (single workload; see DESIGN.md §9)
 *   --progress             live sweep progress on stderr
 *   --help, -h             full option descriptions
 *
 * Trace capture / replay / sampling (single workload; DESIGN.md §12):
 *   --record FILE          run live and capture the committed stream
 *                          to a tcfill-trace-v1 file
 *   --replay FILE          replay a captured trace instead of a live
 *                          run (workload comes from the trace header)
 *   --bbv FILE             write a tcfill-bbv-v1 basic-block-vector
 *                          profile (functional run, no timing)
 *   --bbv-interval N       BBV interval length in instructions
 *                          (default 100000)
 *   --sample K:INTERVAL    BBV-sampled timing estimate: K clusters
 *                          over INTERVAL-instruction intervals
 *   --sample-warmup N      warmup instructions before each sampled
 *                          interval (default 50000)
 *   --sample-jobs N        measurement worker threads (default: all
 *                          cores; the estimate is byte-identical at
 *                          every job count)
 *   --sample-no-checkpoint functionally re-execute each measurement
 *                          prefix instead of restoring checkpoints
 *   --sample-ckpt-stride N checkpoint every N interval boundaries
 *                          (default 1)
 *   --sample-reference     use the serial two-runs-per-point
 *                          reference implementation (oracle for the
 *                          CI sample-determinism job)
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/host_prof.hh"
#include "obs/pipe_trace.hh"
#include "obs/progress.hh"
#include "obs/trace_events.hh"
#include "sim/processor.hh"
#include "sim/runner.hh"
#include "sim/stats_io.hh"
#include "tracefile/bbv.hh"
#include "tracefile/replay.hh"
#include "tracefile/sample.hh"
#include "workloads/suite.hh"

using namespace tcfill;

namespace
{

FillOptimizations
parseOpts(const std::string &spec)
{
    if (spec == "all")
        return FillOptimizations::all();
    if (spec == "none")
        return FillOptimizations::none();
    if (spec == "extended")
        return FillOptimizations::extended();

    FillOptimizations opts;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string tok = spec.substr(
            pos, comma == std::string::npos ? spec.size() - pos
                                            : comma - pos);
        if (tok == "moves") {
            opts.markMoves = true;
        } else if (tok == "reassoc") {
            opts.reassociate = true;
        } else if (tok == "scaled") {
            opts.scaledAdds = true;
        } else if (tok == "placement") {
            opts.placement = true;
        } else if (tok == "dce") {
            opts.deadCodeElim = true;
        } else if (!tok.empty()) {
            fatal("unknown optimization '%s'", tok.c_str());
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return opts;
}

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: tcfill_sim [options] [workload[,workload...] | all]\n"
        "  --list | --list-workloads | --threads N | -j N | --scale N\n"
        "  --max-insts N\n"
        "  --opts LIST | --fill-latency N | --no-trace-cache\n"
        "  --no-inactive-issue | --no-promotion | --tc-entries N\n"
        "  --scheduler wakeup|scan\n"
        "  --fill-policy KIND | --list-policies | --policy-window N\n"
        "  --policy-phases K | --policy-threshold F\n"
        "  --policy-hysteresis F | --policy-map SPEC\n"
        "  --stats | --stats-dump | --stats-json FILE | --stats-host\n"
        "  --stats-interval N | --stats-phases K | --trace-events FILE\n"
        "  --pipe-trace FILE | --progress\n"
        "  --record FILE | --replay FILE | --bbv FILE\n"
        "  --bbv-interval N | --sample K:INTERVAL | --sample-warmup N\n"
        "  --sample-jobs N | --sample-no-checkpoint\n"
        "  --sample-ckpt-stride N | --sample-reference\n"
        "run `tcfill_sim --help` for full option descriptions\n";
    std::exit(2);
}

[[noreturn]] void
help()
{
    std::cout <<
        "usage: tcfill_sim [options] [workload[,workload...] | all]\n"
        "\n"
        "General:\n"
        "  --list                 list available workloads and exit\n"
        "  --list-workloads       bare workload names, one per line\n"
        "  --threads N, -j N      worker threads for multi-workload\n"
        "                         runs (default: all cores;\n"
        "                         TCFILL_THREADS also honored)\n"
        "  --scale N              workload scale factor (default 1)\n"
        "  --max-insts N          retire at most N instructions\n"
        "\n"
        "Machine configuration:\n"
        "  --opts LIST            comma list of moves,reassoc,scaled,\n"
        "                         placement,dce — or all/none/extended\n"
        "  --fill-latency N       fill pipeline latency (default 5)\n"
        "  --no-trace-cache       fetch from the I-cache only\n"
        "  --no-inactive-issue    disable inactive issue\n"
        "  --no-promotion         disable branch promotion\n"
        "  --tc-entries N         trace cache entries (default 2048)\n"
        "  --scheduler KIND       wakeup (default, event-driven) or\n"
        "                         scan (per-cycle rescan reference;\n"
        "                         identical timing)\n"
        "\n"
        "Fill pass-selection policy (DESIGN.md §16):\n"
        "  --fill-policy KIND     static (default) | phase | feedback\n"
        "                         | oracle — how the fill unit picks\n"
        "                         the pass set per finalized segment\n"
        "  --list-policies        describe the policies and exit\n"
        "  --policy-window N      decision window in retired insts\n"
        "                         (default 10000)\n"
        "  --policy-phases K      online phase cap (default 8)\n"
        "  --policy-threshold F   new-phase BBV distance^2 threshold\n"
        "                         (default 0.05)\n"
        "  --policy-hysteresis F  feedback: min relative IPC gain to\n"
        "                         adopt a trial mask (default 0.02)\n"
        "  --policy-map SPEC      oracle per-phase mask map, e.g.\n"
        "                         \"*=all\" or \"0=none,1=all\"\n"
        "\n"
        "Statistics and telemetry (DESIGN.md §9, §15):\n"
        "  --stats                dump full component statistics\n"
        "  --stats-dump           dump component statistics as JSON\n"
        "  --stats-json FILE      tcfill-stats-v1 document, one record\n"
        "                         per workload (byte-identical across\n"
        "                         reruns and -j values by default)\n"
        "  --stats-host           include wall-clock host sections in\n"
        "                         --stats-json; in-process runs also\n"
        "                         get the host self-profiler's\n"
        "                         host.profile stage breakdown\n"
        "  --stats-interval N     timeline telemetry: snapshot every\n"
        "                         timing-counter delta each N retired\n"
        "                         instructions into a deterministic\n"
        "                         `timeline` JSON section\n"
        "  --stats-phases K       tag timeline intervals with one of K\n"
        "                         BBV phase clusters (SimPoint-style;\n"
        "                         requires --stats-interval)\n"
        "  --trace-events FILE    Chrome/Perfetto trace-event JSON:\n"
        "                         per-stage pipeline spans, fill-unit\n"
        "                         finalizations, squash episodes and a\n"
        "                         window-occupancy track (single\n"
        "                         workload; with --sample, host-side\n"
        "                         checkpoint/restore/measure spans)\n"
        "  --pipe-trace FILE      JSONL pipeline lifecycle trace\n"
        "                         (single workload)\n"
        "  --progress             live sweep progress on stderr\n"
        "\n"
        "Trace capture / replay (DESIGN.md §12):\n"
        "  --record FILE          run live and capture the committed\n"
        "                         stream to a tcfill-trace-v1 file\n"
        "  --replay FILE          replay a captured trace (workload\n"
        "                         comes from the trace header)\n"
        "  --bbv FILE             write a tcfill-bbv-v1 basic-block\n"
        "                         vector profile (functional run)\n"
        "  --bbv-interval N       BBV interval length (default 100000)\n"
        "\n"
        "BBV sampling (DESIGN.md §14):\n"
        "  --sample K:INTERVAL    BBV-sampled timing estimate: K\n"
        "                         clusters over INTERVAL-instruction\n"
        "                         intervals\n"
        "  --sample-warmup N      warmup instructions before each\n"
        "                         sampled interval (default 50000)\n"
        "  --sample-jobs N        measurement worker threads (default:\n"
        "                         all cores; the estimate is\n"
        "                         byte-identical at every job count)\n"
        "  --sample-no-checkpoint functionally re-execute each\n"
        "                         measurement prefix instead of\n"
        "                         restoring checkpoints\n"
        "  --sample-ckpt-stride N checkpoint every N interval\n"
        "                         boundaries (default 1; wider strides\n"
        "                         journal fewer pages, fast-forward\n"
        "                         more)\n"
        "  --sample-reference     serial two-runs-per-point reference\n"
        "                         implementation (correctness oracle)\n";
    std::exit(0);
}

std::vector<std::string>
parseWorkloads(const std::string &spec)
{
    std::vector<std::string> names;
    if (spec == "all") {
        for (const auto &w : workloads::suite())
            names.push_back(w.name);
        return names;
    }
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string tok = spec.substr(
            pos, comma == std::string::npos ? spec.size() - pos
                                            : comma - pos);
        if (!tok.empty())
            names.push_back(workloads::find(tok).name);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (names.empty())
        fatal("no workloads in '%s'", spec.c_str());
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "compress";
    bool workload_given = false;
    unsigned scale = 1;
    unsigned threads = 0;  // 0 = SimRunner::defaultThreads()
    bool dump_stats = false;
    bool stats_dump_json = false;
    bool stats_host = false;
    bool show_progress = false;
    std::string stats_json;
    std::string pipe_trace;
    std::string trace_events;
    std::string record_path;
    std::string replay_path;
    std::string bbv_path;
    InstSeqNum bbv_interval = 100'000;
    tracefile::SampleSpec sample_spec;
    bool do_sample = false;
    bool sample_reference = false;
    std::string fill_policy;
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.name = "opts=all";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            help();
        } else if (arg == "--list") {
            for (const auto &w : workloads::suite()) {
                std::printf("%-14s (%-5s) %s\n", w.name.c_str(),
                            w.shortName.c_str(), w.traits.c_str());
            }
            return 0;
        } else if (arg == "--list-workloads") {
            // Bare names only, one per line: stable output for
            // scripts (xargs, CI matrix generation).
            for (const auto &w : workloads::suite())
                std::printf("%s\n", w.name.c_str());
            return 0;
        } else if (arg == "--threads" || arg == "-j") {
            threads = static_cast<unsigned>(std::strtoul(next(),
                                                         nullptr, 10));
        } else if (arg == "--scale") {
            scale = static_cast<unsigned>(std::strtoul(next(),
                                                       nullptr, 10));
        } else if (arg == "--max-insts") {
            cfg.maxInsts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--opts") {
            std::string spec = next();
            cfg.fill.opts = parseOpts(spec);
            cfg.name = "opts=" + spec;
            cfg.tcache.moveBits = cfg.fill.opts.markMoves;
            cfg.tcache.scaledBits = cfg.fill.opts.scaledAdds;
            cfg.tcache.placementBits = cfg.fill.opts.placement;
        } else if (arg == "--fill-policy") {
            fill_policy = next();
            cfg.fill.policy.kind = parseFillPolicyKind(fill_policy);
        } else if (arg == "--list-policies") {
            std::cout << "fill policies (--fill-policy):\n"
                      << listFillPolicies();
            return 0;
        } else if (arg == "--policy-window") {
            cfg.fill.policy.windowInsts =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--policy-phases") {
            cfg.fill.policy.maxPhases = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--policy-threshold") {
            cfg.fill.policy.newPhaseDist = std::atof(next());
        } else if (arg == "--policy-hysteresis") {
            cfg.fill.policy.hysteresis = std::atof(next());
        } else if (arg == "--policy-map") {
            cfg.fill.policy.oracleMap = next();
        } else if (arg == "--fill-latency") {
            cfg.fill.latency = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--no-trace-cache") {
            cfg.useTraceCache = false;
        } else if (arg == "--no-inactive-issue") {
            cfg.inactiveIssue = false;
        } else if (arg == "--no-promotion") {
            cfg.fill.promoteBranches = false;
        } else if (arg == "--tc-entries") {
            cfg.tcache.entries = std::strtoul(next(), nullptr, 10);
        } else if (arg == "--scheduler") {
            std::string kind = next();
            if (kind == "wakeup") {
                cfg.core.scheduler = SchedulerKind::Wakeup;
            } else if (kind == "scan") {
                cfg.core.scheduler = SchedulerKind::Scan;
            } else {
                fatal("unknown scheduler '%s' (wakeup|scan)",
                      kind.c_str());
            }
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--stats-dump") {
            stats_dump_json = true;
        } else if (arg == "--stats-json") {
            stats_json = next();
        } else if (arg == "--stats-host") {
            stats_host = true;
        } else if (arg == "--stats-interval") {
            cfg.statsInterval = std::strtoull(next(), nullptr, 10);
            fatal_if(cfg.statsInterval == 0,
                     "--stats-interval must be positive");
        } else if (arg == "--stats-phases") {
            cfg.statsPhases = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--trace-events") {
            trace_events = next();
        } else if (arg == "--pipe-trace") {
            pipe_trace = next();
        } else if (arg == "--record") {
            record_path = next();
        } else if (arg == "--replay") {
            replay_path = next();
        } else if (arg == "--bbv") {
            bbv_path = next();
        } else if (arg == "--bbv-interval") {
            bbv_interval = std::strtoull(next(), nullptr, 10);
            fatal_if(bbv_interval == 0,
                     "--bbv-interval must be positive");
        } else if (arg == "--sample") {
            std::string spec = next();
            std::size_t colon = spec.find(':');
            fatal_if(colon == std::string::npos,
                     "--sample expects K:INTERVAL, got '%s'",
                     spec.c_str());
            sample_spec.k = static_cast<unsigned>(
                std::strtoul(spec.substr(0, colon).c_str(), nullptr,
                             10));
            sample_spec.interval = std::strtoull(
                spec.substr(colon + 1).c_str(), nullptr, 10);
            fatal_if(sample_spec.k == 0 || sample_spec.interval == 0,
                     "--sample expects positive K and INTERVAL");
            do_sample = true;
        } else if (arg == "--sample-warmup") {
            sample_spec.warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sample-jobs") {
            sample_spec.jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--sample-no-checkpoint") {
            sample_spec.useCheckpoints = false;
        } else if (arg == "--sample-ckpt-stride") {
            sample_spec.checkpointStride = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
            fatal_if(sample_spec.checkpointStride == 0,
                     "--sample-ckpt-stride must be positive");
        } else if (arg == "--sample-reference") {
            sample_reference = true;
        } else if (arg == "--progress") {
            show_progress = true;
        } else if (arg.rfind("--", 0) == 0) {
            usage();
        } else {
            workload = arg;
            workload_given = true;
        }
    }

    fatal_if(cfg.statsPhases != 0 && cfg.statsInterval == 0,
             "--stats-phases requires --stats-interval");
    fatal_if(cfg.fill.policy.kind == FillPolicyKind::Oracle &&
                 cfg.fill.policy.oracleMap.empty(),
             "--fill-policy oracle requires --policy-map");
    fatal_if(cfg.fill.policy.kind != FillPolicyKind::Static &&
                 cfg.fill.policy.windowInsts == 0,
             "--policy-window must be positive");
    // The policy is part of the configuration identity: distinguish
    // sweep rows (and result-cache keys already differ).
    if (cfg.fill.policy.kind != FillPolicyKind::Static)
        cfg.name += "+policy=" + fill_policy;
    fatal_if(!trace_events.empty() && !pipe_trace.empty(),
             "--trace-events and --pipe-trace are mutually exclusive "
             "(both claim the pipeline tracer seam)");

    const int trace_modes = (record_path.empty() ? 0 : 1) +
        (replay_path.empty() ? 0 : 1) + (bbv_path.empty() ? 0 : 1) +
        (do_sample ? 1 : 0);
    fatal_if(trace_modes > 1,
             "--record/--replay/--bbv/--sample are mutually exclusive");
    if (trace_modes == 1) {
        fatal_if(dump_stats || stats_dump_json || !pipe_trace.empty(),
                 "--stats/--stats-dump/--pipe-trace do not combine "
                 "with trace capture/replay/sampling modes");
        fatal_if(!trace_events.empty() && !do_sample,
                 "--trace-events combines with normal runs and "
                 "--sample only");

        // Sampled-run host telemetry: checkpoint/restore/fast-forward
        // spans on the host timebase, plus the self-profiler's
        // section breakdown. Neither affects the estimate.
        std::ofstream events_os;
        std::unique_ptr<obs::TraceEventWriter> events;
        if (!trace_events.empty()) {
            events_os.open(trace_events);
            fatal_if(!events_os, "cannot open '%s'",
                     trace_events.c_str());
            events = std::make_unique<obs::TraceEventWriter>(events_os);
            sample_spec.events = events.get();
        }
        obs::HostProfiler host_prof;
        if (stats_host && do_sample)
            sample_spec.profiler = &host_prof;

        SimResult res;
        if (!replay_path.empty()) {
            // The workload identity comes from the trace header; a
            // workload argument would be ignored, so reject it.
            fatal_if(workload_given,
                     "--replay takes no workload argument");
            res = tracefile::replayTrace(replay_path, cfg);
        } else {
            std::vector<std::string> names = parseWorkloads(workload);
            fatal_if(names.size() != 1,
                     "--record/--bbv/--sample work with a single "
                     "workload only");
            if (!bbv_path.empty()) {
                Program prog = workloads::build(names[0], scale);
                Executor exec(prog);
                auto ivs = tracefile::profileBbv(exec, bbv_interval,
                                                 cfg.maxInsts);
                std::ofstream os(bbv_path);
                fatal_if(!os, "cannot open '%s'", bbv_path.c_str());
                tracefile::writeBbvJson(os, prog.name, bbv_interval,
                                        ivs);
                std::printf("%s: %llu insts, %zu intervals -> %s\n",
                            prog.name.c_str(),
                            static_cast<unsigned long long>(
                                exec.instCount()),
                            ivs.size(), bbv_path.c_str());
                return 0;
            }
            if (!record_path.empty()) {
                res = tracefile::recordTrace(names[0], scale, cfg,
                                             record_path);
            } else if (sample_reference) {
                // (falls through to the serial oracle; pool knobs are
                // meaningless there)
                res = tracefile::runSampledReference(names[0], scale,
                                                     cfg, sample_spec);
            } else {
                // --threads/-j also applies to the measurement pool
                // unless --sample-jobs picked a width explicitly.
                if (sample_spec.jobs == 0)
                    sample_spec.jobs = threads;
                // Per-simpoint progress rides the SimRunner callback
                // the measurement pool already exposes.
                obs::ConsoleProgress console(std::cerr);
                obs::ProgressFn progress;
                if (show_progress) {
                    progress = [&console](const obs::SweepProgress &p) {
                        console(p);
                    };
                }
                res = tracefile::runSampled(names[0], scale, cfg,
                                            sample_spec, progress);
                if (show_progress)
                    console.finish();
            }
        }
        res.dump(std::cout);
        std::cout << "\n";
        if (!stats_json.empty()) {
            std::ofstream os(stats_json);
            fatal_if(!os, "cannot open '%s'", stats_json.c_str());
            writeStatsJson(os, "tcfill_sim", {res}, nullptr,
                           stats_host);
        }
        return 0;
    }

    std::vector<std::string> names = parseWorkloads(workload);

    const bool in_process = dump_stats || stats_dump_json ||
        !pipe_trace.empty() || !trace_events.empty();
    // --stats-host on a single workload also runs in-process so the
    // host self-profiler can attach; on a sweep it stays on the pool
    // path (host sections there carry wall clock only, no profile).
    if (names.size() == 1 && (in_process || stats_host)) {
        // Component statistics, the pipeline tracers and the host
        // self-profiler need the live Processor, so this path runs
        // in-process.
        Program prog = workloads::build(names[0], scale);
        Processor proc(prog, cfg);

        std::ofstream trace_os;
        std::unique_ptr<obs::JsonlPipeTracer> tracer;
        if (!pipe_trace.empty()) {
#if !TCFILL_PIPE_TRACE_ENABLED
            warn("tracer hooks compiled out (TCFILL_PIPE_TRACE=OFF): "
                 "'%s' will only hold the header-free empty stream",
                 pipe_trace.c_str());
#endif
            trace_os.open(pipe_trace);
            fatal_if(!trace_os, "cannot open '%s'",
                     pipe_trace.c_str());
            tracer = std::make_unique<obs::JsonlPipeTracer>(trace_os);
            proc.setTracer(tracer.get());
        }

        std::ofstream events_os;
        std::unique_ptr<obs::TraceEventWriter> events;
        std::unique_ptr<obs::TraceEventTracer> events_tracer;
        if (!trace_events.empty()) {
#if !TCFILL_PIPE_TRACE_ENABLED
            warn("tracer hooks compiled out (TCFILL_PIPE_TRACE=OFF): "
                 "'%s' will only hold metadata events",
                 trace_events.c_str());
#endif
            events_os.open(trace_events);
            fatal_if(!events_os, "cannot open '%s'",
                     trace_events.c_str());
            events =
                std::make_unique<obs::TraceEventWriter>(events_os);
            events_tracer =
                std::make_unique<obs::TraceEventTracer>(*events);
            proc.setTracer(events_tracer.get());
        }

        obs::HostProfiler host_prof;
        if (stats_host)
            proc.setHostProfiler(&host_prof);

        SimResult res = proc.run();
        res.sourceDigest = workloadDigest(names[0], scale);
        if (events_tracer) {
            events_tracer->finish();
            events->close();
        }
        if (stats_host) {
            for (const auto &row : host_prof.rows()) {
                res.hostProfile.push_back(SimResult::HostProfileRow{
                    row.name, row.seconds, row.calls});
            }
        }
        res.dump(std::cout);
        std::cout << "\n";
        if (dump_stats)
            proc.dumpStats(std::cout);
        if (stats_dump_json)
            proc.dumpStatsJson(std::cout);
        if (!stats_json.empty()) {
            std::ofstream os(stats_json);
            fatal_if(!os, "cannot open '%s'", stats_json.c_str());
            writeStatsJson(os, "tcfill_sim", {res}, nullptr,
                           stats_host);
        }
        return 0;
    }
    fatal_if(in_process && names.size() > 1,
             "--stats/--stats-dump/--pipe-trace/--trace-events work "
             "with a single workload only");

    // One simulation per workload, executed concurrently on the
    // runner pool; results print in the requested order.
    SimRunner pool(threads);
    obs::ConsoleProgress console(std::cerr);
    if (show_progress) {
        pool.setProgress(
            [&console](const obs::SweepProgress &p) { console(p); });
    }
    std::vector<std::shared_future<SimResult>> futs;
    std::vector<bool> hits(names.size(), false);
    for (std::size_t i = 0; i < names.size(); ++i) {
        bool hit = false;
        futs.push_back(pool.submit(names[i], cfg, scale, &hit));
        hits[i] = hit;
    }
    std::vector<SimResult> results;
    results.reserve(futs.size());
    for (std::size_t i = 0; i < futs.size(); ++i) {
        SimResult res = futs[i].get();
        res.config = cfg.name;
        res.cacheHit = hits[i] ? "memory" : "computed";
        results.push_back(std::move(res));
    }
    if (show_progress) {
        pool.setProgress(nullptr);
        console.update(pool.progress());
        console.finish();
    }
    bool first = true;
    for (const auto &res : results) {
        if (!first)
            std::cout << "\n";
        first = false;
        res.dump(std::cout);
    }
    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        fatal_if(!os, "cannot open '%s'", stats_json.c_str());
        obs::SweepProgress snap = pool.progress();
        writeStatsJson(os, "tcfill_sim", results, &snap, stats_host);
    }
    return 0;
}
