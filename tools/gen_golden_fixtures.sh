#!/usr/bin/env sh
# Regenerate the refactor-equivalence golden fixtures.
#
# The fixtures pin the deterministic tcfill-stats-v1 documents for
# three (workload, config) seed pairs. CI reruns this script after
# every change and byte-compares the output against tests/golden/ —
# any pipeline refactor must leave cycles, IPC and every other
# deterministic stat bit-identical (see DESIGN.md §10).
#
# Usage: tools/gen_golden_fixtures.sh <tcfill-binary> <output-dir>
set -eu

TCFILL=${1:?usage: gen_golden_fixtures.sh <tcfill-binary> <output-dir>}
OUT=${2:?usage: gen_golden_fixtures.sh <tcfill-binary> <output-dir>}

mkdir -p "$OUT"

"$TCFILL" -j 1 --max-insts 20000 --opts all \
    --stats-json "$OUT/compress-all.json" compress > /dev/null
"$TCFILL" -j 1 --max-insts 20000 --opts none \
    --stats-json "$OUT/li-none.json" li > /dev/null
"$TCFILL" -j 1 --max-insts 20000 --opts extended --no-inactive-issue \
    --stats-json "$OUT/m88ksim-extended-nii.json" m88ksim > /dev/null
