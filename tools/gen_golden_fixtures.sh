#!/usr/bin/env sh
# Regenerate the refactor-equivalence golden fixtures.
#
# The fixtures pin the deterministic tcfill-stats-v1 documents for
# three (workload, config) seed pairs. CI reruns this script after
# every change and byte-compares the output against tests/golden/ —
# any pipeline refactor must leave cycles, IPC and every other
# deterministic stat bit-identical (see DESIGN.md §10).
#
# Usage: tools/gen_golden_fixtures.sh <tcfill-binary> <output-dir>
set -eu

TCFILL=${1:?usage: gen_golden_fixtures.sh <tcfill-binary> <output-dir>}
OUT=${2:?usage: gen_golden_fixtures.sh <tcfill-binary> <output-dir>}

mkdir -p "$OUT"

"$TCFILL" -j 1 --max-insts 20000 --opts all \
    --stats-json "$OUT/compress-all.json" compress > /dev/null
"$TCFILL" -j 1 --max-insts 20000 --opts none \
    --stats-json "$OUT/li-none.json" li > /dev/null
"$TCFILL" -j 1 --max-insts 20000 --opts extended --no-inactive-issue \
    --stats-json "$OUT/m88ksim-extended-nii.json" m88ksim > /dev/null

# Sampled-run estimate (checkpoint-parallel engine, DESIGN.md §14).
# The body is independent of --sample-jobs and of the checkpoint knobs
# (asserted in CI's sample-determinism job), so one fixture pins the
# whole engine.
"$TCFILL" --max-insts 200000 --opts all \
    --sample 4:10000 --sample-warmup 5000 --sample-jobs 1 \
    --stats-json "$OUT/compress-sample.json" compress > /dev/null

# Interval timeline with BBV phase tagging (DESIGN.md §15): pins the
# timing-counter column set, the interval boundary convention and the
# deterministic k-means phase labels in one document.
"$TCFILL" -j 1 --max-insts 20000 --opts all \
    --stats-interval 5000 --stats-phases 3 \
    --stats-json "$OUT/compress-timeline.json" compress > /dev/null

# Adaptive fill policy (DESIGN.md §16): pins the policy decision
# record (windows, switches, per-phase masks), the per-interval
# passMask timeline column and the online phase tracker's labels.
"$TCFILL" -j 1 --max-insts 20000 --opts all --fill-policy phase \
    --stats-interval 5000 \
    --stats-json "$OUT/compress-policy-phase.json" compress > /dev/null
