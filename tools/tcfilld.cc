/**
 * @file
 * tcfilld: the simulation-as-a-service daemon. Listens on a
 * Unix-domain socket for tcfill-svc-v1 sweep requests (see
 * tools/tcfill_client.cc and DESIGN.md §17), dedupes every requested
 * point against a persistent content-addressed result store, and
 * schedules misses onto a set of forked shard worker processes, each
 * running its own SimRunner pool.
 *
 * Usage:
 *   tcfilld --socket PATH [options]
 *   tcfilld --store-dir DIR --compact
 *
 * Options:
 *   --socket PATH          Unix-domain socket to listen on (required
 *                          unless --compact)
 *   --store-dir DIR        persistent result store directory; omit to
 *                          run with shard memory caches only
 *   --max-store-bytes N    evict least-recently-used results once the
 *                          live key+value bytes exceed N (0 = never)
 *   --shards N             shard worker processes (default 1)
 *   --shard-threads N      SimRunner threads per shard (default: all
 *                          cores; TCFILL_THREADS also honored)
 *   --compact              offline: rewrite the store log down to its
 *                          live entries, print stats, and exit
 *   --help, -h             this text
 *
 * SIGINT/SIGTERM shut the daemon down cleanly: shards drain, the
 * socket is unlinked, and the `service.` counter group is dumped to
 * stderr.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "service/daemon.hh"
#include "service/store.hh"

using namespace tcfill;

namespace
{

service::Daemon *g_daemon = nullptr;

void
onSignal(int)
{
    if (g_daemon)
        g_daemon->requestShutdown();
}

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: tcfilld --socket PATH [--store-dir DIR]\n"
        "               [--max-store-bytes N] [--shards N]\n"
        "               [--shard-threads N]\n"
        "       tcfilld --store-dir DIR --compact\n"
        "run `tcfilld --help` for option descriptions\n";
    std::exit(2);
}

[[noreturn]] void
help()
{
    std::cout <<
        "usage: tcfilld --socket PATH [options]\n"
        "\n"
        "  --socket PATH          Unix-domain socket to listen on\n"
        "  --store-dir DIR        persistent result store directory\n"
        "                         (omit for memory-only operation)\n"
        "  --max-store-bytes N    LRU-evict stored results once live\n"
        "                         key+value bytes exceed N (0 = never)\n"
        "  --shards N             shard worker processes (default 1)\n"
        "  --shard-threads N      SimRunner threads per shard\n"
        "                         (default: all cores)\n"
        "  --compact              offline: rewrite the store log down\n"
        "                         to its live entries and exit\n"
        "                         (requires --store-dir)\n";
    std::exit(0);
}

int
compactStore(const service::DaemonOptions &opts)
{
    fatal_if(opts.storeDir.empty(), "--compact requires --store-dir");
    service::ResultStore store(opts.storeDir, opts.maxStoreBytes);
    std::string err;
    fatal_if(!store.load(err), "%s", err.c_str());
    std::uint64_t before = store.stats().logBytes;
    fatal_if(!store.compact(err), "%s", err.c_str());
    service::StoreStats s = store.stats();
    std::printf("%s: %llu live records, %llu -> %llu log bytes\n",
                store.path().c_str(),
                static_cast<unsigned long long>(s.liveRecords),
                static_cast<unsigned long long>(before),
                static_cast<unsigned long long>(s.logBytes));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    service::DaemonOptions opts;
    bool compact = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            help();
        } else if (arg == "--socket") {
            opts.socketPath = next();
        } else if (arg == "--store-dir") {
            opts.storeDir = next();
        } else if (arg == "--max-store-bytes") {
            opts.maxStoreBytes = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--shards") {
            opts.shards = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
            fatal_if(opts.shards == 0, "--shards must be >= 1");
        } else if (arg == "--shard-threads") {
            opts.shardThreads = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--compact") {
            compact = true;
        } else {
            usage();
        }
    }

    if (compact)
        return compactStore(opts);
    if (opts.socketPath.empty())
        usage();

    service::Daemon daemon(opts);
    std::string err;
    fatal_if(!daemon.start(err), "%s", err.c_str());
    g_daemon = &daemon;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    inform("tcfilld: listening on %s (%u shard%s%s%s)",
           opts.socketPath.c_str(), opts.shards,
           opts.shards == 1 ? "" : "s",
           opts.storeDir.empty() ? "" : ", store ",
           opts.storeDir.c_str());
    daemon.serve();
    g_daemon = nullptr;
    daemon.dumpStats(std::cerr);
    inform("tcfilld: shut down");
    return 0;
}
