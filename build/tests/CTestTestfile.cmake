# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitfield[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_bpred[1]_include.cmake")
include("/root/repo/build/tests/test_tcache[1]_include.cmake")
include("/root/repo/build/tests/test_fill[1]_include.cmake")
include("/root/repo/build/tests/test_passes[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
