# Empty dependencies file for test_tcache.
# This may be replaced when dependencies are built.
