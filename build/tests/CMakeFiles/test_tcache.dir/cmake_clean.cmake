file(REMOVE_RECURSE
  "CMakeFiles/test_tcache.dir/test_tcache.cc.o"
  "CMakeFiles/test_tcache.dir/test_tcache.cc.o.d"
  "test_tcache"
  "test_tcache.pdb"
  "test_tcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
