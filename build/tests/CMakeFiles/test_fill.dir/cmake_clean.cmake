file(REMOVE_RECURSE
  "CMakeFiles/test_fill.dir/test_fill.cc.o"
  "CMakeFiles/test_fill.dir/test_fill.cc.o.d"
  "test_fill"
  "test_fill.pdb"
  "test_fill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
