# Empty compiler generated dependencies file for diag_sweep.
# This may be replaced when dependencies are built.
