file(REMOVE_RECURSE
  "CMakeFiles/diag_sweep.dir/diag_sweep.cc.o"
  "CMakeFiles/diag_sweep.dir/diag_sweep.cc.o.d"
  "diag_sweep"
  "diag_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
