# Empty compiler generated dependencies file for abl_dead_code.
# This may be replaced when dependencies are built.
