file(REMOVE_RECURSE
  "CMakeFiles/abl_dead_code.dir/abl_dead_code.cc.o"
  "CMakeFiles/abl_dead_code.dir/abl_dead_code.cc.o.d"
  "abl_dead_code"
  "abl_dead_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dead_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
