# Empty compiler generated dependencies file for abl_fill_latency.
# This may be replaced when dependencies are built.
