file(REMOVE_RECURSE
  "CMakeFiles/abl_fill_latency.dir/abl_fill_latency.cc.o"
  "CMakeFiles/abl_fill_latency.dir/abl_fill_latency.cc.o.d"
  "abl_fill_latency"
  "abl_fill_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fill_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
