# Empty compiler generated dependencies file for fig5_scaled_adds.
# This may be replaced when dependencies are built.
