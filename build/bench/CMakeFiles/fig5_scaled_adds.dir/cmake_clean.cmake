file(REMOVE_RECURSE
  "CMakeFiles/fig5_scaled_adds.dir/fig5_scaled_adds.cc.o"
  "CMakeFiles/fig5_scaled_adds.dir/fig5_scaled_adds.cc.o.d"
  "fig5_scaled_adds"
  "fig5_scaled_adds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scaled_adds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
