# Empty compiler generated dependencies file for fig8_combined.
# This may be replaced when dependencies are built.
