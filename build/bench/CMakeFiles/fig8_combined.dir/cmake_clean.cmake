file(REMOVE_RECURSE
  "CMakeFiles/fig8_combined.dir/fig8_combined.cc.o"
  "CMakeFiles/fig8_combined.dir/fig8_combined.cc.o.d"
  "fig8_combined"
  "fig8_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
