# Empty compiler generated dependencies file for abl_inactive_issue.
# This may be replaced when dependencies are built.
