file(REMOVE_RECURSE
  "CMakeFiles/abl_inactive_issue.dir/abl_inactive_issue.cc.o"
  "CMakeFiles/abl_inactive_issue.dir/abl_inactive_issue.cc.o.d"
  "abl_inactive_issue"
  "abl_inactive_issue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_inactive_issue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
