file(REMOVE_RECURSE
  "CMakeFiles/fig7_bypass_delay.dir/fig7_bypass_delay.cc.o"
  "CMakeFiles/fig7_bypass_delay.dir/fig7_bypass_delay.cc.o.d"
  "fig7_bypass_delay"
  "fig7_bypass_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bypass_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
