# Empty compiler generated dependencies file for fig7_bypass_delay.
# This may be replaced when dependencies are built.
