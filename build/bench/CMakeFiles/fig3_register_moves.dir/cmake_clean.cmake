file(REMOVE_RECURSE
  "CMakeFiles/fig3_register_moves.dir/fig3_register_moves.cc.o"
  "CMakeFiles/fig3_register_moves.dir/fig3_register_moves.cc.o.d"
  "fig3_register_moves"
  "fig3_register_moves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_register_moves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
