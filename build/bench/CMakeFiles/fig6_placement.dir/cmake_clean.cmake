file(REMOVE_RECURSE
  "CMakeFiles/fig6_placement.dir/fig6_placement.cc.o"
  "CMakeFiles/fig6_placement.dir/fig6_placement.cc.o.d"
  "fig6_placement"
  "fig6_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
