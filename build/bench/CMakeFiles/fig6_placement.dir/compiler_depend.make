# Empty compiler generated dependencies file for fig6_placement.
# This may be replaced when dependencies are built.
