# Empty compiler generated dependencies file for abl_reassoc_scope.
# This may be replaced when dependencies are built.
