file(REMOVE_RECURSE
  "CMakeFiles/abl_reassoc_scope.dir/abl_reassoc_scope.cc.o"
  "CMakeFiles/abl_reassoc_scope.dir/abl_reassoc_scope.cc.o.d"
  "abl_reassoc_scope"
  "abl_reassoc_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reassoc_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
