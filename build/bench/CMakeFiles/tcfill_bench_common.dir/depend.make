# Empty dependencies file for tcfill_bench_common.
# This may be replaced when dependencies are built.
