file(REMOVE_RECURSE
  "libtcfill_bench_common.a"
)
