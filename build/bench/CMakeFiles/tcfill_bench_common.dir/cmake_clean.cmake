file(REMOVE_RECURSE
  "CMakeFiles/tcfill_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/tcfill_bench_common.dir/bench_common.cc.o.d"
  "libtcfill_bench_common.a"
  "libtcfill_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
