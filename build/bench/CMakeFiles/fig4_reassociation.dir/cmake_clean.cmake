file(REMOVE_RECURSE
  "CMakeFiles/fig4_reassociation.dir/fig4_reassociation.cc.o"
  "CMakeFiles/fig4_reassociation.dir/fig4_reassociation.cc.o.d"
  "fig4_reassociation"
  "fig4_reassociation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_reassociation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
