# Empty dependencies file for fig4_reassociation.
# This may be replaced when dependencies are built.
