file(REMOVE_RECURSE
  "CMakeFiles/tcfill_arch.dir/executor.cc.o"
  "CMakeFiles/tcfill_arch.dir/executor.cc.o.d"
  "CMakeFiles/tcfill_arch.dir/memory.cc.o"
  "CMakeFiles/tcfill_arch.dir/memory.cc.o.d"
  "libtcfill_arch.a"
  "libtcfill_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
