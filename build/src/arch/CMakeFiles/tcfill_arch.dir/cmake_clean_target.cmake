file(REMOVE_RECURSE
  "libtcfill_arch.a"
)
