# Empty compiler generated dependencies file for tcfill_arch.
# This may be replaced when dependencies are built.
