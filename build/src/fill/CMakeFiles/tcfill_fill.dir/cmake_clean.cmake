file(REMOVE_RECURSE
  "CMakeFiles/tcfill_fill.dir/fill_unit.cc.o"
  "CMakeFiles/tcfill_fill.dir/fill_unit.cc.o.d"
  "CMakeFiles/tcfill_fill.dir/passes.cc.o"
  "CMakeFiles/tcfill_fill.dir/passes.cc.o.d"
  "libtcfill_fill.a"
  "libtcfill_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
