file(REMOVE_RECURSE
  "libtcfill_fill.a"
)
