# Empty dependencies file for tcfill_fill.
# This may be replaced when dependencies are built.
