
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fill/fill_unit.cc" "src/fill/CMakeFiles/tcfill_fill.dir/fill_unit.cc.o" "gcc" "src/fill/CMakeFiles/tcfill_fill.dir/fill_unit.cc.o.d"
  "/root/repo/src/fill/passes.cc" "src/fill/CMakeFiles/tcfill_fill.dir/passes.cc.o" "gcc" "src/fill/CMakeFiles/tcfill_fill.dir/passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/tcfill_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/tcfill_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/tcfill_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcfill_common.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/tcfill_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tcfill_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
