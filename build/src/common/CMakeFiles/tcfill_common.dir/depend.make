# Empty dependencies file for tcfill_common.
# This may be replaced when dependencies are built.
