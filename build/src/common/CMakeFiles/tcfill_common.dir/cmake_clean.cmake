file(REMOVE_RECURSE
  "CMakeFiles/tcfill_common.dir/logging.cc.o"
  "CMakeFiles/tcfill_common.dir/logging.cc.o.d"
  "CMakeFiles/tcfill_common.dir/stats.cc.o"
  "CMakeFiles/tcfill_common.dir/stats.cc.o.d"
  "CMakeFiles/tcfill_common.dir/table.cc.o"
  "CMakeFiles/tcfill_common.dir/table.cc.o.d"
  "libtcfill_common.a"
  "libtcfill_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
