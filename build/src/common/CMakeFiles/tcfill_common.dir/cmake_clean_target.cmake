file(REMOVE_RECURSE
  "libtcfill_common.a"
)
