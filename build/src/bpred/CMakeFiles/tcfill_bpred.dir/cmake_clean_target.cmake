file(REMOVE_RECURSE
  "libtcfill_bpred.a"
)
