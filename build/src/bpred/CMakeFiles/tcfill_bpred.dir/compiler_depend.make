# Empty compiler generated dependencies file for tcfill_bpred.
# This may be replaced when dependencies are built.
