file(REMOVE_RECURSE
  "CMakeFiles/tcfill_bpred.dir/predictor.cc.o"
  "CMakeFiles/tcfill_bpred.dir/predictor.cc.o.d"
  "libtcfill_bpred.a"
  "libtcfill_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
