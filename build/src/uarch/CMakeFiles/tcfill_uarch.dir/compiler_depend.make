# Empty compiler generated dependencies file for tcfill_uarch.
# This may be replaced when dependencies are built.
