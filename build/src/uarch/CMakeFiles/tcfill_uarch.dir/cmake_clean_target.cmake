file(REMOVE_RECURSE
  "libtcfill_uarch.a"
)
