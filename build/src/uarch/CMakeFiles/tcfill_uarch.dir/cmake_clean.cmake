file(REMOVE_RECURSE
  "CMakeFiles/tcfill_uarch.dir/exec_core.cc.o"
  "CMakeFiles/tcfill_uarch.dir/exec_core.cc.o.d"
  "CMakeFiles/tcfill_uarch.dir/rename.cc.o"
  "CMakeFiles/tcfill_uarch.dir/rename.cc.o.d"
  "libtcfill_uarch.a"
  "libtcfill_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
