# Empty dependencies file for tcfill_workloads.
# This may be replaced when dependencies are built.
