file(REMOVE_RECURSE
  "libtcfill_workloads.a"
)
