
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/k_chess.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_chess.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_chess.cc.o.d"
  "/root/repo/src/workloads/k_compress.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_compress.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_compress.cc.o.d"
  "/root/repo/src/workloads/k_gcc.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_gcc.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_gcc.cc.o.d"
  "/root/repo/src/workloads/k_ghostscript.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_ghostscript.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_ghostscript.cc.o.d"
  "/root/repo/src/workloads/k_gnuplot.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_gnuplot.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_gnuplot.cc.o.d"
  "/root/repo/src/workloads/k_go.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_go.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_go.cc.o.d"
  "/root/repo/src/workloads/k_ijpeg.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_ijpeg.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_ijpeg.cc.o.d"
  "/root/repo/src/workloads/k_li.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_li.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_li.cc.o.d"
  "/root/repo/src/workloads/k_m88ksim.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_m88ksim.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_m88ksim.cc.o.d"
  "/root/repo/src/workloads/k_perl.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_perl.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_perl.cc.o.d"
  "/root/repo/src/workloads/k_pgp.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_pgp.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_pgp.cc.o.d"
  "/root/repo/src/workloads/k_python.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_python.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_python.cc.o.d"
  "/root/repo/src/workloads/k_sim_outorder.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_sim_outorder.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_sim_outorder.cc.o.d"
  "/root/repo/src/workloads/k_tex.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_tex.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_tex.cc.o.d"
  "/root/repo/src/workloads/k_vortex.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_vortex.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/k_vortex.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/tcfill_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/tcfill_workloads.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/tcfill_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcfill_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tcfill_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
