# Empty compiler generated dependencies file for tcfill_trace.
# This may be replaced when dependencies are built.
