file(REMOVE_RECURSE
  "CMakeFiles/tcfill_trace.dir/tcache.cc.o"
  "CMakeFiles/tcfill_trace.dir/tcache.cc.o.d"
  "libtcfill_trace.a"
  "libtcfill_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
