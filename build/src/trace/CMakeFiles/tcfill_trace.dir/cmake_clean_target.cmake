file(REMOVE_RECURSE
  "libtcfill_trace.a"
)
