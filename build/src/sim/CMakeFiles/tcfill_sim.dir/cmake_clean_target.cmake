file(REMOVE_RECURSE
  "libtcfill_sim.a"
)
