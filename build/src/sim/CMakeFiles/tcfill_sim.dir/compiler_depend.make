# Empty compiler generated dependencies file for tcfill_sim.
# This may be replaced when dependencies are built.
