file(REMOVE_RECURSE
  "CMakeFiles/tcfill_sim.dir/processor.cc.o"
  "CMakeFiles/tcfill_sim.dir/processor.cc.o.d"
  "CMakeFiles/tcfill_sim.dir/result.cc.o"
  "CMakeFiles/tcfill_sim.dir/result.cc.o.d"
  "libtcfill_sim.a"
  "libtcfill_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
