file(REMOVE_RECURSE
  "libtcfill_isa.a"
)
