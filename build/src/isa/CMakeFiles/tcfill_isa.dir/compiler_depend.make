# Empty compiler generated dependencies file for tcfill_isa.
# This may be replaced when dependencies are built.
