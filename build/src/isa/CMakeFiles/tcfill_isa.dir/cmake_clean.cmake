file(REMOVE_RECURSE
  "CMakeFiles/tcfill_isa.dir/instruction.cc.o"
  "CMakeFiles/tcfill_isa.dir/instruction.cc.o.d"
  "CMakeFiles/tcfill_isa.dir/opcodes.cc.o"
  "CMakeFiles/tcfill_isa.dir/opcodes.cc.o.d"
  "libtcfill_isa.a"
  "libtcfill_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
