# Empty compiler generated dependencies file for tcfill_asm.
# This may be replaced when dependencies are built.
