file(REMOVE_RECURSE
  "CMakeFiles/tcfill_asm.dir/builder.cc.o"
  "CMakeFiles/tcfill_asm.dir/builder.cc.o.d"
  "libtcfill_asm.a"
  "libtcfill_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
