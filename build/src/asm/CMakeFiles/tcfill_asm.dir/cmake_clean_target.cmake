file(REMOVE_RECURSE
  "libtcfill_asm.a"
)
