file(REMOVE_RECURSE
  "CMakeFiles/tcfill_mem.dir/cache.cc.o"
  "CMakeFiles/tcfill_mem.dir/cache.cc.o.d"
  "libtcfill_mem.a"
  "libtcfill_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
