file(REMOVE_RECURSE
  "libtcfill_mem.a"
)
