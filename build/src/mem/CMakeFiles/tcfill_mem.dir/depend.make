# Empty dependencies file for tcfill_mem.
# This may be replaced when dependencies are built.
