# Empty compiler generated dependencies file for tcfill.
# This may be replaced when dependencies are built.
