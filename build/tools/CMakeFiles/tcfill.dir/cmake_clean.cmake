file(REMOVE_RECURSE
  "CMakeFiles/tcfill.dir/tcfill_sim.cc.o"
  "CMakeFiles/tcfill.dir/tcfill_sim.cc.o.d"
  "tcfill"
  "tcfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
