/**
 * @file
 * Fill-policy overhead benchmark (google-benchmark): simulator
 * throughput with each pass-selection policy against the static
 * configuration. Guards the policy seam's cost contract (DESIGN.md
 * §16): with --fill-policy=static the hot loop gains only a cached
 * boolean test per retire (the golden fixtures already pin that the
 * *simulated* machine is untouched), and the adaptive policies'
 * machinery — per-retire signal delivery, the online BBV tracker and
 * window closing — must stay within a few percent.
 *
 * `--check-overhead` runs an interleaved A/B of static vs a
 * uniform-map oracle (the heaviest always-on machinery: signals +
 * tracker, while provably simulating the identical machine) and exits
 * non-zero past the gate; it also fails if the uniform oracle
 * perturbs retired/cycles, re-asserting the seam identity the tests
 * pin. CI's perf-smoke job calls this form, because an interleaved
 * ratio is robust to absolute host-speed variance.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "fill/policy.hh"

using namespace tcfill;
using namespace tcfill::bench;

namespace
{

constexpr InstSeqNum kBenchInsts = 50'000;
constexpr InstSeqNum kWindow = 10'000;

SimConfig
policyConfig(FillPolicyKind kind, const std::string &oracle_map = "")
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.maxInsts = kBenchInsts;
    cfg.fill.policy.kind = kind;
    cfg.fill.policy.windowInsts = kWindow;
    cfg.fill.policy.oracleMap = oracle_map;
    return cfg;
}

void
recordRates(benchmark::State &state, const char *label,
            std::uint64_t insts, SimResult last)
{
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    last.config = label;
    recordResult(last);
}

void
runPolicy(benchmark::State &state, const char *label,
          const SimConfig &cfg)
{
    Program prog = workloads::build("compress", 1);
    std::uint64_t insts = 0;
    SimResult last;
    for (auto _ : state) {
        SimResult r = simulate(prog, cfg);
        insts += r.retired;
        benchmark::DoNotOptimize(r.cycles);
        last = std::move(r);
    }
    recordRates(state, label, insts, std::move(last));
}

/** The reference: the pre-policy hot path (StaticPolicy). */
void
BM_PolicyStatic(benchmark::State &state)
{
    runPolicy(state, "BM_PolicyStatic",
              policyConfig(FillPolicyKind::Static));
}

/**
 * Windowed machinery at full weight, zero decision changes: signal
 * delivery + BBV tracking + window closes, identical simulated
 * machine. The purest measure of the adaptive plumbing's cost.
 */
void
BM_PolicyOracleUniform(benchmark::State &state)
{
    runPolicy(state, "BM_PolicyOracleUniform",
              policyConfig(FillPolicyKind::Oracle,
                           "*=" + std::to_string(kPassMaskAll)));
}

/** Explore-then-exploit: tracker plus actual mask switching. */
void
BM_PolicyPhase(benchmark::State &state)
{
    runPolicy(state, "BM_PolicyPhase",
              policyConfig(FillPolicyKind::Phase));
}

/** Feedback: windowing without the tracker (cheapest adaptive). */
void
BM_PolicyFeedback(benchmark::State &state)
{
    runPolicy(state, "BM_PolicyFeedback",
              policyConfig(FillPolicyKind::Feedback));
}

// --------------------------------------------------------------------
// --check-overhead: the CI gate
// --------------------------------------------------------------------

double
medianSeconds(std::vector<double> &xs)
{
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

/**
 * Interleaved A/B: static vs uniform-map oracle medians over @p reps
 * pairs (plus one warmup pair each). The uniform oracle runs the full
 * adaptive machinery while provably simulating the identical machine,
 * so the ratio isolates the seam's cost — and any retired/cycles
 * divergence is a correctness failure, not noise.
 */
int
checkOverhead(double max_overhead)
{
    constexpr int reps = 9;
    Program prog = workloads::build("compress", 1);
    SimConfig static_cfg = policyConfig(FillPolicyKind::Static);
    static_cfg.maxInsts = 200'000;
    SimConfig oracle_cfg =
        policyConfig(FillPolicyKind::Oracle,
                     "*=" + std::to_string(kPassMaskAll));
    oracle_cfg.maxInsts = 200'000;

    simulate(prog, static_cfg);    // warmup (page cache, branch history)
    simulate(prog, oracle_cfg);

    std::vector<double> st, orc;
    InstSeqNum retired = 0;
    for (int i = 0; i < reps; ++i) {
        SimResult a = simulate(prog, static_cfg);
        SimResult b = simulate(prog, oracle_cfg);
        st.push_back(a.hostSeconds);
        orc.push_back(b.hostSeconds);
        retired = a.retired;
        // The seam identity: a uniform-map oracle must simulate the
        // exact machine the static configuration does.
        if (a.retired != b.retired || a.cycles != b.cycles) {
            std::fprintf(stderr,
                         "FAIL: uniform oracle perturbed the "
                         "simulation (%llu/%llu insts, %llu/%llu "
                         "cycles)\n",
                         static_cast<unsigned long long>(a.retired),
                         static_cast<unsigned long long>(b.retired),
                         static_cast<unsigned long long>(a.cycles),
                         static_cast<unsigned long long>(b.cycles));
            return 1;
        }
    }
    const double st_med = medianSeconds(st);
    const double orc_med = medianSeconds(orc);
    const double overhead = orc_med / st_med - 1.0;
    std::printf("policy overhead: static %.4fs, oracle-uniform %.4fs "
                "(%+.2f%%, gate %.0f%%) over %d x %llu insts\n",
                st_med, orc_med, overhead * 100.0,
                max_overhead * 100.0, reps,
                static_cast<unsigned long long>(retired));
    if (overhead > max_overhead) {
        std::printf("policy overhead FAILED: %.2f%% > %.0f%%\n",
                    overhead * 100.0, max_overhead * 100.0);
        return 1;
    }
    return 0;
}

} // namespace

BENCHMARK(BM_PolicyStatic)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyOracleUniform)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyPhase)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyFeedback)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // --check-overhead [FRAC]: run the A/B gate instead of the
    // google-benchmark rows (FRAC defaults to 0.05).
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check-overhead") == 0) {
            double gate = 0.05;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                gate = std::atof(argv[i + 1]);
            return checkOverhead(gate);
        }
    }
    tcfill::bench::Session session(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
