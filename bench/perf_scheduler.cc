/**
 * @file
 * Scheduler microbenchmarks (google-benchmark): the execution core in
 * isolation, driven with synthetic instruction streams so the cost of
 * select, wakeup propagation and squash walks is visible without the
 * rest of the pipeline around it. Every scenario runs under both
 * scheduler implementations (DESIGN.md §13) so the event-driven
 * design's advantage — and the scan oracle's cost — stay measured.
 * Not a paper figure; this guards the simulator's own usability.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench/bench_common.hh"
#include "mem/cache.hh"
#include "uarch/exec_core.hh"

using namespace tcfill;

namespace
{

/** A core with a completion-counting sink and a DynInst factory. */
struct SchedHarness
{
    explicit SchedHarness(SchedulerKind kind)
        : mem(), core(makeParams(kind), mem)
    {
        core.setCompleteHook(&SchedHarness::onComplete, this);
    }

    static ExecCoreParams
    makeParams(SchedulerKind kind)
    {
        ExecCoreParams p;
        p.scheduler = kind;
        return p;
    }

    static void
    onComplete(void *ctx, DynInst &)
    {
        ++static_cast<SchedHarness *>(ctx)->completed;
    }

    DynInstPtr
    makeInst(InstSeqNum seq, int fu, Op op = Op::ADD)
    {
        DynInstPtr di = allocDynInst();
        di->seq = seq;
        di->inst.op = op;
        di->inst.dest = 3;
        di->inst.src1 = 1;
        di->inst.src2 = 2;
        di->latency = opInfo(op).latency;
        di->fu = fu;
        di->numSrcs = 2;
        di->issueCycle = 0;
        return di;
    }

    std::uint64_t completed = 0;

    MemoryHierarchy mem;
    ExecCore core;
};

constexpr unsigned kFus = 16;
constexpr unsigned kRsEntries = 32;

/** Fold one microbenchmark into the bench stats session. */
void
record(benchmark::State &state, const char *label,
       std::uint64_t insts, std::uint64_t ticks)
{
    state.counters["sched_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["sched_ticks_per_s"] = benchmark::Counter(
        static_cast<double>(ticks), benchmark::Counter::kIsRate);
    SimResult r;
    r.config = label;
    r.workload = "sched-micro";
    r.retired = insts;
    r.cycles = ticks;
    bench::recordResult(r);
}

/**
 * Select throughput: fill every reservation station with independent
 * ready instructions, then tick until all have executed. One select
 * per FU per cycle — the cost per tick is pure select machinery.
 */
void
runSelect(benchmark::State &state, SchedulerKind kind,
          const char *label)
{
    std::uint64_t insts = 0;
    std::uint64_t ticks = 0;
    for (auto _ : state) {
        SchedHarness h(kind);
        std::vector<DynInstPtr> live;
        live.reserve(kFus * kRsEntries);
        InstSeqNum seq = 1;
        for (unsigned i = 0; i < kFus * kRsEntries; ++i) {
            DynInstPtr di =
                h.makeInst(seq, static_cast<int>(seq % kFus));
            ++seq;
            live.push_back(di);
            h.core.dispatch(*di);
        }
        Cycle now = 1;
        while (h.completed < live.size())
            h.core.tick(now++);
        insts += h.completed;
        ticks += now - 1;
        benchmark::DoNotOptimize(h.completed);
    }
    record(state, label, insts, ticks);
}

/**
 * Wakeup latency: one serial dependence chain threaded across the
 * FUs, so exactly one instruction becomes ready per cycle and every
 * completion must propagate to its single consumer. The event-driven
 * core touches one ready entry per tick; the scan walks every
 * occupied station.
 */
void
runChain(benchmark::State &state, SchedulerKind kind,
         const char *label)
{
    constexpr unsigned kChain = kFus * kRsEntries / 2;
    std::uint64_t insts = 0;
    std::uint64_t ticks = 0;
    for (auto _ : state) {
        SchedHarness h(kind);
        std::vector<DynInstPtr> live;
        live.reserve(kChain);
        for (unsigned i = 0; i < kChain; ++i) {
            DynInstPtr di =
                h.makeInst(i + 1, static_cast<int>(i % kFus));
            if (i > 0)
                di->src[0].producer = live.back();
            live.push_back(di);
            h.core.dispatch(*di);
        }
        Cycle now = 1;
        while (h.completed < live.size())
            h.core.tick(now++);
        insts += h.completed;
        ticks += now - 1;
        benchmark::DoNotOptimize(h.completed);
    }
    record(state, label, insts, ticks);
}

/**
 * Squash cost: fill the stations with instructions blocked on a
 * producer that never issues, then squash in eight waves from
 * youngest to oldest — the recovery pattern a mispredict storm
 * produces. Measures the station/ready-queue removal walks.
 */
void
runSquash(benchmark::State &state, SchedulerKind kind,
          const char *label)
{
    constexpr unsigned kWaves = 8;
    std::uint64_t insts = 0;
    std::uint64_t ticks = 0;
    for (auto _ : state) {
        SchedHarness h(kind);
        DynInstPtr never = h.makeInst(1, 0);
        never->issueCycle = kNoCycle;    // blocks all consumers
        std::vector<DynInstPtr> live;
        live.reserve(kFus * kRsEntries);
        InstSeqNum seq = 2;
        for (unsigned i = 0; i < kFus * kRsEntries; ++i) {
            DynInstPtr di =
                h.makeInst(seq, static_cast<int>(seq % kFus));
            ++seq;
            di->src[0].producer = never;
            live.push_back(di);
            h.core.dispatch(*di);
        }
        const InstSeqNum lo = 2;
        const InstSeqNum span = seq - lo;
        for (unsigned w = kWaves; w > 0; --w) {
            h.core.squashRange(lo + span * (w - 1) / kWaves, seq);
            ++ticks;
        }
        insts += live.size();
        benchmark::DoNotOptimize(h.core.occupancy());
    }
    record(state, label, insts, ticks);
}

void
BM_SchedSelect_Wakeup(benchmark::State &state)
{
    runSelect(state, SchedulerKind::Wakeup, "BM_SchedSelect/wakeup");
}

void
BM_SchedSelect_Scan(benchmark::State &state)
{
    runSelect(state, SchedulerKind::Scan, "BM_SchedSelect/scan");
}

void
BM_SchedChain_Wakeup(benchmark::State &state)
{
    runChain(state, SchedulerKind::Wakeup, "BM_SchedChain/wakeup");
}

void
BM_SchedChain_Scan(benchmark::State &state)
{
    runChain(state, SchedulerKind::Scan, "BM_SchedChain/scan");
}

void
BM_SchedSquash_Wakeup(benchmark::State &state)
{
    runSquash(state, SchedulerKind::Wakeup, "BM_SchedSquash/wakeup");
}

void
BM_SchedSquash_Scan(benchmark::State &state)
{
    runSquash(state, SchedulerKind::Scan, "BM_SchedSquash/scan");
}

} // namespace

BENCHMARK(BM_SchedSelect_Wakeup)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchedSelect_Scan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchedChain_Wakeup)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchedChain_Scan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchedSquash_Wakeup)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchedSquash_Scan)->Unit(benchmark::kMicrosecond);

// BENCHMARK_MAIN() rejects argv it does not recognize, so the Session
// must strip the shared observability flags (--stats-json, --progress)
// before google-benchmark parses the command line.
int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
