/**
 * @file
 * Figure 3 reproduction: IPC improvement from executing fill-unit-
 * marked register moves in the rename logic (paper: ~5% mean, moves
 * ~6% of the dynamic stream).
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Figure 3: register-move marking "
                 "(paper mean: +5%; move idioms ~6% of stream)\n\n";
    FillOptimizations mv;
    mv.markMoves = true;
    prefetchSuite({baselineConfig(), optConfig(mv)});

    TextTable t({"benchmark", "base IPC", "move IPC", "gain",
                 "marked", "idioms"});
    double log_sum = 0.0;
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, baselineConfig());
        SimResult opt = run(w, optConfig(mv));
        t.addRow({w.shortName, TextTable::num(base.ipc(), 3),
                  TextTable::num(opt.ipc(), 3),
                  pctGain(base.ipc(), opt.ipc()),
                  TextTable::pct(opt.fracMoves(), 1),
                  TextTable::pct(opt.fracMoveIdioms(), 1)});
        log_sum += std::log(opt.ipc() / base.ipc());
        ++n;
    }
    t.addRow({"geo.mean", "", "",
              pctGain(1.0, std::exp(log_sum / n)), "", ""});
    t.print(std::cout);
    return 0;
}
