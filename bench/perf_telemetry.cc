/**
 * @file
 * Telemetry-overhead benchmark (google-benchmark): simulator
 * throughput with each PR-7 observability feature attached — interval
 * timeline collection (with and without BBV phase tagging), the
 * Chrome trace-event exporter and the host self-profiler — against
 * the same machine with telemetry off. Not a paper figure; this
 * guards the subsystem's "observational means cheap" contract: with
 * telemetry off the hot loop is untouched (a null check per retire),
 * and with the timeline on the overhead must stay under 3%.
 *
 * Besides the google-benchmark rows, `--check-overhead` runs a
 * self-contained interleaved A/B measurement and exits non-zero when
 * the timeline-on median overhead exceeds the gate — this is what the
 * CI perf-smoke job calls, because it is robust to absolute
 * host-speed variance in a way a pinned throughput floor is not.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "bench/bench_common.hh"
#include "obs/host_prof.hh"
#include "obs/trace_events.hh"

using namespace tcfill;
using namespace tcfill::bench;

namespace
{

constexpr InstSeqNum kBenchInsts = 50'000;
constexpr InstSeqNum kTimelineInterval = 5'000;

SimConfig
benchConfig()
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.maxInsts = kBenchInsts;
    return cfg;
}

void
recordRates(benchmark::State &state, const char *label,
            std::uint64_t insts, SimResult last)
{
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    last.config = label;
    recordResult(last);
}

/** The reference: same machine, same workload, telemetry off. */
void
BM_TelemetryOff(benchmark::State &state)
{
    Program prog = workloads::build("compress", 1);
    const SimConfig cfg = benchConfig();
    std::uint64_t insts = 0;
    SimResult last;
    for (auto _ : state) {
        SimResult r = simulate(prog, cfg);
        insts += r.retired;
        benchmark::DoNotOptimize(r.cycles);
        last = std::move(r);
    }
    recordRates(state, "BM_TelemetryOff", insts, std::move(last));
}

/** Timeline collection: per-retire bookkeeping + interval snapshots. */
void
BM_TimelineOn(benchmark::State &state)
{
    Program prog = workloads::build("compress", 1);
    SimConfig cfg = benchConfig();
    cfg.statsInterval = kTimelineInterval;
    std::uint64_t insts = 0;
    SimResult last;
    for (auto _ : state) {
        SimResult r = simulate(prog, cfg);
        insts += r.retired;
        benchmark::DoNotOptimize(r.timeline->intervals.size());
        last = std::move(r);
    }
    recordRates(state, "BM_TimelineOn", insts, std::move(last));
}

/** Timeline + BBV phase tagging (per-retire block tracking + k-means). */
void
BM_TimelinePhases(benchmark::State &state)
{
    Program prog = workloads::build("compress", 1);
    SimConfig cfg = benchConfig();
    cfg.statsInterval = kTimelineInterval;
    cfg.statsPhases = 4;
    std::uint64_t insts = 0;
    SimResult last;
    for (auto _ : state) {
        SimResult r = simulate(prog, cfg);
        insts += r.retired;
        benchmark::DoNotOptimize(r.timeline->intervals.size());
        last = std::move(r);
    }
    recordRates(state, "BM_TimelinePhases", insts, std::move(last));
}

/**
 * Host self-profiler: six scoped steady_clock reads per simulated
 * cycle. Much heavier than the timeline by design — it exists for
 * one-off diagnosis runs, not sweeps — but its cost should stay on
 * the record.
 */
void
BM_HostProfiler(benchmark::State &state)
{
    Program prog = workloads::build("compress", 1);
    const SimConfig cfg = benchConfig();
    std::uint64_t insts = 0;
    SimResult last;
    for (auto _ : state) {
        obs::HostProfiler prof;
        Processor proc(prog, cfg);
        proc.setHostProfiler(&prof);
        SimResult r = proc.run();
        insts += r.retired;
        benchmark::DoNotOptimize(prof.rows().size());
        last = std::move(r);
    }
    recordRates(state, "BM_HostProfiler", insts, std::move(last));
}

/**
 * Trace-event export into a memory sink: full per-instruction span
 * rendering and JSON serialization. Heavy by nature (it writes ~5
 * events per instruction); tracked so the exporter's cost per
 * instruction stays visible.
 */
void
BM_TraceEventExport(benchmark::State &state)
{
    Program prog = workloads::build("compress", 1);
    SimConfig cfg = benchConfig();
    cfg.maxInsts = 10'000;    // the sink grows ~200 bytes/inst
    std::uint64_t insts = 0;
    SimResult last;
    for (auto _ : state) {
        std::ostringstream sink;
        obs::TraceEventWriter w(sink);
        obs::TraceEventTracer tracer(w);
        Processor proc(prog, cfg);
        proc.setTracer(&tracer);
        SimResult r = proc.run();
        tracer.finish();
        w.close();
        insts += r.retired;
        benchmark::DoNotOptimize(sink.str().size());
        last = std::move(r);
    }
    recordRates(state, "BM_TraceEventExport", insts, std::move(last));
}

// --------------------------------------------------------------------
// --check-overhead: the CI gate
// --------------------------------------------------------------------

double
medianSeconds(std::vector<double> &xs)
{
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

/**
 * Interleaved A/B: timeline-on vs telemetry-off medians over
 * @p reps pairs (plus one warmup pair each). Interleaving and the
 * median make the ratio robust to host-speed drift within the run.
 */
int
checkOverhead(double max_overhead)
{
    constexpr int reps = 9;
    Program prog = workloads::build("compress", 1);
    SimConfig off_cfg = benchConfig();
    off_cfg.maxInsts = 200'000;
    SimConfig on_cfg = off_cfg;
    on_cfg.statsInterval = kTimelineInterval;

    simulate(prog, off_cfg);    // warmup (page cache, branch history)
    simulate(prog, on_cfg);

    std::vector<double> off, on;
    InstSeqNum retired_off = 0, retired_on = 0;
    for (int i = 0; i < reps; ++i) {
        SimResult a = simulate(prog, off_cfg);
        SimResult b = simulate(prog, on_cfg);
        off.push_back(a.hostSeconds);
        on.push_back(b.hostSeconds);
        retired_off = a.retired;
        retired_on = b.retired;
        // Telemetry must never change the simulation itself.
        if (a.retired != b.retired || a.cycles != b.cycles) {
            std::fprintf(stderr,
                         "FAIL: timeline perturbed the simulation "
                         "(%llu/%llu insts, %llu/%llu cycles)\n",
                         static_cast<unsigned long long>(a.retired),
                         static_cast<unsigned long long>(b.retired),
                         static_cast<unsigned long long>(a.cycles),
                         static_cast<unsigned long long>(b.cycles));
            return 1;
        }
    }
    const double off_med = medianSeconds(off);
    const double on_med = medianSeconds(on);
    const double overhead = on_med / off_med - 1.0;
    std::printf("telemetry overhead: off %.4fs, timeline-on %.4fs "
                "(%+.2f%%, gate %.0f%%) over %d x %llu insts\n",
                off_med, on_med, overhead * 100.0,
                max_overhead * 100.0, reps,
                static_cast<unsigned long long>(retired_off));
    (void)retired_on;
    if (overhead > max_overhead) {
        std::printf("telemetry overhead FAILED: %.2f%% > %.0f%%\n",
                    overhead * 100.0, max_overhead * 100.0);
        return 1;
    }
    return 0;
}

} // namespace

BENCHMARK(BM_TelemetryOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TimelineOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TimelinePhases)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HostProfiler)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceEventExport)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // --check-overhead [FRAC]: run the A/B gate instead of the
    // google-benchmark rows (FRAC defaults to 0.03).
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check-overhead") == 0) {
            double gate = 0.03;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                gate = std::atof(argv[i + 1]);
            return checkOverhead(gate);
        }
    }
    tcfill::bench::Session session(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
