/**
 * @file
 * Host-performance benchmark (google-benchmark) for the tracefile
 * subsystem: trace encode/decode throughput, the timing-run overhead
 * of recording, replay throughput against a live run, and the BBV
 * profiling + simpoint selection cost. Guards the record-once /
 * replay-many workflow's usability, not a paper figure.
 */

#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "arch/executor.hh"
#include "bench/bench_common.hh"
#include "tracefile/bbv.hh"
#include "tracefile/replay.hh"
#include "tracefile/sample.hh"
#include "tracefile/trace_io.hh"

using namespace tcfill;
using namespace tcfill::bench;
using namespace tcfill::tracefile;

namespace
{

constexpr InstSeqNum kBenchInsts = 50'000;

SimConfig
benchConfig()
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.maxInsts = kBenchInsts;
    return cfg;
}

/** Capture one timing run's committed stream as trace bytes. */
std::string
captureBytes(const Program &prog, const SimConfig &cfg)
{
    std::ostringstream os;
    TraceMeta meta;
    meta.workload = prog.name;
    meta.config = cfg.name;
    meta.entryPc = prog.entry;
    meta.maxInsts = cfg.maxInsts;
    Executor exec(prog);
    TraceWriter writer(os, meta);
    RecordingSource source(exec, writer);
    Processor proc(source, prog.name, prog.entry, cfg);
    proc.run();
    writer.finish();
    return os.str();
}

/** Functional execution feeding the varint encoder, no pipeline. */
void
BM_TraceEncode(benchmark::State &state)
{
    const Program prog = workloads::build("compress", 1);
    std::uint64_t insts = 0;
    std::size_t bytes = 0;
    for (auto _ : state) {
        std::ostringstream os;
        TraceMeta meta;
        meta.workload = prog.name;
        meta.entryPc = prog.entry;
        meta.maxInsts = kBenchInsts;
        Executor exec(prog);
        TraceWriter writer(os, meta);
        while (!exec.halted() && writer.records() < kBenchInsts)
            writer.append(exec.step());
        writer.finish();
        insts += writer.records();
        bytes += os.str().size();
    }
    state.counters["encode_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["bytes_per_record"] =
        insts ? static_cast<double>(bytes) / insts : 0.0;
}

/** Decode a pre-encoded trace back into ExecRecords. */
void
BM_TraceDecode(benchmark::State &state)
{
    const Program prog = workloads::build("compress", 1);
    const std::string bytes = captureBytes(prog, benchConfig());
    std::uint64_t insts = 0;
    for (auto _ : state) {
        std::istringstream is(bytes);
        TraceReader reader(is);
        ExecRecord rec;
        while (reader.next(rec) == ReadStatus::Ok)
            benchmark::DoNotOptimize(rec.nextPc);
        insts += reader.records();
    }
    state.counters["decode_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

/** Full timing run with the recording tee on the commit stream. */
void
BM_RecordedTimingRun(benchmark::State &state)
{
    const Program prog = workloads::build("compress", 1);
    const SimConfig cfg = benchConfig();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        std::ostringstream os;
        TraceMeta meta;
        meta.workload = prog.name;
        meta.entryPc = prog.entry;
        meta.maxInsts = cfg.maxInsts;
        Executor exec(prog);
        TraceWriter writer(os, meta);
        RecordingSource source(exec, writer);
        Processor proc(source, prog.name, prog.entry, cfg);
        SimResult r = proc.run();
        writer.finish();
        insts += r.retired;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

/** Timing run fed from trace bytes instead of the functional model. */
void
BM_ReplayTimingRun(benchmark::State &state)
{
    const Program prog = workloads::build("compress", 1);
    const SimConfig cfg = benchConfig();
    const std::string bytes = captureBytes(prog, cfg);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        std::istringstream is(bytes);
        ReplayExecutor source(is, "<bench>");
        Processor proc(source, source.meta().workload,
                       source.meta().entryPc, cfg);
        SimResult r = proc.run();
        insts += r.retired;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

/** Functional-only BBV profiling (the --bbv path). */
void
BM_BbvProfile(benchmark::State &state)
{
    const Program prog = workloads::build("compress", 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        Executor exec(prog);
        std::vector<BbvInterval> ivs =
            profileBbv(exec, 10'000, kBenchInsts);
        benchmark::DoNotOptimize(ivs.size());
        insts += exec.instCount();
    }
    state.counters["profile_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

/** K-means simpoint selection over a pre-profiled BBV. */
void
BM_SimpointSelect(benchmark::State &state)
{
    const Program prog = workloads::build("compress", 1);
    Executor exec(prog);
    const std::vector<BbvInterval> ivs =
        profileBbv(exec, 2'000, kBenchInsts);
    for (auto _ : state) {
        std::vector<Simpoint> pts = selectSimpoints(ivs, 8);
        benchmark::DoNotOptimize(pts.size());
    }
    state.counters["intervals"] = static_cast<double>(ivs.size());
}

} // namespace

BENCHMARK(BM_TraceEncode)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RecordedTimingRun)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReplayTimingRun)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BbvProfile)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimpointSelect)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
