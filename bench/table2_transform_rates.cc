/**
 * @file
 * Table 2 reproduction: percentage of correct-path instructions to
 * which each fill-unit transformation was applied (paper mean: ~13%
 * total; m88ksim and chess above 20%).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Table 2: fraction of retired instructions "
                 "transformed (paper mean ~13%)\n\n";
    prefetchSuite({optConfig(FillOptimizations::all())});

    TextTable t({"benchmark", "reg moves", "reassoc", "scaled adds",
                 "total"});
    double sums[4] = {0, 0, 0, 0};
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult r = run(w, optConfig(FillOptimizations::all()));
        t.addRow({w.shortName, TextTable::pct(r.fracMoves(), 1),
                  TextTable::pct(r.fracReassoc(), 1),
                  TextTable::pct(r.fracScaled(), 1),
                  TextTable::pct(r.fracTransformed(), 1)});
        sums[0] += r.fracMoves();
        sums[1] += r.fracReassoc();
        sums[2] += r.fracScaled();
        sums[3] += r.fracTransformed();
        ++n;
    }
    t.addRow({"mean", TextTable::pct(sums[0] / n, 1),
              TextTable::pct(sums[1] / n, 1),
              TextTable::pct(sums[2] / n, 1),
              TextTable::pct(sums[3] / n, 1)});
    t.print(std::cout);
    return 0;
}
