/**
 * @file
 * Ablation: reassociation scope. The paper restricts reassociation to
 * pairs crossing a control-flow boundary (to isolate what a compiler
 * cannot do) and reports that lifting the restriction adds no
 * significant gain; this bench measures both scopes.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Ablation: reassociation cross-block-only vs "
                 "unrestricted (paper: no significant difference)\n\n";
    FillOptimizations cross;
    cross.reassociate = true;
    FillOptimizations any = cross;
    any.reassocOptions.crossBlockOnly = false;
    prefetchSuite({baselineConfig(), optConfig(cross), optConfig(any)});

    TextTable t({"benchmark", "base IPC", "cross-block", "unrestricted"});
    double ls_cross = 0.0, ls_any = 0.0;
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, baselineConfig());
        SimResult rc = run(w, optConfig(cross));
        SimResult ra = run(w, optConfig(any));
        t.addRow({w.shortName, TextTable::num(base.ipc(), 3),
                  pctGain(base.ipc(), rc.ipc()),
                  pctGain(base.ipc(), ra.ipc())});
        ls_cross += std::log(rc.ipc() / base.ipc());
        ls_any += std::log(ra.ipc() / base.ipc());
        ++n;
    }
    t.addRow({"geo.mean", "", pctGain(1.0, std::exp(ls_cross / n)),
              pctGain(1.0, std::exp(ls_any / n))});
    t.print(std::cout);
    return 0;
}
