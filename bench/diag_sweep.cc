/**
 * @file
 * Development diagnostic: per-optimization IPC sweep over the suite
 * (the union of figures 3, 4, 5, 6 and 8 in one run), with dynamic
 * transformation rates. Used to tune the reproduction; the per-figure
 * benches print the publication-layout tables.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    TextTable table({"benchmark", "base", "+mov", "+rea", "+sca",
                     "+plc", "all", "mov%", "rea%", "sca%", "byp0",
                     "byp1", "tc%", "bp%"});

    FillOptimizations mv;
    mv.markMoves = true;
    FillOptimizations re;
    re.reassociate = true;
    FillOptimizations sc;
    sc.scaledAdds = true;
    FillOptimizations pl;
    pl.placement = true;

    prefetchSuite({baselineConfig(), optConfig(mv), optConfig(re),
                   optConfig(sc), optConfig(pl),
                   optConfig(FillOptimizations::all())});

    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, baselineConfig());
        SimResult rmv = run(w, optConfig(mv));
        SimResult rre = run(w, optConfig(re));
        SimResult rsc = run(w, optConfig(sc));
        SimResult rpl = run(w, optConfig(pl));
        SimResult all = run(w, optConfig(FillOptimizations::all()));
        table.addRow({w.shortName, TextTable::num(base.ipc(), 2),
                      pctGain(base.ipc(), rmv.ipc()),
                      pctGain(base.ipc(), rre.ipc()),
                      pctGain(base.ipc(), rsc.ipc()),
                      pctGain(base.ipc(), rpl.ipc()),
                      pctGain(base.ipc(), all.ipc()),
                      TextTable::pct(all.fracMoves(), 1),
                      TextTable::pct(all.fracReassoc(), 1),
                      TextTable::pct(all.fracScaled(), 1),
                      TextTable::pct(base.fracBypassDelayed(), 0),
                      TextTable::pct(rpl.fracBypassDelayed(), 0),
                      TextTable::pct(base.tcHitRate(), 0),
                      TextTable::pct(base.bpredAccuracy, 0)});
        table.print(std::cout);
        std::cout.flush();
    }
    return 0;
}
