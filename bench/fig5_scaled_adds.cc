/**
 * @file
 * Figure 5 reproduction: IPC improvement from scaled-add creation
 * (paper: +1% to +8%, mean +3.7%).
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Figure 5: scaled adds (paper: +1-8%, mean +3.7%)\n\n";
    FillOptimizations sc;
    sc.scaledAdds = true;
    prefetchSuite({baselineConfig(), optConfig(sc)});

    TextTable t({"benchmark", "base IPC", "scaled IPC", "gain",
                 "insts scaled"});
    double log_sum = 0.0;
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, baselineConfig());
        SimResult opt = run(w, optConfig(sc));
        t.addRow({w.shortName, TextTable::num(base.ipc(), 3),
                  TextTable::num(opt.ipc(), 3),
                  pctGain(base.ipc(), opt.ipc()),
                  TextTable::pct(opt.fracScaled(), 1)});
        log_sum += std::log(opt.ipc() / base.ipc());
        ++n;
    }
    t.addRow({"geo.mean", "", "",
              pctGain(1.0, std::exp(log_sum / n)), ""});
    t.print(std::cout);
    return 0;
}
