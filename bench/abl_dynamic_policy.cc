/**
 * @file
 * Dynamic pass-selection ablation (DESIGN.md §16): whole-run IPC of
 * the adaptive fill policies against the best static configuration,
 * per workload. Not a paper figure — the paper evaluates its four
 * optimizations as fixed whole-run settings; this asks whether
 * choosing the pass set per program phase buys anything on top.
 *
 * Series per workload (all over the paper's four optimizations):
 *   none         uniform-oracle "*=none"  (== static none)
 *   static-best  best of the four candidate masks run uniformly
 *                (uniform-oracle runs are cycle-identical to static,
 *                which the test suite and CI pin)
 *   phase        online per-phase explore-then-exploit
 *   feedback     window-IPC feedback with hysteresis
 *   oracle       per-phase best map composed from the uniform runs'
 *                per-phase accounting, then replayed
 *
 * The oracle column bounds what phase-adaptive selection could win;
 * the phase/feedback columns show what the online policies actually
 * get, including their exploration and one-window-lag costs.
 *
 * --smoke: compress only (the CI policy-equivalence job's quick row).
 */

#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "common/table.hh"
#include "fill/policy.hh"

using namespace tcfill;
using namespace tcfill::bench;

namespace
{

constexpr InstSeqNum kWindow = 10'000;

SimConfig
uniformCfg(PassMask mask)
{
    SimConfig cfg = optConfig(FillOptimizations::all());
    cfg.name = "uniform-" + passMaskName(mask);
    cfg.fill.policy.kind = FillPolicyKind::Oracle;
    cfg.fill.policy.windowInsts = kWindow;
    cfg.fill.policy.oracleMap = "*=" + std::to_string(mask);
    return cfg;
}

SimConfig
adaptiveCfg(FillPolicyKind kind, const std::string &oracle_map = "")
{
    SimConfig cfg = optConfig(FillOptimizations::all());
    cfg.name = fillPolicyKindName(kind);
    cfg.fill.policy.kind = kind;
    cfg.fill.policy.windowInsts = kWindow;
    cfg.fill.policy.oracleMap = oracle_map;
    return cfg;
}

/** Per-phase (insts, cycles) rows of one uniform-mask run. */
struct UniformSeries
{
    PassMask mask;
    SimResult res;
};

/**
 * Compose the per-phase best map: for every online phase id, the
 * uniform mask with the highest per-phase IPC. Valid because the
 * phase tracker labels depend only on the committed stream, which is
 * identical across the uniform runs.
 */
std::string
composeBestMap(const std::vector<UniformSeries> &uniform,
               PassMask fallback)
{
    std::map<int, std::pair<PassMask, double>> best;
    for (const UniformSeries &s : uniform) {
        if (!s.res.policy)
            continue;
        for (const PolicyPhaseStat &ph : s.res.policy->phases) {
            if (ph.phase < 0 || ph.cycles == 0)
                continue;
            const double ipc = static_cast<double>(ph.insts) /
                               static_cast<double>(ph.cycles);
            auto it = best.find(ph.phase);
            if (it == best.end() || ipc > it->second.second)
                best[ph.phase] = {s.mask, ipc};
        }
    }
    std::string map;
    for (const auto &[phase, mb] : best)
        map += std::to_string(phase) + "=" +
               std::to_string(mb.first) + ",";
    map += "*=" + std::to_string(fallback);
    return map;
}

} // namespace

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    const std::vector<PassMask> candidates =
        policyCandidateMasks(kPassMaskAll);

    std::cout << "Dynamic fill-policy ablation: adaptive pass "
                 "selection vs the best static mask\n"
              << "(window " << kWindow << " insts, candidates:";
    for (PassMask m : candidates)
        std::cout << ' ' << passMaskName(m);
    std::cout << ")\n\n";

    if (!smoke) {
        std::vector<SimConfig> warm;
        for (PassMask m : candidates)
            warm.push_back(uniformCfg(m));
        warm.push_back(adaptiveCfg(FillPolicyKind::Phase));
        warm.push_back(adaptiveCfg(FillPolicyKind::Feedback));
        prefetchSuite(warm);
    }

    TextTable t({"benchmark", "none", "static-best", "mask", "phase",
                 "feedback", "oracle"});
    TextTable maps({"benchmark", "phases", "composed best map"});
    double log_phase = 0.0, log_feedback = 0.0, log_oracle = 0.0;
    unsigned n = 0;

    for (const auto &w : workloads::suite()) {
        // Uniform candidate runs: the static series plus the
        // per-phase accounting the composed map is built from.
        std::vector<UniformSeries> uniform;
        for (PassMask m : candidates)
            uniform.push_back({m, run(w, uniformCfg(m))});

        const UniformSeries *none = &uniform[0];
        const UniformSeries *stat = &uniform[0];
        for (const UniformSeries &s : uniform) {
            if (s.mask == kPassMaskNone)
                none = &s;
            if (s.res.ipc() > stat->res.ipc())
                stat = &s;
        }

        const std::string map = composeBestMap(uniform, stat->mask);
        SimResult oracle =
            run(w, adaptiveCfg(FillPolicyKind::Oracle, map));
        SimResult phase = run(w, adaptiveCfg(FillPolicyKind::Phase));
        SimResult feedback =
            run(w, adaptiveCfg(FillPolicyKind::Feedback));

        const double base = stat->res.ipc();
        t.addRow({w.shortName, TextTable::num(none->res.ipc(), 3),
                  TextTable::num(base, 3), passMaskName(stat->mask),
                  pctGain(base, phase.ipc()),
                  pctGain(base, feedback.ipc()),
                  pctGain(base, oracle.ipc())});
        maps.addRow({w.shortName,
                     std::to_string(oracle.policy
                                        ? oracle.policy->phasesSeen
                                        : 0),
                     map});
        log_phase += std::log(phase.ipc() / base);
        log_feedback += std::log(feedback.ipc() / base);
        log_oracle += std::log(oracle.ipc() / base);
        ++n;

        if (smoke)
            break;
    }

    t.addRow({"geo.mean", "", "", "",
              pctGain(1.0, std::exp(log_phase / n)),
              pctGain(1.0, std::exp(log_feedback / n)),
              pctGain(1.0, std::exp(log_oracle / n))});
    t.print(std::cout);
    std::cout << "\nComposed per-phase maps (phase id = online BBV "
                 "label; masks are pass-bit values):\n";
    maps.print(std::cout);
    std::cout << "\nDeltas are vs static-best. 'oracle' replays the "
                 "composed map and bounds per-phase selection;\n"
                 "'phase'/'feedback' are the online policies, "
                 "including exploration and one-window lag.\n";
    return 0;
}
