#include "bench/bench_common.hh"

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hh"

namespace tcfill::bench
{

SimConfig
baselineConfig()
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::none());
    cfg.name = "baseline";
    cfg.maxInsts = kRunInsts;
    return cfg;
}

SimConfig
optConfig(const FillOptimizations &opts, Cycle fill_latency)
{
    SimConfig cfg = SimConfig::withOpts(opts, fill_latency);
    cfg.name = "optimized";
    cfg.maxInsts = kRunInsts;
    return cfg;
}

SimRunner &
runner()
{
    return SimRunner::shared();
}

SimResult
run(const workloads::Workload &w, SimConfig cfg)
{
    return runner().run(w.name, cfg, kScale);
}

std::shared_future<SimResult>
runAsync(const workloads::Workload &w, SimConfig cfg)
{
    return runner().submit(w.name, cfg, kScale);
}

void
prefetchSuite(const std::vector<SimConfig> &cfgs)
{
    for (const auto &w : workloads::suite()) {
        for (const auto &cfg : cfgs)
            runner().submit(w.name, cfg, kScale);
    }
}

std::string
pctGain(double base_ipc, double opt_ipc)
{
    double pct = base_ipc > 0.0
        ? (opt_ipc / base_ipc - 1.0) * 100.0
        : 0.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
    return buf;
}

void
compareSweep(const std::string &title, const SimConfig &variant,
             double *geo_out)
{
    // Enqueue the whole sweep up front; the loop below then collects
    // (mostly cache-hit) results in print order.
    prefetchSuite({baselineConfig(), variant});

    std::cout << "\n### " << title << "\n\n";
    TextTable table({"benchmark", "base IPC", "opt IPC", "gain"});
    double log_sum = 0.0;
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, baselineConfig());
        SimResult opt = run(w, variant);
        table.addRow({w.shortName, TextTable::num(base.ipc(), 3),
                      TextTable::num(opt.ipc(), 3),
                      pctGain(base.ipc(), opt.ipc())});
        if (base.ipc() > 0 && opt.ipc() > 0) {
            log_sum += std::log(opt.ipc() / base.ipc());
            ++n;
        }
    }
    double geo = n ? std::exp(log_sum / n) : 1.0;
    table.addRow({"geo.mean", "", "", pctGain(1.0, geo)});
    table.print(std::cout);
    if (geo_out)
        *geo_out = geo;
}

} // namespace tcfill::bench
