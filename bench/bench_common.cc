#include "bench/bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>

#include "common/logging.hh"
#include "common/table.hh"
#include "obs/progress.hh"
#include "sim/stats_io.hh"

namespace tcfill::bench
{

SimConfig
baselineConfig()
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::none());
    cfg.name = "baseline";
    cfg.maxInsts = kRunInsts;
    return cfg;
}

SimConfig
optConfig(const FillOptimizations &opts, Cycle fill_latency)
{
    SimConfig cfg = SimConfig::withOpts(opts, fill_latency);
    cfg.name = "optimized";
    cfg.maxInsts = kRunInsts;
    return cfg;
}

SimRunner &
runner()
{
    return SimRunner::shared();
}

SimResult
run(const workloads::Workload &w, SimConfig cfg)
{
    SimResult res = runner().run(w.name, cfg, kScale);
    recordResult(res);
    return res;
}

std::shared_future<SimResult>
runAsync(const workloads::Workload &w, SimConfig cfg)
{
    return runner().submit(w.name, cfg, kScale);
}

void
prefetchSuite(const std::vector<SimConfig> &cfgs)
{
    for (const auto &w : workloads::suite()) {
        for (const auto &cfg : cfgs)
            runner().submit(w.name, cfg, kScale);
    }
}

std::string
pctGain(double base_ipc, double opt_ipc)
{
    double pct = base_ipc > 0.0
        ? (opt_ipc / base_ipc - 1.0) * 100.0
        : 0.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
    return buf;
}

void
compareSweep(const std::string &title, const SimConfig &variant,
             double *geo_out)
{
    // Enqueue the whole sweep up front; the loop below then collects
    // (mostly cache-hit) results in print order.
    prefetchSuite({baselineConfig(), variant});

    std::cout << "\n### " << title << "\n\n";
    TextTable table({"benchmark", "base IPC", "opt IPC", "gain"});
    double log_sum = 0.0;
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, baselineConfig());
        SimResult opt = run(w, variant);
        table.addRow({w.shortName, TextTable::num(base.ipc(), 3),
                      TextTable::num(opt.ipc(), 3),
                      pctGain(base.ipc(), opt.ipc())});
        if (base.ipc() > 0 && opt.ipc() > 0) {
            log_sum += std::log(opt.ipc() / base.ipc());
            ++n;
        }
    }
    double geo = n ? std::exp(log_sum / n) : 1.0;
    table.addRow({"geo.mean", "", "", pctGain(1.0, geo)});
    table.print(std::cout);
    if (geo_out)
        *geo_out = geo;
}

// --------------------------------------------------------------------
// Observability session
// --------------------------------------------------------------------

namespace
{

struct SessionState
{
    std::mutex mu;
    std::string statsJson;
    std::string generator;
    bool progress = false;
    std::vector<SimResult> results;
    std::unique_ptr<obs::ConsoleProgress> console;
};

SessionState *g_session = nullptr;

} // namespace

Session::Session(int &argc, char **argv)
{
    panic_if(g_session, "only one bench::Session may be active");
    auto st = std::make_unique<SessionState>();

    st->generator = argc > 0 ? argv[0] : "bench";
    std::size_t slash = st->generator.find_last_of('/');
    if (slash != std::string::npos)
        st->generator.erase(0, slash + 1);

    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--stats-json=", 0) == 0) {
            st->statsJson = arg.substr(std::strlen("--stats-json="));
        } else if (arg == "--stats-json" && i + 1 < argc) {
            st->statsJson = argv[++i];
        } else if (arg == "--progress") {
            st->progress = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;

    if (st->statsJson.empty()) {
        if (const char *env = std::getenv("TCFILL_STATS_JSON"))
            st->statsJson = env;
    }
    if (!st->progress) {
        if (const char *env = std::getenv("TCFILL_PROGRESS"))
            st->progress = env[0] != '\0' && env[0] != '0';
    }

    if (st->progress) {
        st->console = std::make_unique<obs::ConsoleProgress>(
            std::cerr, st->generator);
        obs::ConsoleProgress *console = st->console.get();
        runner().setProgress(
            [console](const obs::SweepProgress &p) { (*console)(p); });
    }
    g_session = st.release();
}

Session::~Session()
{
    SessionState *st = g_session;
    g_session = nullptr;
    if (st->console) {
        runner().setProgress(nullptr);
        st->console->update(runner().progress());
        st->console->finish();
    }
    if (!st->statsJson.empty()) {
        std::ofstream os(st->statsJson);
        if (!os) {
            warn("cannot open '%s': stats JSON not written",
                 st->statsJson.c_str());
        } else {
            obs::SweepProgress snap = runner().progress();
            writeStatsJson(os, st->generator, st->results, &snap,
                           /*include_host=*/true);
        }
    }
    delete st;
}

void
recordResult(const SimResult &res)
{
    if (!g_session)
        return;
    std::lock_guard<std::mutex> lk(g_session->mu);
    g_session->results.push_back(res);
}

} // namespace tcfill::bench
