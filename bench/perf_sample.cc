/**
 * @file
 * Host-performance benchmark (google-benchmark) for the sampled-run
 * engine: the checkpoint-parallel runSampled against the serial
 * re-execute reference it replaced, isolation variants that toggle one
 * ingredient at a time (checkpoints off, pool off), and the raw
 * fast-forward interpreter against the virtual CommitSource step path
 * it bypasses. The sim_insts_per_s counters feed the CI perf-smoke
 * gate (tools/check_stats_json.py --compare-perf vs
 * BENCH_baseline.json); the sampled benchmarks report the *estimated*
 * run's instruction count per wall second, i.e. "how many full-run
 * instructions does one host second of sampling buy you", so the
 * runSampled / runSampledReference ratio is exactly the end-to-end
 * speedup claimed in DESIGN.md section 14.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "arch/executor.hh"
#include "bench/bench_common.hh"
#include "tracefile/sample.hh"
#include "workloads/suite.hh"

using namespace tcfill;
using namespace tcfill::bench;
using namespace tcfill::tracefile;

namespace
{

// Full-length workload for the end-to-end sampled benchmarks: long
// enough (compress @ scale 8 = ~5.2M insts) that the reference's
// re-executed prefixes dominate its wall clock, which is the regime
// sampling exists for. Small interval/warmup keep the timed fraction
// representative of full-length sampling of real workloads, where
// warmup + interval << run length; k = 16 simpoints and a capture
// stride of 8 match that geometry (one checkpoint every ~16K insts,
// so residual fast-forwards stay tiny next to restore cost).
constexpr const char *kWorkload = "compress";
constexpr unsigned kScale = 8;

SampleSpec
benchSpec()
{
    SampleSpec spec;
    spec.k = 16;
    spec.interval = 2'000;
    spec.warmup = 2'000;
    spec.checkpointStride = 8;
    return spec;
}

SimConfig
benchConfig()
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.maxInsts = 0; // full run
    return cfg;
}

/** Report an estimated-insts-per-host-second rate for a sampled run. */
void
reportSampleRate(benchmark::State &state, std::uint64_t est_insts)
{
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(est_insts), benchmark::Counter::kIsRate);
}

/** Pre-checkpointing serial baseline: re-execute every prefix. */
void
BM_SampledReference(benchmark::State &state)
{
    const SimConfig cfg = benchConfig();
    const SampleSpec spec = benchSpec();
    std::uint64_t est = 0;
    for (auto _ : state) {
        SimResult r = runSampledReference(kWorkload, kScale, cfg, spec);
        benchmark::DoNotOptimize(r.cycles);
        est += r.retired;
    }
    reportSampleRate(state, est);
}

/** The shipping path: checkpoints + probe + pooled measurement. */
void
BM_SampledRun(benchmark::State &state)
{
    const SimConfig cfg = benchConfig();
    const SampleSpec spec = benchSpec();
    std::uint64_t est = 0;
    for (auto _ : state) {
        SimResult r = runSampled(kWorkload, kScale, cfg, spec);
        benchmark::DoNotOptimize(r.cycles);
        est += r.retired;
    }
    reportSampleRate(state, est);
}

/** Checkpoints + probe with the pool pinned to one worker. */
void
BM_SampledSerialCheckpoint(benchmark::State &state)
{
    const SimConfig cfg = benchConfig();
    SampleSpec spec = benchSpec();
    spec.jobs = 1;
    std::uint64_t est = 0;
    for (auto _ : state) {
        SimResult r = runSampled(kWorkload, kScale, cfg, spec);
        benchmark::DoNotOptimize(r.cycles);
        est += r.retired;
    }
    state.counters["sample_insts_per_s"] = benchmark::Counter(
        static_cast<double>(est), benchmark::Counter::kIsRate);
}

/** Pool + probe but re-execute prefixes instead of restoring. */
void
BM_SampledPooledReexec(benchmark::State &state)
{
    const SimConfig cfg = benchConfig();
    SampleSpec spec = benchSpec();
    spec.useCheckpoints = false;
    std::uint64_t est = 0;
    for (auto _ : state) {
        SimResult r = runSampled(kWorkload, kScale, cfg, spec);
        benchmark::DoNotOptimize(r.cycles);
        est += r.retired;
    }
    state.counters["sample_insts_per_s"] = benchmark::Counter(
        static_cast<double>(est), benchmark::Counter::kIsRate);
}

// The fast-forward microbenchmarks run compress @ scale 1 (~636K
// insts) to completion so both paths execute the identical committed
// stream.

/** Functional execution through the virtual step()/ExecRecord path. */
void
BM_FunctionalStep(benchmark::State &state)
{
    const Program prog = workloads::build(kWorkload, 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        Executor exec(prog);
        CommitSource &src = exec; // the dispatch the profiler used to pay
        while (!src.halted()) {
            ExecRecord rec = src.step();
            benchmark::DoNotOptimize(rec.nextPc);
        }
        insts += exec.instCount();
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

/** The same stream through the predecoded record-free fast path. */
void
BM_FastForward(benchmark::State &state)
{
    const Program prog = workloads::build(kWorkload, 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        Executor exec(prog);
        insts += exec.fastForward(~InstSeqNum(0));
        benchmark::DoNotOptimize(exec.state().pc);
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_SampledReference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SampledRun)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SampledSerialCheckpoint)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SampledPooledReexec)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FunctionalStep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FastForward)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
