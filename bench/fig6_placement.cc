/**
 * @file
 * Figure 6 reproduction: IPC improvement from fill-unit instruction
 * placement onto execution clusters (paper: mean +5%, up to +11%).
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Figure 6: instruction placement "
                 "(paper: mean +5%, max +11%)\n\n";
    FillOptimizations pl;
    pl.placement = true;
    prefetchSuite({baselineConfig(), optConfig(pl)});

    TextTable t({"benchmark", "base IPC", "placed IPC", "gain"});
    double log_sum = 0.0;
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, baselineConfig());
        SimResult opt = run(w, optConfig(pl));
        t.addRow({w.shortName, TextTable::num(base.ipc(), 3),
                  TextTable::num(opt.ipc(), 3),
                  pctGain(base.ipc(), opt.ipc())});
        log_sum += std::log(opt.ipc() / base.ipc());
        ++n;
    }
    t.addRow({"geo.mean", "", "",
              pctGain(1.0, std::exp(log_sum / n))});
    t.print(std::cout);
    return 0;
}
