/**
 * @file
 * Extension ablation (paper §5 future work): same-region dead-write
 * elision on top of the four evaluated optimizations. The paper
 * speculates dead-code elimination "may yield further improvements"
 * given recovery safeguards; the same-region form needs none.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Extension: +dead-write elision over the paper's "
                 "four optimizations\n\n";
    prefetchSuite({optConfig(FillOptimizations::all()),
                   optConfig(FillOptimizations::extended())});

    TextTable t({"benchmark", "4 opts IPC", "+DCE IPC", "delta",
                 "insts elided"});
    double log_sum = 0.0;
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, optConfig(FillOptimizations::all()));
        SimResult ext =
            run(w, optConfig(FillOptimizations::extended()));
        t.addRow({w.shortName, TextTable::num(base.ipc(), 3),
                  TextTable::num(ext.ipc(), 3),
                  pctGain(base.ipc(), ext.ipc()),
                  TextTable::pct(ext.fracElided(), 2)});
        log_sum += std::log(ext.ipc() / base.ipc());
        ++n;
    }
    t.addRow({"geo.mean", "", "",
              pctGain(1.0, std::exp(log_sum / n)), ""});
    t.print(std::cout);
    return 0;
}
