/**
 * @file
 * Host-performance benchmark for the simulation service (DESIGN.md
 * §17): boots an in-process tcfilld Daemon on a throwaway socket +
 * store, ships one 32-point sweep cold (every point simulated) and
 * then the identical sweep warm (every point served from the
 * persistent store), and reports both as sim-insts-per-host-second
 * rates plus per-point hit-path latency percentiles.
 *
 * This is NOT a google-benchmark binary: the cold measurement is
 * only cold once per store, so the usual keep-iterating-until-stable
 * loop would measure the warm path 99% of the time. Instead the cold
 * sweep is timed exactly once against a fresh store and the warm
 * sweep is repeated --warm-reps times; --out still writes a
 * google-benchmark-shaped --benchmark_out document so the BM_* rows
 * feed the same CI perf gate as the real benchmark binaries
 * (tools/check_stats_json.py --compare-perf vs BENCH_baseline.json).
 *
 * The committed BENCH_baseline.json rows pin the warm/cold split the
 * service shipped with; --min-speedup additionally gates the ratio
 * directly (the acceptance bar is warm >= 10x cold).
 *
 * Usage:
 *   perf_service [--out FILE] [--warm-reps N] [--min-speedup X]
 *                [--max-insts N] [--shards N] [--keep]
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/logging.hh"
#include "obs/json.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "sim/config.hh"

using namespace tcfill;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * The 32-config geometry: {compress, li} x 8 optimization specs x
 * fill latency {1, 5}. Small instruction budget per point — the cold
 * path's cost is the simulations, the warm path's cost is framing +
 * store reads, and the ratio between them is what this benchmark
 * exists to measure.
 */
std::vector<service::ServiceClient::Point>
sweepPoints(std::uint64_t max_insts)
{
    static const char *kWorkloads[] = {"compress", "li"};
    struct OptSpec
    {
        const char *name;
        FillOptimizations opts;
    };
    const OptSpec kSpecs[] = {
        {"none", FillOptimizations::none()},
        {"moves", [] {
             FillOptimizations o;
             o.markMoves = true;
             return o;
         }()},
        {"reassoc", [] {
             FillOptimizations o;
             o.reassociate = true;
             return o;
         }()},
        {"scaled", [] {
             FillOptimizations o;
             o.scaledAdds = true;
             return o;
         }()},
        {"placement", [] {
             FillOptimizations o;
             o.placement = true;
             return o;
         }()},
        {"dce", [] {
             FillOptimizations o;
             o.deadCodeElim = true;
             return o;
         }()},
        {"all", FillOptimizations::all()},
        {"extended", FillOptimizations::extended()},
    };

    std::vector<service::ServiceClient::Point> points;
    for (const char *w : kWorkloads) {
        for (const OptSpec &spec : kSpecs) {
            for (Cycle lat : {Cycle(1), Cycle(5)}) {
                service::ServiceClient::Point p;
                p.workload = w;
                p.scale = 1;
                SimConfig cfg = SimConfig::withOpts(spec.opts, lat);
                cfg.name = std::string("opts=") + spec.name +
                           "+lat=" + std::to_string(lat);
                cfg.maxInsts = max_insts;
                p.config = cfg;
                points.push_back(std::move(p));
            }
        }
    }
    return points;
}

struct SweepTiming
{
    double seconds = 0;
    std::uint64_t simInsts = 0;
    service::ServiceClient::SweepSummary summary;
};

SweepTiming
timedSweep(service::ServiceClient &client,
           const std::vector<service::ServiceClient::Point> &points)
{
    std::vector<SimResult> results;
    SweepTiming t;
    std::string err;
    Clock::time_point t0 = Clock::now();
    fatal_if(!client.sweep(points, results, t.summary, err),
             "sweep failed: %s", err.c_str());
    t.seconds = secondsSince(t0);
    for (const SimResult &r : results)
        t.simInsts += r.retired;
    return t;
}

/** One google-benchmark-shaped row for --compare-perf. */
struct BenchRow
{
    std::string name;
    double seconds = 0;
    double rate = 0;
};

void
writeBenchOut(const std::string &path,
              const std::vector<BenchRow> &rows)
{
    std::ofstream os(path);
    fatal_if(!os, "cannot open '%s'", path.c_str());
    obs::JsonWriter w(os);
    w.beginObject();
    w.beginObject("context");
    w.field("executable", "perf_service");
    w.endObject();
    w.beginArray("benchmarks");
    for (const BenchRow &row : rows) {
        w.beginObject();
        w.field("name", row.name);
        w.field("run_name", row.name);
        w.field("run_type", "iteration");
        w.field("iterations", std::uint64_t(1));
        w.field("real_time", row.seconds * 1e3);
        w.field("cpu_time", row.seconds * 1e3);
        w.field("time_unit", "ms");
        w.field("sim_insts_per_s", row.rate);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.finish();
}

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: perf_service [--out FILE] [--warm-reps N]\n"
        "                    [--min-speedup X] [--max-insts N]\n"
        "                    [--shards N] [--keep]\n"
        "  --out FILE        google-benchmark-shaped JSON for the CI\n"
        "                    perf gate (BM_ServiceCold/BM_ServiceWarm)\n"
        "  --warm-reps N     warm-sweep repetitions (default 5)\n"
        "  --min-speedup X   exit 1 unless warm rate >= X * cold rate\n"
        "  --max-insts N     per-point instruction budget (default\n"
        "                    20000)\n"
        "  --shards N        shard worker processes (default 2)\n"
        "  --keep            keep the scratch socket/store directory\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    unsigned warm_reps = 5;
    double min_speedup = 0;
    std::uint64_t max_insts = 20'000;
    unsigned shards = 2;
    bool keep = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--out") {
            out_path = next();
        } else if (arg == "--warm-reps") {
            warm_reps = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
            fatal_if(warm_reps == 0, "--warm-reps must be >= 1");
        } else if (arg == "--min-speedup") {
            min_speedup = std::strtod(next(), nullptr);
        } else if (arg == "--max-insts") {
            max_insts = std::strtoull(next(), nullptr, 10);
            fatal_if(max_insts == 0, "--max-insts must be >= 1");
        } else if (arg == "--shards") {
            shards = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
            fatal_if(shards == 0, "--shards must be >= 1");
        } else if (arg == "--keep") {
            keep = true;
        } else {
            usage();
        }
    }

    char scratch[] = "/tmp/tcfill_perf_service_XXXXXX";
    fatal_if(!mkdtemp(scratch), "mkdtemp: %s", std::strerror(errno));
    const std::string dir = scratch;

    service::DaemonOptions opts;
    opts.socketPath = dir + "/sock";
    opts.storeDir = dir + "/store";
    opts.shards = shards;
    opts.shardThreads = 1;

    // start() forks the shard workers, so the Daemon must boot before
    // this process creates any thread (including its own serve loop).
    service::Daemon daemon(opts);
    std::string err;
    fatal_if(!daemon.start(err), "%s", err.c_str());
    std::thread server([&daemon] { daemon.serve(); });

    int rc = 0;
    {
        service::ServiceClient client;
        fatal_if(!client.connect(opts.socketPath, err),
                 "%s", err.c_str());

        const auto points = sweepPoints(max_insts);
        const std::uint64_t n = points.size();

        // Cold: fresh store, every point simulated on a shard.
        SweepTiming cold = timedSweep(client, points);
        fatal_if(cold.summary.computed != n,
                 "cold sweep computed %llu of %llu points "
                 "(stale store?)",
                 static_cast<unsigned long long>(cold.summary.computed),
                 static_cast<unsigned long long>(n));

        // Warm: identical sweep, now 100% persistent-store hits.
        double warm_seconds = 0;
        std::uint64_t warm_insts = 0;
        for (unsigned rep = 0; rep < warm_reps; ++rep) {
            SweepTiming warm = timedSweep(client, points);
            fatal_if(warm.summary.storeHits != n,
                     "warm sweep rep %u: %llu of %llu store hits",
                     rep,
                     static_cast<unsigned long long>(
                         warm.summary.storeHits),
                     static_cast<unsigned long long>(n));
            warm_seconds += warm.seconds;
            warm_insts += warm.simInsts;
        }

        // Hit-path latency: one point per sweep, sequentially, so
        // each sample is a full request->store-read->reply round trip.
        std::vector<double> lat_us;
        for (const auto &p : points) {
            std::vector<service::ServiceClient::Point> one{p};
            SweepTiming t = timedSweep(client, one);
            fatal_if(t.summary.storeHits != 1,
                     "latency probe for %s/%s missed the store",
                     p.workload.c_str(), p.config.name.c_str());
            lat_us.push_back(t.seconds * 1e6);
        }
        std::sort(lat_us.begin(), lat_us.end());
        auto pct = [&lat_us](double p) {
            std::size_t i = static_cast<std::size_t>(
                p * static_cast<double>(lat_us.size() - 1));
            return lat_us[i];
        };

        const double cold_rate =
            static_cast<double>(cold.simInsts) / cold.seconds;
        const double warm_rate =
            static_cast<double>(warm_insts) / warm_seconds;
        const double speedup = warm_rate / cold_rate;

        std::printf("service perf: %llu points x %llu insts, "
                    "%u shard%s\n",
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(max_insts),
                    shards, shards == 1 ? "" : "s");
        std::printf("  cold sweep: %8.1f ms  (%.3g sim insts/s)\n",
                    cold.seconds * 1e3, cold_rate);
        std::printf("  warm sweep: %8.1f ms/rep over %u reps "
                    "(%.3g sim insts/s)\n",
                    warm_seconds * 1e3 / warm_reps, warm_reps,
                    warm_rate);
        std::printf("  warm/cold speedup: %.1fx\n", speedup);
        std::printf("  hit latency per point: p50 %.0f us, "
                    "p95 %.0f us, max %.0f us\n",
                    pct(0.50), pct(0.95), pct(1.0));

        if (!out_path.empty()) {
            std::vector<BenchRow> rows;
            rows.push_back({"BM_ServiceCold", cold.seconds, cold_rate});
            rows.push_back({"BM_ServiceWarm",
                            warm_seconds / warm_reps, warm_rate});
            writeBenchOut(out_path, rows);
            std::printf("  wrote %s\n", out_path.c_str());
        }

        if (min_speedup > 0 && speedup < min_speedup) {
            std::fprintf(stderr,
                         "FAIL: warm/cold speedup %.1fx below "
                         "--min-speedup %.1f\n",
                         speedup, min_speedup);
            rc = 1;
        }
        client.close();
    }

    daemon.requestShutdown();
    server.join();
    if (!keep) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    } else {
        std::printf("  scratch kept: %s\n", dir.c_str());
    }
    return rc;
}
