/**
 * @file
 * Ablation: inactive issue (the paper's §3 baseline feature from
 * Friendly et al. [4]): all trace-line blocks issue; those past the
 * predicted exit are kept inactive and activated if the exit branch
 * mispredicts. Measures its contribution to the baseline.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Ablation: inactive issue on (baseline) vs off\n\n";
    {
        SimConfig off = baselineConfig();
        off.inactiveIssue = false;
        prefetchSuite({off, baselineConfig()});
    }
    TextTable t({"benchmark", "IPC off", "IPC on", "gain", "rescues"});
    double log_sum = 0.0;
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimConfig off = baselineConfig();
        off.inactiveIssue = false;
        SimResult a = run(w, off);
        SimResult b = run(w, baselineConfig());
        t.addRow({w.shortName, TextTable::num(a.ipc(), 3),
                  TextTable::num(b.ipc(), 3),
                  pctGain(a.ipc(), b.ipc()),
                  std::to_string(b.inactiveRescues)});
        log_sum += std::log(b.ipc() / a.ipc());
        ++n;
    }
    t.addRow({"geo.mean", "", "", pctGain(1.0, std::exp(log_sum / n)),
              ""});
    t.print(std::cout);
    return 0;
}
