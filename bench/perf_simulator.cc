/**
 * @file
 * Host-performance benchmark (google-benchmark): simulator throughput
 * in simulated instructions per host second, per subsystem
 * configuration. Not a paper figure — this guards the simulator's own
 * usability.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"

using namespace tcfill;
using namespace tcfill::bench;

namespace
{

void
runWorkload(benchmark::State &state, const char *label,
            const char *name, FillOptimizations opts)
{
    const auto &w = workloads::find(name);
    Program prog = w.build(1);
    SimConfig cfg = SimConfig::withOpts(opts);
    cfg.maxInsts = 50'000;
    std::uint64_t insts = 0;
    double wall = 0.0;
    SimResult last;
    for (auto _ : state) {
        SimResult r = simulate(prog, cfg);
        insts += r.retired;
        wall += r.hostSeconds;
        benchmark::DoNotOptimize(r.cycles);
        last = std::move(r);
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    // SimResult's own folded-in throughput counters (per run).
    state.counters["run_wall_s"] = benchmark::Counter(
        wall, benchmark::Counter::kAvgIterations);
    state.counters["run_insts_per_s"] =
        wall > 0.0 ? static_cast<double>(insts) / wall : 0.0;
    // One record per benchmark in the session's stats JSON, labeled
    // with the benchmark name so trajectories can be diffed by key.
    last.config = label;
    recordResult(last);
}

/**
 * Whole-suite sweep through a fresh SimRunner pool each iteration
 * (fresh so the result cache cannot hide the simulation cost).
 */
void
BM_ParallelSweep(benchmark::State &state)
{
    SimConfig cfg = SimConfig::withOpts(FillOptimizations::all());
    cfg.maxInsts = 20'000;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        SimRunner pool(static_cast<unsigned>(state.range(0)));
        std::vector<std::shared_future<SimResult>> futs;
        for (const auto &w : workloads::suite())
            futs.push_back(pool.submit(w.name, cfg));
        for (auto &f : futs)
            insts += f.get().retired;
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_Baseline(benchmark::State &state)
{
    runWorkload(state, "BM_Baseline", "compress",
                FillOptimizations::none());
}

void
BM_AllOpts(benchmark::State &state)
{
    runWorkload(state, "BM_AllOpts", "compress",
                FillOptimizations::all());
}

void
BM_Interpreter(benchmark::State &state)
{
    runWorkload(state, "BM_Interpreter", "m88ksim",
                FillOptimizations::all());
}

void
BM_PointerChase(benchmark::State &state)
{
    runWorkload(state, "BM_PointerChase", "li",
                FillOptimizations::all());
}

void
BM_FunctionalOnly(benchmark::State &state)
{
    Program prog = workloads::build("compress", 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        insts += runFunctional(prog, 50'000);
    }
    state.counters["func_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_ParallelSweep)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Baseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllOpts)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Interpreter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PointerChase)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FunctionalOnly)->Unit(benchmark::kMillisecond);

// BENCHMARK_MAIN() rejects argv it does not recognize, so the Session
// must strip the shared observability flags (--stats-json, --progress)
// before google-benchmark parses the command line.
int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
