/**
 * @file
 * Host-performance benchmark (google-benchmark): simulator throughput
 * in simulated instructions per host second, per subsystem
 * configuration. Not a paper figure — this guards the simulator's own
 * usability.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"

using namespace tcfill;
using namespace tcfill::bench;

namespace
{

void
runWorkload(benchmark::State &state, const char *name,
            FillOptimizations opts)
{
    const auto &w = workloads::find(name);
    Program prog = w.build(1);
    SimConfig cfg = SimConfig::withOpts(opts);
    cfg.maxInsts = 50'000;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        SimResult r = simulate(prog, cfg);
        insts += r.retired;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_Baseline(benchmark::State &state)
{
    runWorkload(state, "compress", FillOptimizations::none());
}

void
BM_AllOpts(benchmark::State &state)
{
    runWorkload(state, "compress", FillOptimizations::all());
}

void
BM_Interpreter(benchmark::State &state)
{
    runWorkload(state, "m88ksim", FillOptimizations::all());
}

void
BM_PointerChase(benchmark::State &state)
{
    runWorkload(state, "li", FillOptimizations::all());
}

void
BM_FunctionalOnly(benchmark::State &state)
{
    Program prog = workloads::build("compress", 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        insts += runFunctional(prog, 50'000);
    }
    state.counters["func_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_Baseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllOpts)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Interpreter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PointerChase)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FunctionalOnly)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
