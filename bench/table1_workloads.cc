/**
 * @file
 * Table 1 reproduction: the benchmark suite with its instruction
 * counts and inputs (here: synthetic kernel parameters; see DESIGN.md
 * §4 for the substitution rationale).
 */

#include <iostream>

#include "arch/executor.hh"
#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Table 1: benchmarks (paper: SPECint95 + UNIX apps, "
                 "41M-500M insts;\nhere: like-named kernels at bench "
                 "scale, dynamic counts below)\n\n";
    TextTable t({"benchmark", "suite", "static", "dynamic",
                 "kernel (stands in for the paper's input set)"});
    for (const auto &w : workloads::suite()) {
        // Shared, build-once program images from the runner cache.
        auto p = runner().program(w.name, kScale);
        InstSeqNum dyn = runFunctional(*p);
        t.addRow({w.name, w.specint ? "SPECint95" : "UNIX",
                  std::to_string(p->text.size()), std::to_string(dyn),
                  w.traits});
    }
    t.print(std::cout);
    return 0;
}
