/**
 * @file
 * Ablation: fill-unit latency sensitivity (paper §1/§4.6 claim: the
 * fill pipeline is off the critical path, so even long latencies cost
 * almost nothing). Sweeps 1..20 cycles with all optimizations on.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Ablation: fill-pipeline latency sweep "
                 "(geo-mean IPC vs 1-cycle fill)\n\n";
    const Cycle lats[] = {1, 2, 5, 10, 20};

    {
        std::vector<SimConfig> cfgs;
        for (Cycle lat : lats)
            cfgs.push_back(optConfig(FillOptimizations::all(), lat));
        prefetchSuite(cfgs);
    }

    // Reference: 1-cycle fill.
    std::vector<double> ref;
    for (const auto &w : workloads::suite())
        ref.push_back(run(w, optConfig(FillOptimizations::all(), 1))
                          .ipc());

    TextTable t({"fill latency", "geo-mean IPC vs lat=1"});
    for (Cycle lat : lats) {
        double log_sum = 0.0;
        std::size_t i = 0;
        for (const auto &w : workloads::suite()) {
            double ipc =
                run(w, optConfig(FillOptimizations::all(), lat)).ipc();
            log_sum += std::log(ipc / ref[i++]);
        }
        t.addRow({std::to_string(lat),
                  pctGain(1.0, std::exp(log_sum /
                                        static_cast<double>(i)))});
    }
    t.print(std::cout);
    return 0;
}
