/**
 * @file
 * Figure 8 reproduction: IPC improvement with all four dynamic trace
 * optimizations combined, at fill-unit latencies of 1, 5 and 10
 * cycles (paper: ~+18% mean at every latency — the fill pipeline is
 * off the critical path).
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Figure 8: all optimizations combined at fill "
                 "latency 1/5/10 (paper: ~+18% mean, 13-44%)\n\n";

    prefetchSuite({baselineConfig(),
                   optConfig(FillOptimizations::all(), 1),
                   optConfig(FillOptimizations::all(), 5),
                   optConfig(FillOptimizations::all(), 10)});

    TextTable t({"benchmark", "base IPC", "lat1", "lat5", "lat10",
                 "gain@5"});
    std::array<double, 3> log_sum{};
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, baselineConfig());
        SimResult l1 =
            run(w, optConfig(FillOptimizations::all(), 1));
        SimResult l5 =
            run(w, optConfig(FillOptimizations::all(), 5));
        SimResult l10 =
            run(w, optConfig(FillOptimizations::all(), 10));
        t.addRow({w.shortName, TextTable::num(base.ipc(), 3),
                  TextTable::num(l1.ipc(), 3),
                  TextTable::num(l5.ipc(), 3),
                  TextTable::num(l10.ipc(), 3),
                  pctGain(base.ipc(), l5.ipc())});
        log_sum[0] += std::log(l1.ipc() / base.ipc());
        log_sum[1] += std::log(l5.ipc() / base.ipc());
        log_sum[2] += std::log(l10.ipc() / base.ipc());
        ++n;
    }
    t.addRow({"geo.mean", "", pctGain(1.0, std::exp(log_sum[0] / n)),
              pctGain(1.0, std::exp(log_sum[1] / n)),
              pctGain(1.0, std::exp(log_sum[2] / n)), ""});
    t.print(std::cout);
    return 0;
}
