/**
 * @file
 * Figure 4 reproduction: IPC improvement from fill-unit reassociation
 * of dependent immediates across control-flow boundaries (paper: 1-2%
 * for most benchmarks, 23% for the interpreter-style outliers).
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Figure 4: reassociation, cross-block only "
                 "(paper: +1-2% typical, +23% outliers)\n\n";
    FillOptimizations re;
    re.reassociate = true;
    prefetchSuite({baselineConfig(), optConfig(re)});

    TextTable t({"benchmark", "base IPC", "reassoc IPC", "gain",
                 "insts reassoc"});
    double log_sum = 0.0;
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, baselineConfig());
        SimResult opt = run(w, optConfig(re));
        t.addRow({w.shortName, TextTable::num(base.ipc(), 3),
                  TextTable::num(opt.ipc(), 3),
                  pctGain(base.ipc(), opt.ipc()),
                  TextTable::pct(opt.fracReassoc(), 1)});
        log_sum += std::log(opt.ipc() / base.ipc());
        ++n;
    }
    t.addRow({"geo.mean", "", "",
              pctGain(1.0, std::exp(log_sum / n)), ""});
    t.print(std::cout);
    return 0;
}
