/**
 * @file
 * Figure 7 reproduction: fraction of on-path instructions whose
 * last-arriving source value was delayed by the cross-cluster bypass
 * network, baseline vs fill-unit placement (paper: 35% -> 29% mean).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace tcfill;
using namespace tcfill::bench;

int
main(int argc, char **argv)
{
    tcfill::bench::Session session(argc, argv);
    std::cout << "Figure 7: bypass-delayed on-path instructions "
                 "(paper mean: 35% baseline -> 29% placed)\n\n";
    FillOptimizations pl;
    pl.placement = true;
    prefetchSuite({baselineConfig(), optConfig(pl)});

    TextTable t({"benchmark", "baseline", "placed", "reduction"});
    double sum_base = 0.0, sum_plc = 0.0;
    unsigned n = 0;
    for (const auto &w : workloads::suite()) {
        SimResult base = run(w, baselineConfig());
        SimResult opt = run(w, optConfig(pl));
        double b = base.fracBypassDelayed();
        double p = opt.fracBypassDelayed();
        char red[32];
        std::snprintf(red, sizeof(red), "%+.1fpp", (p - b) * 100.0);
        t.addRow({w.shortName, TextTable::pct(b, 1),
                  TextTable::pct(p, 1), red});
        sum_base += b;
        sum_plc += p;
        ++n;
    }
    char red[32];
    std::snprintf(red, sizeof(red), "%+.1fpp",
                  (sum_plc - sum_base) * 100.0 / n);
    t.addRow({"mean", TextTable::pct(sum_base / n, 1),
              TextTable::pct(sum_plc / n, 1), red});
    t.print(std::cout);
    return 0;
}
