/**
 * @file
 * Shared harness for the paper-reproduction benchmarks: standard
 * configurations, per-workload runs routed through the process-wide
 * SimRunner (parallel execution + result/program caching), and
 * paper-style table printing.
 */

#ifndef TCFILL_BENCH_COMMON_HH
#define TCFILL_BENCH_COMMON_HH

#include <future>
#include <string>
#include <vector>

#include "sim/processor.hh"
#include "sim/result.hh"
#include "sim/runner.hh"
#include "workloads/suite.hh"

namespace tcfill::bench
{

/** Instruction budget per benchmark run (keeps sweeps tractable). */
inline constexpr InstSeqNum kRunInsts = 220'000;

/** Workload scale used by all paper benches. */
inline constexpr unsigned kScale = 1;

/** The paper's baseline machine (§3), no fill-unit optimizations. */
SimConfig baselineConfig();

/** Baseline plus the given optimization set (fill latency 5). */
SimConfig optConfig(const FillOptimizations &opts,
                    Cycle fill_latency = 5);

/**
 * The process-wide simulation runner all benches share. Thread count
 * defaults to the host's cores; override with TCFILL_THREADS.
 */
SimRunner &runner();

/**
 * Run one (workload, config) pair at the standard budget. Served
 * from the SimRunner result cache; the first request per distinct
 * point simulates, every later one is a cache hit.
 */
SimResult run(const workloads::Workload &w, SimConfig cfg);

/** Enqueue one pair without waiting (same cache as run()). */
std::shared_future<SimResult>
runAsync(const workloads::Workload &w, SimConfig cfg);

/**
 * Warm the cache in parallel: enqueue every suite workload under each
 * of @p cfgs. Call once at driver start so the subsequent run() loop
 * prints results in order while the pool simulates ahead.
 */
void prefetchSuite(const std::vector<SimConfig> &cfgs);

/** Percentage string for an IPC ratio, e.g. "+17.3%". */
std::string pctGain(double base_ipc, double opt_ipc);

/**
 * Standard sweep: for each suite benchmark, run the baseline and one
 * variant, printing IPCs and the percent improvement — the layout of
 * the paper's figures 3-6 and 8. All simulations go through the
 * SimRunner cache, so the baseline column is simulated once per
 * workload per process no matter how many sweeps are printed.
 *
 * @param title printed header
 * @param variant configuration to compare against the baseline
 * @param geo_out optional: receives the geometric-mean IPC ratio
 */
void compareSweep(const std::string &title, const SimConfig &variant,
                  double *geo_out = nullptr);

/**
 * Per-driver observability session. Construct first thing in main():
 * parses and strips the shared observability flags from argv so the
 * driver's own parsing (if any) never sees them, records every result
 * bench::run() returns, and at destruction writes the stats JSON
 * (schema tcfill-stats-v1, host sections included — bench output is a
 * perf trajectory, not a determinism artifact) and finishes the
 * progress line.
 *
 * Flags / environment:
 *   --stats-json=FILE | --stats-json FILE   (env TCFILL_STATS_JSON)
 *   --progress                              (env TCFILL_PROGRESS=1)
 */
class Session
{
  public:
    /** Strips recognized flags from @p argc / @p argv in place. */
    Session(int &argc, char **argv);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;
};

/**
 * Record one result into the active Session's stats document (no-op
 * without a Session). bench::run() records automatically; drivers
 * that collect through runAsync() futures call this directly.
 */
void recordResult(const SimResult &res);

} // namespace tcfill::bench

#endif // TCFILL_BENCH_COMMON_HH
