/**
 * @file
 * Shared harness for the paper-reproduction benchmarks: standard
 * configurations, per-workload runs with caching of the baseline,
 * and paper-style table printing.
 */

#ifndef TCFILL_BENCH_COMMON_HH
#define TCFILL_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "sim/processor.hh"
#include "sim/result.hh"
#include "workloads/suite.hh"

namespace tcfill::bench
{

/** Instruction budget per benchmark run (keeps sweeps tractable). */
inline constexpr InstSeqNum kRunInsts = 220'000;

/** Workload scale used by all paper benches. */
inline constexpr unsigned kScale = 1;

/** The paper's baseline machine (§3), no fill-unit optimizations. */
SimConfig baselineConfig();

/** Baseline plus the given optimization set (fill latency 5). */
SimConfig optConfig(const FillOptimizations &opts,
                    Cycle fill_latency = 5);

/** Run one (workload, config) pair at the standard budget. */
SimResult run(const workloads::Workload &w, SimConfig cfg);

/** Percentage string for an IPC ratio, e.g. "+17.3%". */
std::string pctGain(double base_ipc, double opt_ipc);

/**
 * Standard sweep: for each suite benchmark, run the baseline and one
 * variant, printing IPCs and the percent improvement — the layout of
 * the paper's figures 3-6 and 8.
 *
 * @param title printed header
 * @param variant configuration to compare against the baseline
 * @param geo_out optional: receives the geometric-mean IPC ratio
 */
void compareSweep(const std::string &title, const SimConfig &variant,
                  double *geo_out = nullptr);

} // namespace tcfill::bench

#endif // TCFILL_BENCH_COMMON_HH
