/**
 * @file
 * tex analog: hyphenation-pattern trie walking over a word list plus
 * a least-badness line-breaking dynamic program. Dominant behaviour:
 * packed-trie child indexing by shift-add (the suite's heaviest
 * scaled-add user, matching tex's 5.2% in the paper's Table 2) and
 * quadratic DP loops with table loads and min-tracking branches.
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildTex(unsigned scale)
{
    ProgramBuilder pb("tex");

    constexpr unsigned kTrieNodes = 256;
    constexpr unsigned kAlpha = 32;         // padded alphabet (pow2)
    constexpr unsigned kWords = 160;
    constexpr unsigned kLineItems = 48;

    Random rng(0x7e4u);

    // Packed trie: child[node * 32 + c] = next node (0 = none),
    // value[node] = pattern weight.
    std::vector<std::int32_t> child(kTrieNodes * kAlpha, 0);
    std::vector<std::int32_t> value(kTrieNodes, 0);
    unsigned next_node = 1;
    for (unsigned p = 0; p < 60 && next_node < kTrieNodes - 1; ++p) {
        unsigned node = 0;
        unsigned len = 2 + rng.below(4);
        for (unsigned d = 0; d < len; ++d) {
            unsigned c = rng.below(26);
            std::int32_t &slot = child[node * kAlpha + c];
            if (slot == 0) {
                if (next_node >= kTrieNodes - 1)
                    break;
                slot = static_cast<std::int32_t>(next_node++);
            }
            node = static_cast<unsigned>(slot);
        }
        value[node] = static_cast<std::int32_t>(1 + rng.below(9));
    }
    Addr child_addr = pb.dataWords(child);
    Addr value_addr = pb.dataWords(value);

    // Word pool: length-prefixed lowercase words.
    std::vector<std::uint8_t> pool;
    std::vector<std::int32_t> woffs;
    for (unsigned w = 0; w < kWords; ++w) {
        woffs.push_back(static_cast<std::int32_t>(pool.size()));
        unsigned len = 3 + rng.below(9);
        pool.push_back(static_cast<std::uint8_t>(len));
        for (unsigned i = 0; i < len; ++i)
            pool.push_back(static_cast<std::uint8_t>(rng.below(26)));
    }
    Addr pool_addr = pb.dataBytes(pool);
    for (auto &off : woffs)
        off += static_cast<std::int32_t>(pool_addr);
    Addr woffs_addr = pb.dataWords(woffs);

    // Line-break items: word widths; DP cost array.
    std::vector<std::int32_t> widths(kLineItems);
    for (auto &w : widths)
        w = static_cast<std::int32_t>(3 + rng.below(12));
    Addr widths_addr = pb.dataWords(widths);
    Addr cost_addr = pb.allocData((kLineItems + 1) * 4, 8);

    const RegIndex wi = 4, wp = 5, len = 6, node = 7, score = 8;
    const RegIndex t0 = 9, t1 = 10, t2 = 11, t3 = 12, c = 13;
    const RegIndex chb = 16, vlb = 17, wob = 18, pass = 20;
    const RegIndex jj = 14, ii = 15, best = 21, wsum = 22;
    const RegIndex wdb = 23, ctb = 24;

    pb.la(chb, child_addr);
    pb.la(vlb, value_addr);
    pb.la(wob, woffs_addr);
    pb.la(wdb, widths_addr);
    pb.la(ctb, cost_addr);
    pb.li(pass, static_cast<std::int32_t>(5 * scale));

    Label pass_loop = pb.newLabel();
    Label word_loop = pb.newLabel();
    Label ch_loop = pb.newLabel();
    Label ch_done = pb.newLabel();
    Label word_next = pb.newLabel();

    pb.bind(pass_loop);
    pb.li(wi, 0);
    pb.bind(word_loop);
    pb.slli(t0, wi, 2);
    pb.lwx(wp, wob, t0);            // word pointer
    pb.lbu(len, wp, 0);
    pb.addi(wp, wp, 1);
    pb.li(node, 0);
    pb.li(score, 0);

    pb.bind(ch_loop);
    pb.blez(len, ch_done);
    pb.lbu(c, wp, 0);
    pb.addi(wp, wp, 1);
    pb.addi(len, len, -1);
    // idx = (node << 5) + c; next = child[idx]
    pb.slli(t0, node, 5);
    pb.add(t0, t0, c);
    pb.slli(t0, t0, 2);             // scaled-add candidates galore
    pb.lwx(node, chb, t0);
    pb.beq(node, 0, ch_done);       // fell off the trie
    pb.slli(t1, node, 2);
    pb.lwx(t2, vlb, t1);            // pattern value
    pb.add(score, score, t2);
    pb.j(ch_loop);
    pb.bind(ch_done);

    pb.bind(word_next);
    pb.addi(wi, wi, 1);
    pb.slti(t0, wi, kWords);
    pb.bne(t0, 0, word_loop);

    // ---- line breaking DP: cost[j] = min over i<j of
    //      cost[i] + (target - sum w[i..j))^2, window capped at 12.
    Label dp_init = pb.newLabel();
    Label dp_j = pb.newLabel();
    Label dp_i = pb.newLabel();
    Label dp_i_next = pb.newLabel();
    Label dp_no_best = pb.newLabel();
    Label dp_j_next = pb.newLabel();

    pb.li(t0, 0);
    pb.sw(t0, ctb, 0);
    pb.li(jj, 1);
    pb.bind(dp_init);
    pb.bind(dp_j);
    pb.li(best, 0x7ffffff);
    pb.li(wsum, 0);
    pb.move(ii, jj);
    pb.bind(dp_i);
    pb.addi(ii, ii, -1);
    pb.bltz(ii, dp_no_best);
    pb.sub(t0, jj, ii);
    pb.slti(t1, t0, 13);
    pb.beq(t1, 0, dp_no_best);      // window cap
    pb.slli(t2, ii, 2);
    pb.lwx(t3, wdb, t2);            // width[ii]
    pb.add(wsum, wsum, t3);
    pb.li(t0, 40);                  // line target
    pb.sub(t0, t0, wsum);
    pb.mul(t0, t0, t0);             // badness
    pb.lwx(t1, ctb, t2)             /* cost[ii] */;
    pb.add(t0, t0, t1);
    pb.slt(t1, t0, best);
    pb.beq(t1, 0, dp_i_next);
    pb.move(best, t0);
    pb.bind(dp_i_next);
    pb.j(dp_i);
    pb.bind(dp_no_best);
    pb.slli(t2, jj, 2);
    pb.swx(best, ctb, t2);
    pb.bind(dp_j_next);
    pb.addi(jj, jj, 1);
    pb.slti(t0, jj, kLineItems + 1);
    pb.bne(t0, 0, dp_j);

    pb.addi(pass, pass, -1);
    pb.bgtz(pass, pass_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
