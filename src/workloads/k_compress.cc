/**
 * @file
 * compress analog: LZW-style dictionary compression of synthetic
 * text. Dominant behaviour: byte loads, hash probing with data-
 * dependent branches, dictionary growth, and an output call per
 * emitted code (register moves for argument passing).
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildCompress(unsigned scale)
{
    ProgramBuilder pb("compress");

    constexpr unsigned kInputBytes = 6000;
    constexpr unsigned kTableEntries = 4096;    // 8 bytes each

    // Synthetic "text": skewed byte distribution with repeated motifs
    // so the dictionary actually captures strings.
    Random rng(0xc0351u);
    std::vector<std::uint8_t> input(kInputBytes);
    for (std::size_t i = 0; i < input.size(); ++i) {
        if (rng.percent(70) && i >= 16) {
            input[i] = input[i - 1 - rng.below(8)];    // local repeat
        } else {
            input[i] = static_cast<std::uint8_t>(
                'a' + rng.below(26));
        }
    }

    Addr in_addr = pb.dataBytes(input);
    Addr table_addr = pb.allocData(kTableEntries * 8, 8);
    Addr out_addr = pb.allocData(16 * 1024, 4);

    // Register plan: r4 in ptr, r5 in end, r6 table, r7 out ptr,
    // r8 code, r9 byte, r10 key, r11 hash, r12-r15 temps,
    // r16 next code, r17 hash mask, r20 pass counter.
    const RegIndex in = 4, end = 5, tab = 6, out = 7, code = 8;
    const RegIndex byte = 9, key = 10, hash = 11;
    const RegIndex t0 = 12, t1 = 13, t2 = 14;
    const RegIndex next = 16, msk = 17, pass = 20;

    Label entry = pb.newLabel();
    Label emit = pb.newLabel();
    pb.j(entry);

    // emit(r1 = code): append one output word.
    pb.bind(emit);
    pb.sw(1, out, 0);
    pb.addi(out, out, 4);
    pb.ret();

    pb.bind(entry);
    pb.la(tab, table_addr);
    pb.la(out, out_addr);
    pb.li(msk, kTableEntries - 1);
    pb.li(pass, static_cast<std::int32_t>(3 * scale));

    Label pass_loop = pb.newLabel();
    Label byte_loop = pb.newLabel();
    Label probe = pb.newLabel();
    Label collide = pb.newLabel();
    Label insert = pb.newLabel();
    Label next_byte = pb.newLabel();
    Label clear = pb.newLabel();
    Label pass_done = pb.newLabel();
    Label all_done = pb.newLabel();

    pb.bind(pass_loop);
    pb.la(in, in_addr);
    pb.la(end, in_addr + kInputBytes);
    pb.li(next, 256);
    pb.lbu(code, in, 0);
    pb.addi(in, in, 1);

    pb.bind(byte_loop);
    pb.sltu(t0, in, end);
    pb.beq(t0, 0, pass_done);
    pb.lbu(byte, in, 0);
    pb.addi(in, in, 1);
    // key = (code << 9) | byte  (code may exceed 8 bits)
    pb.slli(key, code, 9);
    pb.or_(key, key, byte);
    // hash = ((code << 4) ^ (code >> 7) ^ (byte << 7) ^ byte) & mask
    pb.slli(hash, code, 4);
    pb.srli(t2, code, 7);
    pb.xor_(hash, hash, t2);
    pb.slli(t2, byte, 7);
    pb.xor_(hash, hash, t2);
    pb.xor_(hash, hash, byte);
    pb.and_(hash, hash, msk);

    pb.bind(probe);
    pb.slli(t0, hash, 3);          // entry offset (scaled-add fodder)
    pb.add(t1, tab, t0);
    pb.lw(t2, t1, 0);              // entry key
    pb.beq(t2, 0, insert);
    pb.bne(t2, key, collide);
    pb.lw(code, t1, 4);            // extend the prefix
    pb.j(next_byte);

    pb.bind(collide);
    pb.addi(hash, hash, 1);
    pb.and_(hash, hash, msk);
    pb.j(probe);

    pb.bind(insert);
    pb.sw(key, t1, 0);
    pb.sw(next, t1, 4);
    pb.addi(next, next, 1);
    pb.move(1, code);              // argument move for emit()
    pb.jal(emit);
    pb.move(code, byte);           // start a new prefix
    // Dictionary nearly full: reset it, exactly as compress does.
    pb.slti(t0, next, (3 * kTableEntries) / 4);
    pb.beq(t0, 0, clear);
    pb.bind(next_byte);
    pb.j(byte_loop);

    pb.bind(clear);
    pb.la(t1, table_addr);
    pb.li(t2, kTableEntries * 2);
    Label clr_loop = pb.newLabel();
    pb.bind(clr_loop);
    pb.sw(0, t1, 0);
    pb.addi(t1, t1, 4);
    pb.addi(t2, t2, -1);
    pb.bgtz(t2, clr_loop);
    pb.li(next, 256);
    pb.j(byte_loop);

    pb.bind(pass_done);
    pb.move(1, code);
    pb.jal(emit);
    pb.la(out, out_addr);          // rewind output between passes
    pb.addi(pass, pass, -1);
    pb.bgtz(pass, pass_loop);

    pb.bind(all_done);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
