/**
 * @file
 * pgp analog: multi-precision (bignum) multiplication with a
 * pseudo-Montgomery reduction, 16-bit limbs in 32-bit words.
 * Dominant behaviour: multiply-accumulate inner loops with serial
 * carry chains (long dependence chains through MUL), dense array
 * traffic, and almost no branching beyond loop control.
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildPgp(unsigned scale)
{
    ProgramBuilder pb("pgp");

    constexpr unsigned kLimbs = 24;         // 16-bit limbs

    Random rng(0x969u);
    std::vector<std::int32_t> a(kLimbs), b(kLimbs);
    for (unsigned i = 0; i < kLimbs; ++i) {
        a[i] = static_cast<std::int32_t>(rng.below(0x10000));
        b[i] = static_cast<std::int32_t>(rng.below(0x10000));
    }
    Addr a_addr = pb.dataWords(a);
    Addr b_addr = pb.dataWords(b);
    Addr p_addr = pb.allocData(2 * kLimbs * 4 + 8, 8);

    // r4 i, r5 j, r6 a[i], r7 carry, r8-r13 temps,
    // r16 a base, r17 b base, r18 product base, r20 rounds.
    const RegIndex i = 4, j = 5, ai = 6, carry = 7;
    const RegIndex t0 = 8, t1 = 9, t2 = 10, t3 = 11, pij = 12;
    const RegIndex ab = 16, bb = 17, prod = 18, rounds = 20;

    pb.la(ab, a_addr);
    pb.la(bb, b_addr);
    pb.la(prod, p_addr);
    pb.li(rounds, static_cast<std::int32_t>(55 * scale));

    Label round_loop = pb.newLabel();
    Label clr_loop = pb.newLabel();
    Label i_loop = pb.newLabel();
    Label j_loop = pb.newLabel();
    Label red_loop = pb.newLabel();
    Label red_skip = pb.newLabel();

    pb.bind(round_loop);
    // Clear the product.
    pb.li(t0, 2 * kLimbs);
    pb.move(t1, prod);
    pb.bind(clr_loop);
    pb.sw(0, t1, 0);
    pb.addi(t1, t1, 4);
    pb.addi(t0, t0, -1);
    pb.bgtz(t0, clr_loop);

    // Schoolbook multiply with 16-bit limbs.
    pb.li(i, 0);
    pb.bind(i_loop);
    pb.slli(t0, i, 2);
    pb.lwx(ai, ab, t0);
    pb.li(carry, 0);
    pb.li(j, 0);
    pb.bind(j_loop);
    pb.slli(t0, j, 2);
    pb.lwx(t1, bb, t0);             // b[j]
    pb.mul(t1, ai, t1);             // 16x16 -> 32, exact
    pb.add(t2, i, j);
    pb.slli(t2, t2, 2);
    pb.add(pij, prod, t2);
    pb.lw(t3, pij, 0);              // p[i+j]
    pb.add(t1, t1, t3);
    pb.add(t1, t1, carry);          // serial carry chain
    pb.andi(t3, t1, 0xffff);
    pb.sw(t3, pij, 0);
    pb.srli(carry, t1, 16);
    pb.addi(j, j, 1);
    pb.slti(t0, j, kLimbs);
    pb.bne(t0, 0, j_loop);
    // final carry out
    pb.add(t2, i, j);
    pb.slli(t2, t2, 2);
    pb.swx(carry, prod, t2);
    pb.addi(i, i, 1);
    pb.slti(t0, i, kLimbs);
    pb.bne(t0, 0, i_loop);

    // Pseudo-reduction: fold high limbs into low with a small factor.
    pb.li(j, kLimbs);
    pb.bind(red_loop);
    pb.slli(t0, j, 2);
    pb.lwx(t1, prod, t0);           // high limb
    pb.beq(t1, 0, red_skip);
    pb.li(t2, 38);                  // fold factor (curve25519 style)
    pb.mul(t1, t1, t2);
    pb.addi(t0, t0, -(static_cast<std::int32_t>(kLimbs) * 4));
    pb.add(pij, prod, t0);
    pb.lw(t3, pij, 0);
    pb.add(t3, t3, t1);
    pb.andi(t2, t3, 0xffff);
    pb.sw(t2, pij, 0);
    pb.bind(red_skip);
    pb.addi(j, j, 1);
    pb.slti(t0, j, 2 * kLimbs);
    pb.bne(t0, 0, red_loop);

    pb.addi(rounds, rounds, -1);
    pb.bgtz(rounds, round_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
