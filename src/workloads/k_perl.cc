/**
 * @file
 * perl analog: associative-array (hash) operations over a corpus of
 * short strings. Dominant behaviour: byte scanning with shift-add
 * hashing, chained hash lookups with string comparison inner loops,
 * and helper-function calls with argument moves.
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildPerl(unsigned scale)
{
    ProgramBuilder pb("perl");

    constexpr unsigned kStrings = 320;
    constexpr unsigned kBuckets = 256;

    // Corpus: length-prefixed strings, many duplicates (hash hits).
    Random rng(0x9e71u);
    std::vector<std::uint8_t> pool;
    std::vector<std::int32_t> offsets;
    std::vector<std::vector<std::uint8_t>> uniques;
    for (unsigned u = 0; u < 48; ++u) {
        std::vector<std::uint8_t> s(4 + rng.below(12));
        for (auto &ch : s)
            ch = static_cast<std::uint8_t>('a' + rng.below(26));
        uniques.push_back(std::move(s));
    }
    Addr pool_base = kDataBase;     // reserved below via dataBytes
    for (unsigned i = 0; i < kStrings; ++i) {
        const auto &s = uniques[rng.below(uniques.size())];
        offsets.push_back(static_cast<std::int32_t>(pool.size()));
        pool.push_back(static_cast<std::uint8_t>(s.size()));
        pool.insert(pool.end(), s.begin(), s.end());
    }
    Addr pool_addr = pb.dataBytes(pool);
    (void)pool_base;
    for (auto &off : offsets)
        off += static_cast<std::int32_t>(pool_addr);
    Addr offs_addr = pb.dataWords(offsets);
    // Hash node: [key_ptr, value, next]. Preallocated node pool.
    Addr buckets_addr = pb.allocData(kBuckets * 4, 8);
    Addr nodes_addr = pb.allocData(64 * 12 + 12, 8);
    Addr nalloc_addr = pb.allocData(4, 4);
    pb.pokeWord(nalloc_addr, static_cast<std::int32_t>(nodes_addr));

    // r1/r2/r3 args, r2 result; r4 string index, r5 string ptr,
    // r6 hash, r7 len, r8-r13 temps, r16.. bases, r20 pass.
    const RegIndex a0 = 1, res = 2, a1 = 3;
    const RegIndex si = 4, sp = 5, h = 6, len = 7;
    const RegIndex t0 = 8, t1 = 9, t2 = 10, t3 = 11, node = 12;
    const RegIndex offs = 16, bkts = 17, nalloc = 18, pass = 20;

    Label start = pb.newLabel();
    pb.j(start);

    // streq(r1 = p, r3 = q): length-prefixed compare, res = 1 if equal.
    Label streq = pb.newLabel();
    Label sq_loop = pb.newLabel();
    Label sq_no = pb.newLabel();
    Label sq_yes = pb.newLabel();
    pb.bind(streq);
    pb.lbu(t0, a0, 0);
    pb.lbu(t1, a1, 0);
    pb.bne(t0, t1, sq_no);
    pb.move(t2, t0);                // remaining bytes
    pb.bind(sq_loop);
    pb.beq(t2, 0, sq_yes);
    pb.addi(a0, a0, 1);
    pb.addi(a1, a1, 1);
    pb.lbu(t0, a0, 0);
    pb.lbu(t1, a1, 0);
    pb.bne(t0, t1, sq_no);
    pb.addi(t2, t2, -1);
    pb.j(sq_loop);
    pb.bind(sq_yes);
    pb.li(res, 1);
    pb.ret();
    pb.bind(sq_no);
    pb.li(res, 0);
    pb.ret();

    pb.bind(start);
    pb.la(offs, offs_addr);
    pb.la(bkts, buckets_addr);
    pb.la(nalloc, nalloc_addr);
    pb.li(pass, static_cast<std::int32_t>(6 * scale));

    Label pass_loop = pb.newLabel();
    Label str_loop = pb.newLabel();
    Label hash_loop = pb.newLabel();
    Label chain_loop = pb.newLabel();
    Label chain_next = pb.newLabel();
    Label found = pb.newLabel();
    Label insert = pb.newLabel();
    Label str_next = pb.newLabel();

    pb.bind(pass_loop);
    pb.li(si, 0);
    pb.bind(str_loop);
    pb.slli(t0, si, 2);
    pb.lwx(sp, offs, t0);           // string pointer
    // hash = fold((h << 5) + h + c) over bytes
    pb.li(h, 5381 & 0x7fff);
    pb.lbu(len, sp, 0);
    pb.move(t3, sp);
    pb.move(t2, len);
    pb.bind(hash_loop);
    pb.addi(t3, t3, 1);
    pb.lbu(t0, t3, 0);
    pb.slli(t1, h, 5);              // scaled-add candidate
    pb.add(h, t1, h);
    pb.add(h, h, t0);
    pb.addi(t2, t2, -1);
    pb.bgtz(t2, hash_loop);
    pb.andi(h, h, kBuckets - 1);

    // chain walk
    pb.slli(t0, h, 2);
    pb.lwx(node, bkts, t0);
    pb.bind(chain_loop);
    pb.beq(node, 0, insert);
    pb.lw(t0, node, 0);             // key ptr
    pb.move(a0, t0);                // argument moves for streq
    pb.move(a1, sp);
    pb.addi(kRegSP, kRegSP, -16);
    pb.sw(node, kRegSP, 0);
    pb.sw(sp, kRegSP, 4);
    pb.sw(h, kRegSP, 8);
    pb.jal(streq);
    pb.lw(node, kRegSP, 0);
    pb.lw(sp, kRegSP, 4);
    pb.lw(h, kRegSP, 8);
    pb.addi(kRegSP, kRegSP, 16);
    pb.bne(res, 0, found);
    pb.bind(chain_next);
    pb.lw(node, node, 8);           // next
    pb.j(chain_loop);

    pb.bind(found);
    pb.lw(t0, node, 4);
    pb.addi(t0, t0, 1);             // ++value
    pb.sw(t0, node, 4);
    pb.j(str_next);

    pb.bind(insert);
    // Allocate a node from the pool; drop the insert if exhausted
    // (cannot happen with this corpus, but stay total).
    Label do_insert = pb.newLabel();
    pb.lw(node, nalloc, 0);
    pb.la(t0, nodes_addr + 64 * 12);
    pb.sltu(t1, node, t0);
    pb.bne(t1, 0, do_insert);
    pb.j(str_next);
    pb.bind(do_insert);
    pb.sw(sp, node, 0);             // key pointer
    pb.li(t2, 1);
    pb.sw(t2, node, 4);             // value
    pb.slli(t0, h, 2);
    pb.lwx(t2, bkts, t0);           // old chain head
    pb.sw(t2, node, 8);
    pb.swx(node, bkts, t0);         // new head
    pb.addi(t1, node, 12);
    pb.sw(t1, nalloc, 0);
    pb.j(str_next);

    pb.bind(str_next);
    pb.addi(si, si, 1);
    pb.slti(t0, si, kStrings);
    pb.bne(t0, 0, str_loop);
    pb.addi(pass, pass, -1);
    pb.bgtz(pass, pass_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
