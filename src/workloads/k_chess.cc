/**
 * @file
 * gnuchess analog: fixed-depth negamax over a 0x88 board with
 * piece-square-table evaluation. Dominant behaviour: square stepping
 * via immediate-add chains across branch-dense legality checks (the
 * paper's second big reassociation winner), scaled table indexing,
 * and recursive make/unmake with stack traffic.
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildChess(unsigned scale)
{
    ProgramBuilder pb("gnuchess");

    // 0x88 board: 128 bytes; piece codes 0 empty, 1 pawn, 2 knight,
    // 3 bishop, 4 rook, 5 queen, 6 king (white), +8 for black.
    Random rng(0xc4e55u);
    std::vector<std::uint8_t> board(128, 0);
    auto place = [&](unsigned sq, std::uint8_t pc) { board[sq] = pc; };
    // A sparse middlegame-ish position.
    place(0x00, 4); place(0x07, 4); place(0x04, 6);
    place(0x12, 1); place(0x13, 1); place(0x16, 1);
    place(0x25, 2); place(0x33, 3); place(0x44, 5);
    place(0x70, 12); place(0x77, 12); place(0x74, 14);
    place(0x62, 9); place(0x63, 9); place(0x65, 9);
    place(0x55, 10); place(0x46, 11);

    Addr board_addr = pb.dataBytes(board);

    // Piece-square table: 16 piece codes x 128 squares, bytes.
    std::vector<std::uint8_t> pst(16 * 128);
    for (auto &v : pst)
        v = static_cast<std::uint8_t>(rng.below(64));
    Addr pst_addr = pb.dataBytes(pst);

    // r1 arg depth, r2 result score; r4 sq, r5 piece, r6 best,
    // r7 to, r8-r11 temps, r16 board, r17 pst, r20 root counter.
    const RegIndex depth = 1, res = 2;
    const RegIndex sq = 4, piece = 5, best = 6, to = 7;
    const RegIndex t0 = 8, t1 = 9, t2 = 10, t3 = 11;
    const RegIndex brd = 16, tbl = 17, roots = 20;

    Label start = pb.newLabel();
    pb.j(start);

    // search(r1 = depth) -> r2 = score.
    Label search = pb.newLabel();
    Label sq_loop = pb.newLabel();
    Label sq_next = pb.newLabel();
    Label have_piece = pb.newLabel();
    Label step_e = pb.newLabel();
    Label step_n2 = pb.newLabel();
    Label recurse = pb.newLabel();
    Label no_recurse = pb.newLabel();
    Label s_done = pb.newLabel();

    pb.bind(search);
    pb.addi(kRegSP, kRegSP, -24);
    pb.sw(kRegRA, kRegSP, 0);
    pb.sw(depth, kRegSP, 4);
    pb.li(best, -9999);
    pb.li(sq, 0);

    pb.bind(sq_loop);
    pb.andi(t0, sq, 0x88);          // off-board filter (biased)
    pb.bne(t0, 0, sq_next);
    pb.add(t1, brd, sq);
    pb.lbu(piece, t1, 0);
    pb.bne(piece, 0, have_piece);
    pb.j(sq_next);

    pb.bind(have_piece);
    // Evaluate the piece where it stands: pst[piece*128 + sq].
    pb.move(t2, piece);             // working copy (move idiom)
    pb.slli(t0, t2, 7);
    pb.add(t0, t0, sq);
    pb.lwx(t1, tbl, t0);            // byte via word read
    pb.andi(t1, t1, 0xff);
    pb.add(best, best, t1);

    // Step east: to = sq + 1, then to+1 — immediate chains that
    // cross the legality branches (reassociation food).
    pb.addi(to, sq, 1);
    pb.andi(t0, to, 0x88);
    pb.bne(t0, 0, step_n2);
    pb.add(t2, brd, to);
    pb.lbu(t3, t2, 0);
    pb.bne(t3, 0, step_n2);
    pb.addi(to, to, 1);             // second step east
    pb.andi(t0, to, 0x88);
    pb.bne(t0, 0, step_n2);
    pb.slli(t0, piece, 7);
    pb.add(t0, t0, to);
    pb.lwx(t1, tbl, t0);
    pb.andi(t1, t1, 0xff);
    pb.add(best, best, t1);

    pb.bind(step_n2);
    // Step north: to = sq + 16, then sq + 32.
    pb.addi(to, sq, 16);
    pb.andi(t0, to, 0x88);
    pb.bne(t0, 0, step_e);
    pb.add(t2, brd, to);
    pb.lbu(t3, t2, 0);
    pb.bne(t3, 0, step_e);
    pb.addi(to, sq, 32);
    pb.andi(t0, to, 0x88);
    pb.bne(t0, 0, step_e);
    pb.slli(t0, piece, 7);
    pb.add(t0, t0, to);
    pb.lwx(t1, tbl, t0);
    pb.andi(t1, t1, 0xff);
    pb.sub(best, best, t1);

    pb.bind(step_e);
    // Recurse on a sparse subset of occupied squares.
    pb.lw(depth, kRegSP, 4);
    pb.blez(depth, no_recurse);
    pb.andi(t0, sq, 0x33);
    pb.bne(t0, 0, no_recurse);
    pb.bind(recurse);
    pb.sw(best, kRegSP, 8);
    pb.sw(sq, kRegSP, 12);
    pb.sw(piece, kRegSP, 16);
    pb.addi(depth, depth, -1);      // child depth (move-adjacent)
    pb.jal(search);
    pb.lw(best, kRegSP, 8);
    pb.lw(sq, kRegSP, 12);
    pb.lw(piece, kRegSP, 16);
    pb.srai(t0, res, 2);
    pb.sub(best, best, t0);         // negamax flavor
    pb.bind(no_recurse);

    pb.bind(sq_next);
    pb.addi(sq, sq, 1);
    pb.slti(t0, sq, 128);
    pb.bne(t0, 0, sq_loop);

    pb.bind(s_done);
    pb.move(res, best);             // result move
    pb.lw(kRegRA, kRegSP, 0);
    pb.addi(kRegSP, kRegSP, 24);
    pb.ret();

    pb.bind(start);
    pb.la(brd, board_addr);
    pb.la(tbl, pst_addr);
    pb.li(roots, static_cast<std::int32_t>(7 * scale));

    Label root_loop = pb.newLabel();
    pb.bind(root_loop);
    pb.li(depth, 2);                // depth-2 search per root
    pb.jal(search);
    pb.addi(roots, roots, -1);
    pb.bgtz(roots, root_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
