/**
 * @file
 * ijpeg analog: integer butterfly transform (Walsh-Hadamard style, a
 * stand-in for the DCT) and quantization over 8x8 blocks of an image.
 * Dominant behaviour: dense shift/add address arithmetic into 2-D
 * arrays (scaled-add fodder), straight-line butterfly arithmetic with
 * temporary shuffling, and extremely regular loop branches.
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildIjpeg(unsigned scale)
{
    ProgramBuilder pb("ijpeg");

    constexpr unsigned kW = 64, kH = 64;

    Random rng(0x135e9u);
    std::vector<std::uint8_t> img(kW * kH);
    for (auto &px : img)
        px = static_cast<std::uint8_t>(rng.below(256));

    Addr img_addr = pb.dataBytes(img);
    Addr tmp_addr = pb.allocData(8 * 8 * 4, 8);     // block of words
    Addr out_addr = pb.allocData(kW * kH * 4, 8);

    // r4 block x, r5 block y, r6 row counter, r7 src ptr,
    // r8-r15 butterfly lanes, r16 img base, r17 tmp base,
    // r18 out base, r19-r23 temps, r24 col counter, r25 pass.
    const RegIndex bx = 4, by = 5, r = 6, sp = 7;
    const RegIndex a0 = 8, a1 = 9, a2 = 10, a3 = 11;
    const RegIndex s0 = 12, s1 = 13, d0 = 14, d1 = 15;
    const RegIndex ibase = 16, tbase = 17, obase = 18;
    const RegIndex t0 = 19, t1 = 20, t2 = 21;
    const RegIndex c = 24, pass = 25;

    pb.la(ibase, img_addr);
    pb.la(tbase, tmp_addr);
    pb.la(obase, out_addr);
    pb.li(pass, static_cast<std::int32_t>(4 * scale));

    Label pass_loop = pb.newLabel();
    Label by_loop = pb.newLabel();
    Label bx_loop = pb.newLabel();
    Label row_loop = pb.newLabel();
    Label col_loop = pb.newLabel();
    Label bx_next = pb.newLabel();
    Label by_next = pb.newLabel();

    pb.bind(pass_loop);
    pb.li(by, 0);
    pb.bind(by_loop);
    pb.li(bx, 0);
    pb.bind(bx_loop);

    // ---- row transform: 8 rows, 4-lane butterfly over byte pairs.
    pb.li(r, 0);
    pb.bind(row_loop);
    // src = img + ((by*8 + r) * 64) + bx*8
    pb.slli(t0, by, 3);
    pb.add(t0, t0, r);
    pb.slli(t0, t0, 6);
    pb.slli(t1, bx, 3);
    pb.add(t0, t0, t1);
    pb.add(sp, ibase, t0);
    // load four 16-bit lanes as byte pairs
    pb.lbu(a0, sp, 0);
    pb.lbu(a1, sp, 2);
    pb.lbu(a2, sp, 4);
    pb.lbu(a3, sp, 6);
    // stage 1 butterflies
    pb.add(s0, a0, a2);
    pb.sub(d0, a0, a2);
    pb.add(s1, a1, a3);
    pb.sub(d1, a1, a3);
    // stage 2 with scaling shifts
    pb.add(t1, s0, s1);
    pb.sub(t2, s0, s1);
    pb.slli(t0, d0, 1);
    pb.add(d0, t0, d1);
    pb.sub(d1, t0, d1);
    // store the row of coefficients into the temp block
    pb.slli(t0, r, 4);             // r * 16 bytes (4 words)
    pb.add(sp, tbase, t0);
    pb.sw(t1, sp, 0);
    pb.sw(t2, sp, 4);
    pb.sw(d0, sp, 8);
    pb.sw(d1, sp, 12);
    pb.addi(r, r, 1);
    pb.slti(t0, r, 8);
    pb.bne(t0, 0, row_loop);

    // ---- column transform + quantize: 4 columns of 8 entries.
    pb.li(c, 0);
    pb.bind(col_loop);
    pb.slli(t0, c, 2);
    pb.add(sp, tbase, t0);         // column base
    pb.lw(a0, sp, 0 * 16);
    pb.lw(a1, sp, 2 * 16);
    pb.lw(a2, sp, 4 * 16);
    pb.lw(a3, sp, 6 * 16);
    pb.add(s0, a0, a2);
    pb.sub(d0, a0, a2);
    pb.add(s1, a1, a3);
    pb.sub(d1, a1, a3);
    pb.add(t1, s0, s1);
    pb.srai(t1, t1, 2);            // quantize DC harder
    pb.sub(t2, s0, s1);
    pb.srai(t2, t2, 1);
    pb.srai(d0, d0, 1);
    pb.move(t0, d1);               // compiler-style lane shuffle
    pb.srai(d1, t0, 1);
    // out block base = out + ((by*8)*64 + bx*8 + c) * 4
    pb.slli(t0, by, 3);
    pb.slli(t0, t0, 6);
    pb.slli(s0, bx, 3);
    pb.add(t0, t0, s0);
    pb.add(t0, t0, c);
    pb.slli(t0, t0, 2);
    pb.add(sp, obase, t0);
    pb.sw(t1, sp, 0);
    pb.sw(t2, sp, 256);
    pb.sw(d0, sp, 512);
    pb.sw(d1, sp, 768);
    pb.addi(c, c, 1);
    pb.slti(t0, c, 4);
    pb.bne(t0, 0, col_loop);

    pb.bind(bx_next);
    pb.addi(bx, bx, 1);
    pb.slti(t0, bx, 8);
    pb.bne(t0, 0, bx_loop);
    pb.bind(by_next);
    pb.addi(by, by, 1);
    pb.slti(t0, by, 8);
    pb.bne(t0, 0, by_loop);

    pb.addi(pass, pass, -1);
    pb.bgtz(pass, pass_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
