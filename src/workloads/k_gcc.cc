/**
 * @file
 * gcc analog: graph-coloring register allocation over random
 * interference graphs. Dominant behaviour: sparse bitmap scans with
 * irregular, data-dependent branching and first-free-bit selection —
 * the branchy, pointerless integer style of a compiler middle end.
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildGcc(unsigned scale)
{
    ProgramBuilder pb("gcc");

    constexpr unsigned kNodes = 96;
    constexpr unsigned kWordsPerRow = kNodes / 32;

    // Random interference graph, ~10% density, symmetric.
    Random rng(0x6cc5eedu);
    std::vector<std::int32_t> adj(kNodes * kWordsPerRow, 0);
    for (unsigned i = 0; i < kNodes; ++i) {
        for (unsigned j = 0; j < i; ++j) {
            if (rng.percent(10)) {
                adj[i * kWordsPerRow + j / 32] |= 1 << (j % 32);
                adj[j * kWordsPerRow + i / 32] |= 1 << (i % 32);
            }
        }
    }

    Addr adj_addr = pb.dataWords(adj);
    Addr color_addr = pb.allocData(kNodes, 4);   // byte per node

    // r4 node i, r5 used mask, r6 row ptr, r7 word index,
    // r8 bits, r9 bit index, r10 neighbor j, r11-r14 temps,
    // r16 color base, r18 adj base, r20 pass counter.
    const RegIndex i = 4, used = 5, row = 6, w = 7, bits = 8;
    const RegIndex b = 9, j = 10, t0 = 11, t1 = 12, t2 = 13;
    const RegIndex cbase = 16, abase = 18, pass = 20;

    pb.la(abase, adj_addr);
    pb.la(cbase, color_addr);
    pb.li(pass, static_cast<std::int32_t>(4 * scale));

    Label pass_loop = pb.newLabel();
    Label init_loop = pb.newLabel();
    Label node_loop = pb.newLabel();
    Label word_loop = pb.newLabel();
    Label bit_loop = pb.newLabel();
    Label bit_next = pb.newLabel();
    Label word_next = pb.newLabel();
    Label pick = pb.newLabel();
    Label pick_loop = pb.newLabel();
    Label node_next = pb.newLabel();
    Label pass_next = pb.newLabel();

    pb.bind(pass_loop);
    // Reset all colors to 255 (uncolored).
    pb.li(t0, kNodes);
    pb.move(t1, cbase);
    pb.li(t2, 255);
    pb.bind(init_loop);
    pb.sb(t2, t1, 0);
    pb.addi(t1, t1, 1);
    pb.addi(t0, t0, -1);
    pb.bgtz(t0, init_loop);

    pb.li(i, 0);
    pb.bind(node_loop);
    pb.li(used, 0);
    // row = adj + i * kWordsPerRow * 4
    pb.li(t0, kWordsPerRow * 4);
    pb.mul(t0, i, t0);
    pb.add(row, abase, t0);
    pb.li(w, 0);

    pb.bind(word_loop);
    pb.slli(t0, w, 2);
    pb.lwx(bits, row, t0);
    pb.beq(bits, 0, word_next);    // sparse rows: usually empty
    pb.slli(j, w, 5);              // j = w * 32
    pb.li(b, 32);
    pb.bind(bit_loop);
    pb.andi(t0, bits, 1);
    pb.srli(bits, bits, 1);
    pb.beq(t0, 0, bit_next);
    // neighbor j is interfering: fold its color into the used mask
    pb.lwx(t1, cbase, j);          // byte read via word is fine when
    pb.andi(t1, t1, 0xff);         // colors stay in the low byte
    pb.slti(t2, t1, 32);
    pb.beq(t2, 0, bit_next);       // uncolored neighbor (255)
    pb.li(t0, 1);
    pb.sllv(t0, t0, t1);
    pb.or_(used, used, t0);
    pb.bind(bit_next);
    pb.addi(j, j, 1);
    pb.addi(b, b, -1);
    pb.bne(bits, 0, bit_loop);     // early out when no bits remain
    pb.bind(word_next);
    pb.addi(w, w, 1);
    pb.slti(t0, w, kWordsPerRow);
    pb.bne(t0, 0, word_loop);

    // Select the lowest color not in the used mask.
    pb.bind(pick);
    pb.li(t1, 0);
    pb.bind(pick_loop);
    pb.andi(t0, used, 1);
    pb.srli(used, used, 1);
    pb.beq(t0, 0, node_next);
    pb.addi(t1, t1, 1);
    pb.j(pick_loop);

    pb.bind(node_next);
    pb.add(t2, cbase, i);
    pb.sb(t1, t2, 0);
    pb.addi(i, i, 1);
    pb.slti(t0, i, kNodes);
    pb.bne(t0, 0, node_loop);

    pb.bind(pass_next);
    pb.addi(pass, pass, -1);
    pb.bgtz(pass, pass_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
