/**
 * @file
 * gnuplot analog: sampling a fixed-point polynomial across a domain
 * with range clipping and axis mapping. Dominant behaviour: Horner
 * evaluation through small helper functions (argument/result moves —
 * gnuplot has one of the paper's highest move fractions), multiply
 * latency chains, and well-predicted clip branches.
 */

#include "asm/builder.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildGnuplot(unsigned scale)
{
    ProgramBuilder pb("gnuplot");

    constexpr unsigned kSamples = 3200;
    Addr out_addr = pb.allocData(kSamples * 4 + 16, 8);
    Addr coef_addr = pb.dataWords({37, -211, 544, -310, 97});

    // Convention: r1..r3 args, r2 result.
    const RegIndex a0 = 1, res = 2;
    const RegIndex x = 4, t0 = 8, t1 = 9, t2 = 10, acc = 11;
    const RegIndex cb = 16, ob = 17, pass = 20, n = 21, keep = 13;

    Label start = pb.newLabel();
    pb.j(start);

    // poly(r1 = x fixed 8.8) -> r2: Horner with 5 coefficients.
    Label poly = pb.newLabel();
    Label poly_loop = pb.newLabel();
    pb.bind(poly);
    pb.lw(acc, cb, 0);
    pb.li(t2, 4);
    pb.move(t1, cb);
    pb.bind(poly_loop);
    pb.mul(acc, acc, a0);           // serial multiply chain
    pb.srai(acc, acc, 8);           // rescale fixed point
    pb.addi(t1, t1, 4);
    pb.lw(t0, t1, 0);
    pb.add(acc, acc, t0);
    pb.addi(t2, t2, -1);
    pb.bgtz(t2, poly_loop);
    pb.move(res, acc);              // result move
    pb.ret();

    // clip(r1 = v) -> r2: clamp into [-20000, 20000].
    Label clip = pb.newLabel();
    Label clip_lo = pb.newLabel();
    Label clip_done = pb.newLabel();
    pb.bind(clip);
    pb.move(res, a0);               // common case: in range
    pb.li(t0, 20000);
    pb.slt(t1, t0, res);
    pb.beq(t1, 0, clip_lo);
    pb.move(res, t0);
    pb.bind(clip_lo);
    pb.li(t0, -20000);
    pb.slt(t1, res, t0);
    pb.beq(t1, 0, clip_done);
    pb.move(res, t0);
    pb.bind(clip_done);
    pb.ret();

    pb.bind(start);
    pb.la(cb, coef_addr);
    pb.li(pass, static_cast<std::int32_t>(2 * scale));

    Label pass_loop = pb.newLabel();
    Label sample_loop = pb.newLabel();

    pb.bind(pass_loop);
    pb.la(ob, out_addr);
    pb.li(x, -400);                 // domain start, 8.8 fixed
    pb.li(n, kSamples);
    pb.bind(sample_loop);
    pb.move(a0, x);                 // argument move
    pb.addi(kRegSP, kRegSP, -8);
    pb.sw(x, kRegSP, 0);
    pb.sw(n, kRegSP, 4);
    pb.jal(poly);
    pb.move(keep, res);
    pb.move(a0, keep);              // feed clip
    pb.jal(clip);
    pb.lw(x, kRegSP, 0);
    pb.lw(n, kRegSP, 4);
    pb.addi(kRegSP, kRegSP, 8);
    // map to screen: y = (v >> 6) + 128, store
    pb.srai(t0, res, 6);
    pb.addi(t0, t0, 128);
    pb.sw(t0, ob, 0);
    pb.addi(ob, ob, 4);
    pb.addi(x, x, 1);               // advance the domain
    pb.addi(n, n, -1);
    pb.bgtz(n, sample_loop);
    pb.addi(pass, pass, -1);
    pb.bgtz(pass, pass_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
