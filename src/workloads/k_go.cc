/**
 * @file
 * go analog: liberty counting and influence evaluation over a 19x19
 * board with a sentinel border. Dominant behaviour: dense short
 * branches over small byte arrays, mostly-biased conditions, and
 * displacement-addressed neighbor loads.
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildGo(unsigned scale)
{
    ProgramBuilder pb("go");

    constexpr int kDim = 21;            // 19x19 plus sentinel ring
    constexpr int kEmpty = 0, kBorder = 3;

    Random rng(0x60b0a4du);
    std::vector<std::uint8_t> board(kDim * kDim, kBorder);
    for (int y = 1; y <= 19; ++y) {
        for (int x = 1; x <= 19; ++x) {
            unsigned r = rng.below(100);
            board[y * kDim + x] =
                r < 55 ? kEmpty : (r < 78 ? 1 : 2);
        }
    }

    Addr board_addr = pb.dataBytes(
        std::vector<std::uint8_t>(board.begin(), board.end()));
    Addr score_addr = pb.allocData(8, 4);

    // r4 point ptr, r5 remaining points, r6 piece, r7 liberties,
    // r8 black influence, r9 white influence, r10-r13 neighbors,
    // r16 board base, r17 score accum, r20 pass counter.
    const RegIndex p = 4, rem = 5, piece = 6, libs = 7;
    const RegIndex binf = 8, winf = 9;
    const RegIndex n0 = 10, n1 = 11, n2 = 12, n3 = 13;
    const RegIndex base = 16, acc = 17, sbase = 18, pass = 20;

    pb.la(base, board_addr);
    pb.la(sbase, score_addr);
    pb.li(pass, static_cast<std::int32_t>(22 * scale));

    Label pass_loop = pb.newLabel();
    Label pt_loop = pb.newLabel();
    Label empty_pt = pb.newLabel();
    Label stone_pt = pb.newLabel();
    Label pt_next = pb.newLabel();
    Label lib1 = pb.newLabel(), lib2 = pb.newLabel();
    Label lib3 = pb.newLabel(), lib4 = pb.newLabel();
    Label inf1 = pb.newLabel(), inf2 = pb.newLabel();
    Label inf3 = pb.newLabel(), inf4 = pb.newLabel();
    Label store_lib = pb.newLabel();

    pb.bind(pass_loop);
    pb.li(acc, 0);
    pb.addi(p, base, kDim + 1);         // first interior point
    pb.li(rem, 19 * kDim);              // sweep rows incl. sentinels

    pb.bind(pt_loop);
    pb.lbu(piece, p, 0);
    pb.beq(piece, 0, empty_pt);
    pb.slti(n0, piece, kBorder);
    pb.bne(n0, 0, stone_pt);
    pb.j(pt_next);                       // border sentinel

    // Empty point: accumulate adjacent influence per color.
    pb.bind(empty_pt);
    pb.li(binf, 0);
    pb.li(winf, 0);
    pb.lbu(n0, p, 1);
    pb.lbu(n1, p, -1);
    pb.lbu(n2, p, kDim);
    pb.lbu(n3, p, -kDim);
    pb.addi(n0, n0, -1);
    pb.bne(n0, 0, inf1);
    pb.addi(binf, binf, 1);
    pb.bind(inf1);
    pb.addi(n1, n1, -1);
    pb.bne(n1, 0, inf2);
    pb.addi(binf, binf, 1);
    pb.bind(inf2);
    pb.addi(n2, n2, -2);
    pb.bne(n2, 0, inf3);
    pb.addi(winf, winf, 1);
    pb.bind(inf3);
    pb.addi(n3, n3, -2);
    pb.bne(n3, 0, inf4);
    pb.addi(winf, winf, 1);
    pb.bind(inf4);
    pb.sub(n0, binf, winf);
    pb.add(acc, acc, n0);
    pb.j(pt_next);

    // Stone: count pseudo-liberties (empty neighbors).
    pb.bind(stone_pt);
    pb.li(libs, 0);
    pb.lbu(n0, p, 1);
    pb.bne(n0, 0, lib1);
    pb.addi(libs, libs, 1);
    pb.bind(lib1);
    pb.lbu(n1, p, -1);
    pb.bne(n1, 0, lib2);
    pb.addi(libs, libs, 1);
    pb.bind(lib2);
    pb.lbu(n2, p, kDim);
    pb.bne(n2, 0, lib3);
    pb.addi(libs, libs, 1);
    pb.bind(lib3);
    pb.lbu(n3, p, -kDim);
    pb.bne(n3, 0, lib4);
    pb.addi(libs, libs, 1);
    pb.bind(lib4);
    // Stones in atari weigh heavily against their owner.
    pb.slti(n0, libs, 2);
    pb.beq(n0, 0, store_lib);
    pb.slli(libs, libs, 2);
    pb.bind(store_lib);
    pb.addi(n1, piece, -1);             // 0 = black, 1 = white
    pb.beq(n1, 0, pt_next);
    pb.sub(acc, acc, libs);
    pb.bind(pt_next);
    pb.addi(p, p, 1);
    pb.addi(rem, rem, -1);
    pb.bgtz(rem, pt_loop);

    pb.sw(acc, sbase, 0);
    pb.addi(pass, pass, -1);
    pb.bgtz(pass, pass_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
