/**
 * @file
 * ghostscript analog: fixed-point polygon edge stepping and scanline
 * span filling into a framebuffer. Dominant behaviour: per-scanline
 * fixed-point arithmetic, biased clipping branches, byte-store fill
 * loops with pointer-bump immediate chains (reassociation), and
 * row-base address computation by shift-add (scaled adds).
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildGhostscript(unsigned scale)
{
    ProgramBuilder pb("ghostscript");

    constexpr unsigned kWidth = 256, kHeight = 96;
    constexpr unsigned kEdges = 24;

    // Edge records: [x0_fix, dx_fix, y0, y1] (x in 8.8 fixed point).
    Random rng(0x95c217u);
    std::vector<std::int32_t> edges;
    for (unsigned e = 0; e < kEdges; ++e) {
        std::int32_t y0 = static_cast<std::int32_t>(rng.below(kHeight - 8));
        std::int32_t y1 = y0 + 4 +
            static_cast<std::int32_t>(rng.below(kHeight - y0 - 4));
        std::int32_t x0 = static_cast<std::int32_t>(
            rng.below((kWidth - 40) << 8));
        std::int32_t dx = static_cast<std::int32_t>(rng.below(512)) - 256;
        edges.insert(edges.end(), {x0, dx, y0, y1});
    }
    Addr edges_addr = pb.dataWords(edges);
    Addr fb_addr = pb.allocData(kWidth * kHeight, 16);

    // r4 y, r5 edge ptr, r6 edge count, r7 x_fix, r8 span ptr,
    // r9 span len, r10-r13 temps, r16 fb, r17 edges, r20 pass.
    const RegIndex y = 4, ep = 5, en = 6, xf = 7, p = 8, len = 9;
    const RegIndex t0 = 10, t1 = 11, t2 = 12, t3 = 13;
    const RegIndex fb = 16, ebase = 17, pass = 20;

    pb.la(fb, fb_addr);
    pb.la(ebase, edges_addr);
    pb.li(pass, static_cast<std::int32_t>(3 * scale));

    Label pass_loop = pb.newLabel();
    Label y_loop = pb.newLabel();
    Label e_loop = pb.newLabel();
    Label e_next = pb.newLabel();
    Label fill4 = pb.newLabel();
    Label fill1 = pb.newLabel();
    Label fill1_loop = pb.newLabel();
    Label fill_done = pb.newLabel();
    Label y_next = pb.newLabel();

    pb.bind(pass_loop);
    pb.li(y, 0);
    pb.bind(y_loop);
    pb.move(ep, ebase);
    pb.li(en, kEdges);

    pb.bind(e_loop);
    // Active test: y0 <= y < y1 (biased: most edges inactive).
    pb.lw(t0, ep, 8);               // y0
    pb.slt(t1, y, t0);
    pb.bne(t1, 0, e_next);
    pb.lw(t0, ep, 12);              // y1
    pb.slt(t1, y, t0);
    pb.beq(t1, 0, e_next);
    // x = x0 + dx * (y - y0)
    pb.lw(xf, ep, 0);
    pb.lw(t2, ep, 4);
    pb.lw(t0, ep, 8);
    pb.sub(t3, y, t0);
    pb.mul(t3, t2, t3);
    pb.add(xf, xf, t3);
    pb.srai(t2, xf, 8);             // pixel x
    pb.bltz(t2, e_next);            // clip left
    pb.slti(t1, t2, kWidth - 24);
    pb.beq(t1, 0, e_next);          // clip right
    // span pointer = fb + y * 256 + x
    pb.slli(t0, y, 8);              // scaled-add candidate
    pb.add(p, fb, t0);
    pb.add(p, p, t2);
    pb.move(14, p);                 // keep the span start (move idiom)
    pb.li(len, 20);
    pb.li(t3, 0x5a);
    // Fill 4 pixels per iteration with a bumped base pointer.
    pb.bind(fill4);
    pb.slti(t0, len, 4);
    pb.bne(t0, 0, fill1);
    pb.sb(t3, p, 0);
    pb.sb(t3, p, 1);
    pb.sb(t3, p, 2);
    pb.sb(t3, p, 3);
    pb.addi(p, p, 4);               // cross-block ADDI chain
    pb.addi(len, len, -4);
    pb.j(fill4);
    pb.bind(fill1);
    pb.blez(len, fill_done);
    pb.bind(fill1_loop);
    pb.sb(t3, p, 0);
    pb.addi(p, p, 1);
    pb.addi(len, len, -1);
    pb.bgtz(len, fill1_loop);
    pb.bind(fill_done);
    pb.sub(t0, p, 14);              // pixels written this span
    pb.add(15, 15, t0);             // coverage accumulator

    pb.bind(e_next);
    pb.addi(ep, ep, 16);
    pb.addi(en, en, -1);
    pb.bgtz(en, e_loop);
    pb.bind(y_next);
    pb.addi(y, y, 1);
    pb.slti(t0, y, kHeight);
    pb.bne(t0, 0, y_loop);
    pb.addi(pass, pass, -1);
    pb.bgtz(pass, pass_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
