/**
 * @file
 * python analog: a bytecode stack-VM interpreter executing a pair of
 * nested counting loops. Dominant behaviour: byte-granular opcode
 * fetch, a beq dispatch ladder, operand-stack traffic through an
 * explicit stack pointer, and local-variable loads with scaled
 * indexing.
 */

#include "asm/builder.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

namespace
{

enum PyOp : std::uint8_t
{
    P_LOADF = 1,    // push locals[arg]
    P_STOREF = 2,   // pop into locals[arg]
    P_CONST = 3,    // push arg (unsigned byte)
    P_ADD = 4,
    P_SUB = 5,
    P_CMPGT = 6,    // push (a > b)
    P_JTRUE = 7,    // pop; jump to byte offset arg if non-zero
    P_JUMP = 8,
    P_HALTP = 9,
};

} // namespace

Program
buildPython(unsigned scale)
{
    ProgramBuilder pb("python");

    // Bytecode for: for i in range(O): s = 0; j = I
    //               while j: s += j; j -= 1
    // locals: 0=i outer, 1=j, 2=s
    std::vector<std::uint8_t> code;
    auto op2 = [&code](PyOp op, std::uint8_t arg) {
        code.push_back(static_cast<std::uint8_t>(op));
        code.push_back(arg);
    };
    const unsigned outer = 25;      // outer iterations per bytecode run
    op2(P_CONST, outer);
    op2(P_STOREF, 0);
    const std::uint8_t outer_top = static_cast<std::uint8_t>(code.size());
    op2(P_CONST, 0);                // s = 0
    op2(P_STOREF, 2);
    op2(P_CONST, 60);               // j = 60
    op2(P_STOREF, 1);
    const std::uint8_t inner_top = static_cast<std::uint8_t>(code.size());
    op2(P_LOADF, 2);                // s += j
    op2(P_LOADF, 1);
    op2(P_ADD, 0);
    op2(P_STOREF, 2);
    op2(P_LOADF, 1);                // j -= 1
    op2(P_CONST, 1);
    op2(P_SUB, 0);
    op2(P_STOREF, 1);
    op2(P_LOADF, 1);                // while j
    op2(P_JTRUE, inner_top);
    op2(P_LOADF, 0);                // i -= 1
    op2(P_CONST, 1);
    op2(P_SUB, 0);
    op2(P_STOREF, 0);
    op2(P_LOADF, 0);
    op2(P_JTRUE, outer_top);
    op2(P_HALTP, 0);
    (void)outer;

    Addr code_addr = pb.dataBytes(code);
    Addr locals_addr = pb.allocData(16 * 4, 8);
    Addr stack_addr = pb.allocData(128 * 4, 8);
    Addr iter_addr = pb.allocData(4, 4);

    // r4 vpc (byte ptr), r5 vsp, r6 op, r7 arg, r8-r11 temps,
    // r16 code base, r17 locals, r20 outer restart counter.
    const RegIndex vpc = 4, vsp = 5, op = 6, arg = 7;
    const RegIndex t0 = 8, t1 = 9, t2 = 10;
    const RegIndex cbase = 16, loc = 17;

    pb.la(cbase, code_addr);
    pb.la(loc, locals_addr);
    pb.la(vsp, stack_addr);
    pb.la(t0, iter_addr);
    pb.li(t1, static_cast<std::int32_t>(scale));    // bytecode reruns
    pb.sw(t1, t0, 0);
    pb.move(vpc, cbase);

    Label loop = pb.newLabel();
    Label h_loadf = pb.newLabel(), h_storef = pb.newLabel();
    Label h_const = pb.newLabel(), h_add = pb.newLabel();
    Label h_sub = pb.newLabel(), h_cmp = pb.newLabel();
    Label h_jtrue = pb.newLabel(), h_jump = pb.newLabel();
    Label h_halt = pb.newLabel();
    Label jt_taken = pb.newLabel();
    Label restart = pb.newLabel();

    pb.bind(loop);
    pb.lbu(op, vpc, 0);
    pb.lbu(arg, vpc, 1);
    pb.addi(vpc, vpc, 2);           // cross-block immediate chain
    pb.addi(t0, op, -P_LOADF);
    pb.beq(t0, 0, h_loadf);
    pb.addi(t0, op, -P_STOREF);
    pb.beq(t0, 0, h_storef);
    pb.addi(t0, op, -P_CONST);
    pb.beq(t0, 0, h_const);
    pb.addi(t0, op, -P_ADD);
    pb.beq(t0, 0, h_add);
    pb.addi(t0, op, -P_SUB);
    pb.beq(t0, 0, h_sub);
    pb.addi(t0, op, -P_JTRUE);
    pb.beq(t0, 0, h_jtrue);
    pb.addi(t0, op, -P_CMPGT);
    pb.beq(t0, 0, h_cmp);
    pb.addi(t0, op, -P_JUMP);
    pb.beq(t0, 0, h_jump);
    pb.j(h_halt);

    pb.bind(h_loadf);
    pb.slli(t1, arg, 2);            // scaled local index
    pb.lwx(t2, loc, t1);
    pb.move(t0, t2);                // TOS staging copy (move idiom)
    pb.sw(t0, vsp, 0);
    pb.addi(vsp, vsp, 4);
    pb.j(loop);

    pb.bind(h_storef);
    pb.addi(vsp, vsp, -4);
    pb.lw(t2, vsp, 0);
    pb.slli(t1, arg, 2);
    pb.swx(t2, loc, t1);
    pb.j(loop);

    pb.bind(h_const);
    pb.sw(arg, vsp, 0);
    pb.addi(vsp, vsp, 4);
    pb.j(loop);

    pb.bind(h_add);
    pb.addi(vsp, vsp, -4);
    pb.lw(t1, vsp, 0);
    pb.lw(t2, vsp, -4);
    pb.add(t2, t2, t1);
    pb.move(t0, t2);                // result copy (move idiom)
    pb.sw(t0, vsp, -4);
    pb.j(loop);

    pb.bind(h_sub);
    pb.addi(vsp, vsp, -4);
    pb.lw(t1, vsp, 0);
    pb.lw(t2, vsp, -4);
    pb.sub(t2, t2, t1);
    pb.sw(t2, vsp, -4);
    pb.j(loop);

    pb.bind(h_cmp);
    pb.addi(vsp, vsp, -4);
    pb.lw(t1, vsp, 0);
    pb.lw(t2, vsp, -4);
    pb.slt(t2, t1, t2);
    pb.sw(t2, vsp, -4);
    pb.j(loop);

    pb.bind(h_jtrue);
    pb.addi(vsp, vsp, -4);
    pb.lw(t1, vsp, 0);
    pb.bne(t1, 0, jt_taken);
    pb.j(loop);
    pb.bind(jt_taken);
    pb.add(vpc, cbase, arg);
    pb.j(loop);

    pb.bind(h_jump);
    pb.add(vpc, cbase, arg);
    pb.j(loop);

    // The bytecode program is capped by byte offsets, so rerun it to
    // reach the requested scale.
    pb.bind(h_halt);
    pb.la(t0, iter_addr);
    pb.lw(t1, t0, 0);
    pb.addi(t1, t1, -1);
    pb.sw(t1, t0, 0);
    pb.bgtz(t1, restart);
    pb.halt();
    pb.bind(restart);
    pb.move(vpc, cbase);
    pb.la(vsp, stack_addr);
    pb.j(loop);

    return pb.finish();
}

} // namespace tcfill::workloads
