/**
 * @file
 * vortex analog: an in-memory object database running a transaction
 * mix of keyed lookups, field updates and inserts. Dominant
 * behaviour: layered helper functions with register-move argument
 * passing (vortex has the suite's highest move fraction in the
 * paper's Table 2), hash probing, and record field accesses at
 * small displacements.
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildVortex(unsigned scale)
{
    ProgramBuilder pb("vortex");

    constexpr unsigned kRecords = 512;      // 8 words each
    constexpr unsigned kIndex = 1024;       // open-addressed, pow2

    Random rng(0x40e7e8u);
    // Records: [key, f0..f6]; keys unique-ish odd numbers.
    std::vector<std::int32_t> recs(kRecords * 8, 0);
    std::vector<std::int32_t> index(kIndex, -1);
    for (unsigned i = 0; i < kRecords; ++i) {
        std::int32_t key = static_cast<std::int32_t>(2 * i + 1);
        recs[i * 8] = key;
        for (unsigned f = 1; f < 8; ++f)
            recs[i * 8 + f] = static_cast<std::int32_t>(rng.below(997));
        std::size_t h = static_cast<std::size_t>(key * 0x9e37u) %
                        kIndex;
        while (index[h] >= 0)
            h = (h + 1) % kIndex;
        index[h] = static_cast<std::int32_t>(i);
    }

    Addr recs_addr = pb.dataWords(recs);
    Addr index_addr = pb.dataWords(index);

    // Calling convention: args r1-r3, result r2.
    const RegIndex a0 = 1, res = 2, a1 = 3;
    const RegIndex key = 4, h = 5, t0 = 8, t1 = 9, t2 = 10, t3 = 11;
    const RegIndex lcg = 12, txn = 13, acc = 14;
    const RegIndex ridx = 16, rrec = 17;

    Label start = pb.newLabel();
    pb.j(start);

    // find(r1 = key) -> r2 = record address or 0.
    Label find = pb.newLabel();
    Label f_probe = pb.newLabel();
    Label f_miss = pb.newLabel();
    Label f_next = pb.newLabel();
    Label f_hit = pb.newLabel();
    pb.bind(find);
    pb.li(t0, 0x9e37);
    pb.mul(h, a0, t0);
    pb.andi(h, h, kIndex - 1);
    pb.bind(f_probe);
    pb.slli(t1, h, 2);
    pb.lwx(t2, ridx, t1);           // record number or -1
    pb.bltz(t2, f_miss);
    pb.slli(t3, t2, 5);             // record * 32 bytes
    pb.add(t3, rrec, t3);
    pb.lw(t0, t3, 0);               // record key
    pb.beq(t0, a0, f_hit);
    pb.bind(f_next);
    pb.addi(h, h, 1);
    pb.andi(h, h, kIndex - 1);
    pb.j(f_probe);
    pb.bind(f_hit);
    pb.move(res, t3);               // result move
    pb.ret();
    pb.bind(f_miss);
    pb.li(res, 0);
    pb.ret();

    // update(r1 = record addr, r3 = delta) -> r2 = new checksum.
    Label update = pb.newLabel();
    pb.bind(update);
    pb.lw(t0, a0, 4);
    pb.add(t0, t0, a1);
    pb.sw(t0, a0, 4);
    pb.lw(t1, a0, 8);
    pb.addi(t1, t1, 1);
    pb.sw(t1, a0, 8);
    pb.lw(t2, a0, 12);
    pb.xor_(t2, t2, t0);
    pb.sw(t2, a0, 12);
    pb.add(res, t0, t1);
    pb.ret();

    // txn(r1 = key, r3 = delta) -> r2: find then update.
    Label do_txn = pb.newLabel();
    Label t_miss = pb.newLabel();
    pb.bind(do_txn);
    pb.addi(kRegSP, kRegSP, -8);
    pb.sw(kRegRA, kRegSP, 0);
    pb.sw(a1, kRegSP, 4);
    pb.jal(find);
    pb.beq(res, 0, t_miss);
    pb.move(a0, res);               // record address (move)
    pb.lw(a1, kRegSP, 4);
    pb.jal(update);
    pb.bind(t_miss);
    pb.lw(kRegRA, kRegSP, 0);
    pb.addi(kRegSP, kRegSP, 8);
    pb.ret();

    pb.bind(start);
    pb.la(ridx, index_addr);
    pb.la(rrec, recs_addr);
    pb.li(lcg, 12345);
    pb.li(acc, 0);
    pb.li(txn, static_cast<std::int32_t>(2600 * scale));

    Label txn_loop = pb.newLabel();
    pb.bind(txn_loop);
    // key = next LCG value mapped onto the key space (mostly hits)
    pb.li(t0, 1103515245 & 0xffff);
    pb.mul(lcg, lcg, t0);
    pb.addi(lcg, lcg, 12345);
    pb.srli(t1, lcg, 7);
    pb.andi(t1, t1, kRecords - 1);
    pb.slli(key, t1, 1);
    pb.addi(key, key, 1);           // odd keys exist; evens miss
    Label use_key = pb.newLabel();
    pb.andi(t2, lcg, 15);
    pb.bne(t2, 0, use_key);
    pb.addi(key, key, 1);           // 1-in-16: force a missing key
    pb.bind(use_key);
    pb.move(a0, key);               // argument moves
    pb.li(a1, 7);
    pb.jal(do_txn);
    pb.add(acc, acc, res);
    pb.addi(txn, txn, -1);
    pb.bgtz(txn, txn_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
