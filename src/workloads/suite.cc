#include "workloads/suite.hh"

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

const std::vector<Workload> &
suite()
{
    static const std::vector<Workload> s = {
        {"compress", "comp", true,
         "LZW hash-table compressor over synthetic text",
         buildCompress},
        {"gcc", "gcc", true,
         "graph-coloring register allocator over random graphs",
         buildGcc},
        {"go", "go", true,
         "territory/liberty evaluation over a 19x19 board", buildGo},
        {"ijpeg", "ijpeg", true,
         "integer 8x8 DCT and quantization over an image", buildIjpeg},
        {"li", "li", true,
         "cons-cell list interpreter with recursive walks", buildLi},
        {"m88ksim", "m88k", true,
         "RISC CPU interpreter: decode fields, dispatch, execute",
         buildM88ksim},
        {"perl", "perl", true,
         "string hashing and associative-array scanning", buildPerl},
        {"vortex", "vor", true,
         "in-memory DB: hashed lookups and record updates",
         buildVortex},
        {"gnuchess", "ch", false,
         "alpha-beta minimax with piece-square table evaluation",
         buildChess},
        {"ghostscript", "gs", false,
         "fixed-point edge stepping and span rasterization",
         buildGhostscript},
        {"pgp", "pgp", false,
         "multi-precision modular multiplication (bignum)", buildPgp},
        {"gnuplot", "plot", false,
         "fixed-point polynomial function sampling and clipping",
         buildGnuplot},
        {"python", "py", false,
         "bytecode stack-VM interpreter", buildPython},
        {"sim-outorder", "ss", false,
         "event-queue instruction scheduler with dependence bitmaps",
         buildSimOutorder},
        {"tex", "tex", false,
         "hyphenation trie walk and least-badness line breaking",
         buildTex},
    };
    return s;
}

const Workload &
find(const std::string &name)
{
    for (const auto &w : suite()) {
        if (w.name == name || w.shortName == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

Program
build(const std::string &name, unsigned scale)
{
    return find(name).build(scale);
}

} // namespace tcfill::workloads
