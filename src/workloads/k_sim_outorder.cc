/**
 * @file
 * sim-outorder analog: the scheduling kernel of a simulator —
 * a circular event queue driving a 32-entry window of "instructions"
 * with dependence bitmaps. Dominant behaviour: bitmap and/or/shift
 * manipulation, window scans with mostly-not-ready branches, and
 * modulo indexing into the event wheel by mask (scaled stores).
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildSimOutorder(unsigned scale)
{
    ProgramBuilder pb("sim-outorder");

    constexpr unsigned kWindow = 32;
    constexpr unsigned kWheel = 64;      // event wheel slots (pow2)

    // Window entries: dependence bitmap over older entries (sparse).
    Random rng(0x51304du);
    std::vector<std::int32_t> deps(kWindow, 0);
    for (unsigned i = 1; i < kWindow; ++i) {
        for (unsigned d = 0; d < 3; ++d) {
            if (rng.percent(60))
                deps[i] |= 1 << rng.below(i);
        }
    }
    Addr deps_addr = pb.dataWords(deps);
    Addr wheel_addr = pb.allocData(kWheel * 4, 8);

    // r4 cycle, r5 ready mask, r6 issued mask, r7 scan index,
    // r8-r13 temps, r16-r19 bases, r20 run counter.
    const RegIndex cyc = 4, ready = 5, issued = 6, i = 7;
    const RegIndex t0 = 8, t1 = 9, t2 = 10, t3 = 11;
    const RegIndex dbase = 16, wbase = 17, pass = 20;

    pb.la(dbase, deps_addr);
    pb.la(wbase, wheel_addr);
    pb.li(pass, static_cast<std::int32_t>(160 * scale));

    Label run_loop = pb.newLabel();
    Label cyc_loop = pb.newLabel();
    Label scan_loop = pb.newLabel();
    Label scan_next = pb.newLabel();
    Label do_issue = pb.newLabel();
    Label wheel_pop = pb.newLabel();
    Label run_done = pb.newLabel();
    Label clr_loop = pb.newLabel();

    pb.bind(run_loop);
    // Reset state: entry 0 ready, nothing issued, wheel cleared.
    pb.li(ready, 1);
    pb.li(issued, 0);
    pb.li(cyc, 0);
    pb.li(t0, kWheel);
    pb.move(t1, wbase);
    pb.bind(clr_loop);
    pb.sw(0, t1, 0);
    pb.addi(t1, t1, 4);
    pb.addi(t0, t0, -1);
    pb.bgtz(t0, clr_loop);

    pb.bind(cyc_loop);
    // Pop completions scheduled for this cycle from the wheel.
    pb.bind(wheel_pop);
    pb.andi(t0, cyc, kWheel - 1);
    pb.slli(t0, t0, 2);
    pb.lwx(t1, wbase, t0);          // completion mask at slot
    pb.or_(ready, ready, t1);
    pb.swx(0, wbase, t0);           // clear the slot

    // Scan the window for issueable entries: deps subset of ready,
    // not already issued.
    pb.li(i, 0);
    pb.bind(scan_loop);
    pb.li(t0, 1);
    pb.sllv(t0, t0, i);
    pb.and_(t1, issued, t0);
    pb.bne(t1, 0, scan_next);       // already issued (biased late)
    pb.slli(t2, i, 2);
    pb.lwx(t3, dbase, t2);          // dependence bitmap
    pb.and_(t2, t3, ready);
    pb.bne(t2, t3, scan_next);      // some dep not ready (biased)
    pb.bind(do_issue);
    pb.move(12, t0);                // selected-entry mask (move idiom)
    pb.or_(issued, issued, 12);
    // Schedule completion at cycle + 1 + (i & 3).
    pb.andi(t1, i, 3);
    pb.addi(t1, t1, 1);
    pb.add(t1, t1, cyc);
    pb.andi(t1, t1, kWheel - 1);
    pb.slli(t1, t1, 2);
    pb.lwx(t2, wbase, t1);
    pb.or_(t2, t2, t0);
    pb.swx(t2, wbase, t1);
    pb.bind(scan_next);
    pb.addi(i, i, 1);
    pb.slti(t0, i, kWindow);
    pb.bne(t0, 0, scan_loop);

    pb.addi(cyc, cyc, 1);
    // Run until everything is ready or a cycle cap.
    pb.nor(t0, ready, 0);           // ~ready
    pb.beq(t0, 0, run_done);        // all 32 entries ready
    pb.slti(t1, cyc, 200);
    pb.bne(t1, 0, cyc_loop);

    pb.bind(run_done);
    pb.addi(pass, pass, -1);
    pb.bgtz(pass, run_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
