/**
 * @file
 * The fifteen benchmark kernels standing in for the paper's Table 1
 * suite (SPECint95 + common UNIX applications). Each builder returns
 * a linked Program whose dynamic behaviour mimics the
 * optimization-relevant traits of its namesake — see DESIGN.md §4 for
 * the substitution rationale and the per-kernel trait table.
 *
 * @param scale linear work multiplier; scale 1 runs roughly
 *        100K-300K dynamic instructions per kernel.
 */

#ifndef TCFILL_WORKLOADS_KERNELS_HH
#define TCFILL_WORKLOADS_KERNELS_HH

#include "asm/program.hh"

namespace tcfill::workloads
{

Program buildCompress(unsigned scale);     ///< LZW-style compressor
Program buildGcc(unsigned scale);          ///< graph-coloring allocator
Program buildGo(unsigned scale);           ///< board evaluator
Program buildIjpeg(unsigned scale);        ///< integer DCT + quantize
Program buildLi(unsigned scale);           ///< cons-cell list interpreter
Program buildM88ksim(unsigned scale);      ///< CPU interpreter loop
Program buildPerl(unsigned scale);         ///< string hash / scanner
Program buildVortex(unsigned scale);       ///< in-memory DB transactions
Program buildChess(unsigned scale);        ///< minimax board search
Program buildGhostscript(unsigned scale);  ///< fixed-point rasterizer
Program buildPgp(unsigned scale);          ///< bignum modular multiply
Program buildGnuplot(unsigned scale);      ///< fixed-point sampler
Program buildPython(unsigned scale);       ///< bytecode stack VM
Program buildSimOutorder(unsigned scale);  ///< event-queue scheduler
Program buildTex(unsigned scale);          ///< trie + line-break DP

} // namespace tcfill::workloads

#endif // TCFILL_WORKLOADS_KERNELS_HH
