/**
 * @file
 * Registry of the benchmark suite (paper Table 1 analog).
 */

#ifndef TCFILL_WORKLOADS_SUITE_HH
#define TCFILL_WORKLOADS_SUITE_HH

#include <functional>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace tcfill::workloads
{

/** One suite entry. */
struct Workload
{
    std::string name;       ///< paper benchmark name, e.g. "m88ksim"
    std::string shortName;  ///< figure axis label, e.g. "m88k"
    bool specint;           ///< member of SPECint95 (vs UNIX apps)
    std::string traits;     ///< one-line description of the kernel
    std::function<Program(unsigned)> build;
};

/** The full 15-benchmark suite, in the paper's order. */
const std::vector<Workload> &suite();

/** Look up one benchmark by (short or full) name; fatals if unknown. */
const Workload &find(const std::string &name);

/** Build a benchmark's program at the given scale. */
Program build(const std::string &name, unsigned scale = 1);

} // namespace tcfill::workloads

#endif // TCFILL_WORKLOADS_SUITE_HH
