/**
 * @file
 * li analog: cons-cell list processing. Dominant behaviour: pointer
 * chasing through linked cells, deep recursion with stack save /
 * restore, and heavy register moves for argument and result passing
 * (the Lisp-interpreter calling-convention style).
 */

#include "asm/builder.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

Program
buildLi(unsigned scale)
{
    ProgramBuilder pb("li");

    constexpr unsigned kLists = 24;
    constexpr unsigned kCells = 120;    // per list

    // Build the cons heap at assembly time: cell = [car, cdr].
    Random rng(0x11a11u);
    Addr heap = pb.allocData(kLists * kCells * 8, 8);
    std::vector<std::int32_t> heads;
    {
        std::vector<std::int32_t> cells(kLists * kCells * 2);
        for (unsigned l = 0; l < kLists; ++l) {
            Addr base = heap + static_cast<Addr>(l) * kCells * 8;
            heads.push_back(static_cast<std::int32_t>(base));
            // Shuffled cell order makes the chase non-sequential.
            std::vector<unsigned> order(kCells);
            for (unsigned i = 0; i < kCells; ++i)
                order[i] = i;
            for (unsigned i = kCells - 1; i > 0; --i)
                std::swap(order[i], order[rng.below(i + 1)]);
            // Cell 0 is the list head: move it to the front of the
            // traversal order.
            for (unsigned i = 0; i < kCells; ++i) {
                if (order[i] == 0) {
                    std::swap(order[0], order[i]);
                    break;
                }
            }
            for (unsigned i = 0; i < kCells; ++i) {
                unsigned cell = order[i];
                Addr cell_addr = base + cell * 8;
                std::int32_t next =
                    i + 1 < kCells
                        ? static_cast<std::int32_t>(base +
                                                    order[i + 1] * 8)
                        : 0;
                std::size_t idx =
                    static_cast<std::size_t>((cell_addr - heap) / 4);
                cells[idx] =
                    static_cast<std::int32_t>(rng.below(1000));
                cells[idx + 1] = next;
            }
        }
        // Copy prepared cells into the heap segment.
        for (std::size_t i = 0; i < cells.size(); ++i) {
            pb.pokeWord(heap + i * 4, cells[i]);
        }
    }
    Addr heads_addr = pb.dataWords(heads);
    Addr result_addr = pb.allocData(kLists * 4, 4);

    // Conventions: r1 arg, r2 result, r29 sp, r31 ra.
    const RegIndex arg = 1, res = 2;
    const RegIndex l = 4, hptr = 5, t0 = 8, t1 = 9, t2 = 10;
    const RegIndex head = 12, keep = 13;
    const RegIndex rbase = 16, pass = 20;

    Label start = pb.newLabel();
    pb.j(start);

    // sumlist(r1 = cell): recursive sum of cars.
    Label sumlist = pb.newLabel();
    Label sum_rec = pb.newLabel();
    pb.bind(sumlist);
    pb.bne(arg, 0, sum_rec);
    pb.li(res, 0);
    pb.ret();
    pb.bind(sum_rec);
    pb.addi(kRegSP, kRegSP, -8);
    pb.sw(kRegRA, kRegSP, 0);
    pb.lw(t0, arg, 0);              // car
    pb.sw(t0, kRegSP, 4);
    pb.lw(arg, arg, 4);             // cdr -> next arg
    pb.jal(sumlist);
    pb.lw(t0, kRegSP, 4);
    pb.add(res, res, t0);
    pb.lw(kRegRA, kRegSP, 0);
    pb.addi(kRegSP, kRegSP, 8);
    pb.ret();

    // maxcar(r1 = cell): iterative maximum of cars.
    Label maxcar = pb.newLabel();
    Label max_loop = pb.newLabel();
    Label max_skip = pb.newLabel();
    Label max_done = pb.newLabel();
    pb.bind(maxcar);
    pb.li(res, -1);
    pb.bind(max_loop);
    pb.beq(arg, 0, max_done);
    pb.lw(t0, arg, 0);
    pb.slt(t1, res, t0);
    pb.beq(t1, 0, max_skip);
    pb.move(res, t0);
    pb.bind(max_skip);
    pb.lw(arg, arg, 4);
    pb.j(max_loop);
    pb.bind(max_done);
    pb.ret();

    pb.bind(start);
    pb.la(rbase, result_addr);
    pb.li(pass, static_cast<std::int32_t>(10 * scale));

    Label pass_loop = pb.newLabel();
    Label list_loop = pb.newLabel();

    pb.bind(pass_loop);
    pb.li(l, 0);
    pb.bind(list_loop);
    pb.la(hptr, heads_addr);
    pb.slli(t2, l, 2);
    pb.lwx(head, hptr, t2);         // head of list l
    pb.move(arg, head);             // argument move
    pb.jal(sumlist);
    pb.move(keep, res);             // save result (move)
    pb.move(arg, head);
    pb.jal(maxcar);
    pb.add(t1, keep, res);
    pb.slli(t2, l, 2);
    pb.add(t2, rbase, t2);
    pb.sw(t1, t2, 0);
    pb.addi(l, l, 1);
    pb.slti(t0, l, kLists);
    pb.bne(t0, 0, list_loop);
    pb.addi(pass, pass, -1);
    pb.bgtz(pass, pass_loop);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
