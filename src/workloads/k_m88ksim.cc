/**
 * @file
 * m88ksim analog: an instruction-set interpreter running a small
 * guest program. Dominant behaviour: fetch/decode field extraction,
 * a dispatch ladder, and short handlers that bump interpreter
 * pointers with immediate adds — the cross-block ADDI chains that
 * make reassociation shine on interpreters (paper §4.3: m88ksim
 * gains 23% from reassociation alone).
 */

#include "asm/builder.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "workloads/kernels.hh"

namespace tcfill::workloads
{

namespace
{

// Guest opcode encodings: op in bits [31:24], operand in [15:0].
enum GuestOp : std::uint32_t
{
    G_PUSHC = 1,    // push constant
    G_LOAD = 2,     // push local[n]
    G_STORE = 3,    // pop to local[n]
    G_ADD = 4,      // pop two, push sum
    G_SUB = 5,      // pop two, push difference
    G_DUP = 6,      // duplicate top of stack
    G_BNZ = 7,      // pop; branch to word target if non-zero
    G_JMP = 8,      // unconditional branch
    G_HALTG = 9,    // stop the guest
};

std::uint32_t
genc(GuestOp op, std::uint32_t operand = 0)
{
    return (static_cast<std::uint32_t>(op) << 24) | (operand & 0xffff);
}

} // namespace

Program
buildM88ksim(unsigned scale)
{
    ProgramBuilder pb("m88ksim");

    // Guest program: an inner counting loop with some arithmetic —
    // dhrystone in miniature. Locals: 0 = i, 1 = acc, 2 = tmp.
    std::vector<std::int32_t> guest;
    auto emitg = [&guest](std::uint32_t w) {
        guest.push_back(static_cast<std::int32_t>(w));
    };
    fatal_if(scale > 20, "m88ksim: scale must be <= 20 (the guest "
             "accumulator would overflow its tag-free value range)");
    emitg(genc(G_PUSHC, 900 * scale));      // i = N
    emitg(genc(G_STORE, 0));
    emitg(genc(G_PUSHC, 0));                // acc = 0
    emitg(genc(G_STORE, 1));
    const std::uint32_t loop_top =
        static_cast<std::uint32_t>(guest.size());
    emitg(genc(G_LOAD, 1));                 // acc
    emitg(genc(G_LOAD, 0));                 // + i
    emitg(genc(G_ADD));
    emitg(genc(G_DUP));                     // tmp = acc
    emitg(genc(G_STORE, 2));
    emitg(genc(G_STORE, 1));
    emitg(genc(G_LOAD, 2));                 // acc - (acc>>?) flavor
    emitg(genc(G_PUSHC, 3));
    emitg(genc(G_SUB));
    emitg(genc(G_STORE, 2));
    emitg(genc(G_LOAD, 0));                 // i -= 1
    emitg(genc(G_PUSHC, 1));
    emitg(genc(G_SUB));
    emitg(genc(G_DUP));
    emitg(genc(G_STORE, 0));
    emitg(genc(G_BNZ, loop_top * 4));       // while (i), byte target
    emitg(genc(G_HALTG));

    Addr prog_addr = pb.dataWords(guest);
    Addr locals_addr = pb.allocData(32 * 4, 8);
    Addr stack_addr = pb.allocData(256 * 4, 8);

    // r4 guest pc (byte offset), r5 guest sp (byte ptr, grows up),
    // r6 inst, r7 opcode, r8 operand, r9-r12 temps,
    // r16 prog base, r17 locals base.
    const RegIndex gpc = 4, esp = 5, inst = 6, opc = 7, opnd = 8;
    const RegIndex t0 = 9, t1 = 10, t2 = 11;
    const RegIndex prog = 16, locals = 17;

    pb.la(prog, prog_addr);
    pb.la(locals, locals_addr);
    pb.la(esp, stack_addr);
    pb.li(gpc, 0);

    Label loop = pb.newLabel();
    Label h_pushc = pb.newLabel(), h_load = pb.newLabel();
    Label h_store = pb.newLabel(), h_add = pb.newLabel();
    Label h_sub = pb.newLabel(), h_dup = pb.newLabel();
    Label h_bnz = pb.newLabel(), h_jmp = pb.newLabel();
    Label h_halt = pb.newLabel();
    Label bnz_taken = pb.newLabel();

    pb.bind(loop);
    // fetch: inst = prog[gpc]; the guest PC is kept as a byte offset
    // so the fetch needs no shift and the loop-carried gpc chain is a
    // pure ADDI chain (the critical path the fill unit can collapse
    // with cross-iteration reassociation).
    pb.lwx(inst, prog, gpc);
    pb.addi(gpc, gpc, 4);               // reassociation chain seed
    // decode: opcode only; handlers extract the operand field
    pb.srli(opc, inst, 24);
    pb.andi(opnd, inst, 0xffff);
    // dispatch ladder (most frequent first)
    pb.addi(t0, opc, -G_LOAD);
    pb.beq(t0, 0, h_load);
    pb.addi(t0, opc, -G_STORE);
    pb.beq(t0, 0, h_store);
    pb.addi(t0, opc, -G_PUSHC);
    pb.beq(t0, 0, h_pushc);
    pb.addi(t0, opc, -G_ADD);
    pb.beq(t0, 0, h_add);
    pb.addi(t0, opc, -G_SUB);
    pb.beq(t0, 0, h_sub);
    pb.addi(t0, opc, -G_DUP);
    pb.beq(t0, 0, h_dup);
    pb.addi(t0, opc, -G_BNZ);
    pb.beq(t0, 0, h_bnz);
    pb.addi(t0, opc, -G_JMP);
    pb.beq(t0, 0, h_jmp);
    pb.j(h_halt);

    // Handlers carry interpreter-style guard branches (value tag
    // checks, as a dynamically typed VM would) with stack-pointer
    // arithmetic continuing on both sides: the ADDI chains that cross
    // those guards are exactly what fill-unit reassociation collapses
    // (paper §4.3's m88ksim behaviour). The guards test a bit that is
    // never set for this guest, so they are strongly biased and get
    // promoted — but they are still control-flow boundaries a
    // compiler could not optimize across.
    Label trap = pb.newLabel();

    pb.bind(h_pushc);
    pb.addi(esp, esp, 4);               // pre-bump (chain link 1)
    pb.andi(t0, opnd, 0x8000);          // "tag check" guard
    pb.bne(t0, 0, trap);
    pb.sw(opnd, esp, -4);
    pb.j(loop);

    pb.bind(h_load);
    pb.slli(t1, opnd, 2);
    pb.lwx(t2, locals, t1);
    pb.addi(esp, esp, 4);
    pb.srli(t0, t2, 28);                // loaded-value tag guard
    pb.bne(t0, 0, trap);
    pb.sw(t2, esp, -4);
    pb.j(loop);

    pb.bind(h_store);
    pb.addi(esp, esp, -4);
    pb.lw(t2, esp, 0);
    pb.move(t0, t2);                // store-data staging (move idiom)
    pb.slli(t1, opnd, 2);
    pb.swx(t0, locals, t1);
    pb.j(loop);

    pb.bind(h_add);
    pb.addi(esp, esp, -4);              // pop one (chain link 1)
    pb.lw(t1, esp, 0);
    pb.srli(t0, t1, 28);                // operand tag guard
    pb.bne(t0, 0, trap);
    pb.addi(t2, esp, -4);               // folds to esp_in - 8
    pb.lw(t0, t2, 0);
    pb.add(t0, t0, t1);
    pb.sw(t0, t2, 0);
    pb.j(loop);

    pb.bind(h_sub);
    pb.addi(esp, esp, -4);
    pb.lw(t1, esp, 0);
    pb.srli(t0, t1, 28);
    pb.bne(t0, 0, trap);
    pb.addi(t2, esp, -4);               // folds to esp_in - 8
    pb.lw(t0, t2, 0);
    pb.sub(t0, t0, t1);
    pb.sw(t0, t2, 0);
    pb.j(loop);

    pb.bind(h_dup);
    pb.lw(t1, esp, -4);
    pb.addi(esp, esp, 4);
    pb.sw(t1, esp, -4);
    pb.j(loop);

    pb.bind(h_bnz);
    pb.addi(esp, esp, -4);
    pb.lw(t1, esp, 0);
    pb.bne(t1, 0, bnz_taken);
    pb.j(loop);
    pb.bind(bnz_taken);
    pb.move(gpc, opnd);                 // redirect the guest
    pb.j(loop);

    // Unreachable for this guest: tag traps end the run.
    pb.bind(trap);
    pb.halt();

    pb.bind(h_jmp);
    pb.move(gpc, opnd);
    pb.j(loop);

    pb.bind(h_halt);
    pb.halt();
    return pb.finish();
}

} // namespace tcfill::workloads
