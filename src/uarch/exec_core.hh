/**
 * @file
 * The clustered out-of-order execution engine (paper §3): 16
 * symmetric functional units in 4 clusters of 4, a 32-entry
 * reservation station per unit, single-cycle intra-cluster bypass and
 * an extra cycle to forward across clusters, plus the conservative
 * memory scheduler (no memory operation bypasses a store with an
 * unknown address).
 *
 * Two timing-identical schedulers are selectable (DESIGN.md §13):
 * the default producer-driven wakeup/select design (dependent lists
 * built at dispatch, per-FU ready queues, loads re-armed by
 * store-window events) and the legacy per-cycle scan kept as the
 * reference oracle for the timing-identity CI job.
 */

#ifndef TCFILL_UARCH_EXEC_CORE_HH
#define TCFILL_UARCH_EXEC_CORE_HH

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "mem/cache.hh"
#include "uarch/dyn_inst.hh"
#include "uarch/pipe_hooks.hh"

namespace tcfill
{

/** Instruction scheduler implementation (identical cycle timing). */
enum class SchedulerKind : std::uint8_t
{
    Wakeup = 0,     ///< event-driven wakeup/select (default)
    Scan = 1,       ///< per-cycle O(FUs x window) rescan (reference)
};

/** Execution engine configuration. */
struct ExecCoreParams
{
    unsigned numClusters = 4;
    unsigned fusPerCluster = 4;
    unsigned rsEntries = 32;
    SchedulerKind scheduler = SchedulerKind::Wakeup;
    Cycle crossClusterDelay = 1;
};

/** Clustered reservation stations + functional units + bypass. */
class ExecCore
{
  public:
    /**
     * Completion hook: invoked whenever an instruction's completion
     * cycle becomes known (at FU selection, or when a pending store's
     * data arrives). A plain function pointer + context instead of a
     * per-tick std::function keeps the hottest simulator path free of
     * type-erased indirect calls; the sink takes a raw reference and
     * constructs an owning handle only if it keeps the instruction
     * (IssueStage does so for branches it queues for resolution).
     */
    using CompleteFn = void (*)(void *ctx, DynInst &di);

    ExecCore(const ExecCoreParams &params, MemoryHierarchy &mem);

    /** Install the completion sink (IssueStage's resolution filter). */
    void
    setCompleteHook(CompleteFn fn, void *ctx)
    {
        complete_fn_ = fn;
        complete_ctx_ = ctx;
    }

    unsigned numFus() const { return num_fus_; }

    /** Free reservation-station slots for @p fu. */
    unsigned
    rsFree(unsigned fu) const
    {
        panic_if(fu >= num_fus_, "rsFree: bad FU %u", fu);
        return params_.rsEntries -
               static_cast<unsigned>(rs_[fu].size());
    }

    /** Insert an issued instruction into its FU's station. */
    void dispatch(DynInst &di);
    void dispatch(const DynInstPtr &di) { dispatch(*di); }

    /**
     * One scheduling/execution cycle: each free FU selects its oldest
     * ready instruction and begins execution. Completion times are
     * reported through the hook installed with setCompleteHook().
     */
    void tick(Cycle now);

    /**
     * Earliest future cycle (>= @p next) at which this core can do
     * any work: a select of an armed instruction, or the finalization
     * of a pending store whose data timing is known. kNoCycle when no
     * internal event is scheduled (the core is fully quiescent until
     * something external arms an instruction). Used by the
     * Processor's cycle-skipping; the scan scheduler conservatively
     * answers @p next (no skipping) since it keeps no event state.
     */
    Cycle nextEventCycle(Cycle next) const;

    /**
     * Squash instructions with seq in [lo, hi), except those in
     * [rescue_lo, rescue_hi). Removes them from stations and pending
     * queues and marks them Squashed.
     */
    void squashRange(InstSeqNum lo, InstSeqNum hi,
                     InstSeqNum rescue_lo = 0, InstSeqNum rescue_hi = 0);

    /** Notify the core a store retired (leaves the memory window). */
    void retireStore(const DynInstPtr &di);

    /** Cycle an operand becomes usable by a consumer on @p fu. */
    Cycle
    operandAvail(const Operand &op, unsigned fu) const
    {
        if (!op.producer)
            return op.rfAvail;
        const DynInst &p = *op.producer;
        if (p.completeCycle == kNoCycle)
            return kNoCycle;
        Cycle avail = p.completeCycle;
        if (p.fu >= 0 &&
            p.cluster(params_.fusPerCluster) !=
                fu / params_.fusPerCluster) {
            avail += params_.crossClusterDelay;
        }
        return avail;
    }

    /** Total in-flight instructions across all stations. */
    std::size_t occupancy() const;

    // ---- statistics -----------------------------------------------------
    std::uint64_t bypassDelayedCount() const
    {
        return bypass_delayed_.value();
    }
    std::uint64_t selectedCount() const { return selected_.value(); }
    std::uint64_t loadForwardsCount() const
    {
        return load_forwards_.value();
    }

    void regStats(stats::Group &group);

    /**
     * Attach a lifecycle tracer (forwarded by the owning
     * pipeline::IssueStage from Processor::setTracer); emits Execute
     * at FU selection and Complete when an instruction's completion
     * cycle becomes known.
     */
    void setTracer(obs::PipeTracer *tracer) { tracer_ = tracer; }

  private:
    /** A wakeup-armed instruction awaiting FU select. */
    struct ReadyEnt
    {
        DynInst *inst;
        /**
         * Select-eligibility cycle: the operand readyCycle, deferred
         * further when the memory scheduler blocked a load until a
         * known store-address cycle.
         */
        Cycle earliest;
    };

    /** Outcome of one memory-scheduler evaluation (wakeup mode). */
    enum class MemSched : std::uint8_t
    {
        Ok,         ///< may issue (forward set when store-forwarded)
        RetryAt,    ///< blocked until a known cycle (retry field)
        ParkOn,     ///< blocked on a store event (park field)
    };
    struct MemSchedResult
    {
        MemSched kind = MemSched::Ok;
        Cycle retry = 0;
        DynInst *park = nullptr;
        /** Forwarding store (Ok only), nullptr when none. */
        const DynInst *fwd = nullptr;
    };

    void notifyComplete(DynInst &di)
    {
        if (complete_fn_)
            complete_fn_(complete_ctx_, di);
    }

    bool operandsReady(const DynInst &di, Cycle now) const;
    bool memScheduleOk(const DynInst &di, Cycle now,
                       const DynInst *&forward_from) const;
    void startExecution(DynInst &di, Cycle now,
                        const DynInst *forward_from);
    void finalizePendingStores(Cycle now);
    void tickScan(Cycle now);
    void tickWakeup(Cycle now);
    void squashRangeScan(InstSeqNum lo, InstSeqNum hi,
                         InstSeqNum rescue_lo, InstSeqNum rescue_hi);

    // ---- wakeup-mode machinery ------------------------------------------
    void subscribeOperands(DynInst &di);
    void arm(DynInst &di, Cycle earliest);
    void removeFromReady(DynInst &di);
    void removeFromStation(DynInst &di);
    void wakeConsumers(DynInst &producer);
    void wakeStoreWaiters(DynInst &store);
    void resetLoadDeferrals();
    MemSchedResult memSchedule(const DynInst &di, Cycle now) const;

    static std::uintptr_t
    packWake(DynInst *c, unsigned k)
    {
        return reinterpret_cast<std::uintptr_t>(c) | k;
    }
    static DynInst *
    wakePtr(std::uintptr_t v)
    {
        return reinterpret_cast<DynInst *>(v & ~std::uintptr_t(7));
    }
    static unsigned
    wakeTag(std::uintptr_t v)
    {
        return static_cast<unsigned>(v & 7);
    }

    ExecCoreParams params_;
    MemoryHierarchy &mem_;
    unsigned num_fus_;

    // All core-internal containers hold raw pointers: an instruction
    // enters them only at dispatch (when the window already owns it)
    // and leaves them before its window slot is popped — selects empty
    // the station, retireStore() empties the store window during the
    // store's own commit, a pending store cannot retire until its
    // finalize, and every squash removes the squashed range from all
    // of them (RecoveryController::squashWindow) before the window
    // drains it.
    std::vector<std::vector<DynInst *>> rs_;    // per FU
    std::vector<std::vector<ReadyEnt>> ready_;  // per FU (wakeup mode)
    /**
     * Per-FU lazy lower bound on the earliest select-eligibility
     * cycle in ready_[fu]: select skips the whole queue while the
     * bound is in the future. May be stale-low (never stale-high) —
     * a scan that selects nothing retightens it.
     */
    std::vector<Cycle> ready_min_;
    /** Bit per FU with a nonempty ready queue (select iterates this). */
    std::uint32_t ready_mask_ = 0;
    /** Total armed entries across ready_ (select fast-path gate). */
    std::size_t armed_ = 0;
    std::vector<Cycle> fu_busy_until_;

    /** In-flight stores in program order (memory scheduler window). */
    std::deque<DynInst *> store_window_;
    /** Stores executing whose data operand is still outstanding. */
    std::vector<DynInst *> pending_stores_;

    CompleteFn complete_fn_ = nullptr;
    void *complete_ctx_ = nullptr;

    stats::Counter selected_;
    stats::Counter bypass_delayed_;
    stats::Counter load_forwards_;
    stats::Counter mem_sched_stalls_;

    obs::PipeTracer *tracer_ = nullptr;
};

} // namespace tcfill

#endif // TCFILL_UARCH_EXEC_CORE_HH
