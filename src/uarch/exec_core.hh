/**
 * @file
 * The clustered out-of-order execution engine (paper §3): 16
 * symmetric functional units in 4 clusters of 4, a 32-entry
 * reservation station per unit, single-cycle intra-cluster bypass and
 * an extra cycle to forward across clusters, plus the conservative
 * memory scheduler (no memory operation bypasses a store with an
 * unknown address).
 */

#ifndef TCFILL_UARCH_EXEC_CORE_HH
#define TCFILL_UARCH_EXEC_CORE_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "mem/cache.hh"
#include "uarch/dyn_inst.hh"
#include "uarch/pipe_hooks.hh"

namespace tcfill
{

/** Execution engine configuration. */
struct ExecCoreParams
{
    unsigned numClusters = 4;
    unsigned fusPerCluster = 4;
    unsigned rsEntries = 32;
    Cycle crossClusterDelay = 1;
};

/** Clustered reservation stations + functional units + bypass. */
class ExecCore
{
  public:
    ExecCore(const ExecCoreParams &params, MemoryHierarchy &mem);

    unsigned numFus() const { return num_fus_; }

    /** Free reservation-station slots for @p fu. */
    unsigned rsFree(unsigned fu) const;

    /** Insert an issued instruction into its FU's station. */
    void dispatch(const DynInstPtr &di);

    /**
     * One scheduling/execution cycle: each free FU selects its oldest
     * ready instruction and begins execution. Every instruction whose
     * completion time becomes known is reported through @p onComplete
     * (used by the processor to queue branch-resolution events).
     */
    void tick(Cycle now,
              const std::function<void(const DynInstPtr &)> &onComplete);

    /**
     * Squash instructions with seq in [lo, hi), except those in
     * [rescue_lo, rescue_hi). Removes them from stations and pending
     * queues and marks them Squashed.
     */
    void squashRange(InstSeqNum lo, InstSeqNum hi,
                     InstSeqNum rescue_lo = 0, InstSeqNum rescue_hi = 0);

    /** Notify the core a store retired (leaves the memory window). */
    void retireStore(const DynInstPtr &di);

    /** Cycle an operand becomes usable by a consumer on @p fu. */
    Cycle operandAvail(const Operand &op, unsigned fu) const;

    /** Total in-flight instructions across all stations. */
    std::size_t occupancy() const;

    // ---- statistics -----------------------------------------------------
    std::uint64_t bypassDelayedCount() const
    {
        return bypass_delayed_.value();
    }
    std::uint64_t selectedCount() const { return selected_.value(); }

    void regStats(stats::Group &group);

    /**
     * Attach a lifecycle tracer (forwarded by the owning
     * pipeline::IssueStage from Processor::setTracer); emits Execute
     * at FU selection and Complete when an instruction's completion
     * cycle becomes known.
     */
    void setTracer(obs::PipeTracer *tracer) { tracer_ = tracer; }

  private:
    bool operandsReady(const DynInstPtr &di, Cycle now) const;
    bool memScheduleOk(const DynInstPtr &di, Cycle now,
                       DynInstPtr &forward_from) const;
    void startExecution(const DynInstPtr &di, Cycle now,
                        const DynInstPtr &forward_from,
                        const std::function<void(const DynInstPtr &)>
                            &onComplete);
    void finalizePendingStores(
        Cycle now,
        const std::function<void(const DynInstPtr &)> &onComplete);

    ExecCoreParams params_;
    MemoryHierarchy &mem_;
    unsigned num_fus_;

    std::vector<std::vector<DynInstPtr>> rs_;   // per FU
    std::vector<Cycle> fu_busy_until_;

    /** In-flight stores in program order (memory scheduler window). */
    std::deque<DynInstPtr> store_window_;
    /** Stores executing whose data operand is still outstanding. */
    std::vector<DynInstPtr> pending_stores_;

    stats::Counter selected_;
    stats::Counter bypass_delayed_;
    stats::Counter load_forwards_;
    stats::Counter mem_sched_stalls_;

    obs::PipeTracer *tracer_ = nullptr;
};

} // namespace tcfill

#endif // TCFILL_UARCH_EXEC_CORE_HH
