#include "uarch/exec_core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tcfill
{

// The wakeup lists pack a source-operand index into the low bits of a
// DynInst pointer (see packWake).
static_assert(alignof(DynInst) >= 8,
              "wake-list pointer tagging needs 3 free low bits");

ExecCore::ExecCore(const ExecCoreParams &params, MemoryHierarchy &mem)
    : params_(params), mem_(mem),
      num_fus_(params.numClusters * params.fusPerCluster)
{
    fatal_if(num_fus_ == 0, "execution core has no functional units");
    fatal_if(num_fus_ > 32, "ready_mask_ supports at most 32 FUs");
    fatal_if(params.rsEntries == 0, "reservation stations are empty");
    rs_.resize(num_fus_);
    for (auto &station : rs_)
        station.reserve(params.rsEntries);
    ready_.resize(num_fus_);
    for (auto &rq : ready_)
        rq.reserve(params.rsEntries);
    ready_min_.assign(num_fus_, kNoCycle);
    fu_busy_until_.assign(num_fus_, 0);
}

void
ExecCore::dispatch(DynInst &di)
{
    panic_if(di.fu < 0 || static_cast<unsigned>(di.fu) >= num_fus_,
             "dispatch: instruction has no FU");
    panic_if(rs_[di.fu].size() >= params_.rsEntries,
             "dispatch: reservation station %d overflow", di.fu);
    di.stationIdx = static_cast<std::uint32_t>(rs_[di.fu].size());
    rs_[di.fu].push_back(&di);
    if (di.isStore)
        store_window_.push_back(&di);
    if (params_.scheduler == SchedulerKind::Wakeup)
        subscribeOperands(di);
}

bool
ExecCore::operandsReady(const DynInst &di, Cycle now) const
{
    if (di.issueCycle == kNoCycle || now < di.issueCycle + 1)
        return false;   // schedule stage: one cycle after issue
    for (unsigned k = 0; k < di.numSrcs; ++k) {
        if (di.isStore && static_cast<int>(k) == di.dataOperand)
            continue;   // stores wait only for address operands
        Cycle avail = operandAvail(di.src[k],
                                   static_cast<unsigned>(di.fu));
        if (avail == kNoCycle || avail > now)
            return false;
    }
    return true;
}

bool
ExecCore::memScheduleOk(const DynInst &di, Cycle now,
                        const DynInst *&forward_from) const
{
    forward_from = nullptr;
    if (!di.onCorrectPath || di.effAddr == kNoAddr)
        return true;    // wrong-path loads model no real access

    for (const DynInst *s : store_window_) {
        if (s->seq >= di.seq)
            break;
        if (s->squashed())
            continue;
        // No memory operation bypasses a store with an unknown address.
        if (s->addrKnown == kNoCycle || s->addrKnown > now)
            return false;
        if (s->onCorrectPath && s->effAddr != kNoAddr &&
            (s->effAddr >> 2) == (di.effAddr >> 2)) {
            forward_from = s;   // youngest older match wins
        }
    }
    if (forward_from && forward_from->completeCycle == kNoCycle)
        return false;   // forwarding store's data is not ready yet
    return true;
}

// --------------------------------------------------------------------
// Wakeup machinery
// --------------------------------------------------------------------

void
ExecCore::subscribeOperands(DynInst &di)
{
    // One cycle of schedule stage after issue; kNoCycle (never
    // issued) is sticky through the max() chain and keeps the
    // instruction unarmed forever, matching the scan path.
    Cycle ready =
        di.issueCycle == kNoCycle ? kNoCycle : di.issueCycle + 1;
    unsigned pending = 0;
    for (unsigned k = 0; k < di.numSrcs; ++k) {
        if (di.isStore && static_cast<int>(k) == di.dataOperand)
            continue;   // stores wait only for address operands
        const Operand &op = di.src[k];
        if (!op.producer) {
            ready = std::max(ready, op.rfAvail);
            continue;
        }
        if (op.producer->completeCycle != kNoCycle) {
            ready = std::max(
                ready,
                operandAvail(op, static_cast<unsigned>(di.fu)));
            continue;
        }
        // Producer timing unknown: link onto its wake list. The
        // producer fires before it can retire, and the window frees
        // younger consumers only after older producers, so the raw
        // link cannot dangle.
        DynInst &p = *op.producer;
        di.wakeNext[k] = p.wakeHead;
        p.wakeHead = packWake(&di, k);
        ++pending;
    }
    di.readyCycle = ready;
    di.pendingOps = static_cast<std::uint8_t>(pending);
    if (pending == 0 && ready != kNoCycle)
        arm(di, ready);
}

void
ExecCore::arm(DynInst &di, Cycle earliest)
{
    auto &rq = ready_[di.fu];
    di.readyIdx = static_cast<std::uint32_t>(rq.size());
    rq.push_back({&di, earliest});
    ready_min_[di.fu] = std::min(ready_min_[di.fu], earliest);
    ready_mask_ |= 1u << di.fu;
    ++armed_;
}

void
ExecCore::removeFromReady(DynInst &di)
{
    auto &rq = ready_[di.fu];
    const std::uint32_t idx = di.readyIdx;
    const std::uint32_t last =
        static_cast<std::uint32_t>(rq.size()) - 1;
    if (idx != last) {
        rq[idx] = rq[last];
        rq[idx].inst->readyIdx = idx;
    }
    rq.pop_back();
    if (rq.empty()) {
        ready_min_[di.fu] = kNoCycle;
        ready_mask_ &= ~(1u << di.fu);
    }
    di.readyIdx = kNoRsIndex;
    --armed_;
}

void
ExecCore::removeFromStation(DynInst &di)
{
    auto &station = rs_[di.fu];
    const std::uint32_t idx = di.stationIdx;
    const std::uint32_t last =
        static_cast<std::uint32_t>(station.size()) - 1;
    if (idx != last) {
        station[idx] = std::move(station[last]);
        station[idx]->stationIdx = idx;
    }
    station.pop_back();
    di.stationIdx = kNoRsIndex;
}

void
ExecCore::wakeConsumers(DynInst &producer)
{
    std::uintptr_t cur = producer.wakeHead;
    producer.wakeHead = 0;
    while (cur) {
        DynInst *c = wakePtr(cur);
        const unsigned k = wakeTag(cur);
        cur = c->wakeNext[k];
        c->wakeNext[k] = 0;
        if (c->squashed())
            continue;
        Cycle avail = producer.completeCycle;
        if (producer.fu >= 0 &&
            producer.cluster(params_.fusPerCluster) !=
                static_cast<unsigned>(c->fu) /
                    params_.fusPerCluster) {
            avail += params_.crossClusterDelay;
        }
        c->readyCycle = std::max(c->readyCycle, avail);
        if (c->pendingOps > 0 && --c->pendingOps == 0 &&
            c->readyCycle != kNoCycle) {
            arm(*c, c->readyCycle);
        }
    }
}

void
ExecCore::wakeStoreWaiters(DynInst &store)
{
    DynInst *cur = store.memWaiterHead;
    store.memWaiterHead = nullptr;
    while (cur) {
        DynInst *next = cur->memWaiterNext;
        cur->memWaiterNext = nullptr;
        if (!cur->squashed()) {
            // Re-arm; the next select attempt re-evaluates the whole
            // store window (it may defer or park again).
            Cycle at = cur->readyCycle;
            if (store.addrKnown != kNoCycle)
                at = std::max(at, store.addrKnown);
            arm(*cur, at);
        }
        cur = next;
    }
}

void
ExecCore::resetLoadDeferrals()
{
    // A store left the window mid-flight (squash): any load whose
    // eligibility was deferred to a known store-address cycle may now
    // be selectable earlier, exactly as the per-cycle scan would
    // discover on its next tick.
    for (unsigned fu = 0; fu < num_fus_; ++fu) {
        for (ReadyEnt &e : ready_[fu]) {
            if (e.inst->isLoad && e.earliest > e.inst->readyCycle) {
                e.earliest = e.inst->readyCycle;
                ready_min_[fu] =
                    std::min(ready_min_[fu], e.earliest);
            }
        }
    }
}

ExecCore::MemSchedResult
ExecCore::memSchedule(const DynInst &di, Cycle now) const
{
    MemSchedResult res;
    if (!di.onCorrectPath || di.effAddr == kNoAddr)
        return res;     // wrong-path loads model no real access

    Cycle retry = 0;
    DynInst *fwd = nullptr;
    for (DynInst *s : store_window_) {
        if (s->seq >= di.seq)
            break;
        if (s->squashed())
            continue;
        if (s->addrKnown == kNoCycle) {
            // Blocked until this store AGENs: park on it instead of
            // polling (re-armed by wakeStoreWaiters).
            res.kind = MemSched::ParkOn;
            res.park = s;
            return res;
        }
        if (s->addrKnown > now) {
            retry = std::max(retry, s->addrKnown);
        } else if (s->onCorrectPath && s->effAddr != kNoAddr &&
                   (s->effAddr >> 2) == (di.effAddr >> 2)) {
            fwd = s;        // youngest older match wins
        }
    }
    if (retry > now) {
        // Every blocking address is known: sleep until the last one.
        res.kind = MemSched::RetryAt;
        res.retry = retry;
        return res;
    }
    if (fwd && fwd->completeCycle == kNoCycle) {
        // Forwarding store's data is not ready; its completion event
        // re-arms us.
        res.kind = MemSched::ParkOn;
        res.park = fwd;
        return res;
    }
    res.fwd = fwd;
    return res;
}

// --------------------------------------------------------------------
// Execution
// --------------------------------------------------------------------

void
ExecCore::startExecution(DynInst &di, Cycle now,
                         const DynInst *forward_from)
{
    di.startCycle = now;
    ++selected_;
    tracePipe(tracer_, obs::PipeStage::Execute, di, now);

    // Bypass-delay accounting (paper figure 7): did the last-arriving
    // source value arrive later than it would have with a free
    // (zero-latency) cross-cluster network?
    Cycle max_with = 0;
    Cycle max_without = 0;
    for (unsigned k = 0; k < di.numSrcs; ++k) {
        if (di.isStore && static_cast<int>(k) == di.dataOperand)
            continue;
        const Operand &op = di.src[k];
        Cycle with = operandAvail(op, static_cast<unsigned>(di.fu));
        Cycle without =
            op.producer ? op.producer->completeCycle : op.rfAvail;
        if (with != kNoCycle) {
            max_with = std::max(max_with, with);
            max_without = std::max(max_without, without);
        }
    }
    if (max_with > max_without) {
        di.bypassDelayed = true;
        ++bypass_delayed_;
    }

    // Functional-unit occupancy: divides are unpipelined.
    fu_busy_until_[di.fu] =
        opClass(di.inst.op) == OpClass::IntDiv ? now + di.latency
                                               : now + 1;

    // Release producer references for operands we no longer need:
    // loop-carried dependence chains would otherwise keep the entire
    // dynamic history alive through shared_ptr links. The store-data
    // operand must survive until the store's completion is known.
    for (unsigned k = 0; k < di.numSrcs; ++k) {
        if (di.isStore && static_cast<int>(k) == di.dataOperand)
            continue;
        di.src[k].producer = nullptr;
    }

    if (di.isStore) {
        di.phase = InstPhase::Executing;
        di.addrKnown = now + 1;
        if (di.onCorrectPath && di.effAddr != kNoAddr)
            mem_.accessData(di.effAddr, now + 1);   // write-allocate
        // Complete once the store data is available.
        if (di.dataOperand >= 0) {
            Cycle data = operandAvail(
                di.src[di.dataOperand],
                static_cast<unsigned>(di.fu));
            if (data != kNoCycle) {
                di.completeCycle = std::max(di.addrKnown, data);
                di.phase = InstPhase::Complete;
                di.src[di.dataOperand].producer = nullptr;
                tracePipe(tracer_, obs::PipeStage::Complete, di,
                          di.completeCycle);
                wakeConsumers(di);
                notifyComplete(di);
            } else {
                pending_stores_.push_back(&di);
            }
        } else {
            di.completeCycle = di.addrKnown;
            di.phase = InstPhase::Complete;
            tracePipe(tracer_, obs::PipeStage::Complete, di,
                      di.completeCycle);
            wakeConsumers(di);
            notifyComplete(di);
        }
        wakeStoreWaiters(di);   // address (and maybe data) now known
        return;
    }

    if (di.isLoad) {
        const Cycle agen_done = now + 1;
        if (!di.onCorrectPath || di.effAddr == kNoAddr) {
            di.completeCycle = agen_done + 1;
        } else if (forward_from) {
            di.completeCycle =
                std::max(agen_done, forward_from->completeCycle) + 1;
            ++load_forwards_;
        } else {
            Cycle done = mem_.accessData(di.effAddr, agen_done);
            di.completeCycle = done == agen_done ? agen_done + 1 : done;
        }
        di.phase = InstPhase::Complete;
        tracePipe(tracer_, obs::PipeStage::Complete, di,
                  di.completeCycle);
        wakeConsumers(di);
        notifyComplete(di);
        return;
    }

    di.completeCycle = now + di.latency;
    di.phase = InstPhase::Complete;
    tracePipe(tracer_, obs::PipeStage::Complete, di,
              di.completeCycle);
    wakeConsumers(di);
    notifyComplete(di);
}

void
ExecCore::finalizePendingStores(Cycle now)
{
    (void)now;
    auto it = pending_stores_.begin();
    while (it != pending_stores_.end()) {
        DynInst &s = **it;
        if (s.squashed()) {
            it = pending_stores_.erase(it);
            continue;
        }
        Cycle data = operandAvail(s.src[s.dataOperand],
                                  static_cast<unsigned>(s.fu));
        if (data != kNoCycle) {
            s.completeCycle = std::max(s.addrKnown, data);
            s.phase = InstPhase::Complete;
            s.src[s.dataOperand].producer = nullptr;
            tracePipe(tracer_, obs::PipeStage::Complete, s,
                      s.completeCycle);
            wakeConsumers(s);
            wakeStoreWaiters(s);
            notifyComplete(s);
            it = pending_stores_.erase(it);
        } else {
            ++it;
        }
    }
}

void
ExecCore::tick(Cycle now)
{
    if (params_.scheduler == SchedulerKind::Wakeup)
        tickWakeup(now);
    else
        tickScan(now);
}

void
ExecCore::tickScan(Cycle now)
{
    finalizePendingStores(now);

    for (unsigned fu = 0; fu < num_fus_; ++fu) {
        if (fu_busy_until_[fu] > now)
            continue;
        auto &station = rs_[fu];
        // Oldest-first select among ready instructions.
        std::size_t pick = station.size();
        InstSeqNum best_seq = ~InstSeqNum(0);
        const DynInst *pick_forward = nullptr;
        for (std::size_t i = 0; i < station.size(); ++i) {
            const DynInst *di = station[i];
            if (di->seq >= best_seq)
                continue;
            if (!operandsReady(*di, now))
                continue;
            const DynInst *forward = nullptr;
            if (di->isLoad && !memScheduleOk(*di, now, forward)) {
                ++mem_sched_stalls_;
                continue;
            }
            pick = i;
            best_seq = di->seq;
            pick_forward = forward;
        }
        if (pick == station.size())
            continue;
        DynInst *di = station[pick];
        station.erase(station.begin() +
                      static_cast<std::ptrdiff_t>(pick));
        startExecution(*di, now, pick_forward);
    }
}

void
ExecCore::tickWakeup(Cycle now)
{
    if (!pending_stores_.empty())
        finalizePendingStores(now);
    if (armed_ == 0)
        return;

    // Only FUs with armed instructions participate (ascending order,
    // identical to a full scan of the per-FU queues).
    for (std::uint32_t mask = ready_mask_; mask; mask &= mask - 1) {
        const unsigned fu =
            static_cast<unsigned>(__builtin_ctz(mask));
        if (fu_busy_until_[fu] > now || ready_min_[fu] > now)
            continue;
        auto &rq = ready_[fu];
        // Oldest-first select: one min-seq pass over the (unsorted)
        // ready queue. A memory-blocked load leaves the eligible set
        // (its earliest is bumped past now, or it parks on a store),
        // so re-scanning visits candidates in exactly the seq order a
        // sorted walk would. Arms performed by startExecution() land
        // with earliest >= now + 1 and cannot be selected this cycle.
        for (;;) {
            DynInst *cand = nullptr;
            Cycle min_future = kNoCycle;
            for (const ReadyEnt &e : rq) {
                if (e.earliest <= now) {
                    if (!cand || e.inst->seq < cand->seq)
                        cand = e.inst;
                } else {
                    min_future = std::min(min_future, e.earliest);
                }
            }
            if (!cand) {
                // Nothing eligible: the scan just computed the exact
                // minimum, so retighten the lazy bound.
                ready_min_[fu] = min_future;
                break;
            }
            const DynInst *forward = nullptr;
            if (cand->isLoad) {
                MemSchedResult r = memSchedule(*cand, now);
                if (r.kind == MemSched::RetryAt) {
                    ++mem_sched_stalls_;
                    rq[cand->readyIdx].earliest = r.retry;
                    continue;
                }
                if (r.kind == MemSched::ParkOn) {
                    ++mem_sched_stalls_;
                    removeFromReady(*cand);
                    cand->memWaiterNext = r.park->memWaiterHead;
                    r.park->memWaiterHead = cand;
                    continue;
                }
                forward = r.fwd;
            }
            removeFromReady(*cand);
            removeFromStation(*cand);
            startExecution(*cand, now, forward);
            break;
        }
    }
}

Cycle
ExecCore::nextEventCycle(Cycle next) const
{
    if (params_.scheduler == SchedulerKind::Scan)
        return next;    // the scan path keeps no event state: no skip

    Cycle best = kNoCycle;
    for (const DynInst *s : pending_stores_) {
        if (s->squashed())
            continue;   // drained lazily; timing-invisible
        if (operandAvail(s->src[s->dataOperand],
                         static_cast<unsigned>(s->fu)) != kNoCycle) {
            best = next;    // finalizes on the very next tick
            break;
        }
    }
    if (armed_ == 0)
        return best;
    for (std::uint32_t mask = ready_mask_; mask && best > next;
         mask &= mask - 1) {
        const unsigned fu =
            static_cast<unsigned>(__builtin_ctz(mask));
        Cycle m = kNoCycle;
        for (const ReadyEnt &e : ready_[fu])
            m = std::min(m, e.earliest);
        Cycle cand = std::max(std::max(m, fu_busy_until_[fu]), next);
        best = std::min(best, cand);
    }
    return best;
}

// --------------------------------------------------------------------
// Squash / retire / bookkeeping
// --------------------------------------------------------------------

void
ExecCore::squashRangeScan(InstSeqNum lo, InstSeqNum hi,
                          InstSeqNum rescue_lo, InstSeqNum rescue_hi)
{
    auto in_range = [&](const DynInst *di) {
        if (di->seq < lo || di->seq >= hi)
            return false;
        if (di->seq >= rescue_lo && di->seq < rescue_hi)
            return false;
        return true;
    };

    for (auto &station : rs_) {
        std::erase_if(station, [&](DynInst *di) {
            if (!in_range(di))
                return false;
            di->phase = InstPhase::Squashed;
            return true;
        });
    }
    std::erase_if(pending_stores_, [&](DynInst *di) {
        if (!in_range(di))
            return false;
        di->phase = InstPhase::Squashed;
        return true;
    });
    std::erase_if(store_window_, in_range);
}

void
ExecCore::squashRange(InstSeqNum lo, InstSeqNum hi,
                      InstSeqNum rescue_lo, InstSeqNum rescue_hi)
{
    if (params_.scheduler == SchedulerKind::Scan) {
        squashRangeScan(lo, hi, rescue_lo, rescue_hi);
        return;
    }

    auto in_range = [&](const DynInst *di) {
        if (di->seq < lo || di->seq >= hi)
            return false;
        if (di->seq >= rescue_lo && di->seq < rescue_hi)
            return false;
        return true;
    };

    // Stations first so later waiter-list walks see the squashed
    // phase; swap-with-back removal, no mid-vector erase. (The window
    // still owns the instruction: removal cannot free it.)
    for (auto &station : rs_) {
        for (std::size_t i = 0; i < station.size();) {
            if (!in_range(station[i])) {
                ++i;
                continue;
            }
            DynInst *di = station[i];
            di->phase = InstPhase::Squashed;
            if (di->readyIdx != kNoRsIndex)
                removeFromReady(*di);
            removeFromStation(*di);
            // di's slot now holds the previous back entry: revisit i.
        }
    }
    std::erase_if(pending_stores_, [&](DynInst *di) {
        if (!in_range(di))
            return false;
        di->phase = InstPhase::Squashed;
        return true;
    });
    // Squashed stores release their parked loads; any store leaving
    // the window may also unblock loads deferred to a known
    // store-address cycle.
    bool store_removed = false;
    for (auto it = store_window_.begin();
         it != store_window_.end();) {
        if (!in_range(*it)) {
            ++it;
            continue;
        }
        DynInst *s = *it;
        it = store_window_.erase(it);
        store_removed = true;
        wakeStoreWaiters(*s);
    }
    if (store_removed)
        resetLoadDeferrals();
}

void
ExecCore::retireStore(const DynInstPtr &di)
{
    auto it = std::find(store_window_.begin(), store_window_.end(),
                        di.get());
    if (it != store_window_.end())
        store_window_.erase(it);
}

std::size_t
ExecCore::occupancy() const
{
    std::size_t n = 0;
    for (const auto &station : rs_)
        n += station.size();
    return n;
}

void
ExecCore::regStats(stats::Group &group)
{
    group.addCounter("core.selected", selected_,
                     "instructions issued to functional units");
    group.addCounter("core.bypass_delayed", bypass_delayed_,
                     "instructions whose last operand was delayed by "
                     "cross-cluster bypass");
    group.addCounter("core.load_forwards", load_forwards_,
                     "loads satisfied by store forwarding");
    // Not a timing fact: the scan scheduler counts one stall per
    // blocked scan attempt (re-scanned every cycle) while the wakeup
    // scheduler counts one per RetryAt/ParkOn event, so the value is
    // scheduler-implementation-dependent even though timing is
    // bit-identical. Registered non-timing so the obs::Timeline
    // interval series stays byte-equal across --scheduler variants.
    group.addCounter("core.mem_sched_stalls", mem_sched_stalls_,
                     "load selects blocked by unknown store addresses",
                     /*timing=*/false);
}

} // namespace tcfill
