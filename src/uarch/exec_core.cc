#include "uarch/exec_core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tcfill
{

ExecCore::ExecCore(const ExecCoreParams &params, MemoryHierarchy &mem)
    : params_(params), mem_(mem),
      num_fus_(params.numClusters * params.fusPerCluster)
{
    fatal_if(num_fus_ == 0, "execution core has no functional units");
    fatal_if(params.rsEntries == 0, "reservation stations are empty");
    rs_.resize(num_fus_);
    for (auto &station : rs_)
        station.reserve(params.rsEntries);
    fu_busy_until_.assign(num_fus_, 0);
}

unsigned
ExecCore::rsFree(unsigned fu) const
{
    panic_if(fu >= num_fus_, "rsFree: bad FU %u", fu);
    return params_.rsEntries - static_cast<unsigned>(rs_[fu].size());
}

void
ExecCore::dispatch(const DynInstPtr &di)
{
    panic_if(di->fu < 0 || static_cast<unsigned>(di->fu) >= num_fus_,
             "dispatch: instruction has no FU");
    panic_if(rs_[di->fu].size() >= params_.rsEntries,
             "dispatch: reservation station %d overflow", di->fu);
    rs_[di->fu].push_back(di);
    if (di->isStore)
        store_window_.push_back(di);
}

Cycle
ExecCore::operandAvail(const Operand &op, unsigned fu) const
{
    if (!op.producer)
        return op.rfAvail;
    const DynInst &p = *op.producer;
    if (p.completeCycle == kNoCycle)
        return kNoCycle;
    Cycle avail = p.completeCycle;
    if (p.fu >= 0 &&
        p.cluster(params_.fusPerCluster) !=
            fu / params_.fusPerCluster) {
        avail += params_.crossClusterDelay;
    }
    return avail;
}

bool
ExecCore::operandsReady(const DynInstPtr &di, Cycle now) const
{
    if (di->issueCycle == kNoCycle || now < di->issueCycle + 1)
        return false;   // schedule stage: one cycle after issue
    for (unsigned k = 0; k < di->numSrcs; ++k) {
        if (di->isStore && static_cast<int>(k) == di->dataOperand)
            continue;   // stores wait only for address operands
        Cycle avail = operandAvail(di->src[k],
                                   static_cast<unsigned>(di->fu));
        if (avail == kNoCycle || avail > now)
            return false;
    }
    return true;
}

bool
ExecCore::memScheduleOk(const DynInstPtr &di, Cycle now,
                        DynInstPtr &forward_from) const
{
    forward_from = nullptr;
    if (!di->onCorrectPath || di->effAddr == kNoAddr)
        return true;    // wrong-path loads model no real access

    for (const auto &s : store_window_) {
        if (s->seq >= di->seq)
            break;
        if (s->squashed())
            continue;
        // No memory operation bypasses a store with an unknown address.
        if (s->addrKnown == kNoCycle || s->addrKnown > now)
            return false;
        if (s->onCorrectPath && s->effAddr != kNoAddr &&
            (s->effAddr >> 2) == (di->effAddr >> 2)) {
            forward_from = s;   // youngest older match wins
        }
    }
    if (forward_from && forward_from->completeCycle == kNoCycle)
        return false;   // forwarding store's data is not ready yet
    return true;
}

void
ExecCore::startExecution(const DynInstPtr &di, Cycle now,
                         const DynInstPtr &forward_from,
                         const std::function<void(const DynInstPtr &)>
                             &onComplete)
{
    di->startCycle = now;
    ++selected_;
    tracePipe(tracer_, obs::PipeStage::Execute, *di, now);

    // Bypass-delay accounting (paper figure 7): did the last-arriving
    // source value arrive later than it would have with a free
    // (zero-latency) cross-cluster network?
    Cycle max_with = 0;
    Cycle max_without = 0;
    for (unsigned k = 0; k < di->numSrcs; ++k) {
        if (di->isStore && static_cast<int>(k) == di->dataOperand)
            continue;
        const Operand &op = di->src[k];
        Cycle with = operandAvail(op, static_cast<unsigned>(di->fu));
        Cycle without =
            op.producer ? op.producer->completeCycle : op.rfAvail;
        if (with != kNoCycle) {
            max_with = std::max(max_with, with);
            max_without = std::max(max_without, without);
        }
    }
    if (max_with > max_without) {
        di->bypassDelayed = true;
        ++bypass_delayed_;
    }

    // Functional-unit occupancy: divides are unpipelined.
    fu_busy_until_[di->fu] =
        opClass(di->inst.op) == OpClass::IntDiv ? now + di->latency
                                                : now + 1;

    // Release producer references for operands we no longer need:
    // loop-carried dependence chains would otherwise keep the entire
    // dynamic history alive through shared_ptr links. The store-data
    // operand must survive until the store's completion is known.
    for (unsigned k = 0; k < di->numSrcs; ++k) {
        if (di->isStore && static_cast<int>(k) == di->dataOperand)
            continue;
        di->src[k].producer = nullptr;
    }

    if (di->isStore) {
        di->phase = InstPhase::Executing;
        di->addrKnown = now + 1;
        if (di->onCorrectPath && di->effAddr != kNoAddr)
            mem_.accessData(di->effAddr, now + 1);  // write-allocate
        // Complete once the store data is available.
        if (di->dataOperand >= 0) {
            Cycle data = operandAvail(
                di->src[di->dataOperand],
                static_cast<unsigned>(di->fu));
            if (data != kNoCycle) {
                di->completeCycle = std::max(di->addrKnown, data);
                di->phase = InstPhase::Complete;
                di->src[di->dataOperand].producer = nullptr;
                tracePipe(tracer_, obs::PipeStage::Complete, *di,
                          di->completeCycle);
                onComplete(di);
            } else {
                pending_stores_.push_back(di);
            }
        } else {
            di->completeCycle = di->addrKnown;
            di->phase = InstPhase::Complete;
            tracePipe(tracer_, obs::PipeStage::Complete, *di,
                      di->completeCycle);
            onComplete(di);
        }
        return;
    }

    if (di->isLoad) {
        const Cycle agen_done = now + 1;
        if (!di->onCorrectPath || di->effAddr == kNoAddr) {
            di->completeCycle = agen_done + 1;
        } else if (forward_from) {
            di->completeCycle =
                std::max(agen_done, forward_from->completeCycle) + 1;
            ++load_forwards_;
        } else {
            Cycle done = mem_.accessData(di->effAddr, agen_done);
            di->completeCycle = done == agen_done ? agen_done + 1 : done;
        }
        di->phase = InstPhase::Complete;
        tracePipe(tracer_, obs::PipeStage::Complete, *di,
                  di->completeCycle);
        onComplete(di);
        return;
    }

    di->completeCycle = now + di->latency;
    di->phase = InstPhase::Complete;
    tracePipe(tracer_, obs::PipeStage::Complete, *di,
              di->completeCycle);
    onComplete(di);
}

void
ExecCore::finalizePendingStores(
    Cycle now, const std::function<void(const DynInstPtr &)> &onComplete)
{
    auto it = pending_stores_.begin();
    while (it != pending_stores_.end()) {
        DynInstPtr s = *it;
        if (s->squashed()) {
            it = pending_stores_.erase(it);
            continue;
        }
        Cycle data = operandAvail(s->src[s->dataOperand],
                                  static_cast<unsigned>(s->fu));
        if (data != kNoCycle) {
            s->completeCycle = std::max(s->addrKnown, data);
            s->phase = InstPhase::Complete;
            s->src[s->dataOperand].producer = nullptr;
            tracePipe(tracer_, obs::PipeStage::Complete, *s,
                      s->completeCycle);
            onComplete(s);
            it = pending_stores_.erase(it);
        } else {
            ++it;
        }
    }
}

void
ExecCore::tick(Cycle now,
               const std::function<void(const DynInstPtr &)> &onComplete)
{
    finalizePendingStores(now, onComplete);

    for (unsigned fu = 0; fu < num_fus_; ++fu) {
        if (fu_busy_until_[fu] > now)
            continue;
        auto &station = rs_[fu];
        // Oldest-first select among ready instructions.
        std::size_t pick = station.size();
        InstSeqNum best_seq = ~InstSeqNum(0);
        DynInstPtr pick_forward;
        for (std::size_t i = 0; i < station.size(); ++i) {
            const DynInstPtr &di = station[i];
            if (di->seq >= best_seq)
                continue;
            if (!operandsReady(di, now))
                continue;
            DynInstPtr forward;
            if (di->isLoad && !memScheduleOk(di, now, forward)) {
                ++mem_sched_stalls_;
                continue;
            }
            pick = i;
            best_seq = di->seq;
            pick_forward = std::move(forward);
        }
        if (pick == station.size())
            continue;
        DynInstPtr di = station[pick];
        station.erase(station.begin() +
                      static_cast<std::ptrdiff_t>(pick));
        startExecution(di, now, pick_forward, onComplete);
    }
}

void
ExecCore::squashRange(InstSeqNum lo, InstSeqNum hi,
                      InstSeqNum rescue_lo, InstSeqNum rescue_hi)
{
    auto in_range = [&](const DynInstPtr &di) {
        if (di->seq < lo || di->seq >= hi)
            return false;
        if (di->seq >= rescue_lo && di->seq < rescue_hi)
            return false;
        return true;
    };

    for (auto &station : rs_) {
        std::erase_if(station, [&](const DynInstPtr &di) {
            if (!in_range(di))
                return false;
            di->phase = InstPhase::Squashed;
            return true;
        });
    }
    std::erase_if(pending_stores_, [&](const DynInstPtr &di) {
        if (!in_range(di))
            return false;
        di->phase = InstPhase::Squashed;
        return true;
    });
    std::erase_if(store_window_, in_range);
}

void
ExecCore::retireStore(const DynInstPtr &di)
{
    auto it = std::find(store_window_.begin(), store_window_.end(), di);
    if (it != store_window_.end())
        store_window_.erase(it);
}

std::size_t
ExecCore::occupancy() const
{
    std::size_t n = 0;
    for (const auto &station : rs_)
        n += station.size();
    return n;
}

void
ExecCore::regStats(stats::Group &group)
{
    group.addCounter("core.selected", selected_,
                     "instructions issued to functional units");
    group.addCounter("core.bypass_delayed", bypass_delayed_,
                     "instructions whose last operand was delayed by "
                     "cross-cluster bypass");
    group.addCounter("core.load_forwards", load_forwards_,
                     "loads satisfied by store forwarding");
    group.addCounter("core.mem_sched_stalls", mem_sched_stalls_,
                     "load selects blocked by unknown store addresses");
}

} // namespace tcfill
