/**
 * @file
 * Slab/free-list storage for dynamic-instruction control blocks.
 *
 * The timing model allocates one DynInst per fetched instruction —
 * by far the hottest allocation in a simulation. SlabArena hands out
 * fixed-size blocks carved from large slabs and recycles them through
 * a free list the moment the last DynInstPtr drops (for an
 * instruction, at or shortly after retirement), so steady-state
 * simulation performs no heap allocation at all on the fetch path.
 *
 * Used by the intrusive DynInstPtr (see dyn_inst.hh): the refcount
 * lives inside the pooled DynInst itself and the block returns here on
 * the last release, so reference-counted lifetime semantics are
 * preserved exactly — a block is never reused while any Operand,
 * window slot or resolution event still points at it, which keeps
 * recycling safe (no use-after-free) by construction.
 *
 * The arena is intentionally NOT thread-safe: each Processor owns one
 * and every DynInstPtr stays inside that Processor. Concurrent
 * simulations (SimRunner) each use their own arena.
 */

#ifndef TCFILL_UARCH_INST_POOL_HH
#define TCFILL_UARCH_INST_POOL_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "common/logging.hh"

namespace tcfill
{

/** Fixed-block slab allocator with a LIFO free list. */
class SlabArena
{
  public:
    /** Blocks per slab; sized so a slab holds a full window's worth. */
    static constexpr std::size_t kBlocksPerSlab = 1024;

    SlabArena() = default;
    SlabArena(const SlabArena &) = delete;
    SlabArena &operator=(const SlabArena &) = delete;

    ~SlabArena()
    {
        panic_if(live_ != 0,
                 "SlabArena destroyed with %llu blocks still live",
                 static_cast<unsigned long long>(live_));
        for (void *slab : slabs_)
            ::operator delete(slab, std::align_val_t(block_align_));
    }

    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        if (block_bytes_ == 0) {
            // First allocation fixes the block geometry.
            block_align_ = align < alignof(std::max_align_t)
                ? alignof(std::max_align_t) : align;
            block_bytes_ = (bytes + block_align_ - 1) &
                ~(block_align_ - 1);
        }
        panic_if(bytes > block_bytes_ || align > block_align_,
                 "SlabArena: mixed block geometry (%zu/%zu vs %zu/%zu)",
                 bytes, align, block_bytes_, block_align_);
        ++live_;
        if (!free_.empty()) {
            void *p = free_.back();
            free_.pop_back();
            ++reused_;
            return p;
        }
        if (slabs_.empty() || slab_used_ == kBlocksPerSlab) {
            slabs_.push_back(::operator new(
                kBlocksPerSlab * block_bytes_,
                std::align_val_t(block_align_)));
            slab_used_ = 0;
        }
        void *p = static_cast<std::byte *>(slabs_.back()) +
            slab_used_ * block_bytes_;
        ++slab_used_;
        return p;
    }

    void
    deallocate(void *p)
    {
        panic_if(live_ == 0, "SlabArena: deallocate underflow");
        --live_;
        free_.push_back(p);
    }

    /** Blocks currently handed out. */
    std::uint64_t live() const { return live_; }
    /** Allocations served from the free list (recycled blocks). */
    std::uint64_t reused() const { return reused_; }
    /** Slabs reserved from the heap. */
    std::size_t slabs() const { return slabs_.size(); }

  private:
    std::size_t block_bytes_ = 0;
    std::size_t block_align_ = 0;
    std::vector<void *> slabs_;
    std::size_t slab_used_ = 0;
    std::vector<void *> free_;
    std::uint64_t live_ = 0;
    std::uint64_t reused_ = 0;
};

} // namespace tcfill

#endif // TCFILL_UARCH_INST_POOL_HH
