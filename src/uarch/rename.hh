/**
 * @file
 * Register rename state for the timing model: maps each architectural
 * register to the in-flight producer of its newest value (or to the
 * committed register file). Register-move instructions execute here
 * by aliasing the destination mapping to the source mapping (paper
 * §4.2); recovery rebuilds the table from the surviving window, which
 * is the timing-model equivalent of checkpoint repair.
 */

#ifndef TCFILL_UARCH_RENAME_HH
#define TCFILL_UARCH_RENAME_HH

#include <array>
#include <deque>

#include "common/stats.hh"
#include "uarch/dyn_inst.hh"

namespace tcfill
{

/** The architectural-register mapping table. */
class RenameTable
{
  public:
    RenameTable();

    /** Current mapping of @p r as a source operand. R0 is ready. */
    Operand read(RegIndex r) const;

    /** Map @p r to in-flight producer @p producer. */
    void write(RegIndex r, const DynInstPtr &producer);

    /**
     * Execute a register move: alias the destination's mapping to the
     * operand the move copies (producer pointer or ready value).
     */
    void alias(RegIndex dest, const Operand &src);

    /** Reset all mappings to the committed register file. */
    void reset();

    /**
     * Checkpoint-repair equivalent: rebuild mappings by replaying the
     * destination updates of all surviving (non-squashed) in-flight
     * instructions, oldest first. Squashed instructions in @p window
     * are skipped; retired values are assumed committed.
     */
    void rebuild(const std::deque<DynInstPtr> &window);

    /** Register "rename.*" activity counters with @p group. */
    void regStats(stats::Group &group);

  private:
    std::array<Operand, kNumArchRegs> map_;

    // Activity counters (observational only). reads_ is mutable so
    // the logically-const read() can count lookups.
    mutable stats::Counter reads_;
    stats::Counter writes_;
    stats::Counter aliases_;
    stats::Counter rebuilds_;
};

} // namespace tcfill

#endif // TCFILL_UARCH_RENAME_HH
