#include "uarch/rename.hh"

namespace tcfill
{

RenameTable::RenameTable()
{
    reset();
}

Operand
RenameTable::read(RegIndex r) const
{
    if (r == kRegZero || r >= kNumArchRegs)
        return Operand{};
    ++reads_;
    return map_[r];
}

void
RenameTable::write(RegIndex r, const DynInstPtr &producer)
{
    if (r == kRegZero || r >= kNumArchRegs)
        return;
    ++writes_;
    map_[r].producer = producer;
    map_[r].rfAvail = 0;
}

void
RenameTable::alias(RegIndex dest, const Operand &src)
{
    if (dest == kRegZero || dest >= kNumArchRegs)
        return;
    ++aliases_;
    map_[dest] = src;
}

void
RenameTable::reset()
{
    for (auto &op : map_) {
        op.producer = nullptr;
        op.rfAvail = 0;
    }
}

void
RenameTable::rebuild(const std::deque<DynInstPtr> &window)
{
    ++rebuilds_;
    reset();
    for (const auto &di : window) {
        // Skip squashed work and instructions still inactive: an
        // inactive instruction never updated the table at issue (its
        // fate is unresolved), so replaying it here would let later
        // lines depend on work that may yet be discarded.
        if (di->squashed() || di->inactive || di->elided)
            continue;
        if (di->moveMarked) {
            alias(di->inst.dest, di->moveAlias);
        } else if (di->inst.hasDest()) {
            write(di->inst.dest, di);
        }
    }
}

void
RenameTable::regStats(stats::Group &group)
{
    group.addCounter("rename.reads", reads_,
                     "source-operand mapping lookups");
    group.addCounter("rename.writes", writes_,
                     "destination mappings installed");
    group.addCounter("rename.aliases", aliases_,
                     "moves executed by aliasing in rename");
    group.addCounter("rename.rebuilds", rebuilds_,
                     "checkpoint-repair table rebuilds");
}

} // namespace tcfill
