#include "uarch/rename.hh"

namespace tcfill
{

RenameTable::RenameTable()
{
    reset();
}

Operand
RenameTable::read(RegIndex r) const
{
    if (r == kRegZero || r >= kNumArchRegs)
        return Operand{};
    return map_[r];
}

void
RenameTable::write(RegIndex r, const DynInstPtr &producer)
{
    if (r == kRegZero || r >= kNumArchRegs)
        return;
    map_[r].producer = producer;
    map_[r].rfAvail = 0;
}

void
RenameTable::alias(RegIndex dest, const Operand &src)
{
    if (dest == kRegZero || dest >= kNumArchRegs)
        return;
    map_[dest] = src;
}

void
RenameTable::reset()
{
    for (auto &op : map_) {
        op.producer = nullptr;
        op.rfAvail = 0;
    }
}

void
RenameTable::rebuild(const std::deque<DynInstPtr> &window)
{
    reset();
    for (const auto &di : window) {
        // Skip squashed work and instructions still inactive: an
        // inactive instruction never updated the table at issue (its
        // fate is unresolved), so replaying it here would let later
        // lines depend on work that may yet be discarded.
        if (di->squashed() || di->inactive || di->elided)
            continue;
        if (di->moveMarked) {
            alias(di->inst.dest, di->moveAlias);
        } else if (di->inst.hasDest()) {
            write(di->inst.dest, di);
        }
    }
}

} // namespace tcfill
