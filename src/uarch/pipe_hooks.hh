/**
 * @file
 * Glue between the timing model's DynInst and the observability
 * layer's PipeEvent: one inline snapshot + one hook-site helper shared
 * by every pipeline-stage module that emits lifecycle events (the
 * src/pipeline/ stages, ExecCore, FillUnit). Keeps src/obs free of
 * any uarch dependency — the event struct lives there, the DynInst
 * knowledge lives here.
 *
 * With TCFILL_PIPE_TRACE_ENABLED=0 tracePipe() compiles to nothing,
 * so hook sites cost zero cycles and the binary is hook-free.
 */

#ifndef TCFILL_UARCH_PIPE_HOOKS_HH
#define TCFILL_UARCH_PIPE_HOOKS_HH

#include "obs/pipe_trace.hh"
#include "uarch/dyn_inst.hh"

namespace tcfill
{

/** Snapshot @p di into a lifecycle event at @p stage / @p cycle. */
inline obs::PipeEvent
makePipeEvent(obs::PipeStage stage, const DynInst &di, Cycle cycle)
{
    obs::PipeEvent ev;
    ev.stage = stage;
    ev.seq = di.seq;
    ev.pc = di.pc;
    ev.cycle = cycle;
    ev.fromTrace = di.source == FetchSource::TraceCache;
    ev.inactive = di.inactive;
    ev.onCorrectPath = di.onCorrectPath;
    ev.moveMarked = di.moveMarked;
    ev.reassociated = di.reassociated;
    ev.scaled = di.scaled;
    ev.elided = di.elided;
    ev.mispredicted = di.mispredicted;
    return ev;
}

/** Emit @p stage for @p di iff @p tracer is attached. */
inline void
tracePipe(obs::PipeTracer *tracer, obs::PipeStage stage,
          const DynInst &di, Cycle cycle)
{
#if TCFILL_PIPE_TRACE_ENABLED
    if (tracer) [[unlikely]]
        tracer->instEvent(makePipeEvent(stage, di, cycle));
#else
    (void)tracer;
    (void)stage;
    (void)di;
    (void)cycle;
#endif
}

} // namespace tcfill

#endif // TCFILL_UARCH_PIPE_HOOKS_HH
