/**
 * @file
 * Dynamic (in-flight) instruction state for the timing model.
 *
 * DynInstPtr is an intrusive reference-counted smart pointer with a
 * deliberately NON-atomic count: every DynInst is owned by exactly one
 * Processor and never crosses a thread boundary, so the count needs no
 * synchronization. (SimRunner parallelism is between Processors, never
 * inside one.) This matters because copying instruction handles is the
 * hottest pointer traffic in the simulator, and linking the thread
 * runtime would otherwise force shared_ptr's refcounts to atomic RMW
 * ops on the whole fetch/issue/retire path.
 */

#ifndef TCFILL_UARCH_DYN_INST_HH
#define TCFILL_UARCH_DYN_INST_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "uarch/inst_pool.hh"

namespace tcfill
{

struct DynInst;

/** "Not in any scheduler array" sentinel for the index fields below. */
inline constexpr std::uint32_t kNoRsIndex = ~std::uint32_t(0);

/**
 * Intrusive refcounted handle to a DynInst. Semantics match
 * shared_ptr (last reference destroys the object), but the count is a
 * plain integer and destruction returns pooled blocks to the owning
 * SlabArena instead of the heap.
 */
class DynInstPtr
{
  public:
    DynInstPtr() = default;
    DynInstPtr(std::nullptr_t) {}
    /** Wrap a freshly constructed instruction (see allocDynInst). */
    explicit DynInstPtr(DynInst *p) : p_(p) { retain(); }

    DynInstPtr(const DynInstPtr &o) : p_(o.p_) { retain(); }
    DynInstPtr(DynInstPtr &&o) noexcept : p_(o.p_) { o.p_ = nullptr; }

    DynInstPtr &
    operator=(const DynInstPtr &o)
    {
        DynInstPtr tmp(o);
        std::swap(p_, tmp.p_);
        return *this;
    }

    DynInstPtr &
    operator=(DynInstPtr &&o) noexcept
    {
        std::swap(p_, o.p_);
        return *this;
    }

    DynInstPtr &
    operator=(std::nullptr_t)
    {
        release();
        return *this;
    }

    ~DynInstPtr() { release(); }

    DynInst *get() const { return p_; }
    DynInst &operator*() const { return *p_; }
    DynInst *operator->() const { return p_; }
    explicit operator bool() const { return p_ != nullptr; }

    bool operator==(const DynInstPtr &o) const { return p_ == o.p_; }
    bool operator==(std::nullptr_t) const { return p_ == nullptr; }

  private:
    void retain();
    void release();

    DynInst *p_ = nullptr;
};

/** Lifecycle of a dynamic instruction in the window. */
enum class InstPhase : std::uint8_t
{
    Waiting,        ///< in a reservation station
    Executing,      ///< selected, producing its result
    Complete,       ///< result available / done
    Squashed,       ///< cancelled by misprediction recovery
};

/**
 * One renamed source operand. Either the value is (or will be) read
 * from the register file (producer == nullptr, available at
 * @c rfAvail with no bypass penalty), or it is produced by an
 * in-flight instruction and arrives over the bypass network
 * (+1 cycle across clusters).
 */
struct Operand
{
    DynInstPtr producer;
    Cycle rfAvail = 0;
};

/** Where an instruction's bits came from. */
enum class FetchSource : std::uint8_t
{
    TraceCache,
    InstCache,
};

/** A dynamic instruction in flight. */
struct DynInst
{
    InstSeqNum seq = 0;
    Addr pc = 0;
    /** Possibly fill-unit-rewritten form (dataflow topology). */
    Instruction inst;
    /** Original architectural form (fed back to the fill unit). */
    Instruction archInst;
    /** Committed next PC (correct-path instructions only). */
    Addr nextPc = 0;
    FetchSource source = FetchSource::InstCache;
    InstPhase phase = InstPhase::Waiting;

    // ---- issue-time assignment ---------------------------------------
    int fu = -1;                        ///< functional unit (slot)
    unsigned numSrcs = 0;
    Operand src[3];
    /** For stores: operand index of the store-data register. */
    int dataOperand = -1;

    // ---- trace metadata ------------------------------------------------
    bool moveMarked = false;            ///< completes in rename
    /** Dead write elided by the fill unit: never executes. */
    bool elided = false;
    /** Architectural source register of a marked move. */
    RegIndex moveSrcReg = 0;
    /** Intra-line dependency of the move's source (-1 = live-in). */
    std::int8_t moveSrcDep = -1;
    /** Operand the move's destination was aliased to (rename repair). */
    Operand moveAlias;
    /** Pre-decoded intra-line dependency indices (trace lines). */
    std::int8_t lineDep[3] = {-1, -1, -1};
    /** Index of this instruction within its fetched line. */
    std::uint8_t lineIdx = 0;
    /** First instruction of an I-cache fetch line (a miss target). */
    bool missLineStart = false;
    bool reassociated = false;
    bool scaled = false;

    // ---- path / inactive-issue state -----------------------------------
    bool onCorrectPath = true;
    bool inactive = false;              ///< issued past the predicted exit

    // ---- control flow ----------------------------------------------------
    bool isBranch = false;
    bool mispredicted = false;          ///< resolves against the prediction
    Addr redirectPc = 0;                ///< fetch target after resolution
    /** Predictor slot (PHT index) used at fetch; -1 = none/promoted. */
    int predSlot = -1;
    bool promotedBranch = false;
    bool taken = false;                 ///< actual outcome
    /**
     * Inactive-issue rescue: on resolution, instructions with seq in
     * [rescueLo, rescueHi) were issued inactively along the correct
     * path and survive the recovery squash.
     */
    InstSeqNum rescueLo = 0;
    InstSeqNum rescueHi = 0;
    /**
     * Inactive-issue discard: if the prediction was *correct*, the
     * inactive instructions with seq in [discardLo, discardHi) are
     * thrown away when this branch resolves.
     */
    InstSeqNum discardLo = 0;
    InstSeqNum discardHi = 0;

    // ---- memory ------------------------------------------------------------
    bool isLoad = false;
    bool isStore = false;
    Addr effAddr = kNoAddr;
    Cycle addrKnown = kNoCycle;         ///< stores: AGEN completion

    // ---- timing -----------------------------------------------------------
    Cycle fetchCycle = 0;
    Cycle issueCycle = kNoCycle;
    Cycle startCycle = kNoCycle;
    Cycle completeCycle = kNoCycle;
    std::uint8_t latency = 1;

    // ---- wakeup scheduler bookkeeping (ExecCore, wakeup mode) ----------
    // Producer-driven wakeup replaces the per-cycle operand rescan:
    // a consumer whose producer's completion cycle is still unknown at
    // dispatch links itself onto the producer's wake list and is armed
    // into its FU's ready queue when the last subscription fires.
    // Lists hold raw pointers: a producer always fires (or is
    // squashed) before it retires, and the window releases younger
    // consumers only after older producers, so every listed consumer
    // outlives the walk (see DESIGN.md §13 for the invariant).
    /**
     * Consumers to wake when this result's timing becomes known;
     * (consumer, operand-index) packed into the pointer's low bits.
     */
    std::uintptr_t wakeHead = 0;
    /** Next wake-list links, one per source-operand slot. */
    std::uintptr_t wakeNext[3] = {0, 0, 0};
    /** Stores: loads parked on this store by the memory scheduler. */
    DynInst *memWaiterHead = nullptr;
    DynInst *memWaiterNext = nullptr;
    /** Earliest select cycle once every operand's timing is known. */
    Cycle readyCycle = 0;
    /** Station / ready-queue slots (swap-with-back maintenance). */
    std::uint32_t stationIdx = kNoRsIndex;
    std::uint32_t readyIdx = kNoRsIndex;
    /** Producer wakeups still outstanding before this can arm. */
    std::uint8_t pendingOps = 0;

    // ---- stats ---------------------------------------------------------
    /** Last-arriving operand was delayed by cross-cluster bypass. */
    bool bypassDelayed = false;
    /** Move idiom in the architectural stream (optimized or not). */
    bool moveIdiom = false;

    // ---- intrusive lifetime (managed by DynInstPtr) ---------------------
    /** Reference count; non-atomic — see the file comment. */
    std::uint32_t ptrRefs = 0;
    /** Owning arena, or nullptr for heap-backed instances. */
    SlabArena *ptrArena = nullptr;

    unsigned
    cluster(unsigned fus_per_cluster) const
    {
        return fu < 0 ? 0 : static_cast<unsigned>(fu) / fus_per_cluster;
    }

    bool complete() const { return phase == InstPhase::Complete; }
    bool squashed() const { return phase == InstPhase::Squashed; }
};

inline void
DynInstPtr::retain()
{
    if (p_)
        ++p_->ptrRefs;
}

inline void
DynInstPtr::release()
{
    if (!p_)
        return;
    if (--p_->ptrRefs == 0) {
        if (SlabArena *arena = p_->ptrArena) {
            p_->~DynInst();
            arena->deallocate(p_);
        } else {
            delete p_;
        }
    }
    p_ = nullptr;
}

/**
 * Allocate a DynInst from @p arena. The block returns to the arena's
 * free list when the last DynInstPtr drops — for an instruction, at or
 * shortly after retirement, once no Operand, window slot or resolution
 * event still references it.
 */
inline DynInstPtr
allocDynInst(SlabArena &arena)
{
    void *mem = arena.allocate(sizeof(DynInst), alignof(DynInst));
    DynInst *p = new (mem) DynInst();
    p->ptrArena = &arena;
    return DynInstPtr(p);
}

/** Heap-backed variant for tests and tools. */
inline DynInstPtr
allocDynInst()
{
    return DynInstPtr(new DynInst());
}

} // namespace tcfill

#endif // TCFILL_UARCH_DYN_INST_HH
