/**
 * @file
 * Architectural checkpoints for fast mid-run restore.
 *
 * A CheckpointStore journals an Executor at chosen points of its
 * committed stream: each capture records the ArchState (registers +
 * PC), the committed-instruction count, the halt flag, and — via
 * Memory's dirty-page journal — only the pages written since the
 * previous capture. A restore builds a fresh Executor for the same
 * Program and replays the latest journaled version of every page in
 * deltas 0..idx, yielding an executor whose onward committed stream is
 * bit-identical to one that executed from instruction zero (asserted
 * against the trace CRC in tests).
 *
 * restore() is const and touches only immutable journal state, so any
 * number of worker threads may restore concurrently — the substrate
 * for parallel per-simpoint measurement in tracefile::runSampled.
 */

#ifndef TCFILL_ARCH_CHECKPOINT_HH
#define TCFILL_ARCH_CHECKPOINT_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "arch/executor.hh"
#include "arch/memory.hh"
#include "asm/program.hh"

namespace tcfill
{

/** One captured architectural point plus its incremental page delta. */
struct Checkpoint
{
    ArchState state;
    InstSeqNum instCount = 0;
    bool halted = false;
    /** Pages written since the previous checkpoint, ascending. */
    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> pages;
};

/** Incremental checkpoint journal over one executing Executor. */
class CheckpointStore
{
  public:
    /**
     * Bind to a *freshly constructed* @p exec for @p prog. The
     * executor's dirty set is cleared here: pages materialized by
     * program load are reproduced by the fresh Executor built on
     * restore and need not be journaled.
     */
    CheckpointStore(const Program &prog, Executor &exec);

    /**
     * Journal the executor's current architectural point; the page
     * delta is everything dirtied since the previous capture (or
     * since construction, for the first). Returns the new index.
     */
    std::size_t capture();

    std::size_t size() const { return points_.size(); }
    const Checkpoint &at(std::size_t i) const { return points_[i]; }

    /**
     * Index of the latest checkpoint whose instCount is <= @p seq.
     * At least one capture() must precede this (the boundary-zero
     * checkpoint guarantees a hit for any seq).
     */
    std::size_t latestAtOrBefore(InstSeqNum seq) const;

    /**
     * Materialize an executor positioned at checkpoint @p idx by
     * replaying the latest version of each page journaled in deltas
     * 0..idx onto a fresh Executor — each page is copied once, so a
     * restore costs the working set, not the journal length.
     * Thread-safe: reads only the immutable journal. If
     * @p pages_applied is given it receives the number of pages
     * written during the replay.
     */
    std::unique_ptr<Executor> restore(
        std::size_t idx, std::uint64_t *pages_applied = nullptr) const;

    /** Total pages journaled across all captures. */
    std::uint64_t pagesStored() const { return pages_stored_; }

    /**
     * Pages a restore(idx) replays: the distinct page numbers
     * journaled across checkpoints 0..idx. Lets callers account
     * restore traffic without doing one.
     */
    std::uint64_t pagesUpTo(std::size_t idx) const;

  private:
    const Program &prog_;
    Executor &exec_;
    std::vector<Checkpoint> points_;
    std::uint64_t pages_stored_ = 0;
};

} // namespace tcfill

#endif // TCFILL_ARCH_CHECKPOINT_HH
