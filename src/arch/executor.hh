/**
 * @file
 * Functional (architecturally exact) execution of tcfill programs.
 * The Executor is the front of the execution-driven simulator: it
 * produces the committed dynamic instruction stream the timing model
 * consumes, and doubles as the reference for correctness tests.
 */

#ifndef TCFILL_ARCH_EXECUTOR_HH
#define TCFILL_ARCH_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "arch/memory.hh"
#include "asm/program.hh"
#include "isa/instruction.hh"

namespace tcfill
{

/** Architectural register file + PC. R0 reads as zero always. */
struct ArchState
{
    std::array<std::uint32_t, kNumArchRegs> regs{};
    Addr pc = 0;

    std::uint32_t
    read(RegIndex r) const
    {
        return r == kRegZero ? 0 : regs[r];
    }

    void
    write(RegIndex r, std::uint32_t v)
    {
        if (r != kRegZero)
            regs[r] = v;
    }
};

/**
 * One committed dynamic instruction, as handed to the timing model.
 * Carries everything the microarchitecture model needs: the decoded
 * instruction, control-flow resolution, and the memory effective
 * address.
 */
struct ExecRecord
{
    InstSeqNum seq = 0;
    Addr pc = 0;
    Addr nextPc = 0;
    Instruction inst;
    /** Branch outcome (meaningful for conditional branches). */
    bool taken = false;
    /** Effective address for loads/stores, else kNoAddr. */
    Addr effAddr = kNoAddr;
};

/**
 * Producer of the committed dynamic instruction stream the timing
 * model consumes (via pipeline::OracleStream). The live Executor
 * below is the canonical implementation; tracefile::ReplayExecutor
 * re-materializes a previously captured stream, and
 * tracefile::RecordingSource tees any source into a trace file.
 * One virtual dispatch per committed instruction — noise next to the
 * cycle model.
 */
class CommitSource
{
  public:
    virtual ~CommitSource() = default;

    /** True once the stream is exhausted (HALT committed / trace end). */
    virtual bool halted() const = 0;

    /**
     * Produce the next committed instruction record.
     * Must not be called after halted().
     */
    virtual ExecRecord step() = 0;

    /** Committed instruction count so far. */
    virtual InstSeqNum instCount() const = 0;
};

/**
 * Steps a loaded program one instruction at a time. Execution is
 * total: divide-by-zero yields 0, unknown encodings are NOPs, and a
 * PC escaping the text segment is a fatal user error (wild jump).
 */
class Executor : public CommitSource
{
  public:
    explicit Executor(const Program &prog);

    /** True once HALT has committed. */
    bool halted() const override { return halted_; }

    /**
     * Execute and commit one instruction; returns its record.
     * Must not be called after halted().
     */
    ExecRecord step() override;

    /** Committed instruction count so far. */
    InstSeqNum instCount() const override { return seq_; }

    const ArchState &state() const { return state_; }
    ArchState &state() { return state_; }
    const Memory &memory() const { return mem_; }
    Memory &memory() { return mem_; }
    const Program &program() const { return prog_; }

    /** Decode the instruction at @p pc from loaded text. */
    Instruction fetchDecode(Addr pc) const;

  private:
    const Program &prog_;
    ArchState state_;
    Memory mem_;
    InstSeqNum seq_ = 0;
    bool halted_ = false;
};

/**
 * Convenience: run @p prog functionally to completion (or @p maxInsts)
 * and return the number of instructions committed. Used by tests.
 */
InstSeqNum runFunctional(const Program &prog,
                         InstSeqNum max_insts = 100'000'000);

} // namespace tcfill

#endif // TCFILL_ARCH_EXECUTOR_HH
