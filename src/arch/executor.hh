/**
 * @file
 * Functional (architecturally exact) execution of tcfill programs.
 * The Executor is the front of the execution-driven simulator: it
 * produces the committed dynamic instruction stream the timing model
 * consumes, and doubles as the reference for correctness tests.
 */

#ifndef TCFILL_ARCH_EXECUTOR_HH
#define TCFILL_ARCH_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "arch/memory.hh"
#include "asm/program.hh"
#include "isa/instruction.hh"

namespace tcfill
{

/** Architectural register file + PC. R0 reads as zero always. */
struct ArchState
{
    std::array<std::uint32_t, kNumArchRegs> regs{};
    Addr pc = 0;

    // Invariant: regs[kRegZero] stays 0 — it is zero-initialized and
    // write() refuses to store to it — so read() needs no branch.
    // This runs several times per interpreted instruction.
    std::uint32_t
    read(RegIndex r) const
    {
        return regs[r];
    }

    void
    write(RegIndex r, std::uint32_t v)
    {
        if (r != kRegZero)
            regs[r] = v;
    }
};

/**
 * One committed dynamic instruction, as handed to the timing model.
 * Carries everything the microarchitecture model needs: the decoded
 * instruction, control-flow resolution, and the memory effective
 * address.
 */
struct ExecRecord
{
    InstSeqNum seq = 0;
    Addr pc = 0;
    Addr nextPc = 0;
    Instruction inst;
    /** Branch outcome (meaningful for conditional branches). */
    bool taken = false;
    /** Effective address for loads/stores, else kNoAddr. */
    Addr effAddr = kNoAddr;
};

/**
 * Producer of the committed dynamic instruction stream the timing
 * model consumes (via pipeline::OracleStream). The live Executor
 * below is the canonical implementation; tracefile::ReplayExecutor
 * re-materializes a previously captured stream, and
 * tracefile::RecordingSource tees any source into a trace file.
 * One virtual dispatch per committed instruction — noise next to the
 * cycle model.
 */
class CommitSource
{
  public:
    virtual ~CommitSource() = default;

    /** True once the stream is exhausted (HALT committed / trace end). */
    virtual bool halted() const = 0;

    /**
     * Produce the next committed instruction record.
     * Must not be called after halted().
     */
    virtual ExecRecord step() = 0;

    /** Committed instruction count so far. */
    virtual InstSeqNum instCount() const = 0;
};

/**
 * Steps a loaded program one instruction at a time. Execution is
 * total: divide-by-zero yields 0, unknown encodings are NOPs, and a
 * PC escaping the text segment is a fatal user error (wild jump).
 */
class Executor : public CommitSource
{
  public:
    explicit Executor(const Program &prog);

    /** True once HALT has committed. */
    bool halted() const override { return halted_; }

    /**
     * Execute and commit one instruction; returns its record.
     * Must not be called after halted().
     */
    ExecRecord step() override;

    /**
     * Stripped fast-forward step: commits one instruction with the
     * exact architectural effects of step() (asserted in tests) but
     * without materializing an ExecRecord or paying the virtual
     * CommitSource dispatch, fetching from a predecoded text image.
     * Returns true when the instruction ends a basic block (control
     * transfer or serializing) — all the BBV profiler needs.
     * Must not be called after halted().
     */
    bool fastStep();

    /**
     * Run up to @p n instructions on the fast path, stopping at halt.
     * Returns the number actually committed.
     */
    InstSeqNum fastForward(InstSeqNum n);

    /**
     * Reposition this executor at a previously captured architectural
     * point: register file + PC, committed-instruction count and halt
     * flag. Memory must be restored separately (arch/checkpoint.hh
     * owns that protocol).
     */
    void restoreState(const ArchState &st, InstSeqNum seq, bool halted);

    /** Committed instruction count so far. */
    InstSeqNum instCount() const override { return seq_; }

    const ArchState &state() const { return state_; }
    ArchState &state() { return state_; }
    const Memory &memory() const { return mem_; }
    Memory &memory() { return mem_; }
    const Program &program() const { return prog_; }

    /** Decode the instruction at @p pc from loaded text. */
    Instruction fetchDecode(Addr pc) const;

  private:
    /**
     * Loop-invariant snapshot of the fast-fetch state. The simulated
     * machine's byte stores go through std::uint8_t writes, which the
     * compiler must assume alias every member of this object — so a
     * loop calling stepImpl would otherwise reload the cache pointers
     * and bounds from memory on every interpreted instruction.
     * fastForward() snapshots them into locals once per decode-cache
     * generation and re-snapshots when a text store invalidates it.
     */
    struct FetchView
    {
        const Instruction *dec = nullptr;
        const Addr *tgt = nullptr;
        std::size_t n = 0;
        Addr base = 0;
    };

    /** The current decode cache as a FetchView (cache must be fresh). */
    FetchView
    fetchView() const
    {
        return {decoded_.data(), target_.data(), decoded_.size(),
                prog_.textBase};
    }

    /**
     * Shared semantics for step() and fastStep(). With kRecord the
     * committed instruction is described into @p rec and seq_
     * advances; without, no record is built, fetch comes from @p fv's
     * predecoded text image, and the caller accounts seq_. The PC
     * lives in @p pc_io (read and advanced there, not in state_) so
     * fast loops can keep it in a register; callers write it back.
     * Returns the ends-basic-block flag. Force-inlined into its
     * same-TU callers: a call per interpreted instruction was ~20% of
     * the fast path.
     */
    template <bool kRecord>
#if defined(__GNUC__)
    [[gnu::always_inline]]
#endif
    bool stepImpl(ExecRecord *rec, const FetchView &fv, Addr &pc_io);

    /** (Re)decode the in-memory text image into decoded_. */
    void rebuildDecodeCache();

    /** A store overlapping text invalidates the predecode cache. */
    void
    noteTextStore(Addr a)
    {
        if (a + 4 > prog_.textBase && a < prog_.textBase + prog_.textSize())
            decode_stale_ = true;
    }

    const Program &prog_;
    ArchState state_;
    Memory mem_;
    InstSeqNum seq_ = 0;
    bool halted_ = false;

    // Lazily built fast-fetch cache: one decoded Instruction per text
    // word, rebuilt from the memory image (not Program::text) so prior
    // self-modifying stores stay visible. Stale until first fastStep()
    // and again after any store into the text range. target_ carries
    // the statically known taken-target per slot (conditional
    // branches, J/JAL) so the fast path skips the sign-extend/shift
    // address arithmetic on every taken transfer.
    std::vector<Instruction> decoded_;
    std::vector<Addr> target_;
    bool decode_stale_ = true;
};

/**
 * Convenience: run @p prog functionally to completion (or @p maxInsts)
 * and return the number of instructions committed. Used by tests.
 */
InstSeqNum runFunctional(const Program &prog,
                         InstSeqNum max_insts = 100'000'000);

} // namespace tcfill

#endif // TCFILL_ARCH_EXECUTOR_HH
