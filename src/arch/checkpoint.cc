#include "arch/checkpoint.hh"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hh"

namespace tcfill
{

CheckpointStore::CheckpointStore(const Program &prog, Executor &exec)
    : prog_(prog), exec_(exec)
{
    // Pages touched by program load are implied by the Program and
    // reproduced by the fresh Executor a restore starts from; only
    // writes from here on need journaling.
    exec_.memory().clearDirty();
}

std::size_t
CheckpointStore::capture()
{
    Checkpoint cp;
    cp.state = exec_.state();
    cp.instCount = exec_.instCount();
    cp.halted = exec_.halted();

    Memory &mem = exec_.memory();
    for (Addr no : mem.dirtyPageNumbers()) {
        const auto *data = mem.pageData(no);
        panic_if(!data, "checkpoint: dirty page %llu not materialized",
                 static_cast<unsigned long long>(no));
        cp.pages.emplace_back(no, *data);
    }
    mem.clearDirty();

    pages_stored_ += cp.pages.size();
    points_.push_back(std::move(cp));
    return points_.size() - 1;
}

std::size_t
CheckpointStore::latestAtOrBefore(InstSeqNum seq) const
{
    panic_if(points_.empty() || points_.front().instCount > seq,
             "checkpoint: no checkpoint at or before seq %llu",
             static_cast<unsigned long long>(seq));
    // instCount is strictly increasing in capture order.
    std::size_t best = 0;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].instCount > seq)
            break;
        best = i;
    }
    return best;
}

std::uint64_t
CheckpointStore::pagesUpTo(std::size_t idx) const
{
    panic_if(idx >= points_.size(), "checkpoint: pagesUpTo(%zu) of %zu",
             idx, points_.size());
    std::unordered_set<Addr> seen;
    for (std::size_t i = 0; i <= idx; ++i)
        for (const auto &[no, bytes] : points_[i].pages)
            seen.insert(no);
    return seen.size();
}

std::unique_ptr<Executor>
CheckpointStore::restore(std::size_t idx, std::uint64_t *pages_applied) const
{
    panic_if(idx >= points_.size(), "checkpoint: restore(%zu) of %zu", idx,
             points_.size());

    auto exec = std::make_unique<Executor>(prog_);
    Memory &mem = exec->memory();
    // Newest delta first, copying only the first (i.e. latest) version
    // of each page: hot pages reappear in most deltas, and replaying
    // every historical copy made restore cost grow with the journal's
    // length instead of the working-set size.
    std::unordered_set<Addr> seen;
    std::uint64_t applied = 0;
    for (std::size_t i = idx + 1; i-- > 0;) {
        for (const auto &[no, bytes] : points_[i].pages) {
            if (!seen.insert(no).second)
                continue;
            mem.writeBlock(no * Memory::kPageBytes, bytes.data(),
                           bytes.size());
            ++applied;
        }
    }
    const Checkpoint &cp = points_[idx];
    exec->restoreState(cp.state, cp.instCount, cp.halted);
    if (pages_applied)
        *pages_applied = applied;
    return exec;
}

} // namespace tcfill
