#include "arch/memory.hh"

#include <algorithm>

namespace tcfill
{

const Memory::Page *
Memory::findPage(Addr a) const
{
    const Addr no = a / kPageBytes;
    if (no == last_page_no_)
        return last_page_;
    auto it = pages_.find(no);
    if (it == pages_.end())
        return nullptr;     // never cache absence: touchPage may create
    last_page_no_ = no;
    last_page_ = const_cast<Page *>(&it->second);
    return &it->second;
}

Memory::Page &
Memory::touchPage(Addr a)
{
    const Addr no = a / kPageBytes;
    if (no != last_dirty_no_) {
        last_dirty_no_ = no;
        dirty_.insert(no);
    }
    if (no == last_page_no_)
        return *last_page_;
    Page &p = pages_[no];
    if (p.empty())
        p.resize(kPageBytes, 0);
    last_page_no_ = no;
    last_page_ = &p;
    return p;
}

void
Memory::clearDirty()
{
    dirty_.clear();
    last_dirty_no_ = ~Addr(0);
}

std::vector<Addr>
Memory::dirtyPageNumbers() const
{
    std::vector<Addr> nos(dirty_.begin(), dirty_.end());
    std::sort(nos.begin(), nos.end());
    return nos;
}

const Memory::Page *
Memory::pageData(Addr page_no) const
{
    auto it = pages_.find(page_no);
    return it == pages_.end() ? nullptr : &it->second;
}

std::uint8_t
Memory::readByteSlow(Addr a) const
{
    const Page *p = findPage(a);
    return p ? (*p)[a % kPageBytes] : 0;
}

std::uint16_t
Memory::readHalf(Addr a) const
{
    return static_cast<std::uint16_t>(readByte(a)) |
           static_cast<std::uint16_t>(readByte(a + 1)) << 8;
}

std::uint32_t
Memory::readWordSlow(Addr a) const
{
    // Whole word inside one (non-MRU) page.
    const Page *p = findPage(a);
    std::size_t off = a % kPageBytes;
    if (p && off + 4 <= kPageBytes) {
        return static_cast<std::uint32_t>((*p)[off]) |
               static_cast<std::uint32_t>((*p)[off + 1]) << 8 |
               static_cast<std::uint32_t>((*p)[off + 2]) << 16 |
               static_cast<std::uint32_t>((*p)[off + 3]) << 24;
    }
    return static_cast<std::uint32_t>(readHalf(a)) |
           static_cast<std::uint32_t>(readHalf(a + 2)) << 16;
}

void
Memory::writeByteSlow(Addr a, std::uint8_t v)
{
    touchPage(a)[a % kPageBytes] = v;
}

void
Memory::writeHalf(Addr a, std::uint16_t v)
{
    writeByte(a, static_cast<std::uint8_t>(v));
    writeByte(a + 1, static_cast<std::uint8_t>(v >> 8));
}

void
Memory::writeWordSlow(Addr a, std::uint32_t v)
{
    Page &p = touchPage(a);
    std::size_t off = a % kPageBytes;
    if (off + 4 <= kPageBytes) {
        p[off] = static_cast<std::uint8_t>(v);
        p[off + 1] = static_cast<std::uint8_t>(v >> 8);
        p[off + 2] = static_cast<std::uint8_t>(v >> 16);
        p[off + 3] = static_cast<std::uint8_t>(v >> 24);
        return;
    }
    writeHalf(a, static_cast<std::uint16_t>(v));
    writeHalf(a + 2, static_cast<std::uint16_t>(v >> 16));
}

void
Memory::writeBlock(Addr base, const std::uint8_t *data, std::size_t n)
{
    // Page-sized chunks instead of per-byte stores: the loader moves
    // whole segments through here.
    std::size_t i = 0;
    while (i < n) {
        const Addr a = base + i;
        Page &p = touchPage(a);
        const std::size_t off = a % kPageBytes;
        const std::size_t chunk = std::min(n - i, kPageBytes - off);
        std::copy(data + i, data + i + chunk, p.begin() +
                  static_cast<std::ptrdiff_t>(off));
        i += chunk;
    }
}

} // namespace tcfill
