/**
 * @file
 * Sparse, paged functional memory for the simulated machine.
 * Little-endian, byte-addressed; untouched memory reads as zero.
 */

#ifndef TCFILL_ARCH_MEMORY_HH
#define TCFILL_ARCH_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace tcfill
{

/** Flat 2^32 byte space backed by 4 KiB pages allocated on demand. */
class Memory
{
  public:
    static constexpr std::size_t kPageBytes = 4096;

    std::uint8_t readByte(Addr a) const;
    std::uint16_t readHalf(Addr a) const;
    std::uint32_t readWord(Addr a) const;

    void writeByte(Addr a, std::uint8_t v);
    void writeHalf(Addr a, std::uint16_t v);
    void writeWord(Addr a, std::uint32_t v);

    /** Bulk copy-in used by the program loader. */
    void writeBlock(Addr base, const std::uint8_t *data, std::size_t n);

    /** Number of pages currently materialized (for tests). */
    std::size_t numPages() const { return pages_.size(); }

  private:
    using Page = std::vector<std::uint8_t>;

    const Page *findPage(Addr a) const;
    Page &touchPage(Addr a);

    std::unordered_map<Addr, Page> pages_;

    // Last-page MRU cache in front of the hash lookup: accesses are
    // strongly page-local (instruction streams, stack traffic), and
    // the map's references are stable (pages are never erased). Only
    // materialized pages are cached — a miss must keep consulting the
    // map so a later write through touchPage() is observed. Mutable:
    // caching on the const read path is not observable behavior.
    mutable Addr last_page_no_ = ~Addr(0);
    mutable Page *last_page_ = nullptr;
};

} // namespace tcfill

#endif // TCFILL_ARCH_MEMORY_HH
