/**
 * @file
 * Sparse, paged functional memory for the simulated machine.
 * Little-endian, byte-addressed; untouched memory reads as zero.
 */

#ifndef TCFILL_ARCH_MEMORY_HH
#define TCFILL_ARCH_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace tcfill
{

/** Flat 2^32 byte space backed by 4 KiB pages allocated on demand. */
class Memory
{
  public:
    static constexpr std::size_t kPageBytes = 4096;

    // The byte/word accessors inline their MRU-hit fast path: the
    // functional interpreter is bound by these on page-local access
    // streams, and an out-of-line call per load/store dominated its
    // profile. Misses (page change, first write to a clean page,
    // page-straddling word) take the out-of-line slow path, which owns
    // all map and dirty-journal bookkeeping.

    std::uint8_t
    readByte(Addr a) const
    {
        if (a / kPageBytes == last_page_no_)
            return (*last_page_)[a % kPageBytes];
        return readByteSlow(a);
    }

    std::uint16_t readHalf(Addr a) const;

    std::uint32_t
    readWord(Addr a) const
    {
        const std::size_t off = a % kPageBytes;
        if (a / kPageBytes == last_page_no_ && off + 4 <= kPageBytes) {
            const Page &p = *last_page_;
            return static_cast<std::uint32_t>(p[off]) |
                   static_cast<std::uint32_t>(p[off + 1]) << 8 |
                   static_cast<std::uint32_t>(p[off + 2]) << 16 |
                   static_cast<std::uint32_t>(p[off + 3]) << 24;
        }
        return readWordSlow(a);
    }

    void
    writeByte(Addr a, std::uint8_t v)
    {
        // Fast only when the page is both MRU-cached and already
        // dirty: a clean page must reach touchPage() to be journaled.
        const Addr no = a / kPageBytes;
        if (no == last_page_no_ && no == last_dirty_no_) {
            (*last_page_)[a % kPageBytes] = v;
            return;
        }
        writeByteSlow(a, v);
    }

    void writeHalf(Addr a, std::uint16_t v);

    void
    writeWord(Addr a, std::uint32_t v)
    {
        const Addr no = a / kPageBytes;
        const std::size_t off = a % kPageBytes;
        if (no == last_page_no_ && no == last_dirty_no_ &&
            off + 4 <= kPageBytes) {
            Page &p = *last_page_;
            p[off] = static_cast<std::uint8_t>(v);
            p[off + 1] = static_cast<std::uint8_t>(v >> 8);
            p[off + 2] = static_cast<std::uint8_t>(v >> 16);
            p[off + 3] = static_cast<std::uint8_t>(v >> 24);
            return;
        }
        writeWordSlow(a, v);
    }

    /** Bulk copy-in used by the program loader. */
    void writeBlock(Addr base, const std::uint8_t *data, std::size_t n);

    /** Number of pages currently materialized (for tests). */
    std::size_t numPages() const { return pages_.size(); }

    using Page = std::vector<std::uint8_t>;

    // ---- dirty-page journal ------------------------------------------
    //
    // Every write path funnels through touchPage(), which adds the
    // page number to the dirty set. Checkpointing (arch/checkpoint.hh)
    // drains the set at interval boundaries so a checkpoint costs only
    // the pages written since the previous one.

    /**
     * Forget the dirty set: dirtyPageNumbers() subsequently reports
     * only pages written after this call.
     */
    void clearDirty();

    /**
     * Page numbers written since the last clearDirty(), ascending so
     * consumers iterate deterministically.
     */
    std::vector<Addr> dirtyPageNumbers() const;

    /** Pages written since the last clearDirty() (for tests). */
    std::size_t dirtyPageCount() const { return dirty_.size(); }

    /** Contents of a materialized page by page number, else nullptr. */
    const Page *pageData(Addr page_no) const;

  private:

    const Page *findPage(Addr a) const;
    Page &touchPage(Addr a);

    std::uint8_t readByteSlow(Addr a) const;
    std::uint32_t readWordSlow(Addr a) const;
    void writeByteSlow(Addr a, std::uint8_t v);
    void writeWordSlow(Addr a, std::uint32_t v);

    std::unordered_map<Addr, Page> pages_;

    // Last-page MRU cache in front of the hash lookup: accesses are
    // strongly page-local (instruction streams, stack traffic), and
    // the map's references are stable (pages are never erased). Only
    // materialized pages are cached — a miss must keep consulting the
    // map so a later write through touchPage() is observed. Mutable:
    // caching on the const read path is not observable behavior.
    mutable Addr last_page_no_ = ~Addr(0);
    mutable Page *last_page_ = nullptr;

    // Dirty journal with its own one-entry MRU. The write MRU above is
    // shared with the read path (findPage may prime it), so touchPage's
    // fast path cannot imply "already dirty" — the journal keeps its
    // own last-marked page to stay off the hash set for page-local
    // store bursts.
    std::unordered_set<Addr> dirty_;
    Addr last_dirty_no_ = ~Addr(0);
};

} // namespace tcfill

#endif // TCFILL_ARCH_MEMORY_HH
