#include "arch/executor.hh"

#include "common/logging.hh"

namespace tcfill
{

Executor::Executor(const Program &prog) : prog_(prog)
{
    // Load text.
    for (std::size_t i = 0; i < prog.text.size(); ++i)
        mem_.writeWord(prog.textBase + i * 4, prog.text[i]);
    // Load initialized data.
    for (const auto &seg : prog.data)
        mem_.writeBlock(seg.base, seg.bytes.data(), seg.bytes.size());

    state_.pc = prog.entry;
    state_.write(kRegSP, static_cast<std::uint32_t>(prog.stackTop));
}

Instruction
Executor::fetchDecode(Addr pc) const
{
    fatal_if(!prog_.containsPc(pc),
             "%s: PC 0x%llx escaped the text segment",
             prog_.name.c_str(), static_cast<unsigned long long>(pc));
    return decode(mem_.readWord(pc));
}

void
Executor::rebuildDecodeCache()
{
    decoded_.resize(prog_.text.size());
    target_.assign(prog_.text.size(), 0);
    for (std::size_t i = 0; i < decoded_.size(); ++i) {
        const Addr pc = prog_.textBase + i * 4;
        Instruction in = decode(mem_.readWord(pc));
        // Normalize absent sources to R0 (hardwired zero) so the fast
        // path reads operands unconditionally; architecturally
        // equivalent since reading kNoReg was mapped to R0 anyway.
        if (in.src1 == Instruction::kNoReg)
            in.src1 = kRegZero;
        if (in.src2 == Instruction::kNoReg)
            in.src2 = kRegZero;
        if (in.src3 == Instruction::kNoReg)
            in.src3 = kRegZero;
        if (in.isCondBranch()) {
            target_[i] = pc + 4 +
                (static_cast<Addr>(static_cast<std::int64_t>(in.imm)) << 2);
        } else if (in.op == Op::J || in.op == Op::JAL) {
            target_[i] =
                static_cast<Addr>(static_cast<std::uint32_t>(in.imm)) * 4;
        }
        decoded_[i] = in;
    }
    decode_stale_ = false;
}

void
Executor::restoreState(const ArchState &st, InstSeqNum seq, bool halted)
{
    state_ = st;
    seq_ = seq;
    halted_ = halted;
}

template <bool kRecord>
inline bool
Executor::stepImpl(ExecRecord *rec, const FetchView &fv, Addr &pc_io)
{
    panic_if(halted_, "Executor::step() after halt");

    const Addr pc = pc_io;
    [[maybe_unused]] Instruction fetched;
    std::size_t fast_idx = 0;
    const Instruction *inp;
    if constexpr (kRecord) {
        fetched = fetchDecode(pc);
        inp = &fetched;
    } else {
        // One unsigned compare covers both text-segment bounds: a PC
        // below textBase wraps to a huge index.
        fast_idx = (pc - fv.base) / 4;
        fatal_if(fast_idx >= fv.n,
                 "%s: PC 0x%llx escaped the text segment",
                 prog_.name.c_str(), static_cast<unsigned long long>(pc));
        inp = &fv.dec[fast_idx];
    }
    const Instruction &in = *inp;

    if constexpr (kRecord) {
        rec->seq = seq_;
        rec->pc = pc;
        rec->inst = in;
        ++seq_;
    }

    Addr next_pc = pc + 4;

    // The decode cache pre-normalizes absent sources to R0, so the
    // fast path reads operands without the kNoReg tests.
    std::uint32_t s1, s2, s3;
    if constexpr (kRecord) {
        s1 = state_.read(in.src1 == Instruction::kNoReg ? kRegZero
                                                        : in.src1);
        s2 = state_.read(in.src2 == Instruction::kNoReg ? kRegZero
                                                        : in.src2);
        s3 = state_.read(in.src3 == Instruction::kNoReg ? kRegZero
                                                        : in.src3);
    } else {
        s1 = state_.read(in.src1);
        s2 = state_.read(in.src2);
        s3 = state_.read(in.src3);
    }
    auto imm = static_cast<std::uint32_t>(in.imm);

    auto branch_to = [&](bool take) {
        if constexpr (kRecord) {
            rec->taken = take;
            if (take) {
                next_pc = pc + 4 +
                    (static_cast<Addr>(static_cast<std::int64_t>(in.imm))
                     << 2);
            }
        } else if (take) {
            next_pc = fv.tgt[fast_idx];
        }
    };
    auto eff_addr = [&](Addr ea) {
        if constexpr (kRecord)
            rec->effAddr = ea;
        return ea;
    };

    switch (in.op) {
      case Op::ADD:  state_.write(in.dest, s1 + s2); break;
      case Op::SUB:  state_.write(in.dest, s1 - s2); break;
      case Op::AND:  state_.write(in.dest, s1 & s2); break;
      case Op::OR:   state_.write(in.dest, s1 | s2); break;
      case Op::XOR:  state_.write(in.dest, s1 ^ s2); break;
      case Op::NOR:  state_.write(in.dest, ~(s1 | s2)); break;
      case Op::SLT:
        state_.write(in.dest, static_cast<std::int32_t>(s1) <
                              static_cast<std::int32_t>(s2) ? 1 : 0);
        break;
      case Op::SLTU: state_.write(in.dest, s1 < s2 ? 1 : 0); break;
      case Op::SLLV: state_.write(in.dest, s1 << (s2 & 31)); break;
      case Op::SRLV: state_.write(in.dest, s1 >> (s2 & 31)); break;
      case Op::SRAV:
        state_.write(in.dest, static_cast<std::uint32_t>(
            static_cast<std::int32_t>(s1) >> (s2 & 31)));
        break;
      case Op::MUL:  state_.write(in.dest, s1 * s2); break;
      case Op::DIV:
        state_.write(in.dest, s2 == 0 ? 0 : static_cast<std::uint32_t>(
            static_cast<std::int32_t>(s1) /
            static_cast<std::int32_t>(s2)));
        break;

      case Op::ADDI:  state_.write(in.dest, s1 + imm); break;
      case Op::SLTI:
        state_.write(in.dest, static_cast<std::int32_t>(s1) <
                              in.imm ? 1 : 0);
        break;
      case Op::SLTIU: state_.write(in.dest, s1 < imm ? 1 : 0); break;
      case Op::ANDI:  state_.write(in.dest, s1 & imm); break;
      case Op::ORI:   state_.write(in.dest, s1 | imm); break;
      case Op::XORI:  state_.write(in.dest, s1 ^ imm); break;
      case Op::LUI:   state_.write(in.dest, imm << 16); break;
      case Op::SLLI:  state_.write(in.dest, s1 << in.shamt); break;
      case Op::SRLI:  state_.write(in.dest, s1 >> in.shamt); break;
      case Op::SRAI:
        state_.write(in.dest, static_cast<std::uint32_t>(
            static_cast<std::int32_t>(s1) >> in.shamt));
        break;

      case Op::LB:
        state_.write(in.dest, static_cast<std::uint32_t>(
            static_cast<std::int8_t>(mem_.readByte(eff_addr(s1 + imm)))));
        break;
      case Op::LBU:
        state_.write(in.dest, mem_.readByte(eff_addr(s1 + imm)));
        break;
      case Op::LH:
        state_.write(in.dest, static_cast<std::uint32_t>(
            static_cast<std::int16_t>(mem_.readHalf(eff_addr(s1 + imm)))));
        break;
      case Op::LHU:
        state_.write(in.dest, mem_.readHalf(eff_addr(s1 + imm)));
        break;
      case Op::LW:
        state_.write(in.dest, mem_.readWord(eff_addr(s1 + imm)));
        break;
      case Op::LWX:
        state_.write(in.dest, mem_.readWord(eff_addr(s1 + s2)));
        break;
      case Op::SB: {
        const Addr ea = eff_addr(s1 + imm);
        mem_.writeByte(ea, static_cast<std::uint8_t>(s3));
        noteTextStore(ea);
        break;
      }
      case Op::SH: {
        const Addr ea = eff_addr(s1 + imm);
        mem_.writeHalf(ea, static_cast<std::uint16_t>(s3));
        noteTextStore(ea);
        break;
      }
      case Op::SW: {
        const Addr ea = eff_addr(s1 + imm);
        mem_.writeWord(ea, s3);
        noteTextStore(ea);
        break;
      }
      case Op::SWX: {
        const Addr ea = eff_addr(s1 + s2);
        mem_.writeWord(ea, s3);
        noteTextStore(ea);
        break;
      }

      case Op::BEQ:  branch_to(s1 == s2); break;
      case Op::BNE:  branch_to(s1 != s2); break;
      case Op::BLEZ: branch_to(static_cast<std::int32_t>(s1) <= 0); break;
      case Op::BGTZ: branch_to(static_cast<std::int32_t>(s1) > 0); break;
      case Op::BLTZ: branch_to(static_cast<std::int32_t>(s1) < 0); break;
      case Op::BGEZ: branch_to(static_cast<std::int32_t>(s1) >= 0); break;

      case Op::J:
        if constexpr (kRecord) {
            rec->taken = true;
            next_pc =
                static_cast<Addr>(static_cast<std::uint32_t>(in.imm)) * 4;
        } else {
            next_pc = fv.tgt[fast_idx];
        }
        break;
      case Op::JAL:
        if constexpr (kRecord) {
            rec->taken = true;
            next_pc =
                static_cast<Addr>(static_cast<std::uint32_t>(in.imm)) * 4;
        } else {
            next_pc = fv.tgt[fast_idx];
        }
        state_.write(kRegRA, static_cast<std::uint32_t>(pc + 4));
        break;
      case Op::JR:
        if constexpr (kRecord)
            rec->taken = true;
        next_pc = s1;
        break;
      case Op::JALR:
        if constexpr (kRecord)
            rec->taken = true;
        state_.write(in.dest, static_cast<std::uint32_t>(pc + 4));
        next_pc = s1;
        break;

      case Op::NOP:
      case Op::SYSCALL:
        break;
      case Op::HALT:
        halted_ = true;
        break;

      default:
        panic("executor: unhandled op %u", unsigned(in.op));
    }

    pc_io = next_pc;
    if constexpr (kRecord)
        rec->nextPc = next_pc;
    return in.isControl() || in.isSerializing();
}

ExecRecord
Executor::step()
{
    ExecRecord rec;
    Addr pc = state_.pc;
    stepImpl<true>(&rec, FetchView{}, pc);
    state_.pc = pc;
    return rec;
}

bool
Executor::fastStep()
{
    if (decode_stale_)
        rebuildDecodeCache();
    const FetchView fv = fetchView();
    Addr pc = state_.pc;
    const bool ends_block = stepImpl<false>(nullptr, fv, pc);
    state_.pc = pc;
    ++seq_;
    return ends_block;
}

InstSeqNum
Executor::fastForward(InstSeqNum n)
{
    InstSeqNum done = 0;
    while (done < n && !halted_) {
        if (decode_stale_)
            rebuildDecodeCache();
        // Hot loop over a register-resident FetchView and PC; exits
        // to re-snapshot whenever a store patches the text segment.
        const FetchView fv = fetchView();
        Addr pc = state_.pc;
        while (done < n && !halted_ && !decode_stale_) {
            stepImpl<false>(nullptr, fv, pc);
            ++done;
        }
        state_.pc = pc;
    }
    seq_ += done;
    return done;
}

InstSeqNum
runFunctional(const Program &prog, InstSeqNum max_insts)
{
    Executor exec(prog);
    while (!exec.halted() && exec.instCount() < max_insts)
        exec.step();
    return exec.instCount();
}

} // namespace tcfill
