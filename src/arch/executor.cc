#include "arch/executor.hh"

#include "common/logging.hh"

namespace tcfill
{

Executor::Executor(const Program &prog) : prog_(prog)
{
    // Load text.
    for (std::size_t i = 0; i < prog.text.size(); ++i)
        mem_.writeWord(prog.textBase + i * 4, prog.text[i]);
    // Load initialized data.
    for (const auto &seg : prog.data)
        mem_.writeBlock(seg.base, seg.bytes.data(), seg.bytes.size());

    state_.pc = prog.entry;
    state_.write(kRegSP, static_cast<std::uint32_t>(prog.stackTop));
}

Instruction
Executor::fetchDecode(Addr pc) const
{
    fatal_if(!prog_.containsPc(pc),
             "%s: PC 0x%llx escaped the text segment",
             prog_.name.c_str(), static_cast<unsigned long long>(pc));
    return decode(mem_.readWord(pc));
}

ExecRecord
Executor::step()
{
    panic_if(halted_, "Executor::step() after halt");

    ExecRecord rec;
    rec.seq = seq_++;
    rec.pc = state_.pc;
    rec.inst = fetchDecode(state_.pc);

    const Instruction &in = rec.inst;
    Addr next_pc = state_.pc + 4;

    auto s1 = state_.read(in.src1 == Instruction::kNoReg ? kRegZero
                                                         : in.src1);
    auto s2 = state_.read(in.src2 == Instruction::kNoReg ? kRegZero
                                                         : in.src2);
    auto s3 = state_.read(in.src3 == Instruction::kNoReg ? kRegZero
                                                         : in.src3);
    auto imm = static_cast<std::uint32_t>(in.imm);

    auto branch_to = [&](bool take) {
        rec.taken = take;
        if (take) {
            next_pc = state_.pc + 4 +
                (static_cast<Addr>(static_cast<std::int64_t>(in.imm)) << 2);
        }
    };

    switch (in.op) {
      case Op::ADD:  state_.write(in.dest, s1 + s2); break;
      case Op::SUB:  state_.write(in.dest, s1 - s2); break;
      case Op::AND:  state_.write(in.dest, s1 & s2); break;
      case Op::OR:   state_.write(in.dest, s1 | s2); break;
      case Op::XOR:  state_.write(in.dest, s1 ^ s2); break;
      case Op::NOR:  state_.write(in.dest, ~(s1 | s2)); break;
      case Op::SLT:
        state_.write(in.dest, static_cast<std::int32_t>(s1) <
                              static_cast<std::int32_t>(s2) ? 1 : 0);
        break;
      case Op::SLTU: state_.write(in.dest, s1 < s2 ? 1 : 0); break;
      case Op::SLLV: state_.write(in.dest, s1 << (s2 & 31)); break;
      case Op::SRLV: state_.write(in.dest, s1 >> (s2 & 31)); break;
      case Op::SRAV:
        state_.write(in.dest, static_cast<std::uint32_t>(
            static_cast<std::int32_t>(s1) >> (s2 & 31)));
        break;
      case Op::MUL:  state_.write(in.dest, s1 * s2); break;
      case Op::DIV:
        state_.write(in.dest, s2 == 0 ? 0 : static_cast<std::uint32_t>(
            static_cast<std::int32_t>(s1) /
            static_cast<std::int32_t>(s2)));
        break;

      case Op::ADDI:  state_.write(in.dest, s1 + imm); break;
      case Op::SLTI:
        state_.write(in.dest, static_cast<std::int32_t>(s1) <
                              in.imm ? 1 : 0);
        break;
      case Op::SLTIU: state_.write(in.dest, s1 < imm ? 1 : 0); break;
      case Op::ANDI:  state_.write(in.dest, s1 & imm); break;
      case Op::ORI:   state_.write(in.dest, s1 | imm); break;
      case Op::XORI:  state_.write(in.dest, s1 ^ imm); break;
      case Op::LUI:   state_.write(in.dest, imm << 16); break;
      case Op::SLLI:  state_.write(in.dest, s1 << in.shamt); break;
      case Op::SRLI:  state_.write(in.dest, s1 >> in.shamt); break;
      case Op::SRAI:
        state_.write(in.dest, static_cast<std::uint32_t>(
            static_cast<std::int32_t>(s1) >> in.shamt));
        break;

      case Op::LB:
        rec.effAddr = s1 + imm;
        state_.write(in.dest, static_cast<std::uint32_t>(
            static_cast<std::int8_t>(mem_.readByte(rec.effAddr))));
        break;
      case Op::LBU:
        rec.effAddr = s1 + imm;
        state_.write(in.dest, mem_.readByte(rec.effAddr));
        break;
      case Op::LH:
        rec.effAddr = s1 + imm;
        state_.write(in.dest, static_cast<std::uint32_t>(
            static_cast<std::int16_t>(mem_.readHalf(rec.effAddr))));
        break;
      case Op::LHU:
        rec.effAddr = s1 + imm;
        state_.write(in.dest, mem_.readHalf(rec.effAddr));
        break;
      case Op::LW:
        rec.effAddr = s1 + imm;
        state_.write(in.dest, mem_.readWord(rec.effAddr));
        break;
      case Op::LWX:
        rec.effAddr = s1 + s2;
        state_.write(in.dest, mem_.readWord(rec.effAddr));
        break;
      case Op::SB:
        rec.effAddr = s1 + imm;
        mem_.writeByte(rec.effAddr, static_cast<std::uint8_t>(s3));
        break;
      case Op::SH:
        rec.effAddr = s1 + imm;
        mem_.writeHalf(rec.effAddr, static_cast<std::uint16_t>(s3));
        break;
      case Op::SW:
        rec.effAddr = s1 + imm;
        mem_.writeWord(rec.effAddr, s3);
        break;
      case Op::SWX:
        rec.effAddr = s1 + s2;
        mem_.writeWord(rec.effAddr, s3);
        break;

      case Op::BEQ:  branch_to(s1 == s2); break;
      case Op::BNE:  branch_to(s1 != s2); break;
      case Op::BLEZ: branch_to(static_cast<std::int32_t>(s1) <= 0); break;
      case Op::BGTZ: branch_to(static_cast<std::int32_t>(s1) > 0); break;
      case Op::BLTZ: branch_to(static_cast<std::int32_t>(s1) < 0); break;
      case Op::BGEZ: branch_to(static_cast<std::int32_t>(s1) >= 0); break;

      case Op::J:
        rec.taken = true;
        next_pc = static_cast<Addr>(static_cast<std::uint32_t>(in.imm)) * 4;
        break;
      case Op::JAL:
        rec.taken = true;
        state_.write(kRegRA, static_cast<std::uint32_t>(state_.pc + 4));
        next_pc = static_cast<Addr>(static_cast<std::uint32_t>(in.imm)) * 4;
        break;
      case Op::JR:
        rec.taken = true;
        next_pc = s1;
        break;
      case Op::JALR:
        rec.taken = true;
        state_.write(in.dest, static_cast<std::uint32_t>(state_.pc + 4));
        next_pc = s1;
        break;

      case Op::NOP:
      case Op::SYSCALL:
        break;
      case Op::HALT:
        halted_ = true;
        break;

      default:
        panic("executor: unhandled op %u", unsigned(in.op));
    }

    state_.pc = next_pc;
    rec.nextPc = next_pc;
    return rec;
}

InstSeqNum
runFunctional(const Program &prog, InstSeqNum max_insts)
{
    Executor exec(prog);
    while (!exec.halted() && exec.instCount() < max_insts)
        exec.step();
    return exec.instCount();
}

} // namespace tcfill
