/**
 * @file
 * ProgramBuilder: an embedded (JIT-style) assembler for the tcfill
 * ISA. Workload kernels and tests emit instructions through typed
 * methods, use labels for control flow, and allocate/initialize data
 * segments; finish() resolves all fixups and returns a Program.
 */

#ifndef TCFILL_ASM_BUILDER_HH
#define TCFILL_ASM_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "isa/instruction.hh"

namespace tcfill
{

/** An opaque control-flow label handle; create via newLabel(). */
class Label
{
  public:
    Label() = default;

  private:
    friend class ProgramBuilder;
    explicit Label(std::uint32_t id) : id_(id), valid_(true) {}
    std::uint32_t id_ = 0;
    bool valid_ = false;
};

/**
 * Incrementally assembles a Program. All emit methods append one
 * instruction; label-target control flow is fixed up at finish().
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    // ---- labels -----------------------------------------------------
    /** Create a fresh unbound label. */
    Label newLabel();
    /** Bind @p l to the current text position; each label binds once. */
    void bind(Label l);
    /** Address the next emitted instruction will occupy. */
    Addr here() const;

    // ---- R-type ALU -------------------------------------------------
    void add(RegIndex rd, RegIndex rs, RegIndex rt);
    void sub(RegIndex rd, RegIndex rs, RegIndex rt);
    void and_(RegIndex rd, RegIndex rs, RegIndex rt);
    void or_(RegIndex rd, RegIndex rs, RegIndex rt);
    void xor_(RegIndex rd, RegIndex rs, RegIndex rt);
    void nor(RegIndex rd, RegIndex rs, RegIndex rt);
    void slt(RegIndex rd, RegIndex rs, RegIndex rt);
    void sltu(RegIndex rd, RegIndex rs, RegIndex rt);
    void sllv(RegIndex rd, RegIndex rval, RegIndex ramt);
    void srlv(RegIndex rd, RegIndex rval, RegIndex ramt);
    void srav(RegIndex rd, RegIndex rval, RegIndex ramt);
    void mul(RegIndex rd, RegIndex rs, RegIndex rt);
    void div(RegIndex rd, RegIndex rs, RegIndex rt);

    // ---- immediates -------------------------------------------------
    void addi(RegIndex rt, RegIndex rs, std::int32_t imm);
    void slti(RegIndex rt, RegIndex rs, std::int32_t imm);
    void sltiu(RegIndex rt, RegIndex rs, std::int32_t imm);
    void andi(RegIndex rt, RegIndex rs, std::uint32_t imm);
    void ori(RegIndex rt, RegIndex rs, std::uint32_t imm);
    void xori(RegIndex rt, RegIndex rs, std::uint32_t imm);
    void lui(RegIndex rt, std::uint32_t imm16);
    void slli(RegIndex rd, RegIndex rs, unsigned shamt);
    void srli(RegIndex rd, RegIndex rs, unsigned shamt);
    void srai(RegIndex rd, RegIndex rs, unsigned shamt);

    // ---- memory -----------------------------------------------------
    void lb(RegIndex rt, RegIndex base, std::int32_t disp);
    void lbu(RegIndex rt, RegIndex base, std::int32_t disp);
    void lh(RegIndex rt, RegIndex base, std::int32_t disp);
    void lhu(RegIndex rt, RegIndex base, std::int32_t disp);
    void lw(RegIndex rt, RegIndex base, std::int32_t disp);
    void sb(RegIndex rdata, RegIndex base, std::int32_t disp);
    void sh(RegIndex rdata, RegIndex base, std::int32_t disp);
    void sw(RegIndex rdata, RegIndex base, std::int32_t disp);
    void lwx(RegIndex rt, RegIndex base, RegIndex index);
    void swx(RegIndex rdata, RegIndex base, RegIndex index);

    // ---- control ----------------------------------------------------
    void beq(RegIndex rs, RegIndex rt, Label target);
    void bne(RegIndex rs, RegIndex rt, Label target);
    void blez(RegIndex rs, Label target);
    void bgtz(RegIndex rs, Label target);
    void bltz(RegIndex rs, Label target);
    void bgez(RegIndex rs, Label target);
    void j(Label target);
    void jal(Label target);
    void jr(RegIndex rs);
    void jalr(RegIndex rd, RegIndex rs);

    // ---- misc / pseudo-ops -------------------------------------------
    void nop();
    void syscall_();
    void halt();
    /** Load a full 32-bit constant (expands to 1-2 instructions). */
    void li(RegIndex rt, std::int32_t value);
    /** Canonical register move: addi rt, rs, 0. */
    void move(RegIndex rt, RegIndex rs);
    /** Load a data-segment address into a register (li on the addr). */
    void la(RegIndex rt, Addr addr);
    /** Return: jr through the link register. */
    void ret();

    // ---- data segments ----------------------------------------------
    /**
     * Reserve @p bytes of zero-initialized data with the given
     * alignment; returns the allocated base address.
     */
    Addr allocData(std::size_t bytes, std::size_t align = 4);
    /** Allocate and initialize an array of 32-bit words. */
    Addr dataWords(const std::vector<std::int32_t> &words);
    /** Allocate and initialize raw bytes. */
    Addr dataBytes(const std::vector<std::uint8_t> &bytes);
    /** Patch a previously allocated word. */
    void pokeWord(Addr addr, std::int32_t value);

    // ---- finalization -----------------------------------------------
    /** Number of instructions emitted so far. */
    std::size_t size() const { return insts_.size(); }

    /**
     * Resolve all label fixups and produce the linked Program.
     * Fatals on unbound labels or out-of-range branch offsets.
     */
    Program finish();

  private:
    enum class FixKind { BranchRel, JumpAbs };

    struct Fixup
    {
        std::size_t index;      // instruction slot to patch
        std::uint32_t label;
        FixKind kind;
    };

    void emit(const Instruction &inst);
    std::uint32_t labelId(Label l) const;

    std::string name_;
    std::vector<Instruction> insts_;
    std::vector<std::int64_t> label_pos_;   // -1 = unbound
    std::vector<Fixup> fixups_;

    Addr data_cursor_ = kDataBase;
    std::vector<Program::DataSegment> data_;
    bool finished_ = false;
};

} // namespace tcfill

#endif // TCFILL_ASM_BUILDER_HH
