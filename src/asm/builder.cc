#include "asm/builder.hh"

#include "common/logging.hh"

namespace tcfill
{

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name))
{
}

Label
ProgramBuilder::newLabel()
{
    label_pos_.push_back(-1);
    return Label(static_cast<std::uint32_t>(label_pos_.size() - 1));
}

std::uint32_t
ProgramBuilder::labelId(Label l) const
{
    fatal_if(!l.valid_, "%s: use of default-constructed Label",
             name_.c_str());
    fatal_if(l.id_ >= label_pos_.size(), "%s: bad label id %u",
             name_.c_str(), l.id_);
    return l.id_;
}

void
ProgramBuilder::bind(Label l)
{
    std::uint32_t id = labelId(l);
    fatal_if(label_pos_[id] >= 0, "%s: label %u bound twice",
             name_.c_str(), id);
    label_pos_[id] = static_cast<std::int64_t>(insts_.size());
}

Addr
ProgramBuilder::here() const
{
    return kTextBase + insts_.size() * 4;
}

void
ProgramBuilder::emit(const Instruction &inst)
{
    panic_if(finished_, "emit after finish()");
    insts_.push_back(inst);
}

namespace
{

Instruction
r3(Op op, RegIndex rd, RegIndex rs, RegIndex rt)
{
    Instruction in;
    in.op = op;
    in.dest = rd;
    in.src1 = rs;
    in.src2 = rt;
    return in;
}

Instruction
i2(Op op, RegIndex rt, RegIndex rs, std::int32_t imm)
{
    Instruction in;
    in.op = op;
    in.dest = rt;
    in.src1 = rs;
    in.imm = imm;
    return in;
}

} // namespace

void ProgramBuilder::add(RegIndex rd, RegIndex rs, RegIndex rt)
{ emit(r3(Op::ADD, rd, rs, rt)); }
void ProgramBuilder::sub(RegIndex rd, RegIndex rs, RegIndex rt)
{ emit(r3(Op::SUB, rd, rs, rt)); }
void ProgramBuilder::and_(RegIndex rd, RegIndex rs, RegIndex rt)
{ emit(r3(Op::AND, rd, rs, rt)); }
void ProgramBuilder::or_(RegIndex rd, RegIndex rs, RegIndex rt)
{ emit(r3(Op::OR, rd, rs, rt)); }
void ProgramBuilder::xor_(RegIndex rd, RegIndex rs, RegIndex rt)
{ emit(r3(Op::XOR, rd, rs, rt)); }
void ProgramBuilder::nor(RegIndex rd, RegIndex rs, RegIndex rt)
{ emit(r3(Op::NOR, rd, rs, rt)); }
void ProgramBuilder::slt(RegIndex rd, RegIndex rs, RegIndex rt)
{ emit(r3(Op::SLT, rd, rs, rt)); }
void ProgramBuilder::sltu(RegIndex rd, RegIndex rs, RegIndex rt)
{ emit(r3(Op::SLTU, rd, rs, rt)); }
void ProgramBuilder::sllv(RegIndex rd, RegIndex rval, RegIndex ramt)
{ emit(r3(Op::SLLV, rd, rval, ramt)); }
void ProgramBuilder::srlv(RegIndex rd, RegIndex rval, RegIndex ramt)
{ emit(r3(Op::SRLV, rd, rval, ramt)); }
void ProgramBuilder::srav(RegIndex rd, RegIndex rval, RegIndex ramt)
{ emit(r3(Op::SRAV, rd, rval, ramt)); }
void ProgramBuilder::mul(RegIndex rd, RegIndex rs, RegIndex rt)
{ emit(r3(Op::MUL, rd, rs, rt)); }
void ProgramBuilder::div(RegIndex rd, RegIndex rs, RegIndex rt)
{ emit(r3(Op::DIV, rd, rs, rt)); }

void
ProgramBuilder::addi(RegIndex rt, RegIndex rs, std::int32_t imm)
{
    fatal_if(imm < -32768 || imm > 32767, "%s: addi imm %d out of range",
             name_.c_str(), imm);
    emit(i2(Op::ADDI, rt, rs, imm));
}

void
ProgramBuilder::slti(RegIndex rt, RegIndex rs, std::int32_t imm)
{
    emit(i2(Op::SLTI, rt, rs, imm));
}

void
ProgramBuilder::sltiu(RegIndex rt, RegIndex rs, std::int32_t imm)
{
    emit(i2(Op::SLTIU, rt, rs, imm));
}

void
ProgramBuilder::andi(RegIndex rt, RegIndex rs, std::uint32_t imm)
{
    fatal_if(imm > 0xffff, "%s: andi imm out of range", name_.c_str());
    emit(i2(Op::ANDI, rt, rs, static_cast<std::int32_t>(imm)));
}

void
ProgramBuilder::ori(RegIndex rt, RegIndex rs, std::uint32_t imm)
{
    fatal_if(imm > 0xffff, "%s: ori imm out of range", name_.c_str());
    emit(i2(Op::ORI, rt, rs, static_cast<std::int32_t>(imm)));
}

void
ProgramBuilder::xori(RegIndex rt, RegIndex rs, std::uint32_t imm)
{
    fatal_if(imm > 0xffff, "%s: xori imm out of range", name_.c_str());
    emit(i2(Op::XORI, rt, rs, static_cast<std::int32_t>(imm)));
}

void
ProgramBuilder::lui(RegIndex rt, std::uint32_t imm16)
{
    fatal_if(imm16 > 0xffff, "%s: lui imm out of range", name_.c_str());
    Instruction in;
    in.op = Op::LUI;
    in.dest = rt;
    in.imm = static_cast<std::int32_t>(imm16);
    emit(in);
}

namespace
{

Instruction
shiftImm(Op op, RegIndex rd, RegIndex rs, unsigned shamt)
{
    Instruction in;
    in.op = op;
    in.dest = rd;
    in.src1 = rs;
    in.shamt = static_cast<std::uint8_t>(shamt & 31);
    return in;
}

} // namespace

void ProgramBuilder::slli(RegIndex rd, RegIndex rs, unsigned shamt)
{ emit(shiftImm(Op::SLLI, rd, rs, shamt)); }
void ProgramBuilder::srli(RegIndex rd, RegIndex rs, unsigned shamt)
{ emit(shiftImm(Op::SRLI, rd, rs, shamt)); }
void ProgramBuilder::srai(RegIndex rd, RegIndex rs, unsigned shamt)
{ emit(shiftImm(Op::SRAI, rd, rs, shamt)); }

namespace
{

Instruction
loadOp(Op op, RegIndex rt, RegIndex base, std::int32_t disp)
{
    Instruction in;
    in.op = op;
    in.dest = rt;
    in.src1 = base;
    in.imm = disp;
    return in;
}

Instruction
storeOp(Op op, RegIndex rdata, RegIndex base, std::int32_t disp)
{
    Instruction in;
    in.op = op;
    in.src1 = base;
    in.src3 = rdata;
    in.imm = disp;
    return in;
}

} // namespace

void ProgramBuilder::lb(RegIndex rt, RegIndex base, std::int32_t disp)
{ emit(loadOp(Op::LB, rt, base, disp)); }
void ProgramBuilder::lbu(RegIndex rt, RegIndex base, std::int32_t disp)
{ emit(loadOp(Op::LBU, rt, base, disp)); }
void ProgramBuilder::lh(RegIndex rt, RegIndex base, std::int32_t disp)
{ emit(loadOp(Op::LH, rt, base, disp)); }
void ProgramBuilder::lhu(RegIndex rt, RegIndex base, std::int32_t disp)
{ emit(loadOp(Op::LHU, rt, base, disp)); }
void ProgramBuilder::lw(RegIndex rt, RegIndex base, std::int32_t disp)
{ emit(loadOp(Op::LW, rt, base, disp)); }
void ProgramBuilder::sb(RegIndex rdata, RegIndex base, std::int32_t disp)
{ emit(storeOp(Op::SB, rdata, base, disp)); }
void ProgramBuilder::sh(RegIndex rdata, RegIndex base, std::int32_t disp)
{ emit(storeOp(Op::SH, rdata, base, disp)); }
void ProgramBuilder::sw(RegIndex rdata, RegIndex base, std::int32_t disp)
{ emit(storeOp(Op::SW, rdata, base, disp)); }

void
ProgramBuilder::lwx(RegIndex rt, RegIndex base, RegIndex index)
{
    emit(r3(Op::LWX, rt, base, index));
}

void
ProgramBuilder::swx(RegIndex rdata, RegIndex base, RegIndex index)
{
    Instruction in;
    in.op = Op::SWX;
    in.src1 = base;
    in.src2 = index;
    in.src3 = rdata;
    emit(in);
}

namespace
{

Instruction
condBranch(Op op, RegIndex rs, RegIndex rt)
{
    Instruction in;
    in.op = op;
    in.src1 = rs;
    in.src2 = rt;
    return in;
}

} // namespace

void
ProgramBuilder::beq(RegIndex rs, RegIndex rt, Label target)
{
    fixups_.push_back({insts_.size(), labelId(target), FixKind::BranchRel});
    emit(condBranch(Op::BEQ, rs, rt));
}

void
ProgramBuilder::bne(RegIndex rs, RegIndex rt, Label target)
{
    fixups_.push_back({insts_.size(), labelId(target), FixKind::BranchRel});
    emit(condBranch(Op::BNE, rs, rt));
}

void
ProgramBuilder::blez(RegIndex rs, Label target)
{
    fixups_.push_back({insts_.size(), labelId(target), FixKind::BranchRel});
    emit(condBranch(Op::BLEZ, rs, Instruction::kNoReg));
}

void
ProgramBuilder::bgtz(RegIndex rs, Label target)
{
    fixups_.push_back({insts_.size(), labelId(target), FixKind::BranchRel});
    emit(condBranch(Op::BGTZ, rs, Instruction::kNoReg));
}

void
ProgramBuilder::bltz(RegIndex rs, Label target)
{
    fixups_.push_back({insts_.size(), labelId(target), FixKind::BranchRel});
    emit(condBranch(Op::BLTZ, rs, Instruction::kNoReg));
}

void
ProgramBuilder::bgez(RegIndex rs, Label target)
{
    fixups_.push_back({insts_.size(), labelId(target), FixKind::BranchRel});
    emit(condBranch(Op::BGEZ, rs, Instruction::kNoReg));
}

void
ProgramBuilder::j(Label target)
{
    fixups_.push_back({insts_.size(), labelId(target), FixKind::JumpAbs});
    Instruction in;
    in.op = Op::J;
    emit(in);
}

void
ProgramBuilder::jal(Label target)
{
    fixups_.push_back({insts_.size(), labelId(target), FixKind::JumpAbs});
    Instruction in;
    in.op = Op::JAL;
    in.dest = kRegRA;
    emit(in);
}

void
ProgramBuilder::jr(RegIndex rs)
{
    Instruction in;
    in.op = Op::JR;
    in.src1 = rs;
    emit(in);
}

void
ProgramBuilder::jalr(RegIndex rd, RegIndex rs)
{
    Instruction in;
    in.op = Op::JALR;
    in.dest = rd;
    in.src1 = rs;
    emit(in);
}

void
ProgramBuilder::nop()
{
    Instruction in;
    in.op = Op::NOP;
    emit(in);
}

void
ProgramBuilder::syscall_()
{
    Instruction in;
    in.op = Op::SYSCALL;
    emit(in);
}

void
ProgramBuilder::halt()
{
    Instruction in;
    in.op = Op::HALT;
    emit(in);
}

void
ProgramBuilder::li(RegIndex rt, std::int32_t value)
{
    if (value >= -32768 && value <= 32767) {
        addi(rt, kRegZero, value);
        return;
    }
    auto uval = static_cast<std::uint32_t>(value);
    lui(rt, uval >> 16);
    if (uval & 0xffff)
        ori(rt, rt, uval & 0xffff);
}

void
ProgramBuilder::move(RegIndex rt, RegIndex rs)
{
    addi(rt, rs, 0);
}

void
ProgramBuilder::la(RegIndex rt, Addr addr)
{
    fatal_if(addr > 0xffffffffull, "%s: la address out of 32-bit range",
             name_.c_str());
    li(rt, static_cast<std::int32_t>(static_cast<std::uint32_t>(addr)));
}

void
ProgramBuilder::ret()
{
    jr(kRegRA);
}

Addr
ProgramBuilder::allocData(std::size_t bytes, std::size_t align)
{
    fatal_if(align == 0 || (align & (align - 1)) != 0,
             "%s: allocData alignment must be a power of two",
             name_.c_str());
    data_cursor_ = (data_cursor_ + align - 1) & ~(Addr(align) - 1);
    Addr base = data_cursor_;
    data_.push_back({base, std::vector<std::uint8_t>(bytes, 0)});
    data_cursor_ += bytes;
    return base;
}

Addr
ProgramBuilder::dataWords(const std::vector<std::int32_t> &words)
{
    Addr base = allocData(words.size() * 4, 4);
    auto &seg = data_.back();
    for (std::size_t i = 0; i < words.size(); ++i) {
        auto v = static_cast<std::uint32_t>(words[i]);
        seg.bytes[i * 4 + 0] = static_cast<std::uint8_t>(v);
        seg.bytes[i * 4 + 1] = static_cast<std::uint8_t>(v >> 8);
        seg.bytes[i * 4 + 2] = static_cast<std::uint8_t>(v >> 16);
        seg.bytes[i * 4 + 3] = static_cast<std::uint8_t>(v >> 24);
    }
    return base;
}

Addr
ProgramBuilder::dataBytes(const std::vector<std::uint8_t> &bytes)
{
    Addr base = allocData(bytes.size(), 1);
    data_.back().bytes = bytes;
    return base;
}

void
ProgramBuilder::pokeWord(Addr addr, std::int32_t value)
{
    for (auto &seg : data_) {
        if (addr >= seg.base && addr + 4 <= seg.base + seg.bytes.size()) {
            auto off = static_cast<std::size_t>(addr - seg.base);
            auto v = static_cast<std::uint32_t>(value);
            seg.bytes[off + 0] = static_cast<std::uint8_t>(v);
            seg.bytes[off + 1] = static_cast<std::uint8_t>(v >> 8);
            seg.bytes[off + 2] = static_cast<std::uint8_t>(v >> 16);
            seg.bytes[off + 3] = static_cast<std::uint8_t>(v >> 24);
            return;
        }
    }
    fatal("%s: pokeWord(0x%llx) outside any data segment",
          name_.c_str(), static_cast<unsigned long long>(addr));
}

Program
ProgramBuilder::finish()
{
    panic_if(finished_, "finish() called twice");
    finished_ = true;

    for (const auto &fix : fixups_) {
        fatal_if(label_pos_[fix.label] < 0,
                 "%s: unbound label %u referenced at inst %zu",
                 name_.c_str(), fix.label, fix.index);
        auto target = static_cast<std::int64_t>(label_pos_[fix.label]);
        Instruction &in = insts_[fix.index];
        if (fix.kind == FixKind::BranchRel) {
            std::int64_t off =
                target - (static_cast<std::int64_t>(fix.index) + 1);
            fatal_if(off < -32768 || off > 32767,
                     "%s: branch at inst %zu out of range (%lld words)",
                     name_.c_str(), fix.index,
                     static_cast<long long>(off));
            in.imm = static_cast<std::int32_t>(off);
        } else {
            Addr abs = kTextBase + static_cast<Addr>(target) * 4;
            in.imm = static_cast<std::int32_t>(abs / 4);
        }
    }

    Program prog;
    prog.name = name_;
    prog.textBase = kTextBase;
    prog.entry = kTextBase;
    prog.stackTop = kStackTop;
    prog.text.reserve(insts_.size());
    for (const auto &in : insts_)
        prog.text.push_back(encode(in));
    prog.data = std::move(data_);
    return prog;
}

} // namespace tcfill
