/**
 * @file
 * A fully linked program image: text, initialized data segments, an
 * entry point and conventional stack placement. Produced by
 * ProgramBuilder, consumed by the functional core's loader.
 */

#ifndef TCFILL_ASM_PROGRAM_HH
#define TCFILL_ASM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tcfill
{

/** Default placement constants (flat 32-bit address space). */
inline constexpr Addr kTextBase = 0x00400000;
inline constexpr Addr kDataBase = 0x10000000;
inline constexpr Addr kStackTop = 0x7ffffff0;

/** A linked, loadable program image. */
struct Program
{
    std::string name;

    /** Base address of the text segment (4-byte aligned). */
    Addr textBase = kTextBase;

    /** Encoded instructions, textBase + 4*i each. */
    std::vector<Word> text;

    struct DataSegment
    {
        Addr base;
        std::vector<std::uint8_t> bytes;
    };

    /** Initialized data to copy into memory at load time. */
    std::vector<DataSegment> data;

    /** Initial PC. */
    Addr entry = kTextBase;

    /** Initial stack pointer (grows down). */
    Addr stackTop = kStackTop;

    /** Size of the text segment in bytes. */
    Addr textSize() const { return text.size() * 4; }

    /** True iff @p pc addresses an instruction of this image. */
    bool
    containsPc(Addr pc) const
    {
        return pc >= textBase && pc < textBase + textSize() &&
               (pc & 3) == 0;
    }
};

} // namespace tcfill

#endif // TCFILL_ASM_PROGRAM_HH
