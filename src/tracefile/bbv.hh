/**
 * @file
 * Basic-block vector (BBV) profiling of the committed instruction
 * stream, in the SimPoint style: execution is cut into fixed-length
 * intervals (by committed instruction count) and each interval is
 * summarized by how many instructions it spent in each basic block.
 * Intervals with similar vectors execute similar code, which is what
 * the k-means selector in sample.hh exploits to pick a few
 * representative intervals instead of timing the whole run.
 *
 * The profiler is a pure consumer of ExecRecords, so it can run off
 * a fast functional Executor (profileBbv — the normal path: no
 * timing model, millions of records per second) or be attached to
 * RetireUnit's commit hook during a timing run; both see the same
 * committed stream and produce identical vectors (asserted in
 * tests/test_tracefile.cc).
 */

#ifndef TCFILL_TRACEFILE_BBV_HH
#define TCFILL_TRACEFILE_BBV_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "arch/executor.hh"
#include "common/logging.hh"

namespace tcfill::tracefile
{

/**
 * One profiling interval: instruction counts per basic block. Blocks
 * are keyed by their start PC (the target of the previous control
 * transfer); counts are instructions executed in the block, so every
 * interval's counts sum to its `insts`.
 */
struct BbvInterval
{
    InstSeqNum insts = 0;
    std::map<Addr, std::uint64_t> blocks;
};

/** Streaming BBV profiler over committed records. */
class BbvProfiler
{
  public:
    /** @p interval is the interval length in committed instructions. */
    explicit BbvProfiler(InstSeqNum interval);

    /** Account one committed record (records arrive in order). */
    void consume(const ExecRecord &rec);

    /**
     * Record-free variant for the Executor fast path: @p pc is the
     * committed instruction's PC and @p ends_block is
     * Executor::fastStep()'s return (control transfer or serializing).
     * Produces vectors identical to the ExecRecord overload on the
     * same stream (asserted in tests). Inline: this runs once per
     * committed instruction of every profiling pass.
     */
    void
    consume(Addr pc, bool ends_block)
    {
        panic_if(finished_, "BbvProfiler::consume() after finish()");
        if (!in_block_) {
            block_start_ = pc;
            in_block_ = true;
        }
        ++block_len_;
        ++cur_.insts;
        ++total_;

        if (ends_block) {
            flushBlock();
            in_block_ = false;
        }

        if (cur_.insts >= interval_)
            cutInterval();
    }

    /** Close the trailing partial interval (idempotent). */
    void finish();

    /** Completed intervals (call finish() first for the tail). */
    const std::vector<BbvInterval> &intervals() const
    {
        return intervals_;
    }

    /** Total instructions consumed. */
    InstSeqNum totalInsts() const { return total_; }

    InstSeqNum intervalLength() const { return interval_; }

  private:
    void flushBlock();
    void cutInterval();

    InstSeqNum interval_;
    InstSeqNum total_ = 0;

    Addr block_start_ = 0;
    bool in_block_ = false;
    std::uint64_t block_len_ = 0;

    BbvInterval cur_;
    std::vector<BbvInterval> intervals_;
    bool finished_ = false;
};

/**
 * Profile @p src functionally to completion (or @p maxInsts committed
 * instructions when non-zero) and return the interval vectors.
 */
std::vector<BbvInterval> profileBbv(CommitSource &src,
                                    InstSeqNum interval,
                                    InstSeqNum maxInsts = 0);

/**
 * Fast-path overload: profile a live Executor via fastStep(), which
 * skips ExecRecord construction and the virtual dispatch. Produces
 * vectors identical to the CommitSource overload (asserted in tests).
 */
std::vector<BbvInterval> profileBbv(Executor &exec,
                                    InstSeqNum interval,
                                    InstSeqNum maxInsts = 0);

/**
 * Emit intervals as a tcfill-bbv-v1 JSON document (deterministic
 * bytes: intervals in order, blocks in ascending PC order).
 */
void writeBbvJson(std::ostream &os, const std::string &workload,
                  InstSeqNum interval,
                  const std::vector<BbvInterval> &intervals);

} // namespace tcfill::tracefile

#endif // TCFILL_TRACEFILE_BBV_HH
