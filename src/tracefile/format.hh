/**
 * @file
 * On-disk layout of the tcfill-trace-v1 committed-trace format and
 * the low-level encoding primitives it is built from: LEB128 varints,
 * zigzag signed mapping, and CRC-32 (IEEE) framing checksums.
 *
 * File layout (all multi-byte scalars little-endian):
 *
 *   magic        8 bytes  "tcfiltr1"
 *   version      u32      kTraceVersion (1)
 *   hdr_len      u32      byte length of the header payload
 *   hdr_payload  bytes    provenance fields, varint-packed (see
 *                         TraceMeta in trace_io.hh)
 *   hdr_crc      u32      CRC-32 of hdr_payload
 *   frames...             record frames, then exactly one end frame
 *
 * Record frame:
 *   tag          u8       kFrameRecords
 *   count        varint   records in this frame (> 0)
 *   byte_len     varint   payload byte length
 *   payload      bytes    varint-packed records (format.cc/trace_io)
 *   crc          u32      CRC-32 of payload
 *
 * End frame:
 *   tag          u8       kFrameEnd
 *   total        varint   total records in the file
 *   crc          u32      CRC-32 of the varint bytes of `total`
 *
 * A file without a terminating end frame is truncated; every payload
 * is CRC-checked before any record in it is surfaced. Record packing
 * itself (per-field deltas) is documented in trace_io.hh and
 * DESIGN.md §12.
 */

#ifndef TCFILL_TRACEFILE_FORMAT_HH
#define TCFILL_TRACEFILE_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/digest.hh"
#include "common/types.hh"

namespace tcfill::tracefile
{

/** File magic: 8 bytes, ASCII, version-bearing suffix. */
inline constexpr char kTraceMagic[8] = {'t', 'c', 'f', 'i',
                                        'l', 't', 'r', '1'};

/** Format version this build reads and writes. */
inline constexpr std::uint32_t kTraceVersion = 1;

/** Frame tags. */
inline constexpr std::uint8_t kFrameRecords = 0x01;
inline constexpr std::uint8_t kFrameEnd = 0xfe;

/** Records buffered per frame by TraceWriter. */
inline constexpr std::size_t kFrameRecordCap = 4096;

/**
 * CRC-32 (IEEE 802.3, poly 0xedb88320, init/final xor ~0) — the
 * shared common/digest implementation, re-exported under the historic
 * tracefile name so frame checksums and the service store/wire CRCs
 * are one algorithm by construction.
 */
inline std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed = 0)
{
    return digest::crc32(data, len, seed);
}

/** Map a signed value onto unsigned LEB128 space (zigzag). */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t u)
{
    return static_cast<std::int64_t>(u >> 1) ^
           -static_cast<std::int64_t>(u & 1);
}

/** Append @p v to @p out as an LEB128 varint (1-10 bytes). */
inline void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

inline void
putZigzag(std::string &out, std::int64_t v)
{
    putVarint(out, zigzagEncode(v));
}

/**
 * Read one LEB128 varint from @p buf at @p pos (advanced past it).
 * Returns false on truncation or overlong (> 10 byte) encodings;
 * the cursor position is unspecified on failure.
 */
inline bool
getVarint(const std::string &buf, std::size_t &pos, std::uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (pos >= buf.size())
            return false;
        const auto byte =
            static_cast<std::uint8_t>(buf[pos++]);
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
    }
    return false;
}

inline bool
getZigzag(const std::string &buf, std::size_t &pos, std::int64_t &v)
{
    std::uint64_t u = 0;
    if (!getVarint(buf, pos, u))
        return false;
    v = zigzagDecode(u);
    return true;
}

} // namespace tcfill::tracefile

#endif // TCFILL_TRACEFILE_FORMAT_HH
