#include "tracefile/sample.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <future>
#include <limits>
#include <memory>
#include <sstream>
#include <string_view>
#include <utility>

#include "arch/checkpoint.hh"
#include "common/kmeans.hh"
#include "common/logging.hh"
#include "obs/host_prof.hh"
#include "obs/trace_events.hh"
#include "sim/processor.hh"
#include "sim/runner.hh"
#include "workloads/suite.hh"

namespace tcfill::tracefile
{

std::vector<Simpoint>
selectSimpoints(const std::vector<BbvInterval> &intervals, unsigned k)
{
    panic_if(k == 0, "simpoint selection needs k > 0");
    const std::size_t n = intervals.size();
    if (n == 0)
        return {};

    // Projection and clustering live in common/kmeans.{hh,cc} (shared
    // with the obs::Timeline phase tagger); the numerics are pinned by
    // the sample golden fixture, so the hoist is behavior-verbatim.
    std::vector<BbvPoint> pts(n);
    for (std::size_t i = 0; i < n; ++i)
        pts[i] = projectBbv(intervals[i].blocks, intervals[i].insts);
    const KmeansResult km = kmeansBbv(pts, k, kBbvSelectSeed);
    const std::vector<std::size_t> &assign = km.assign;
    const std::vector<BbvPoint> &centroids = km.centroids;

    // Representative per non-empty cluster: the member closest to the
    // centroid; weight is the cluster's share of all intervals.
    std::vector<Simpoint> points;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
        std::size_t rep = n;
        double bd = std::numeric_limits<double>::infinity();
        std::size_t members = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (assign[i] != c)
                continue;
            ++members;
            const double d = bbvDist2(pts[i], centroids[c]);
            if (d < bd) {
                bd = d;
                rep = i;
            }
        }
        if (members == 0)
            continue;
        points.push_back(Simpoint{
            rep, static_cast<double>(members) / static_cast<double>(n)});
    }
    std::sort(points.begin(), points.end(),
              [](const Simpoint &a, const Simpoint &b) {
                  return a.interval < b.interval;
              });
    return points;
}

namespace
{

/**
 * Step @p exec forward @p n committed instructions (or to halt) on
 * the virtual record-building path. Part of the reference
 * implementation: Executor::fastForward is the optimized replacement.
 */
void
fastForwardSlow(Executor &exec, InstSeqNum n)
{
    for (InstSeqNum i = 0; i < n && !exec.halted(); ++i)
        exec.step();
}

/**
 * Cycles for a fresh machine to retire @p cap instructions starting
 * from @p skip committed instructions into @p prog's stream. Part of
 * the reference implementation: the optimized path reads the warmup
 * cycle count out of the full measurement run via the retire-cycle
 * probe instead of paying a second capped run.
 */
Cycle
timePrefix(const Program &prog, const SimConfig &cfg, InstSeqNum skip,
           InstSeqNum cap)
{
    if (cap == 0)
        return 0;
    Executor exec(prog);
    fastForwardSlow(exec, skip);
    SimConfig run_cfg = cfg;
    run_cfg.maxInsts = cap;
    Processor proc(exec, prog.name, exec.state().pc, run_cfg);
    return proc.run().cycles;
}

/** Shared result-document skeleton of both implementations. */
SimResult
assembleEstimate(const SimConfig &cfg, const Program &prog,
                 InstSeqNum total, double est_cpi)
{
    SimResult res;
    res.config = cfg.name;
    res.workload = prog.name;
    res.mode = "sample";
    res.maxInsts = cfg.maxInsts;
    res.retired = total;
    res.cycles = static_cast<Cycle>(
        std::llround(est_cpi * static_cast<double>(total)));
    return res;
}

/** The (skip, warm, measure) geometry of one simpoint measurement. */
struct PointTask
{
    InstSeqNum skip = 0;
    InstSeqNum warm = 0;
    InstSeqNum measure = 0;
};

PointTask
pointTask(const Simpoint &p, const std::vector<BbvInterval> &ivs,
          const SampleSpec &spec)
{
    const InstSeqNum start =
        static_cast<InstSeqNum>(p.interval) * spec.interval;
    const InstSeqNum warm = std::min<InstSeqNum>(spec.warmup, start);
    return PointTask{start - warm, warm, ivs[p.interval].insts};
}

// Host-timebase thread tracks of a sampled run's trace-event export:
// tid 1 is the profiling pass, each simpoint measurement gets its own
// track (tasks run concurrently on the pool, so sharing one track
// would interleave the spans).
constexpr int kHostTidProfile = 1;

int
hostTidPoint(std::size_t i)
{
    return static_cast<int>(i) + 2;
}

/** Emit one host-timebase span; @p t0 from TraceEventWriter::nowUs. */
void
hostSpan(obs::TraceEventWriter *ev, int tid, std::string_view name,
         double t0, std::string_view args = {})
{
    if (ev)
        ev->complete(obs::kTracePidHost, tid, name, t0,
                     ev->nowUs() - t0, args);
}

} // namespace

SimResult
runSampled(const std::string &workload, unsigned scale,
           const SimConfig &cfg, const SampleSpec &spec,
           obs::ProgressFn progress)
{
    panic_if(spec.interval == 0, "sample interval must be positive");
    const auto t0 = std::chrono::steady_clock::now();
    const Program prog = workloads::build(workload, scale);

    if (spec.events) {
        spec.events->processName(obs::kTracePidHost,
                                 "tcfill sampled-run host (wall clock)");
        spec.events->threadName(obs::kTracePidHost, kHostTidProfile,
                                "profile");
    }

    // One functional profiling pass on the fast-stepping path over
    // the same region a full timing run would retire
    // (cfg.maxInsts-capped): BBV vectors for simpoint selection plus
    // incremental checkpoints at interval boundaries so each
    // measurement below restores its start point instead of
    // re-executing the prefix. The host profiler's sections nest:
    // "profile" is inclusive of the "checkpoint" captures taken
    // inside the pass.
    Executor prof_exec(prog);
    CheckpointStore ckpts(prog, prof_exec);
    const InstSeqNum ckpt_every =
        spec.interval * std::max(1u, spec.checkpointStride);
    BbvProfiler prof(spec.interval);
    const double prof_t0 = spec.events ? spec.events->nowUs() : 0.0;
    {
        obs::ScopedHostTimer profile_timer(spec.profiler,
                                           obs::HostSection::Profile);
        if (spec.useCheckpoints) {
            // Boundary zero: every skip has a base.
            obs::ScopedHostTimer ckpt_timer(
                spec.profiler, obs::HostSection::Checkpoint);
            ckpts.capture();
        }
        const InstSeqNum cap = cfg.maxInsts;
        InstSeqNum n = 0;
        while (!prof_exec.halted() && (cap == 0 || n < cap)) {
            const Addr pc = prof_exec.state().pc;
            const bool ends_block = prof_exec.fastStep();
            prof.consume(pc, ends_block);
            ++n;
            // No checkpoint at the end of the profiled region: no
            // measurement can start there.
            if (spec.useCheckpoints && n % ckpt_every == 0 &&
                !prof_exec.halted() && (cap == 0 || n < cap)) {
                obs::ScopedHostTimer ckpt_timer(
                    spec.profiler, obs::HostSection::Checkpoint);
                ckpts.capture();
            }
        }
        prof.finish();
    }
    const std::vector<BbvInterval> &ivs = prof.intervals();
    const InstSeqNum total = prof_exec.instCount();
    if (spec.events) {
        char args[96];
        std::snprintf(args, sizeof(args),
                      "\"insts\": %" PRIu64 ", \"checkpoints\": %zu",
                      static_cast<std::uint64_t>(total), ckpts.size());
        hostSpan(spec.events, kHostTidProfile, "profile", prof_t0,
                 args);
    }

    const std::vector<Simpoint> points = selectSimpoints(ivs, spec.k);
    panic_if(points.empty(), "no intervals to sample (empty program?)");

    // One independent task per simpoint: restore the nearest
    // checkpoint at or before the measurement's fast-forward target,
    // fast-forward the residue, then take both the warmup and the
    // measured-interval cycle counts out of a single capped timing
    // run via the retire-cycle probe. Tasks share only immutable
    // state (Program, CheckpointStore, SimConfig), so any pool width
    // yields the same per-point cycles; the weighted fold below runs
    // serially in simpoint order, reproducing the reference
    // implementation's double arithmetic exactly.
    SimRunner pool(spec.jobs);
    if (progress)
        pool.setProgress(std::move(progress));

    SimResult res;
    res.sample.jobs = pool.threads();
    res.sample.simpoints = points.size();
    res.sample.checkpoints = ckpts.size();
    res.sample.checkpointPages = ckpts.pagesStored();

    std::vector<PointTask> tasks(points.size());
    std::vector<std::shared_future<SimResult>> futs(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointTask t = pointTask(points[i], ivs, spec);
        tasks[i] = t;

        std::size_t base = 0;
        if (spec.useCheckpoints) {
            base = ckpts.latestAtOrBefore(t.skip);
            res.sample.restores += 1;
            res.sample.restoredPages += ckpts.pagesUpTo(base);
            res.sample.ffInsts += t.skip - ckpts.at(base).instCount;
        } else {
            res.sample.ffInsts += t.skip;
        }

        // Cache key: everything the measurement depends on — the
        // committed stream (workload, scale) and the machine /
        // measurement geometry. Same idiom as tracefile::submitReplay.
        std::ostringstream key;
        key << "sample-pt@" << workload << '/' << scale << '#'
            << configCacheKey(cfg) << '#' << t.skip << ':' << t.warm
            << ':' << t.measure;

        const bool use_ckpt = spec.useCheckpoints;
        obs::TraceEventWriter *ev = spec.events;
        obs::HostProfiler *hp = spec.profiler;
        const int host_tid = hostTidPoint(i);
        if (ev) {
            char name[32];
            std::snprintf(name, sizeof(name), "simpoint %zu", i);
            ev->threadName(obs::kTracePidHost, host_tid, name);
        }
        futs[i] = pool.submitKeyed(
            key.str(),
            [&prog, &cfg, &ckpts, t, base, use_ckpt, ev, hp,
             host_tid]() {
                std::unique_ptr<Executor> exec;
                InstSeqNum residue = t.skip;
                {
                    obs::ScopedHostTimer timer(
                        hp, obs::HostSection::Restore);
                    const double span_t0 = ev ? ev->nowUs() : 0.0;
                    if (use_ckpt) {
                        exec = ckpts.restore(base);
                        residue = t.skip - ckpts.at(base).instCount;
                    } else {
                        exec = std::make_unique<Executor>(prog);
                    }
                    hostSpan(ev, host_tid, "restore", span_t0);
                }
                {
                    obs::ScopedHostTimer timer(
                        hp, obs::HostSection::FastForward);
                    const double span_t0 = ev ? ev->nowUs() : 0.0;
                    exec->fastForward(residue);
                    char args[48];
                    std::snprintf(args, sizeof(args),
                                  "\"insts\": %" PRIu64,
                                  static_cast<std::uint64_t>(residue));
                    hostSpan(ev, host_tid, "fastForward", span_t0,
                             args);
                }

                obs::ScopedHostTimer timer(hp,
                                           obs::HostSection::Measure);
                const double span_t0 = ev ? ev->nowUs() : 0.0;
                SimConfig run_cfg = cfg;
                run_cfg.maxInsts = t.warm + t.measure;
                Processor proc(*exec, prog.name, exec->state().pc,
                               run_cfg);
                Cycle c_warm = 0;
                if (t.warm > 0)
                    proc.setRetireCycleProbe(t.warm, &c_warm);
                const SimResult full = proc.run();

                SimResult out;
                out.workload = prog.name;
                out.mode = "sample-point";
                out.maxInsts = run_cfg.maxInsts;
                out.retired = t.measure;
                out.cycles = full.cycles - c_warm;
                out.hostSeconds = full.hostSeconds;
                char args[96];
                std::snprintf(args, sizeof(args),
                              "\"warm\": %" PRIu64
                              ", \"measure\": %" PRIu64
                              ", \"cycles\": %" PRIu64,
                              static_cast<std::uint64_t>(t.warm),
                              static_cast<std::uint64_t>(t.measure),
                              static_cast<std::uint64_t>(out.cycles));
                hostSpan(ev, host_tid, "measure", span_t0, args);
                return out;
            });
    }

    double est_cpi = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SimResult r = futs[i].get();
        est_cpi += points[i].weight *
            (static_cast<double>(r.cycles) /
             static_cast<double>(tasks[i].measure));
    }

    SimResult::SampleHost sample = res.sample;
    res = assembleEstimate(cfg, prog, total, est_cpi);
    res.sourceDigest = workloadDigest(workload, scale);
    res.sample = sample;
    if (spec.profiler) {
        for (const obs::HostProfiler::Row &row :
             spec.profiler->rows()) {
            res.hostProfile.push_back(SimResult::HostProfileRow{
                row.name, row.seconds, row.calls});
        }
    }
    res.hostSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return res;
}

SimResult
runSampledReference(const std::string &workload, unsigned scale,
                    const SimConfig &cfg, const SampleSpec &spec)
{
    panic_if(spec.interval == 0, "sample interval must be positive");
    const auto t0 = std::chrono::steady_clock::now();
    const Program prog = workloads::build(workload, scale);

    // Functional BBV profile over the same region a full timing run
    // would retire (cfg.maxInsts-capped), on the virtual
    // record-building path the pre-checkpointing implementation used.
    Executor prof_exec(prog);
    const std::vector<BbvInterval> ivs = profileBbv(
        static_cast<CommitSource &>(prof_exec), spec.interval,
        cfg.maxInsts);
    // profileBbv stops at the cap, so this is min(run length, cap).
    const InstSeqNum total = prof_exec.instCount();

    const std::vector<Simpoint> points = selectSimpoints(ivs, spec.k);
    panic_if(points.empty(), "no intervals to sample (empty program?)");

    // Per-point measurement: warm the machine on the preceding
    // `warmup` instructions, then take the exact cycle count of the
    // interval by prefix subtraction across two capped runs.
    double est_cpi = 0.0;
    for (const Simpoint &p : points) {
        const PointTask t = pointTask(p, ivs, spec);
        const Cycle c_warm = timePrefix(prog, cfg, t.skip, t.warm);
        const Cycle c_full =
            timePrefix(prog, cfg, t.skip, t.warm + t.measure);
        const double cycles =
            static_cast<double>(c_full) - static_cast<double>(c_warm);
        est_cpi += p.weight * (cycles / static_cast<double>(t.measure));
    }

    SimResult res = assembleEstimate(cfg, prog, total, est_cpi);
    res.sourceDigest = workloadDigest(workload, scale);
    res.hostSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return res;
}

} // namespace tcfill::tracefile
