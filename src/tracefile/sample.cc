#include "tracefile/sample.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "arch/checkpoint.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "sim/processor.hh"
#include "sim/runner.hh"
#include "workloads/suite.hh"

namespace tcfill::tracefile
{

namespace
{

/** Projection dimensionality (SimPoint uses 15; 16 packs nicely). */
constexpr std::size_t kProjDims = 16;

/** Fixed seed: selection must be reproducible across runs/platforms. */
constexpr std::uint64_t kSelectSeed = 0x51e0b0d15ee7ull;

using ProjVec = std::array<double, kProjDims>;

/**
 * Pseudo-random projection weight for (block PC, dimension) in
 * [-1, 1), derived by hashing so no projection matrix is stored and
 * every interval sees the same weights. SplitMix64 finalizer.
 */
double
projWeight(Addr pc, std::size_t dim)
{
    std::uint64_t z = pc * 0x9e3779b97f4a7c15ull + dim + 1;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * (2.0 / 9007199254740992.0) -
           1.0;
}

/** Project an interval's block counts, normalized to frequencies. */
ProjVec
project(const BbvInterval &iv)
{
    ProjVec v{};
    if (iv.insts == 0)
        return v;
    const double inv = 1.0 / static_cast<double>(iv.insts);
    for (const auto &[pc, count] : iv.blocks) {
        const double f = static_cast<double>(count) * inv;
        for (std::size_t d = 0; d < kProjDims; ++d)
            v[d] += f * projWeight(pc, d);
    }
    return v;
}

double
dist2(const ProjVec &a, const ProjVec &b)
{
    double s = 0.0;
    for (std::size_t d = 0; d < kProjDims; ++d) {
        const double diff = a[d] - b[d];
        s += diff * diff;
    }
    return s;
}

} // namespace

std::vector<Simpoint>
selectSimpoints(const std::vector<BbvInterval> &intervals, unsigned k)
{
    panic_if(k == 0, "simpoint selection needs k > 0");
    const std::size_t n = intervals.size();
    if (n == 0)
        return {};
    k = static_cast<unsigned>(
        std::min<std::size_t>(k, n));

    std::vector<ProjVec> pts(n);
    for (std::size_t i = 0; i < n; ++i)
        pts[i] = project(intervals[i]);

    // k-means++ seeding from a fixed-seed deterministic stream.
    Random rng(kSelectSeed);
    std::vector<ProjVec> centroids;
    centroids.reserve(k);
    centroids.push_back(pts[rng.below(n)]);
    std::vector<double> best(n, 0.0);
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            best[i] = dist2(pts[i], centroids[0]);
            for (std::size_t c = 1; c < centroids.size(); ++c)
                best[i] = std::min(best[i], dist2(pts[i], centroids[c]));
            total += best[i];
        }
        if (total <= 0.0) {
            // All points coincide with a centroid; further centroids
            // are redundant, stop with fewer clusters.
            break;
        }
        // Draw proportional to squared distance using a fixed-point
        // slice of the generator (deterministic, no doubles from rng).
        const double r = total *
            (static_cast<double>(rng.next() >> 11) /
             9007199254740992.0);
        double acc = 0.0;
        std::size_t pick = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            acc += best[i];
            if (acc >= r) {
                pick = i;
                break;
            }
        }
        centroids.push_back(pts[pick]);
    }

    // Lloyd iterations to convergence (bounded; ties break low-index
    // so assignment is deterministic).
    std::vector<std::size_t> assign(n, 0);
    for (int iter = 0; iter < 100; ++iter) {
        bool moved = false;
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t bc = 0;
            double bd = dist2(pts[i], centroids[0]);
            for (std::size_t c = 1; c < centroids.size(); ++c) {
                const double d = dist2(pts[i], centroids[c]);
                if (d < bd) {
                    bd = d;
                    bc = c;
                }
            }
            if (assign[i] != bc) {
                assign[i] = bc;
                moved = true;
            }
        }
        if (!moved && iter > 0)
            break;
        std::vector<ProjVec> sums(centroids.size(), ProjVec{});
        std::vector<std::size_t> counts(centroids.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t d = 0; d < kProjDims; ++d)
                sums[assign[i]][d] += pts[i][d];
            ++counts[assign[i]];
        }
        for (std::size_t c = 0; c < centroids.size(); ++c) {
            if (counts[c] == 0)
                continue; // empty cluster keeps its centroid
            for (std::size_t d = 0; d < kProjDims; ++d)
                centroids[c][d] = sums[c][d] /
                    static_cast<double>(counts[c]);
        }
    }

    // Representative per non-empty cluster: the member closest to the
    // centroid; weight is the cluster's share of all intervals.
    std::vector<Simpoint> points;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
        std::size_t rep = n;
        double bd = std::numeric_limits<double>::infinity();
        std::size_t members = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (assign[i] != c)
                continue;
            ++members;
            const double d = dist2(pts[i], centroids[c]);
            if (d < bd) {
                bd = d;
                rep = i;
            }
        }
        if (members == 0)
            continue;
        points.push_back(Simpoint{
            rep, static_cast<double>(members) / static_cast<double>(n)});
    }
    std::sort(points.begin(), points.end(),
              [](const Simpoint &a, const Simpoint &b) {
                  return a.interval < b.interval;
              });
    return points;
}

namespace
{

/**
 * Step @p exec forward @p n committed instructions (or to halt) on
 * the virtual record-building path. Part of the reference
 * implementation: Executor::fastForward is the optimized replacement.
 */
void
fastForwardSlow(Executor &exec, InstSeqNum n)
{
    for (InstSeqNum i = 0; i < n && !exec.halted(); ++i)
        exec.step();
}

/**
 * Cycles for a fresh machine to retire @p cap instructions starting
 * from @p skip committed instructions into @p prog's stream. Part of
 * the reference implementation: the optimized path reads the warmup
 * cycle count out of the full measurement run via the retire-cycle
 * probe instead of paying a second capped run.
 */
Cycle
timePrefix(const Program &prog, const SimConfig &cfg, InstSeqNum skip,
           InstSeqNum cap)
{
    if (cap == 0)
        return 0;
    Executor exec(prog);
    fastForwardSlow(exec, skip);
    SimConfig run_cfg = cfg;
    run_cfg.maxInsts = cap;
    Processor proc(exec, prog.name, exec.state().pc, run_cfg);
    return proc.run().cycles;
}

/** Shared result-document skeleton of both implementations. */
SimResult
assembleEstimate(const SimConfig &cfg, const Program &prog,
                 InstSeqNum total, double est_cpi)
{
    SimResult res;
    res.config = cfg.name;
    res.workload = prog.name;
    res.mode = "sample";
    res.maxInsts = cfg.maxInsts;
    res.retired = total;
    res.cycles = static_cast<Cycle>(
        std::llround(est_cpi * static_cast<double>(total)));
    return res;
}

/** The (skip, warm, measure) geometry of one simpoint measurement. */
struct PointTask
{
    InstSeqNum skip = 0;
    InstSeqNum warm = 0;
    InstSeqNum measure = 0;
};

PointTask
pointTask(const Simpoint &p, const std::vector<BbvInterval> &ivs,
          const SampleSpec &spec)
{
    const InstSeqNum start =
        static_cast<InstSeqNum>(p.interval) * spec.interval;
    const InstSeqNum warm = std::min<InstSeqNum>(spec.warmup, start);
    return PointTask{start - warm, warm, ivs[p.interval].insts};
}

} // namespace

SimResult
runSampled(const std::string &workload, unsigned scale,
           const SimConfig &cfg, const SampleSpec &spec,
           obs::ProgressFn progress)
{
    panic_if(spec.interval == 0, "sample interval must be positive");
    const auto t0 = std::chrono::steady_clock::now();
    const Program prog = workloads::build(workload, scale);

    // One functional profiling pass on the fast-stepping path over
    // the same region a full timing run would retire
    // (cfg.maxInsts-capped): BBV vectors for simpoint selection plus
    // incremental checkpoints at interval boundaries so each
    // measurement below restores its start point instead of
    // re-executing the prefix.
    Executor prof_exec(prog);
    CheckpointStore ckpts(prog, prof_exec);
    const InstSeqNum ckpt_every =
        spec.interval * std::max(1u, spec.checkpointStride);
    BbvProfiler prof(spec.interval);
    if (spec.useCheckpoints)
        ckpts.capture();    // boundary zero: every skip has a base
    const InstSeqNum cap = cfg.maxInsts;
    InstSeqNum n = 0;
    while (!prof_exec.halted() && (cap == 0 || n < cap)) {
        const Addr pc = prof_exec.state().pc;
        const bool ends_block = prof_exec.fastStep();
        prof.consume(pc, ends_block);
        ++n;
        // No checkpoint at the end of the profiled region: no
        // measurement can start there.
        if (spec.useCheckpoints && n % ckpt_every == 0 &&
            !prof_exec.halted() && (cap == 0 || n < cap)) {
            ckpts.capture();
        }
    }
    prof.finish();
    const std::vector<BbvInterval> &ivs = prof.intervals();
    const InstSeqNum total = prof_exec.instCount();

    const std::vector<Simpoint> points = selectSimpoints(ivs, spec.k);
    panic_if(points.empty(), "no intervals to sample (empty program?)");

    // One independent task per simpoint: restore the nearest
    // checkpoint at or before the measurement's fast-forward target,
    // fast-forward the residue, then take both the warmup and the
    // measured-interval cycle counts out of a single capped timing
    // run via the retire-cycle probe. Tasks share only immutable
    // state (Program, CheckpointStore, SimConfig), so any pool width
    // yields the same per-point cycles; the weighted fold below runs
    // serially in simpoint order, reproducing the reference
    // implementation's double arithmetic exactly.
    SimRunner pool(spec.jobs);
    if (progress)
        pool.setProgress(std::move(progress));

    SimResult res;
    res.sample.jobs = pool.threads();
    res.sample.simpoints = points.size();
    res.sample.checkpoints = ckpts.size();
    res.sample.checkpointPages = ckpts.pagesStored();

    std::vector<PointTask> tasks(points.size());
    std::vector<std::shared_future<SimResult>> futs(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointTask t = pointTask(points[i], ivs, spec);
        tasks[i] = t;

        std::size_t base = 0;
        if (spec.useCheckpoints) {
            base = ckpts.latestAtOrBefore(t.skip);
            res.sample.restores += 1;
            res.sample.restoredPages += ckpts.pagesUpTo(base);
            res.sample.ffInsts += t.skip - ckpts.at(base).instCount;
        } else {
            res.sample.ffInsts += t.skip;
        }

        // Cache key: everything the measurement depends on — the
        // committed stream (workload, scale) and the machine /
        // measurement geometry. Same idiom as tracefile::submitReplay.
        std::ostringstream key;
        key << "sample-pt@" << workload << '/' << scale << '#'
            << configCacheKey(cfg) << '#' << t.skip << ':' << t.warm
            << ':' << t.measure;

        const bool use_ckpt = spec.useCheckpoints;
        futs[i] = pool.submitKeyed(
            key.str(), [&prog, &cfg, &ckpts, t, base, use_ckpt]() {
                std::unique_ptr<Executor> exec;
                InstSeqNum residue = t.skip;
                if (use_ckpt) {
                    exec = ckpts.restore(base);
                    residue = t.skip - ckpts.at(base).instCount;
                } else {
                    exec = std::make_unique<Executor>(prog);
                }
                exec->fastForward(residue);

                SimConfig run_cfg = cfg;
                run_cfg.maxInsts = t.warm + t.measure;
                Processor proc(*exec, prog.name, exec->state().pc,
                               run_cfg);
                Cycle c_warm = 0;
                if (t.warm > 0)
                    proc.setRetireCycleProbe(t.warm, &c_warm);
                const SimResult full = proc.run();

                SimResult out;
                out.workload = prog.name;
                out.mode = "sample-point";
                out.maxInsts = run_cfg.maxInsts;
                out.retired = t.measure;
                out.cycles = full.cycles - c_warm;
                out.hostSeconds = full.hostSeconds;
                return out;
            });
    }

    double est_cpi = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SimResult r = futs[i].get();
        est_cpi += points[i].weight *
            (static_cast<double>(r.cycles) /
             static_cast<double>(tasks[i].measure));
    }

    SimResult::SampleHost sample = res.sample;
    res = assembleEstimate(cfg, prog, total, est_cpi);
    res.sample = sample;
    res.hostSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return res;
}

SimResult
runSampledReference(const std::string &workload, unsigned scale,
                    const SimConfig &cfg, const SampleSpec &spec)
{
    panic_if(spec.interval == 0, "sample interval must be positive");
    const auto t0 = std::chrono::steady_clock::now();
    const Program prog = workloads::build(workload, scale);

    // Functional BBV profile over the same region a full timing run
    // would retire (cfg.maxInsts-capped), on the virtual
    // record-building path the pre-checkpointing implementation used.
    Executor prof_exec(prog);
    const std::vector<BbvInterval> ivs = profileBbv(
        static_cast<CommitSource &>(prof_exec), spec.interval,
        cfg.maxInsts);
    // profileBbv stops at the cap, so this is min(run length, cap).
    const InstSeqNum total = prof_exec.instCount();

    const std::vector<Simpoint> points = selectSimpoints(ivs, spec.k);
    panic_if(points.empty(), "no intervals to sample (empty program?)");

    // Per-point measurement: warm the machine on the preceding
    // `warmup` instructions, then take the exact cycle count of the
    // interval by prefix subtraction across two capped runs.
    double est_cpi = 0.0;
    for (const Simpoint &p : points) {
        const PointTask t = pointTask(p, ivs, spec);
        const Cycle c_warm = timePrefix(prog, cfg, t.skip, t.warm);
        const Cycle c_full =
            timePrefix(prog, cfg, t.skip, t.warm + t.measure);
        const double cycles =
            static_cast<double>(c_full) - static_cast<double>(c_warm);
        est_cpi += p.weight * (cycles / static_cast<double>(t.measure));
    }

    SimResult res = assembleEstimate(cfg, prog, total, est_cpi);
    res.hostSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return res;
}

} // namespace tcfill::tracefile
