/**
 * @file
 * TraceWriter / TraceReader: streaming capture and parsing of
 * tcfill-trace-v1 committed-trace files (layout in format.hh), plus
 * the RecordingSource tee that captures any CommitSource's stream as
 * it feeds the timing model.
 *
 * Record packing (inside a frame payload), per committed instruction:
 *
 *   flags     u8      bit0 taken, bit1 has-effAddr
 *   op        u8      semantic opcode
 *   dest/src1/src2/src3  u8 each (0xff = none)
 *   shamt     u8
 *   imm       zigzag varint
 *   pc        zigzag varint, delta from the previous record's nextPc
 *                     (the committed path makes this 0 — one byte —
 *                     except the very first record, which deltas from
 *                     the header's entry PC)
 *   nextPc    zigzag varint, delta from pc + 4 (0 for fall-through)
 *   effAddr   zigzag varint, delta from the previous effAddr
 *                     (present iff bit1 of flags)
 *
 * Sequence numbers are implicit: record i carries seq == i, matching
 * a fresh Executor. ~4-8 bytes per record on the suite workloads.
 *
 * The reader is non-fatal by design: every structural problem
 * (truncation, CRC mismatch, version skew) surfaces as a ReadStatus
 * so callers choose between a clean error (ReplayExecutor fatals)
 * and programmatic handling (tests).
 */

#ifndef TCFILL_TRACEFILE_TRACE_IO_HH
#define TCFILL_TRACEFILE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "arch/executor.hh"
#include "tracefile/format.hh"

namespace tcfill::tracefile
{

/** Header provenance carried by every trace file. */
struct TraceMeta
{
    /** Workload the trace was captured from (suite name). */
    std::string workload;
    /** SimConfig name active at capture (cosmetic provenance). */
    std::string config;
    /** Workload scale factor at capture. */
    unsigned scale = 1;
    /** First PC of the committed stream (Program::entry). */
    Addr entryPc = 0;
    /** Retire cap active at capture (0 = recorded to halt). */
    InstSeqNum maxInsts = 0;
};

/** Why a read stopped. Ok/Eof are the two non-error outcomes. */
enum class ReadStatus : std::uint8_t
{
    Ok,           ///< record produced / header parsed
    Eof,          ///< clean end frame reached, stream exhausted
    Truncated,    ///< stream ended without an end frame
    CrcMismatch,  ///< a frame payload failed its checksum
    BadMagic,     ///< not a tcfill trace file
    BadVersion,   ///< format version this build does not speak
    Malformed,    ///< structurally invalid varint / frame tag
};

/** Human-readable form of a ReadStatus (stable, for error text). */
const char *readStatusName(ReadStatus s);

/**
 * Streams committed records into a tcfill-trace-v1 file. Records are
 * buffered into CRC-framed blocks of kFrameRecordCap; finish() (or
 * destruction) flushes the tail frame and the end frame — a file
 * missing its end frame is detected as truncated on read.
 */
class TraceWriter
{
  public:
    /** Writes the header immediately; @p os must outlive the writer. */
    TraceWriter(std::ostream &os, const TraceMeta &meta);

    /** Flushes via finish() if the caller has not. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one committed record (records arrive in seq order). */
    void append(const ExecRecord &rec);

    /** Flush the tail frame and write the end frame (idempotent). */
    void finish();

    /** Records appended so far. */
    InstSeqNum records() const { return count_; }

  private:
    void flushFrame();

    std::ostream &os_;
    std::string buf_;           ///< current frame payload
    std::size_t buf_records_ = 0;
    InstSeqNum count_ = 0;
    Addr expected_pc_;          ///< previous record's nextPc
    Addr prev_eff_addr_ = 0;
    bool finished_ = false;
};

/**
 * Streams committed records back out of a tcfill-trace-v1 file. The
 * constructor parses and CRC-checks the header; next() produces
 * records until Eof or an error status. After any non-Ok status the
 * reader is exhausted and next() keeps returning that status.
 */
class TraceReader
{
  public:
    /** Parses the header; check error() before trusting meta(). */
    explicit TraceReader(std::istream &is);

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Header provenance (valid when error() == Ok). */
    const TraceMeta &meta() const { return meta_; }

    /** Ok until the first structural error; Eof after the end frame. */
    ReadStatus error() const { return status_; }

    /** One-line description of the current error (empty when Ok). */
    const std::string &errorDetail() const { return detail_; }

    /**
     * Produce the next record. Returns Ok and fills @p rec, or Eof
     * at the clean end of the trace, or an error status.
     */
    ReadStatus next(ExecRecord &rec);

    /** Records produced so far. */
    InstSeqNum records() const { return count_; }

    /**
     * Total records promised by the end frame; only known (and only
     * meaningful) once next() has returned Eof.
     */
    InstSeqNum totalRecords() const { return total_; }

  private:
    ReadStatus fail(ReadStatus s, const std::string &detail);
    ReadStatus parseHeader();
    ReadStatus loadFrame();

    std::istream &is_;
    TraceMeta meta_;
    ReadStatus status_ = ReadStatus::Ok;
    std::string detail_;

    std::string frame_;         ///< current frame payload
    std::size_t frame_pos_ = 0;
    std::size_t frame_left_ = 0;

    InstSeqNum count_ = 0;
    InstSeqNum total_ = 0;
    Addr expected_pc_;
    Addr prev_eff_addr_ = 0;
};

/**
 * CommitSource tee: forwards an inner source unchanged while
 * appending every produced record to a TraceWriter. Wrapping the
 * source (rather than hooking retire) captures exactly the stream
 * the timing model consumed — including records fetched ahead of a
 * maxInsts retire cap — so a later replay never starves the fetch
 * engine. The wrapped run's timing is bit-identical to an unwrapped
 * one.
 */
class RecordingSource : public CommitSource
{
  public:
    RecordingSource(CommitSource &inner, TraceWriter &writer)
        : inner_(inner), writer_(writer)
    {
    }

    bool halted() const override { return inner_.halted(); }

    ExecRecord
    step() override
    {
        ExecRecord rec = inner_.step();
        writer_.append(rec);
        return rec;
    }

    InstSeqNum instCount() const override { return inner_.instCount(); }

  private:
    CommitSource &inner_;
    TraceWriter &writer_;
};

} // namespace tcfill::tracefile

#endif // TCFILL_TRACEFILE_TRACE_IO_HH
