/**
 * @file
 * SimPoint-style interval sampling: cluster the BBV intervals of a
 * workload (bbv.hh), time only one representative interval per
 * cluster, and combine the per-interval CPIs with cluster weights
 * into a whole-run IPC estimate — turning an O(run length) timing
 * simulation into O(k * (warmup + interval)).
 *
 * Measurement is exact per interval, not approximate: the machine is
 * deterministic, so within a single timing run capped at the end of
 * the measured interval, cycles(warmup+measure) - cycles(warmup) —
 * the latter read mid-run by the retire-cycle probe — is precisely
 * the cycles the measured instructions took, with warmed caches and
 * predictors. The only error left is the clustering approximation
 * itself (bounded empirically in EXPERIMENTS.md).
 *
 * runSampled reaches each measurement's start point by restoring an
 * architectural checkpoint dropped during the single functional
 * profiling pass (arch/checkpoint.hh) and runs the per-simpoint
 * measurements concurrently on a SimRunner pool; the estimate is
 * byte-identical to the serial re-execute reference
 * (runSampledReference) at every job count — see DESIGN.md §14.
 */

#ifndef TCFILL_TRACEFILE_SAMPLE_HH
#define TCFILL_TRACEFILE_SAMPLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/progress.hh"
#include "sim/config.hh"
#include "sim/result.hh"
#include "tracefile/bbv.hh"

namespace tcfill::obs
{
class HostProfiler;
class TraceEventWriter;
} // namespace tcfill::obs

namespace tcfill::tracefile
{

/** One selected representative interval. */
struct Simpoint
{
    /** Index into the BBV interval sequence. */
    std::size_t interval = 0;
    /** Fraction of all intervals in this point's cluster. */
    double weight = 0.0;
};

/**
 * Cluster @p intervals into (at most) @p k groups by BBV similarity
 * and return one representative per non-empty cluster, ordered by
 * interval index. Deterministic: k-means++ seeding and Lloyd
 * iterations run off a fixed-seed tcfill::Random, and block vectors
 * are random-projected with a hash of the block PC, so the same
 * intervals always select the same points on every platform.
 */
std::vector<Simpoint> selectSimpoints(
    const std::vector<BbvInterval> &intervals, unsigned k);

/** Parameters of a sampled run. */
struct SampleSpec
{
    /** Target cluster count (clamped to the interval count). */
    unsigned k = 4;
    /** Interval length in committed instructions. */
    InstSeqNum interval = 100'000;
    /** Instructions simulated (not measured) before each interval. */
    InstSeqNum warmup = 50'000;

    // None of the knobs below affect the estimate — only how fast it
    // is produced (asserted byte-identical in tests and CI).

    /** Measurement worker threads (0 = SimRunner::defaultThreads()). */
    unsigned jobs = 0;
    /**
     * Reach measurement start points by restoring interval-boundary
     * checkpoints (arch/checkpoint.hh); when false, functionally
     * re-execute the prefix instead (still on the fast path).
     */
    bool useCheckpoints = true;
    /**
     * Capture a checkpoint every this-many interval boundaries (>= 1).
     * Wider strides journal fewer pages at the cost of a longer
     * residual fast-forward per measurement.
     */
    unsigned checkpointStride = 1;

    /**
     * Optional Chrome trace-event writer: runSampled appends its
     * profile/checkpoint spans plus per-simpoint restore /
     * fast-forward / measure spans on the host timebase
     * (obs::kTracePidHost; wall-clock us since the writer opened).
     * Purely observational — the estimate is byte-identical with or
     * without it. The caller owns the writer (and its close()).
     */
    obs::TraceEventWriter *events = nullptr;
    /**
     * Optional host self-profiler: runSampled attributes its wall
     * clock to the profile / checkpoint / restore / fastForward /
     * measure sections and copies the rows into
     * SimResult::hostProfile. Thread-safe (pool workers share it);
     * purely observational.
     */
    obs::HostProfiler *profiler = nullptr;
};

/**
 * Estimate the full-run timing of (@p workload, @p scale, @p cfg) by
 * BBV sampling: functional profile, simpoint selection, then one
 * warmed timing measurement per selected interval. The result has
 * mode "sample"; retired is the full functional instruction count
 * (honoring cfg.maxInsts) and cycles is the weighted whole-run
 * estimate, so ipc() is directly comparable to a full run's. The
 * detailed microarchitectural counters are left zero — a sampled run
 * estimates IPC, not the full counter set; SimResult::sample carries
 * the checkpoint/restore accounting and SimResult::hostSeconds the
 * end-to-end wall clock.
 *
 * @param progress optional SimRunner progress callback observing the
 *        per-simpoint measurement tasks (see SimRunner::setProgress).
 */
SimResult runSampled(const std::string &workload, unsigned scale,
                     const SimConfig &cfg, const SampleSpec &spec,
                     obs::ProgressFn progress = {});

/**
 * The pre-checkpointing serial implementation, kept as the
 * correctness oracle and benchmark baseline: every simpoint
 * re-executes its prefix functionally from instruction zero and times
 * warmup and warmup+measure as two separate runs. Ignores
 * SampleSpec's host-side knobs. runSampled must produce a
 * byte-identical SimResult body (asserted in tests and the CI
 * sample-determinism job).
 */
SimResult runSampledReference(const std::string &workload, unsigned scale,
                              const SimConfig &cfg,
                              const SampleSpec &spec);

} // namespace tcfill::tracefile

#endif // TCFILL_TRACEFILE_SAMPLE_HH
