#include "tracefile/bbv.hh"

#include <ostream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace tcfill::tracefile
{

BbvProfiler::BbvProfiler(InstSeqNum interval) : interval_(interval)
{
    panic_if(interval_ == 0, "BBV interval must be positive");
}

void
BbvProfiler::flushBlock()
{
    if (block_len_ == 0)
        return;
    cur_.blocks[block_start_] += block_len_;
    block_len_ = 0;
}

void
BbvProfiler::consume(const ExecRecord &rec)
{
    // A block ends at any control transfer (taken or not — SimPoint
    // keys blocks on static extent, and a not-taken branch still ends
    // the static block) or serializing instruction.
    consume(rec.pc, rec.inst.isControl() || rec.inst.isSerializing());
}

void
BbvProfiler::cutInterval()
{
    // Cut exactly at the interval length; a block straddling the
    // boundary contributes its halves to both intervals under the
    // same start-PC key.
    flushBlock();
    intervals_.push_back(std::move(cur_));
    cur_ = BbvInterval{};
}

void
BbvProfiler::finish()
{
    if (finished_)
        return;
    flushBlock();
    if (cur_.insts > 0) {
        intervals_.push_back(std::move(cur_));
        cur_ = BbvInterval{};
    }
    finished_ = true;
}

std::vector<BbvInterval>
profileBbv(CommitSource &src, InstSeqNum interval, InstSeqNum maxInsts)
{
    BbvProfiler prof(interval);
    InstSeqNum n = 0;
    while (!src.halted() && (maxInsts == 0 || n < maxInsts)) {
        prof.consume(src.step());
        ++n;
    }
    prof.finish();
    return prof.intervals();
}

std::vector<BbvInterval>
profileBbv(Executor &exec, InstSeqNum interval, InstSeqNum maxInsts)
{
    BbvProfiler prof(interval);
    InstSeqNum n = 0;
    while (!exec.halted() && (maxInsts == 0 || n < maxInsts)) {
        // fastStep() advances the PC; read it first (consume keys the
        // block on the committed instruction's own PC).
        const Addr pc = exec.state().pc;
        prof.consume(pc, exec.fastStep());
        ++n;
    }
    prof.finish();
    return prof.intervals();
}

void
writeBbvJson(std::ostream &os, const std::string &workload,
             InstSeqNum interval,
             const std::vector<BbvInterval> &intervals)
{
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "tcfill-bbv-v1");
    w.field("workload", workload);
    w.field("intervalLength", static_cast<std::uint64_t>(interval));
    w.field("intervals", static_cast<std::uint64_t>(intervals.size()));
    w.beginArray("vectors");
    for (const BbvInterval &iv : intervals) {
        w.beginObject();
        w.field("insts", static_cast<std::uint64_t>(iv.insts));
        w.beginObject("blocks");
        for (const auto &[pc, count] : iv.blocks) {
            w.field(std::to_string(pc),
                    static_cast<std::uint64_t>(count));
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.finish();
}

} // namespace tcfill::tracefile
