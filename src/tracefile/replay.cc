#include "tracefile/replay.hh"

#include <fstream>
#include <sstream>

#include "common/digest.hh"
#include "common/logging.hh"
#include "sim/processor.hh"
#include "workloads/suite.hh"

namespace tcfill::tracefile
{

// --------------------------------------------------------------------
// ReplayExecutor
// --------------------------------------------------------------------

ReplayExecutor::ReplayExecutor(std::istream &is, const std::string &name)
    : reader_(is), name_(name)
{
    if (reader_.error() != ReadStatus::Ok) {
        fatal("%s: %s (%s)", name_.c_str(),
              readStatusName(reader_.error()),
              reader_.errorDetail().c_str());
    }
    advance();
}

void
ReplayExecutor::advance()
{
    const ReadStatus s = reader_.next(next_);
    if (s == ReadStatus::Ok) {
        has_next_ = true;
        return;
    }
    has_next_ = false;
    if (s != ReadStatus::Eof) {
        fatal("%s: %s after %llu records (%s)", name_.c_str(),
              readStatusName(s),
              static_cast<unsigned long long>(reader_.records()),
              reader_.errorDetail().c_str());
    }
}

ExecRecord
ReplayExecutor::step()
{
    panic_if(!has_next_, "ReplayExecutor::step() after halted()");
    ExecRecord rec = next_;
    ++stepped_;
    advance();
    return rec;
}

// --------------------------------------------------------------------
// One-call record / replay
// --------------------------------------------------------------------

std::string
traceIdentity(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open trace file '%s'", path.c_str());
    char buf[1 << 16];
    std::uint32_t crc = 0;
    std::uint64_t size = 0;
    while (is.read(buf, sizeof(buf)) || is.gcount() > 0) {
        const auto n = static_cast<std::size_t>(is.gcount());
        crc = crc32(buf, n, crc);
        size += n;
    }
    std::ostringstream os;
    os << std::hex << crc << std::dec << ':' << size;
    return os.str();
}

std::string
traceDigest(const std::string &identity)
{
    return digest::hex64(digest::fnv64("trace:" + identity));
}

SimResult
recordTrace(const std::string &workload, unsigned scale,
            const SimConfig &cfg, const std::string &path)
{
    const Program prog = workloads::build(workload, scale);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("cannot write trace file '%s'", path.c_str());

    TraceMeta meta;
    meta.workload = prog.name;
    meta.config = cfg.name;
    meta.scale = scale;
    meta.entryPc = prog.entry;
    meta.maxInsts = cfg.maxInsts;

    Executor exec(prog);
    TraceWriter writer(os, meta);
    RecordingSource source(exec, writer);
    Processor proc(source, prog.name, prog.entry, cfg);
    SimResult res = proc.run();
    writer.finish();
    if (!os)
        fatal("write error on trace file '%s'", path.c_str());
    res.mode = "record";
    res.sourceDigest = workloadDigest(workload, scale);
    return res;
}

SimResult
replayTrace(const std::string &path, const SimConfig &cfg)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open trace file '%s'", path.c_str());
    ReplayExecutor source(is, path);

    // A capped recording stops mid-program: the committed stream ends
    // at the retire cap (plus the fetch-ahead tail), not at a
    // serializing halt, so the pipeline cannot outrun the recorded
    // region. Clamp the replay cap to the recording's so the replayed
    // machine stops exactly where the recorded one did.
    SimConfig run_cfg = cfg;
    const InstSeqNum recorded = source.meta().maxInsts;
    if (recorded > 0 &&
        (run_cfg.maxInsts == 0 || run_cfg.maxInsts > recorded)) {
        warn("%s: trace was recorded with --max-insts %llu; "
             "clamping replay cap %llu to the recorded region",
             path.c_str(), static_cast<unsigned long long>(recorded),
             static_cast<unsigned long long>(run_cfg.maxInsts));
        run_cfg.maxInsts = recorded;
    }

    Processor proc(source, source.meta().workload,
                   source.meta().entryPc, run_cfg);
    SimResult res = proc.run();
    res.mode = "replay";
    res.sourceDigest = traceDigest(traceIdentity(path));
    return res;
}

std::shared_future<SimResult>
submitReplay(SimRunner &runner, const std::string &path,
             const SimConfig &cfg, bool *cache_hit)
{
    const std::string key =
        "replay@" + traceIdentity(path) + '#' + configCacheKey(cfg);
    return runner.submitKeyed(
        key, [path, cfg]() { return replayTrace(path, cfg); },
        cache_hit);
}

} // namespace tcfill::tracefile
