#include "tracefile/trace_io.hh"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace tcfill::tracefile
{

namespace
{

/** Upper bounds that make corrupt length fields fail fast instead of
 *  attempting multi-gigabyte allocations. */
constexpr std::uint64_t kMaxHeaderBytes = 1u << 20;
constexpr std::uint64_t kMaxFrameBytes = 1u << 26;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    const char bytes[4] = {
        static_cast<char>(v & 0xff),
        static_cast<char>((v >> 8) & 0xff),
        static_cast<char>((v >> 16) & 0xff),
        static_cast<char>((v >> 24) & 0xff),
    };
    os.write(bytes, 4);
}

bool
readU32(std::istream &is, std::uint32_t &v)
{
    unsigned char bytes[4];
    if (!is.read(reinterpret_cast<char *>(bytes), 4))
        return false;
    v = static_cast<std::uint32_t>(bytes[0]) |
        static_cast<std::uint32_t>(bytes[1]) << 8 |
        static_cast<std::uint32_t>(bytes[2]) << 16 |
        static_cast<std::uint32_t>(bytes[3]) << 24;
    return true;
}

/** Stream-side varint; appends the raw bytes to @p raw when given. */
bool
readVarintStream(std::istream &is, std::uint64_t &v,
                 std::string *raw = nullptr)
{
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        int c = is.get();
        if (c < 0)
            return false;
        if (raw)
            raw->push_back(static_cast<char>(c));
        v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return true;
    }
    return false;
}

void
putString(std::string &out, const std::string &s)
{
    putVarint(out, s.size());
    out.append(s);
}

bool
getString(const std::string &buf, std::size_t &pos, std::string &s)
{
    std::uint64_t len = 0;
    if (!getVarint(buf, pos, len) || pos + len > buf.size())
        return false;
    s.assign(buf, pos, len);
    pos += len;
    return true;
}

} // namespace

const char *
readStatusName(ReadStatus s)
{
    switch (s) {
      case ReadStatus::Ok: return "ok";
      case ReadStatus::Eof: return "eof";
      case ReadStatus::Truncated: return "truncated";
      case ReadStatus::CrcMismatch: return "crc mismatch";
      case ReadStatus::BadMagic: return "bad magic";
      case ReadStatus::BadVersion: return "version skew";
      case ReadStatus::Malformed: return "malformed";
    }
    return "unknown";
}

// --------------------------------------------------------------------
// TraceWriter
// --------------------------------------------------------------------

TraceWriter::TraceWriter(std::ostream &os, const TraceMeta &meta)
    : os_(os), expected_pc_(meta.entryPc)
{
    std::string payload;
    putString(payload, meta.workload);
    putString(payload, meta.config);
    putVarint(payload, meta.scale);
    putVarint(payload, meta.entryPc);
    putVarint(payload, meta.maxInsts);

    os_.write(kTraceMagic, sizeof(kTraceMagic));
    writeU32(os_, kTraceVersion);
    writeU32(os_, static_cast<std::uint32_t>(payload.size()));
    os_.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    writeU32(os_, crc32(payload.data(), payload.size()));
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::append(const ExecRecord &rec)
{
    panic_if(finished_, "TraceWriter::append() after finish()");
    panic_if(rec.seq != count_,
             "trace capture out of order: record seq %llu at index "
             "%llu (traces start at a fresh source)",
             static_cast<unsigned long long>(rec.seq),
             static_cast<unsigned long long>(count_));

    const bool has_ea = rec.effAddr != kNoAddr;
    std::uint8_t flags = 0;
    flags |= rec.taken ? 0x01 : 0;
    flags |= has_ea ? 0x02 : 0;

    const Instruction &in = rec.inst;
    buf_.push_back(static_cast<char>(flags));
    buf_.push_back(static_cast<char>(in.op));
    buf_.push_back(static_cast<char>(in.dest));
    buf_.push_back(static_cast<char>(in.src1));
    buf_.push_back(static_cast<char>(in.src2));
    buf_.push_back(static_cast<char>(in.src3));
    buf_.push_back(static_cast<char>(in.shamt));
    putZigzag(buf_, in.imm);
    putZigzag(buf_, static_cast<std::int64_t>(rec.pc - expected_pc_));
    putZigzag(buf_,
              static_cast<std::int64_t>(rec.nextPc - (rec.pc + 4)));
    if (has_ea) {
        putZigzag(buf_, static_cast<std::int64_t>(rec.effAddr -
                                                  prev_eff_addr_));
        prev_eff_addr_ = rec.effAddr;
    }

    expected_pc_ = rec.nextPc;
    ++count_;
    if (++buf_records_ >= kFrameRecordCap)
        flushFrame();
}

void
TraceWriter::flushFrame()
{
    if (buf_records_ == 0)
        return;
    std::string head;
    head.push_back(static_cast<char>(kFrameRecords));
    putVarint(head, buf_records_);
    putVarint(head, buf_.size());
    os_.write(head.data(), static_cast<std::streamsize>(head.size()));
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    writeU32(os_, crc32(buf_.data(), buf_.size()));
    buf_.clear();
    buf_records_ = 0;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    flushFrame();
    std::string total;
    putVarint(total, count_);
    os_.put(static_cast<char>(kFrameEnd));
    os_.write(total.data(),
              static_cast<std::streamsize>(total.size()));
    writeU32(os_, crc32(total.data(), total.size()));
    os_.flush();
    finished_ = true;
}

// --------------------------------------------------------------------
// TraceReader
// --------------------------------------------------------------------

TraceReader::TraceReader(std::istream &is) : is_(is), expected_pc_(0)
{
    parseHeader();
}

ReadStatus
TraceReader::fail(ReadStatus s, const std::string &detail)
{
    status_ = s;
    detail_ = detail;
    return s;
}

ReadStatus
TraceReader::parseHeader()
{
    char magic[sizeof(kTraceMagic)];
    if (!is_.read(magic, sizeof(magic)))
        return fail(ReadStatus::BadMagic, "file shorter than magic");
    if (std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0)
        return fail(ReadStatus::BadMagic, "not a tcfill trace file");

    std::uint32_t version = 0;
    if (!readU32(is_, version))
        return fail(ReadStatus::Truncated, "truncated in version");
    if (version != kTraceVersion) {
        return fail(ReadStatus::BadVersion,
                    "trace is format v" + std::to_string(version) +
                        ", this build reads v" +
                        std::to_string(kTraceVersion));
    }

    std::uint32_t len = 0;
    if (!readU32(is_, len))
        return fail(ReadStatus::Truncated, "truncated in header length");
    if (len > kMaxHeaderBytes)
        return fail(ReadStatus::Malformed, "implausible header length");

    std::string payload(len, '\0');
    if (!is_.read(payload.data(), len))
        return fail(ReadStatus::Truncated, "truncated in header");
    std::uint32_t want_crc = 0;
    if (!readU32(is_, want_crc))
        return fail(ReadStatus::Truncated, "truncated in header CRC");
    if (crc32(payload.data(), payload.size()) != want_crc)
        return fail(ReadStatus::CrcMismatch, "header CRC mismatch");

    std::size_t pos = 0;
    std::uint64_t scale = 0, entry = 0, max_insts = 0;
    if (!getString(payload, pos, meta_.workload) ||
        !getString(payload, pos, meta_.config) ||
        !getVarint(payload, pos, scale) ||
        !getVarint(payload, pos, entry) ||
        !getVarint(payload, pos, max_insts) || pos != payload.size()) {
        return fail(ReadStatus::Malformed, "malformed header payload");
    }
    meta_.scale = static_cast<unsigned>(scale);
    meta_.entryPc = entry;
    meta_.maxInsts = max_insts;
    expected_pc_ = meta_.entryPc;
    return ReadStatus::Ok;
}

ReadStatus
TraceReader::loadFrame()
{
    const int tag = is_.get();
    if (tag < 0)
        return fail(ReadStatus::Truncated,
                    "stream ended without an end frame");

    if (tag == kFrameEnd) {
        std::string raw;
        std::uint64_t total = 0;
        if (!readVarintStream(is_, total, &raw))
            return fail(ReadStatus::Truncated, "truncated end frame");
        std::uint32_t want_crc = 0;
        if (!readU32(is_, want_crc))
            return fail(ReadStatus::Truncated,
                        "truncated end-frame CRC");
        if (crc32(raw.data(), raw.size()) != want_crc)
            return fail(ReadStatus::CrcMismatch,
                        "end-frame CRC mismatch");
        if (total != count_) {
            return fail(ReadStatus::Malformed,
                        "end frame promises " + std::to_string(total) +
                            " records, read " + std::to_string(count_));
        }
        total_ = total;
        status_ = ReadStatus::Eof;
        return ReadStatus::Eof;
    }

    if (tag != kFrameRecords)
        return fail(ReadStatus::Malformed, "unknown frame tag");

    std::uint64_t n = 0, len = 0;
    if (!readVarintStream(is_, n) || !readVarintStream(is_, len))
        return fail(ReadStatus::Truncated, "truncated frame header");
    if (n == 0 || len > kMaxFrameBytes)
        return fail(ReadStatus::Malformed, "implausible frame header");

    frame_.resize(len);
    if (!is_.read(frame_.data(), static_cast<std::streamsize>(len)))
        return fail(ReadStatus::Truncated, "truncated frame payload");
    std::uint32_t want_crc = 0;
    if (!readU32(is_, want_crc))
        return fail(ReadStatus::Truncated, "truncated frame CRC");
    if (crc32(frame_.data(), frame_.size()) != want_crc)
        return fail(ReadStatus::CrcMismatch, "frame CRC mismatch");

    frame_pos_ = 0;
    frame_left_ = n;
    return ReadStatus::Ok;
}

ReadStatus
TraceReader::next(ExecRecord &rec)
{
    if (status_ != ReadStatus::Ok)
        return status_;
    if (frame_left_ == 0) {
        ReadStatus s = loadFrame();
        if (s != ReadStatus::Ok)
            return s;
    }

    // Fixed prefix: flags, op, four registers, shamt.
    if (frame_pos_ + 7 > frame_.size())
        return fail(ReadStatus::Malformed, "record overruns frame");
    const auto flags = static_cast<std::uint8_t>(frame_[frame_pos_++]);
    const auto op_raw = static_cast<std::uint8_t>(frame_[frame_pos_++]);
    if (op_raw >= static_cast<std::uint8_t>(Op::NumOps))
        return fail(ReadStatus::Malformed, "record has invalid opcode");

    rec = ExecRecord{};
    rec.seq = count_;
    rec.inst.op = static_cast<Op>(op_raw);
    rec.inst.dest = static_cast<RegIndex>(frame_[frame_pos_++]);
    rec.inst.src1 = static_cast<RegIndex>(frame_[frame_pos_++]);
    rec.inst.src2 = static_cast<RegIndex>(frame_[frame_pos_++]);
    rec.inst.src3 = static_cast<RegIndex>(frame_[frame_pos_++]);
    rec.inst.shamt = static_cast<std::uint8_t>(frame_[frame_pos_++]);

    std::int64_t imm = 0, pc_d = 0, next_d = 0;
    if (!getZigzag(frame_, frame_pos_, imm) ||
        !getZigzag(frame_, frame_pos_, pc_d) ||
        !getZigzag(frame_, frame_pos_, next_d)) {
        return fail(ReadStatus::Malformed, "record overruns frame");
    }
    rec.inst.imm = static_cast<std::int32_t>(imm);
    rec.taken = flags & 0x01;
    rec.pc = expected_pc_ + static_cast<Addr>(pc_d);
    rec.nextPc = rec.pc + 4 + static_cast<Addr>(next_d);
    if (flags & 0x02) {
        std::int64_t ea_d = 0;
        if (!getZigzag(frame_, frame_pos_, ea_d))
            return fail(ReadStatus::Malformed, "record overruns frame");
        rec.effAddr = prev_eff_addr_ + static_cast<Addr>(ea_d);
        prev_eff_addr_ = rec.effAddr;
    } else {
        rec.effAddr = kNoAddr;
    }

    expected_pc_ = rec.nextPc;
    ++count_;
    --frame_left_;
    if (frame_left_ == 0 && frame_pos_ != frame_.size())
        return fail(ReadStatus::Malformed, "frame has trailing bytes");
    return ReadStatus::Ok;
}

} // namespace tcfill::tracefile
