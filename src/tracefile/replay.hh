/**
 * @file
 * Record and replay of committed-trace files against the timing
 * model. ReplayExecutor is the CommitSource that re-materializes a
 * captured stream; recordTrace()/replayTrace() are the one-call
 * entry points the CLI uses; submitReplay() routes a replay through
 * a SimRunner so repeated replays of the same trace under the same
 * config hit the result cache (keyed on trace *content*, not path).
 *
 * Determinism contract (enforced by CI): for any workload and
 * config, record → replay produces byte-identical tcfill-stats-v1
 * JSON apart from the host section and the mode field, because the
 * pipeline stages consume only ExecRecords via OracleStream and the
 * replayed stream is the recorded one, record for record
 * (DESIGN.md §12).
 */

#ifndef TCFILL_TRACEFILE_REPLAY_HH
#define TCFILL_TRACEFILE_REPLAY_HH

#include <iosfwd>
#include <string>

#include "sim/result.hh"
#include "sim/runner.hh"
#include "tracefile/trace_io.hh"

namespace tcfill::tracefile
{

/**
 * CommitSource that replays a tcfill-trace-v1 stream. Maintains one
 * record of lookahead so halted() can answer without consuming.
 * Structural problems in the file (truncation, CRC mismatch, version
 * skew) are user errors and fatal() with the reader's diagnosis —
 * use TraceReader directly for non-fatal handling.
 */
class ReplayExecutor : public CommitSource
{
  public:
    /**
     * Parse the header and prefetch the first record. @p name labels
     * error messages (usually the file path); @p is must outlive
     * this object.
     */
    explicit ReplayExecutor(std::istream &is,
                            const std::string &name = "<trace>");

    /** Provenance from the trace header. */
    const TraceMeta &meta() const { return reader_.meta(); }

    bool halted() const override { return !has_next_; }
    ExecRecord step() override;
    InstSeqNum instCount() const override { return stepped_; }

  private:
    void advance();

    TraceReader reader_;
    std::string name_;
    ExecRecord next_;
    bool has_next_ = false;
    InstSeqNum stepped_ = 0;
};

/**
 * Content identity of a trace file: CRC-32 over the whole file plus
 * its byte length. Two paths with equal identity replay identically,
 * so this is what replay result caching keys on. Fatal if @p path
 * cannot be read.
 */
std::string traceIdentity(const std::string &path);

/**
 * FNV-1a 64 (hex) digest of a trace content identity
 * ("trace:<crc>:<size>") — the SimResult::sourceDigest of replayed
 * runs, parallel to workloadDigest() for live ones.
 */
std::string traceDigest(const std::string &identity);

/**
 * Run @p workload at @p scale under @p cfg while capturing the
 * committed stream to @p path. Timing is identical to an unrecorded
 * run; the result's mode is "record". Fatal on unknown workload or
 * unwritable path.
 */
SimResult recordTrace(const std::string &workload, unsigned scale,
                      const SimConfig &cfg, const std::string &path);

/**
 * Replay the trace at @p path under @p cfg. The workload label and
 * entry PC come from the trace header; the result's mode is
 * "replay". Fatal on unreadable or structurally invalid traces.
 */
SimResult replayTrace(const std::string &path, const SimConfig &cfg);

/**
 * Submit a replay to @p runner, cached like SimRunner::submit but
 * keyed on traceIdentity(path) + the config key — replaying the same
 * bytes under the same config returns the cached result even if the
 * file was copied or re-recorded in place.
 */
std::shared_future<SimResult>
submitReplay(SimRunner &runner, const std::string &path,
             const SimConfig &cfg, bool *cache_hit = nullptr);

} // namespace tcfill::tracefile

#endif // TCFILL_TRACEFILE_REPLAY_HH
