/**
 * @file
 * Branch prediction structures from the paper's §3: a multiple-branch
 * predictor of three skewed pattern history tables (64K/16K/8K 2-bit
 * counters — the i-th table predicts the i-th conditional branch of a
 * trace segment), an 8KB bias table driving branch promotion
 * (threshold: 64 consecutive same-direction occurrences), a return
 * address stack, and a last-target indirect predictor.
 */

#ifndef TCFILL_BPRED_PREDICTOR_HH
#define TCFILL_BPRED_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace tcfill
{

/** One pattern history table of 2-bit saturating counters. */
class PatternHistoryTable
{
  public:
    explicit PatternHistoryTable(std::size_t entries);

    /** Predict taken/not-taken for the given index. */
    bool predict(std::size_t index) const;

    /** Train the counter at @p index with the resolved direction. */
    void update(std::size_t index, bool taken);

    std::size_t entries() const { return counters_.size(); }

    /** Raw counter value (tests). */
    std::uint8_t counter(std::size_t index) const;

  private:
    std::vector<std::uint8_t> counters_;
};

/**
 * The multiple-branch predictor. Produces up to three conditional
 * branch predictions per fetch, one from each (successively smaller)
 * PHT, indexed gshare-style by branch PC xor global history.
 */
class MultiBranchPredictor
{
  public:
    struct Params
    {
        std::size_t pht0Entries = 64 * 1024;
        std::size_t pht1Entries = 16 * 1024;
        std::size_t pht2Entries = 8 * 1024;
        unsigned historyBits = 14;
    };

    MultiBranchPredictor();
    explicit MultiBranchPredictor(const Params &params);

    /**
     * Predict the @p slot-th (0..2) conditional branch of the current
     * fetch group, for the branch at @p pc.
     */
    bool predict(Addr pc, unsigned slot) const;

    /**
     * Train with a resolved branch and advance global history.
     * @param slot which PHT predicted it (0..2).
     */
    void update(Addr pc, unsigned slot, bool taken);

    /** Advance history only (promoted branches bypass the PHTs). */
    void pushHistory(bool taken);

    std::uint64_t history() const { return history_; }

    /** Aggregate storage in bits (tests check ~32KB incl. bias). */
    std::size_t storageBits() const;

    void regStats(stats::Group &group);

  private:
    std::size_t index(Addr pc, std::size_t entries) const;

    Params params_;
    PatternHistoryTable pht0_;
    PatternHistoryTable pht1_;
    PatternHistoryTable pht2_;
    std::uint64_t history_ = 0;
    stats::Counter lookups_;
    stats::Counter correct_;
};

/**
 * Bias table for branch promotion. Each entry tracks the last
 * direction of a conditional branch and how many consecutive times it
 * has gone that way; at @c promoteThreshold the branch is promotable
 * and the fill unit embeds a static prediction in the trace segment.
 * A direction flip resets the run (and demotes).
 */
class BiasTable
{
  public:
    struct Params
    {
        std::size_t entries = 8 * 1024;     // 8KB at ~8 bits/entry
        unsigned promoteThreshold = 64;
    };

    BiasTable();
    explicit BiasTable(const Params &params);

    /** Record a retired conditional branch outcome. */
    void observe(Addr pc, bool taken);

    /** True iff the branch at @p pc currently qualifies as promoted. */
    bool isPromoted(Addr pc) const;

    /** Static direction for a promoted branch (must be promoted). */
    bool promotedDirection(Addr pc) const;

    std::size_t storageBits() const;

    std::uint64_t promotions() const { return promotions_.value(); }
    std::uint64_t demotions() const { return demotions_.value(); }

    void regStats(stats::Group &group);

  private:
    struct Entry
    {
        std::uint8_t run = 0;       // consecutive occurrences, saturating
        bool direction = false;
        bool promoted = false;
    };

    std::size_t index(Addr pc) const;

    Params params_;
    std::vector<Entry> entries_;
    stats::Counter promotions_;
    stats::Counter demotions_;
};

/** Classic return address stack with wrap-around overflow. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::size_t depth = 32);

    void push(Addr return_pc);
    Addr pop();
    Addr top() const;
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

  private:
    std::vector<Addr> stack_;
    std::size_t top_ = 0;
    std::size_t count_ = 0;
};

/** Last-target predictor for non-return indirect branches. */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(std::size_t entries = 512);

    Addr predict(Addr pc) const;
    void update(Addr pc, Addr target);

  private:
    std::size_t index(Addr pc) const;
    std::vector<Addr> targets_;
};

} // namespace tcfill

#endif // TCFILL_BPRED_PREDICTOR_HH
