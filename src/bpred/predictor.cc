#include "bpred/predictor.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace tcfill
{

PatternHistoryTable::PatternHistoryTable(std::size_t entries)
    : counters_(entries, 1)     // weakly not-taken
{
    fatal_if(!isPowerOf2(entries), "PHT size must be a power of two");
}

bool
PatternHistoryTable::predict(std::size_t index) const
{
    return counters_[index & (counters_.size() - 1)] >= 2;
}

void
PatternHistoryTable::update(std::size_t index, bool taken)
{
    std::uint8_t &c = counters_[index & (counters_.size() - 1)];
    if (taken) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

std::uint8_t
PatternHistoryTable::counter(std::size_t index) const
{
    return counters_[index & (counters_.size() - 1)];
}

MultiBranchPredictor::MultiBranchPredictor()
    : MultiBranchPredictor(Params{})
{
}

MultiBranchPredictor::MultiBranchPredictor(const Params &params)
    : params_(params),
      pht0_(params.pht0Entries),
      pht1_(params.pht1Entries),
      pht2_(params.pht2Entries)
{
}

std::size_t
MultiBranchPredictor::index(Addr pc, std::size_t entries) const
{
    std::uint64_t h = history_ & mask(params_.historyBits);
    return static_cast<std::size_t>(((pc >> 2) ^ h) & (entries - 1));
}

bool
MultiBranchPredictor::predict(Addr pc, unsigned slot) const
{
    switch (slot) {
      case 0: return pht0_.predict(index(pc, pht0_.entries()));
      case 1: return pht1_.predict(index(pc, pht1_.entries()));
      case 2: return pht2_.predict(index(pc, pht2_.entries()));
      default:
        panic("MultiBranchPredictor: bad slot %u", slot);
    }
}

void
MultiBranchPredictor::update(Addr pc, unsigned slot, bool taken)
{
    ++lookups_;
    if (predict(pc, slot) == taken)
        ++correct_;
    switch (slot) {
      case 0: pht0_.update(index(pc, pht0_.entries()), taken); break;
      case 1: pht1_.update(index(pc, pht1_.entries()), taken); break;
      case 2: pht2_.update(index(pc, pht2_.entries()), taken); break;
      default:
        panic("MultiBranchPredictor: bad slot %u", slot);
    }
    pushHistory(taken);
}

void
MultiBranchPredictor::pushHistory(bool taken)
{
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               mask(params_.historyBits);
}

std::size_t
MultiBranchPredictor::storageBits() const
{
    return 2 * (pht0_.entries() + pht1_.entries() + pht2_.entries());
}

void
MultiBranchPredictor::regStats(stats::Group &group)
{
    group.addCounter("bpred.lookups", lookups_,
                     "conditional predictions trained");
    group.addCounter("bpred.correct", correct_,
                     "correct conditional predictions");
    group.addFormula("bpred.accuracy",
        [this]() {
            return lookups_.value() == 0 ? 0.0
                : static_cast<double>(correct_.value()) /
                      static_cast<double>(lookups_.value());
        },
        "conditional prediction accuracy");
}

BiasTable::BiasTable() : BiasTable(Params{})
{
}

BiasTable::BiasTable(const Params &params)
    : params_(params), entries_(params.entries)
{
    fatal_if(!isPowerOf2(params.entries),
             "bias table size must be a power of two");
    fatal_if(params.promoteThreshold == 0 || params.promoteThreshold > 127,
             "promotion threshold must be in [1,127]");
}

std::size_t
BiasTable::index(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) & (entries_.size() - 1));
}

void
BiasTable::observe(Addr pc, bool taken)
{
    Entry &e = entries_[index(pc)];
    if (e.run > 0 && e.direction == taken) {
        if (e.run < 127)
            ++e.run;
        if (!e.promoted && e.run >= params_.promoteThreshold) {
            e.promoted = true;
            ++promotions_;
        }
    } else {
        if (e.promoted)
            ++demotions_;
        e.promoted = false;
        e.direction = taken;
        e.run = 1;
        // Degenerate threshold of one: a single occurrence qualifies.
        if (e.run >= params_.promoteThreshold) {
            e.promoted = true;
            ++promotions_;
        }
    }
}

bool
BiasTable::isPromoted(Addr pc) const
{
    return entries_[index(pc)].promoted;
}

bool
BiasTable::promotedDirection(Addr pc) const
{
    const Entry &e = entries_[index(pc)];
    panic_if(!e.promoted, "promotedDirection on non-promoted branch");
    return e.direction;
}

std::size_t
BiasTable::storageBits() const
{
    return entries_.size() * 8;     // 7-bit run + direction bit
}

void
BiasTable::regStats(stats::Group &group)
{
    group.addCounter("bias.promotions", promotions_,
                     "branches promoted to static prediction");
    group.addCounter("bias.demotions", demotions_,
                     "promoted branches demoted by a direction flip");
}

ReturnAddressStack::ReturnAddressStack(std::size_t depth)
    : stack_(depth, 0)
{
    fatal_if(depth == 0, "RAS depth must be non-zero");
}

void
ReturnAddressStack::push(Addr return_pc)
{
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = return_pc;
    if (count_ < stack_.size())
        ++count_;
}

Addr
ReturnAddressStack::pop()
{
    if (count_ == 0)
        return 0;
    Addr value = stack_[top_];
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --count_;
    return value;
}

Addr
ReturnAddressStack::top() const
{
    return count_ == 0 ? 0 : stack_[top_];
}

IndirectPredictor::IndirectPredictor(std::size_t entries)
    : targets_(entries, 0)
{
    fatal_if(!isPowerOf2(entries),
             "indirect predictor size must be a power of two");
}

std::size_t
IndirectPredictor::index(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) & (targets_.size() - 1));
}

Addr
IndirectPredictor::predict(Addr pc) const
{
    return targets_[index(pc)];
}

void
IndirectPredictor::update(Addr pc, Addr target)
{
    targets_[index(pc)] = target;
}

} // namespace tcfill
