/**
 * @file
 * The committed-path oracle stream shared by the front and back ends
 * of the decomposed pipeline (DESIGN.md §10). Wraps a CommitSource
 * (the live functional Executor, a trace-file ReplayExecutor, or a
 * recording tee — DESIGN.md §12) and the deque of committed-path
 * records not yet retired: records [0, fetchOffset) are fetched and
 * in flight; records [fetchOffset, size) are available to fetch.
 *
 * Ownership: the Processor composition root owns the stream; the
 * fetch engine advances the tail (stepping the Executor and consuming
 * records as lines are built) and the retire unit pops the head as
 * instructions commit. No other stage touches it.
 */

#ifndef TCFILL_PIPELINE_ORACLE_HH
#define TCFILL_PIPELINE_ORACLE_HH

#include <cstddef>
#include <deque>

#include "arch/executor.hh"
#include "common/logging.hh"

namespace tcfill::pipeline
{

/** Committed-path records between the Executor and retirement. */
class OracleStream
{
  public:
    explicit OracleStream(CommitSource &exec) : exec_(exec) {}

    /** Ensure >= n unfetched records exist; returns how many do. */
    std::size_t
    ensure(std::size_t n)
    {
        while (records_.size() < fetch_off_ + n && !exec_.halted())
            records_.push_back(exec_.step());
        return records_.size() - fetch_off_;
    }

    /** The i-th not-yet-fetched record (i < ensure(i + 1)). */
    const ExecRecord &
    at(std::size_t i) const
    {
        return records_[fetch_off_ + i];
    }

    /** True when no unfetched record remains and the program halted. */
    bool exhausted() { return ensure(1) == 0; }

    /** Mark the next n unfetched records as fetched (in flight). */
    void consume(std::size_t n) { fetch_off_ += n; }

    /** Oldest in-flight record (the next one to retire). */
    const ExecRecord &
    front() const
    {
        panic_if(records_.empty(), "oracle underflow at retire");
        return records_.front();
    }

    /** Retire the oldest in-flight record. */
    void
    popRetired()
    {
        panic_if(records_.empty(), "oracle underflow at retire");
        records_.pop_front();
        --fetch_off_;
    }

    /** Nothing in flight and nothing left to fetch. */
    bool drained() const { return records_.empty(); }

  private:
    CommitSource &exec_;
    std::deque<ExecRecord> records_;
    std::size_t fetch_off_ = 0;
};

} // namespace tcfill::pipeline

#endif // TCFILL_PIPELINE_ORACLE_HH
