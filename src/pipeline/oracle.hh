/**
 * @file
 * The committed-path oracle stream shared by the front and back ends
 * of the decomposed pipeline (DESIGN.md §10). Wraps a CommitSource
 * (the live functional Executor, a trace-file ReplayExecutor, or a
 * recording tee — DESIGN.md §12) and the deque of committed-path
 * records not yet retired: records [0, fetchOffset) are fetched and
 * in flight; records [fetchOffset, size) are available to fetch.
 *
 * Ownership: the Processor composition root owns the stream; the
 * fetch engine advances the tail (stepping the Executor and consuming
 * records as lines are built) and the retire unit pops the head as
 * instructions commit. No other stage touches it.
 */

#ifndef TCFILL_PIPELINE_ORACLE_HH
#define TCFILL_PIPELINE_ORACLE_HH

#include <cstddef>
#include <vector>

#include "arch/executor.hh"
#include "common/logging.hh"

namespace tcfill::pipeline
{

/**
 * Committed-path records between the Executor and retirement.
 *
 * Stored in a power-of-two ring buffer: at() is on the per-instruction
 * fetch path (the trace-match walk reads several records per fetched
 * instruction), where a deque's chunked indexing is measurably slower
 * than a mask-and-load.
 */
class OracleStream
{
  public:
    explicit OracleStream(CommitSource &exec)
        : exec_(exec), buf_(kInitialCap), cap_mask_(kInitialCap - 1)
    {
    }

    /** Ensure >= n unfetched records exist; returns how many do. */
    std::size_t
    ensure(std::size_t n)
    {
        while (count_ < fetch_off_ + n && !exec_.halted()) {
            if (count_ == cap_mask_ + 1)
                grow();
            buf_[(head_ + count_) & cap_mask_] = exec_.step();
            ++count_;
        }
        return count_ - fetch_off_;
    }

    /** The i-th not-yet-fetched record (i < ensure(i + 1)). */
    const ExecRecord &
    at(std::size_t i) const
    {
        return buf_[(head_ + fetch_off_ + i) & cap_mask_];
    }

    /** True when no unfetched record remains and the program halted. */
    bool exhausted() { return ensure(1) == 0; }

    /** Mark the next n unfetched records as fetched (in flight). */
    void consume(std::size_t n) { fetch_off_ += n; }

    /** Oldest in-flight record (the next one to retire). */
    const ExecRecord &
    front() const
    {
        panic_if(count_ == 0, "oracle underflow at retire");
        return buf_[head_];
    }

    /** Retire the oldest in-flight record. */
    void
    popRetired()
    {
        panic_if(count_ == 0, "oracle underflow at retire");
        head_ = (head_ + 1) & cap_mask_;
        --count_;
        --fetch_off_;
    }

    /** Nothing in flight and nothing left to fetch. */
    bool drained() const { return count_ == 0; }

  private:
    /** Covers the window plus the fetch queue in steady state. */
    static constexpr std::size_t kInitialCap = 1024;

    void
    grow()
    {
        std::vector<ExecRecord> bigger(buf_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i)
            bigger[i] = buf_[(head_ + i) & cap_mask_];
        buf_ = std::move(bigger);
        cap_mask_ = buf_.size() - 1;
        head_ = 0;
    }

    CommitSource &exec_;
    std::vector<ExecRecord> buf_;
    std::size_t cap_mask_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t fetch_off_ = 0;
};

} // namespace tcfill::pipeline

#endif // TCFILL_PIPELINE_ORACLE_HH
