#include "pipeline/retire_unit.hh"

#include <cstdio>
#include <string>

#include "common/logging.hh"

namespace tcfill::pipeline
{

namespace
{

/** Cycles of no retirement after which we declare a model deadlock. */
constexpr Cycle kDeadlockWindow = 200000;

} // namespace

RetireUnit::RetireUnit(const RetireEnv &env)
    : Stage("retire"), cfg_(env.cfg), window_(env.window),
      oracle_(env.oracle), fill_(env.fill), issue_(env.issue),
      ctrl_(env.ctrl)
{
    stats_.addCounter("retired", retired_, "instructions committed");
    stats_.addCounter("dyn_moves", dyn_moves_,
                      "retired move-marked instructions");
    stats_.addCounter("dyn_reassoc", dyn_reassoc_,
                      "retired reassociated instructions");
    stats_.addCounter("dyn_scaled", dyn_scaled_,
                      "retired scaled-add instructions");
    stats_.addCounter("dyn_elided", dyn_elided_,
                      "retired dead-write-elided instructions");
    stats_.addCounter("dyn_move_idioms", dyn_move_idioms_,
                      "retired architectural move idioms");
    stats_.addCounter("bypass_delayed", bypass_delayed_,
                      "retired insts whose last operand crossed "
                      "clusters");
}

void
RetireUnit::regStats(stats::Group &master)
{
    master.addCounter("retire.retired", retired_,
                      "instructions committed");
    master.addCounter("retire.dyn_moves", dyn_moves_,
                      "retired move-marked instructions");
    master.addCounter("retire.dyn_reassoc", dyn_reassoc_,
                      "retired reassociated instructions");
    master.addCounter("retire.dyn_scaled", dyn_scaled_,
                      "retired scaled-add instructions");
    master.addCounter("retire.dyn_elided", dyn_elided_,
                      "retired dead-write-elided instructions");
    master.addCounter("retire.dyn_move_idioms", dyn_move_idioms_,
                      "retired architectural move idioms");
    master.addCounter("retire.bypass_delayed", bypass_delayed_,
                      "retired insts whose last operand crossed "
                      "clusters");
}

void
RetireUnit::tick(Cycle now)
{
    unsigned count = 0;
    while (!window_.empty()) {
        // Hold the window's own reference; the slot is popped at the
        // end of the commit body, after the last use.
        const DynInstPtr &di = window_.insts.front();
        if (di->squashed()) {
            window_.insts.pop_front();  // squashed slots retire free
            continue;
        }
        if (count >= cfg_.retireWidth)
            break;
        if (di->phase != InstPhase::Complete ||
            di->completeCycle > now) {
            break;
        }
        if (di->inactive)
            break;  // must be activated by its branch first
        panic_if(!di->onCorrectPath,
                 "retiring a wrong-path instruction");

        ++count;
        ++retired_;
        if (probe_cycle_ && retired_.value() == probe_at_)
            *probe_cycle_ = now + 1;    // == res.cycles of a run capped here
        last_retire_cycle_ = now;
        tracePipe(tracer_, obs::PipeStage::Retire, *di, now);

        // Predictors train at fetch (see FetchEngine); retirement
        // only drives the fill unit and bookkeeping.
        if (di->isStore)
            issue_.retireStore(di);

        // Feed the fill unit the architectural instruction.
        ExecRecord rec;
        rec.seq = di->seq;
        rec.pc = di->pc;
        rec.nextPc = di->nextPc;
        rec.inst = di->archInst;
        rec.taken = di->taken;
        rec.effAddr = di->effAddr;
        fill_.retire(rec, now, di->missLineStart, di->bypassDelayed);
        if (commit_hook_)
            commit_hook_(rec, now);

        // Dynamic optimization accounting (Table 2, figures 3-5, 7).
        if (di->moveMarked)
            ++dyn_moves_;
        if (di->reassociated)
            ++dyn_reassoc_;
        if (di->scaled)
            ++dyn_scaled_;
        if (di->elided)
            ++dyn_elided_;
        if (di->moveIdiom)
            ++dyn_move_idioms_;
        if (di->bypassDelayed)
            ++bypass_delayed_;

        // After the commit's counter increments, so the interval that
        // ends on this instruction includes it in its deltas. The
        // block-end predicate mirrors BbvProfiler::consume.
        if (timeline_) {
            timeline_->onRetire(di->pc,
                                di->archInst.isControl() ||
                                    di->archInst.isSerializing(),
                                now);
        }

        if (di == ctrl_.stallSerialize)
            ctrl_.stallSerialize = nullptr;

        panic_if(oracle_.front().pc != di->pc,
                 "retired 0x%llx but oracle front is 0x%llx",
                 static_cast<unsigned long long>(di->pc),
                 static_cast<unsigned long long>(oracle_.front().pc));
        oracle_.popRetired();
        window_.insts.pop_front();  // releases di

        if (instCapReached())
            return;
    }
}

void
RetireUnit::panicIfDeadlocked(Cycle now) const
{
    if (now - last_retire_cycle_ <= kDeadlockWindow || window_.empty())
        return;
    const DynInst &f = *window_.insts.front();
    std::string ops;
    for (unsigned k = 0; k < f.numSrcs; ++k) {
        const Operand &op = f.src[k];
        char buf[96];
        if (op.producer) {
            std::snprintf(buf, sizeof(buf),
                " src%u<-seq%llu(ph%d,cc%lld)", k,
                static_cast<unsigned long long>(op.producer->seq),
                static_cast<int>(op.producer->phase),
                op.producer->completeCycle == kNoCycle
                    ? -1LL
                    : static_cast<long long>(
                          op.producer->completeCycle));
        } else {
            std::snprintf(buf, sizeof(buf), " src%u@%llu", k,
                static_cast<unsigned long long>(op.rfAvail));
        }
        ops += buf;
    }
    panic("no retirement for %llu cycles: model deadlock "
          "(window=%zu, front pc=0x%llx '%s' seq=%llu phase=%d "
          "inactive=%d correct=%d fu=%d issue=%lld cc=%lld%s)",
          static_cast<unsigned long long>(kDeadlockWindow),
          window_.size(),
          static_cast<unsigned long long>(f.pc),
          disassemble(f.inst).c_str(),
          static_cast<unsigned long long>(f.seq),
          static_cast<int>(f.phase), f.inactive ? 1 : 0,
          f.onCorrectPath ? 1 : 0, f.fu,
          f.issueCycle == kNoCycle
              ? -1LL
              : static_cast<long long>(f.issueCycle),
          f.completeCycle == kNoCycle
              ? -1LL
              : static_cast<long long>(f.completeCycle),
          ops.c_str());
}

} // namespace tcfill::pipeline
