/**
 * @file
 * The out-of-order back end of the decomposed pipeline (DESIGN.md
 * §10): owns the clustered ExecCore, drains the DispatchLatch into
 * reservation stations, and each cycle runs select/execute, pushing
 * branch-resolution events into the ResolutionQueue as completion
 * times become known. The virtual tick() is the StagePolicy seam for
 * alternate schedulers.
 */

#ifndef TCFILL_PIPELINE_ISSUE_STAGE_HH
#define TCFILL_PIPELINE_ISSUE_STAGE_HH

#include "mem/cache.hh"
#include "pipeline/latches.hh"
#include "pipeline/stage.hh"
#include "uarch/exec_core.hh"

namespace tcfill::pipeline
{

/** Everything the issue stage sees of the rest of the machine. */
struct IssueEnv
{
    const ExecCoreParams &core;
    MemoryHierarchy &mem;
    DispatchLatch &in;
    ResolutionQueue &events;
};

/** Reservation-station insertion + the select/execute cycle. */
class IssueStage : public Stage
{
  public:
    explicit IssueStage(const IssueEnv &env);

    // ---- structural view for the dispatch stage ---------------------
    unsigned numFus() const { return core_.numFus(); }
    unsigned rsFree(unsigned fu) const { return core_.rsFree(fu); }

    /** Insert this cycle's renamed instructions (drains the latch). */
    void dispatchPending();

    /** One select/execute cycle; completions feed the event queue. */
    virtual void tick(Cycle now);

    /**
     * Earliest future cycle (>= @p next) the back end can do work;
     * kNoCycle when quiescent. Forwarded from the ExecCore for the
     * Processor's cycle-skipping.
     */
    virtual Cycle
    nextEventCycle(Cycle next) const
    {
        return core_.nextEventCycle(next);
    }

    // ---- recovery / retire interface --------------------------------
    void
    squashRange(InstSeqNum lo, InstSeqNum hi, InstSeqNum rescue_lo = 0,
                InstSeqNum rescue_hi = 0)
    {
        core_.squashRange(lo, hi, rescue_lo, rescue_hi);
    }

    void retireStore(const DynInstPtr &di) { core_.retireStore(di); }

    const ExecCore &core() const { return core_; }

    void regStats(stats::Group &master) override;
    void setTracer(obs::PipeTracer *tracer) override;

  private:
    /** ExecCore completion sink: filter branch-resolution events. */
    static void onComplete(void *ctx, DynInst &di);

    ExecCore core_;
    DispatchLatch &in_;
    ResolutionQueue &events_;

    stats::Counter dispatched_;
};

} // namespace tcfill::pipeline

#endif // TCFILL_PIPELINE_ISSUE_STAGE_HH
