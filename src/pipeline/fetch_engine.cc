#include "pipeline/fetch_engine.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"

namespace tcfill::pipeline
{

FetchEngine::FetchEngine(const FetchEnv &env)
    : Stage("fetch"), cfg_(env.cfg), oracle_(env.oracle),
      arena_(env.arena), mem_(env.mem), tcache_(env.tcache),
      ctrl_(env.ctrl), out_(env.out), num_fus_(env.numFus),
      bpred_(env.cfg.bpred), ras_(env.cfg.rasDepth), ipred_()
{
    stats_.addCounter("mispredicts", mispredicts_,
                      "branches that resolved against the prediction");
    stats_.addCounter("inactive_rescues", rescues_,
                      "mispredicts hidden by inactive issue");
    stats_.addCounter("trace_lines", trace_lines_,
                      "lines fetched from the trace cache");
    stats_.addCounter("icache_lines", icache_lines_,
                      "blocks fetched through the supporting I-cache");
}

void
FetchEngine::regStats(stats::Group &master)
{
    bpred_.regStats(master);
    master.addCounter("fetch.mispredicts", mispredicts_,
                      "branches that resolved against the prediction");
    master.addCounter("fetch.inactive_rescues", rescues_,
                      "mispredicts hidden by inactive issue");
    master.addCounter("fetch.trace_lines", trace_lines_,
                      "lines fetched from the trace cache");
    master.addCounter("fetch.icache_lines", icache_lines_,
                      "blocks fetched through the supporting I-cache");
}

// --------------------------------------------------------------------
// Dynamic instruction construction
// --------------------------------------------------------------------

DynInstPtr
FetchEngine::makeDynInst(const Instruction &inst, Addr pc,
                         FetchSource src, Cycle fetch_cycle)
{
    // Pooled allocation: the DynInst (refcount included) comes from
    // the per-processor slab arena and recycles when the last
    // reference drops (see inst_pool.hh) — no per-instruction malloc.
    DynInstPtr di = allocDynInst(arena_);
    di->seq = seq_next_++;
    di->pc = pc;
    di->inst = inst;
    di->archInst = inst;
    di->source = src;
    di->fetchCycle = fetch_cycle;
    di->latency = opInfo(inst.op).latency;
    di->isLoad = inst.isLoad();
    di->isStore = inst.isStore();
    di->isBranch = inst.isControl();
    if (di->isStore)
        di->dataOperand = static_cast<int>(inst.numSrcs()) - 1;
    return di;
}

// --------------------------------------------------------------------
// Fetch: trace cache path
// --------------------------------------------------------------------

FetchLine
FetchEngine::buildTraceLine(const TraceSegment &seg, Cycle ready)
{
    const std::size_t n = seg.size();
    const std::size_t avail = oracle_.ensure(n);

    // How far the committed path matches the trace's recorded path.
    std::size_t match_len = 0;
    while (match_len < n && match_len < avail &&
           oracle_.at(match_len).pc == seg.insts[match_len].pc) {
        ++match_len;
    }
    panic_if(match_len == 0, "trace line start does not match fetch PC");

    // Consult the multiple-branch predictor: the predicted exit is the
    // first internal branch predicted against the trace's direction.
    std::size_t active_len = n;
    std::ptrdiff_t mispredict_idx = -1;
    std::array<int, kSegmentMaxInsts> slot_of;
    slot_of.fill(-1);
    unsigned pred_count = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const TraceInst &ti = seg.insts[i];
        if (!ti.inst.isCondBranch())
            continue;
        const bool on_path = i < match_len;
        bool pred_dir;
        if (ti.promoted) {
            pred_dir = ti.promotedDir;
            if (on_path)
                bpred_.pushHistory(oracle_.at(i).taken);
        } else {
            unsigned slot = std::min(pred_count, 2u);
            slot_of[i] = static_cast<int>(slot);
            pred_dir = bpred_.predict(ti.pc, slot);
            ++pred_count;
            // Fetch-time training with the resolved outcome (models
            // speculative history update with perfect repair; retire-
            // time training adds an in-flight staleness artifact that
            // swamps the optimization effects being measured).
            if (on_path)
                bpred_.update(ti.pc, slot, oracle_.at(i).taken);
        }
        if (active_len == n && pred_dir != ti.taken)
            active_len = i + 1;
        if (on_path && mispredict_idx < 0 &&
            pred_dir != oracle_.at(i).taken) {
            mispredict_idx = static_cast<std::ptrdiff_t>(i);
        }
    }

    // How much of the line issues: everything (inactive issue) or just
    // the predicted-active prefix.
    const std::size_t fetch_n =
        cfg_.inactiveIssue ? n : std::min(n, active_len);

    FetchLine line;
    line.readyCycle = ready;
    line.fromTrace = true;
    line.insts.reserve(fetch_n);

    // RAS prediction for a segment-ending return (the only place a
    // return can appear, since indirect control terminates segments).
    Addr ras_pred = kNoAddr;

    for (std::size_t i = 0; i < fetch_n; ++i) {
        const TraceInst &ti = seg.insts[i];
        const bool correct = i < match_len;

        DynInstPtr di = makeDynInst(ti.inst, ti.pc,
                                    FetchSource::TraceCache, ready);
        di->fu = ti.slot;
        di->lineIdx = static_cast<std::uint8_t>(i);
        for (unsigned k = 0; k < 3; ++k)
            di->lineDep[k] = ti.srcDep[k];
        di->moveMarked = ti.isMove;
        di->elided = ti.deadElided;
        di->moveSrcReg =
            ti.moveSrc == Instruction::kNoReg ? kRegZero : ti.moveSrc;
        di->moveSrcDep = ti.moveSrcDep;
        di->reassociated = ti.reassociated;
        di->scaled = ti.hasScale();
        di->promotedBranch = ti.promoted;
        di->predSlot = slot_of[i];
        di->onCorrectPath = correct;
        di->inactive = i >= active_len;

        if (correct) {
            const ExecRecord &rec = oracle_.at(i);
            di->archInst = rec.inst;
            di->nextPc = rec.nextPc;
            di->taken = rec.taken;
            di->effAddr = rec.effAddr;
            di->moveIdiom = moveSource(rec.inst).has_value();

            // Return address stack tracks the committed path.
            if (rec.inst.isCall())
                ras_.push(rec.pc + 4);
            else if (rec.inst.isReturn())
                ras_pred = ras_.pop();
        } else {
            di->taken = ti.taken;
        }
        line.insts.push_back(std::move(di));
    }

    // End-of-segment indirect control: predict the next fetch address
    // through the RAS (returns) or the indirect predictor (computed
    // jumps / indirect calls). Only meaningful when predictions
    // follow the whole trace and the trace matched to its end.
    if (active_len == n && match_len == n &&
        seg.insts[n - 1].inst.isIndirect()) {
        const TraceInst &last = seg.insts[n - 1];
        Addr target =
            last.inst.isReturn() ? ras_pred : ipred_.predict(last.pc);
        if (mispredict_idx < 0 && target != oracle_.at(n - 1).nextPc)
            mispredict_idx = static_cast<std::ptrdiff_t>(n) - 1;
        if (!last.inst.isReturn())
            ipred_.update(last.pc, oracle_.at(n - 1).nextPc);
    }

    // Attach misprediction / inactive-issue metadata to branches.
    const std::size_t consumed = std::min(fetch_n, match_len);
    if (mispredict_idx >= 0) {
        auto bi = static_cast<std::size_t>(mispredict_idx);
        panic_if(bi >= line.insts.size(),
                 "mispredicted branch outside the fetched prefix");
        DynInstPtr &br = line.insts[bi];
        br->mispredicted = true;
        ++mispredicts_;

        const bool rescue = cfg_.inactiveIssue &&
            bi + 1 == active_len && match_len > active_len;
        if (rescue) {
            br->rescueLo = line.insts[active_len]->seq;
            br->rescueHi = line.insts[match_len - 1]->seq + 1;
            br->redirectPc = oracle_.at(match_len - 1).nextPc;
            ++rescues_;
        } else {
            br->redirectPc = oracle_.at(bi).nextPc;
        }
        ctrl_.stallBranch = br;
    } else {
        // Invariant: match_len >= 1 (checked at entry) and
        // fetch_n >= 1, so at least one oracle record was consumed
        // and the no-mispredict redirect always follows the committed
        // path. A predicted exit address influences timing only
        // through mispredict detection, never through this redirect.
        panic_if(consumed == 0,
                 "no-mispredict redirect with nothing consumed");
        ctrl_.pc = oracle_.at(consumed - 1).nextPc;
    }

    // The predicted-exit branch discards trailing inactive work when
    // its prediction was right.
    if (active_len < fetch_n) {
        DynInstPtr &exit_br = line.insts[active_len - 1];
        exit_br->discardLo = line.insts[active_len]->seq;
        exit_br->discardHi = line.insts[fetch_n - 1]->seq + 1;
    }

    // Serializing instructions gate fetch until they retire.
    for (const auto &di : line.insts) {
        if (di->onCorrectPath && di->inst.isSerializing()) {
            ctrl_.stallSerialize = di;
            break;
        }
    }

    oracle_.consume(consumed);
    ++trace_lines_;
    return line;
}

// --------------------------------------------------------------------
// Fetch: supporting instruction cache path
// --------------------------------------------------------------------

FetchLine
FetchEngine::buildICacheLine(Cycle ready)
{
    FetchLine line;
    line.readyCycle = ready;
    line.fromTrace = false;

    const std::size_t line_bytes = cfg_.mem.l1i.lineBytes;
    std::size_t i = 0;
    Addr pc = ctrl_.pc;
    Addr ras_pred = kNoAddr;

    while (i < cfg_.fetchWidth) {
        if (oracle_.ensure(i + 1) <= i)
            break;  // program ends here
        const ExecRecord &rec = oracle_.at(i);
        panic_if(rec.pc != pc, "I-cache fetch diverged from oracle");

        DynInstPtr di = makeDynInst(rec.inst, rec.pc,
                                    FetchSource::InstCache, ready);
        di->missLineStart = i == 0;
        di->fu = static_cast<int>(i % num_fus_);
        di->nextPc = rec.nextPc;
        di->taken = rec.taken;
        di->effAddr = rec.effAddr;
        di->moveIdiom = moveSource(rec.inst).has_value();
        line.insts.push_back(di);
        ++i;

        if (rec.inst.isCall())
            ras_.push(rec.pc + 4);
        else if (rec.inst.isReturn())
            ras_pred = ras_.pop();

        if (rec.inst.isControl() || rec.inst.isSerializing()) {
            // One block per cycle: stop at the first control-flow or
            // serializing instruction.
            break;
        }
        pc += 4;
        if ((pc & (line_bytes - 1)) == 0)
            break;  // crossed the I-cache line
    }

    if (line.insts.empty())
        return line;

    // Resolve the fetch redirection for the block-ending instruction.
    DynInstPtr last = line.insts.back();
    const Instruction &li = last->inst;
    bool mispred = false;
    if (li.isCondBranch()) {
        last->predSlot = 0;
        bool pred = bpred_.predict(last->pc, 0);
        mispred = pred != last->taken;
        bpred_.update(last->pc, 0, last->taken);
    } else if (li.isIndirect()) {
        Addr target =
            li.isReturn() ? ras_pred : ipred_.predict(last->pc);
        mispred = target != last->nextPc;
        if (!li.isReturn())
            ipred_.update(last->pc, last->nextPc);
    }

    if (mispred) {
        last->mispredicted = true;
        last->redirectPc = last->nextPc;
        ctrl_.stallBranch = last;
        ++mispredicts_;
    } else {
        ctrl_.pc = last->nextPc;
    }

    if (last->inst.isSerializing())
        ctrl_.stallSerialize = last;

    oracle_.consume(line.insts.size());
    ++icache_lines_;
    return line;
}

// --------------------------------------------------------------------
// The fetch cycle
// --------------------------------------------------------------------

void
FetchEngine::tick(Cycle now)
{
    if (ctrl_.stalled())
        return;
    if (now < ctrl_.avail)
        return;
    if (out_.size() >= cfg_.fetchQueueLines)
        return;
    if (oracle_.exhausted())
        return;

    panic_if(oracle_.at(0).pc != ctrl_.pc,
             "fetch PC 0x%llx diverged from committed path 0x%llx",
             static_cast<unsigned long long>(ctrl_.pc),
             static_cast<unsigned long long>(oracle_.at(0).pc));

    // Path-associative lookup with MRU way selection. (Prediction-
    // directed selection is a tempting alternative, but picking the
    // way the predictor agrees with defeats inactive issue: the trace
    // can then never carry the correct path past a mispredicted exit,
    // so every mispredict pays the full resolution latency. MRU keeps
    // the most recent path in the line, and inactive issue covers the
    // prediction/trace disagreements — measurably better.)
    FetchLine line;
    if (cfg_.useTraceCache) {
        if (const TraceSegment *seg = tcache_.lookup(ctrl_.pc)) {
            line = buildTraceLine(*seg, now);
            ctrl_.avail = now + 1;
#if TCFILL_PIPE_TRACE_ENABLED
            if (tracer_) {
                for (const auto &di : line.insts)
                    tracePipe(tracer_, obs::PipeStage::Fetch, *di,
                              di->fetchCycle);
            }
#endif
            if (!line.insts.empty())
                out_.lines.push_back(std::move(line));
            return;
        }
    }

    // Trace cache miss: fetch one block through the supporting
    // instruction cache.
    Cycle done = mem_.accessInst(ctrl_.pc, now);
    line = buildICacheLine(done);
    ctrl_.avail = done + 1;
#if TCFILL_PIPE_TRACE_ENABLED
    if (tracer_) {
        for (const auto &di : line.insts)
            tracePipe(tracer_, obs::PipeStage::Fetch, *di,
                      di->fetchCycle);
    }
#endif
    if (!line.insts.empty())
        out_.lines.push_back(std::move(line));
}

} // namespace tcfill::pipeline
