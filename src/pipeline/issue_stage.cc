#include "pipeline/issue_stage.hh"

namespace tcfill::pipeline
{

IssueStage::IssueStage(const IssueEnv &env)
    : Stage("issue"), core_(env.core, env.mem), in_(env.in),
      events_(env.events)
{
    core_.setCompleteHook(&IssueStage::onComplete, this);
    stats_.addCounter("dispatched", dispatched_,
                      "instructions inserted into reservation stations");
}

void
IssueStage::onComplete(void *ctx, DynInst &di)
{
    auto *self = static_cast<IssueStage *>(ctx);
    if (di.isBranch || di.discardHi > di.discardLo ||
        di.mispredicted) {
        self->events_.push(di.completeCycle, DynInstPtr(&di));
    }
}

void
IssueStage::regStats(stats::Group &master)
{
    core_.regStats(master);
    master.addCounter("issue.dispatched", dispatched_,
                      "instructions inserted into reservation stations");
}

void
IssueStage::setTracer(obs::PipeTracer *tracer)
{
    Stage::setTracer(tracer);
    core_.setTracer(tracer);
}

void
IssueStage::dispatchPending()
{
    if (in_.toCore.empty())
        return;
    for (DynInst *di : in_.toCore) {
        core_.dispatch(*di);
        ++dispatched_;
    }
    in_.toCore.clear();
}

void
IssueStage::tick(Cycle now)
{
    core_.tick(now);
}

} // namespace tcfill::pipeline
