/**
 * @file
 * Misprediction recovery for the decomposed pipeline (DESIGN.md §10):
 * drains the ResolutionQueue at the top of every cycle, squashes the
 * mis-speculated window suffix (sparing the inactive-issue rescue
 * range, which it activates instead — the paper's §3 rescue),
 * rebuilds the rename table from the surviving window (checkpoint
 * repair), redirects fetch, and discards inactive tails of correctly
 * predicted exits.
 */

#ifndef TCFILL_PIPELINE_RECOVERY_HH
#define TCFILL_PIPELINE_RECOVERY_HH

#include "pipeline/issue_stage.hh"
#include "pipeline/latches.hh"
#include "pipeline/stage.hh"
#include "uarch/pipe_hooks.hh"
#include "uarch/rename.hh"

namespace tcfill::pipeline
{

/** Everything recovery sees of the rest of the machine. */
struct RecoveryEnv
{
    InstWindow &window;
    RenameTable &rename;
    FetchControl &ctrl;
    FetchLatch &fetchq;
    IssueStage &issue;
    ResolutionQueue &events;
};

/** Branch-resolution events: squash, rescue, redirect, repair. */
class RecoveryController : public Stage
{
  public:
    explicit RecoveryController(const RecoveryEnv &env);

    /** Process every resolution event due at or before @p now. */
    virtual void tick(Cycle now);

    /** Resolve one branch (public for the stage unit tests). */
    void resolveBranch(const DynInstPtr &di, Cycle now);

    /**
     * Squash window instructions with seq in [lo, hi), sparing
     * [rescue_lo, rescue_hi); mirrors the squash into the issue
     * stage's reservation stations.
     */
    void squashWindow(InstSeqNum lo, InstSeqNum hi,
                      InstSeqNum rescue_lo, InstSeqNum rescue_hi,
                      Cycle now);

    std::uint64_t
    stallCycles() const
    {
        return mispredict_stall_cycles_.value();
    }

    void regStats(stats::Group &master) override;

  private:
    InstWindow &window_;
    RenameTable &rename_;
    FetchControl &ctrl_;
    FetchLatch &fetchq_;
    IssueStage &issue_;
    ResolutionQueue &events_;

    stats::Counter mispredict_stall_cycles_;
    stats::Counter squashes_;
    stats::Counter rescued_insts_;
};

} // namespace tcfill::pipeline

#endif // TCFILL_PIPELINE_RECOVERY_HH
