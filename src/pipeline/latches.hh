/**
 * @file
 * Explicit inter-stage latches for the decomposed pipeline
 * (DESIGN.md §10). Each struct is a named piece of shared state owned
 * by the Processor composition root and constructor-injected into
 * exactly the stages that read or write it — the stages themselves
 * share no members. The latches carry no behavior beyond trivial
 * bookkeeping, so the cycle-level semantics live entirely in the
 * stage classes.
 *
 * Data-flow summary (W = writes, R = reads):
 *
 *   FetchControl     FetchEngine W/R, RecoveryController W (redirect),
 *                    RetireUnit W (serialize release)
 *   FetchLatch       FetchEngine W, DispatchRename R,
 *                    RecoveryController W (squash trim)
 *   DispatchLatch    DispatchRename W, IssueStage R (same cycle)
 *   InstWindow       DispatchRename W, RetireUnit R/W,
 *                    RecoveryController R/W (squash/rescue)
 *   ResolutionQueue  IssueStage W (completion events),
 *                    RecoveryController R
 */

#ifndef TCFILL_PIPELINE_LATCHES_HH
#define TCFILL_PIPELINE_LATCHES_HH

#include <deque>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "uarch/dyn_inst.hh"

namespace tcfill::pipeline
{

/** One fetched line (trace-cache segment or I-cache block). */
struct FetchLine
{
    Cycle readyCycle = 0;
    std::vector<DynInstPtr> insts;
    bool fromTrace = false;
};

/** Fetch → dispatch latch: lines waiting to rename and issue. */
struct FetchLatch
{
    std::deque<FetchLine> lines;

    bool empty() const { return lines.empty(); }
    std::size_t size() const { return lines.size(); }
};

/**
 * Fetch-steering state. The PC and availability cycle are advanced by
 * the fetch engine; misprediction recovery redirects the PC and
 * releases the branch stall, and retirement releases the serialize
 * stall.
 */
struct FetchControl
{
    Addr pc = 0;
    Cycle avail = 0;
    DynInstPtr stallBranch;     ///< unresolved mispredict gating fetch
    DynInstPtr stallSerialize;  ///< serializing inst gating fetch

    bool stalled() const { return stallBranch || stallSerialize; }
};

/**
 * Dispatch → issue latch: instructions renamed this cycle that need a
 * reservation-station slot (marked moves and elided dead writes
 * complete in rename and never pass through here). Drained by
 * IssueStage::dispatchPending() in the same cycle, before any squash
 * can run, so raw pointers are safe: the InstWindow owns every entry.
 */
struct DispatchLatch
{
    std::vector<DynInst *> toCore;
};

/** The in-flight window, fetch order (dispatch in, retire out). */
struct InstWindow
{
    std::deque<DynInstPtr> insts;

    bool empty() const { return insts.empty(); }
    std::size_t size() const { return insts.size(); }
};

/**
 * Branch-resolution events, a (cycle, seq) min-heap: filled by the
 * issue stage as completion times become known, drained by the
 * recovery controller at the top of each cycle.
 */
struct ResolutionQueue
{
    struct Event
    {
        Cycle cycle;
        InstSeqNum seq;
        DynInstPtr inst;

        bool
        operator>(const Event &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        heap;

    void
    push(Cycle cycle, const DynInstPtr &di)
    {
        heap.push({cycle, di->seq, di});
    }

    bool empty() const { return heap.empty(); }
};

} // namespace tcfill::pipeline

#endif // TCFILL_PIPELINE_LATCHES_HH
