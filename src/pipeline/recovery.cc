#include "pipeline/recovery.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace tcfill::pipeline
{

RecoveryController::RecoveryController(const RecoveryEnv &env)
    : Stage("recovery"), window_(env.window), rename_(env.rename),
      ctrl_(env.ctrl), fetchq_(env.fetchq), issue_(env.issue),
      events_(env.events)
{
    stats_.addCounter("mispredict_stall_cycles",
                      mispredict_stall_cycles_,
                      "fetch cycles lost from mispredict detection to "
                      "resolution");
    stats_.addCounter("squashes", squashes_,
                      "recovery squash sweeps performed");
    stats_.addCounter("rescued_insts", rescued_insts_,
                      "inactive instructions activated by rescue");
}

void
RecoveryController::regStats(stats::Group &master)
{
    master.addCounter("recovery.mispredict_stall_cycles",
                      mispredict_stall_cycles_,
                      "fetch cycles lost from mispredict detection to "
                      "resolution");
    master.addCounter("recovery.squashes", squashes_,
                      "recovery squash sweeps performed");
    master.addCounter("recovery.rescued_insts", rescued_insts_,
                      "inactive instructions activated by rescue");
}

void
RecoveryController::squashWindow(InstSeqNum lo, InstSeqNum hi,
                                 InstSeqNum rescue_lo,
                                 InstSeqNum rescue_hi, Cycle now)
{
    for (auto &di : window_.insts) {
        if (di->seq < lo || di->seq >= hi)
            continue;
        if (di->seq >= rescue_lo && di->seq < rescue_hi)
            continue;
        di->phase = InstPhase::Squashed;
        tracePipe(tracer_, obs::PipeStage::Squash, *di, now);
    }
    issue_.squashRange(lo, hi, rescue_lo, rescue_hi);
    ++squashes_;

#ifdef TCFILL_SQUASH_AUDIT
    for (auto &di : window_.insts) {
        if (di->squashed())
            continue;
        for (unsigned k = 0; k < di->numSrcs; ++k) {
            const Operand &op = di->src[k];
            if (op.producer && op.producer->squashed() &&
                op.producer->completeCycle == kNoCycle) {
                std::fprintf(stderr,
                    "AUDIT cycle=%llu squash[%llu,%llu) rescue[%llu,%llu)"
                    " survivor seq=%llu pc=0x%llx '%s' act=%d cor=%d"
                    " src%u -> squashed seq=%llu pc=0x%llx '%s'\n",
                    (unsigned long long)now,
                    (unsigned long long)lo, (unsigned long long)hi,
                    (unsigned long long)rescue_lo,
                    (unsigned long long)rescue_hi,
                    (unsigned long long)di->seq,
                    (unsigned long long)di->pc,
                    disassemble(di->inst).c_str(), di->inactive ? 0 : 1,
                    di->onCorrectPath ? 1 : 0, k,
                    (unsigned long long)op.producer->seq,
                    (unsigned long long)op.producer->pc,
                    disassemble(op.producer->inst).c_str());
            }
        }
    }
#endif
}

void
RecoveryController::resolveBranch(const DynInstPtr &di, Cycle now)
{
#ifdef TCFILL_SQUASH_AUDIT
    std::fprintf(stderr,
        "AUDIT-RESOLVE cycle=%llu seq=%llu pc=0x%llx sq=%d misp=%d "
        "rescue[%llu,%llu) discard[%llu,%llu)\n",
        (unsigned long long)now, (unsigned long long)di->seq,
        (unsigned long long)di->pc, di->squashed() ? 1 : 0,
        di->mispredicted ? 1 : 0,
        (unsigned long long)di->rescueLo,
        (unsigned long long)di->rescueHi,
        (unsigned long long)di->discardLo,
        (unsigned long long)di->discardHi);
#endif
    if (di->squashed())
        return;

    if (di->mispredicted) {
        squashWindow(di->seq + 1, ~InstSeqNum(0), di->rescueLo,
                     di->rescueHi, now);
        // Activate the rescued inactive instructions (inactive issue's
        // payoff: the correct continuation is already in flight).
        if (di->rescueHi > di->rescueLo) {
            for (auto &w : window_.insts) {
                if (w->seq >= di->rescueLo && w->seq < di->rescueHi) {
                    w->inactive = false;
                    ++rescued_insts_;
                }
            }
        }
        rename_.rebuild(window_.insts);
        ctrl_.pc = di->redirectPc;
        ctrl_.avail = std::max(ctrl_.avail, now + 1);
        mispredict_stall_cycles_ += now - di->fetchCycle;
        // Drop any younger lines still waiting to issue (there are
        // none in the common case because fetch stalls, but a line
        // fetched the same cycle the mispredict was detected could
        // linger).
        while (!fetchq_.empty() &&
               !fetchq_.lines.back().insts.empty() &&
               fetchq_.lines.back().insts.front()->seq > di->seq) {
            fetchq_.lines.pop_back();
        }
        if (ctrl_.stallBranch == di)
            ctrl_.stallBranch = nullptr;
        return;
    }

    // Correct prediction: discard the inactive tail, if any.
    if (di->discardHi > di->discardLo)
        squashWindow(di->discardLo, di->discardHi, 0, 0, now);
}

void
RecoveryController::tick(Cycle now)
{
    while (!events_.empty() && events_.heap.top().cycle <= now) {
        DynInstPtr di = events_.heap.top().inst;
        events_.heap.pop();
        if (di->isBranch || di->discardHi > di->discardLo)
            resolveBranch(di, now);
    }
}

} // namespace tcfill::pipeline
