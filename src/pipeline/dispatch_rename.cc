#include "pipeline/dispatch_rename.hh"

#include <array>

#include "common/logging.hh"

namespace tcfill::pipeline
{

DispatchRename::DispatchRename(const DispatchEnv &env)
    : Stage("dispatch"), cfg_(env.cfg), in_(env.in), out_(env.out),
      window_(env.window), issue_(env.issue)
{
    stats_.addCounter("lines", lines_, "fetched lines renamed");
    stats_.addCounter("insts", insts_, "instructions renamed");
}

void
DispatchRename::regStats(stats::Group &master)
{
    rename_.regStats(master);
    master.addCounter("dispatch.lines", lines_,
                      "fetched lines renamed");
    master.addCounter("dispatch.insts", insts_,
                      "instructions renamed");
}

void
DispatchRename::tick(Cycle now)
{
    if (in_.empty())
        return;
    FetchLine &line = in_.lines.front();
    if (now < line.readyCycle + 1)
        return;

    // Structural checks: window capacity and reservation stations.
    if (window_.size() + line.insts.size() > cfg_.windowCap)
        return;
    std::array<unsigned, 64> need{};
    for (const auto &di : line.insts) {
        if (!di->moveMarked && !di->elided)
            ++need[static_cast<unsigned>(di->fu) % 64];
    }
    for (unsigned fu = 0; fu < issue_.numFus(); ++fu) {
        if (need[fu] > issue_.rsFree(fu))
            return;
    }

    if (line.fromTrace)
        renameTraceLine(line, now);
    else
        renameSerialLine(line, now);

    ++lines_;
    in_.lines.pop_front();
}

void
DispatchRename::renameTraceLine(FetchLine &line, Cycle now)
{
    // Phase 1: resolve source operands. Trace lines read all live-ins
    // against the line-entry mapping (explicit dependency marking
    // makes parallel rename possible).
    for (auto &di : line.insts) {
        di->numSrcs = di->inst.numSrcs();
        for (unsigned k = 0; k < di->numSrcs; ++k) {
            std::int8_t d = di->lineDep[k];
            if (d >= 0) {
                const DynInstPtr &p =
                    line.insts[static_cast<std::size_t>(d)];
                di->src[k] = p->moveMarked ? p->moveAlias
                                           : Operand{p, 0};
            } else {
                di->src[k] = rename_.read(di->inst.srcReg(k));
            }
#ifdef TCFILL_SQUASH_AUDIT
            if (di->src[k].producer &&
                (di->src[k].producer->squashed() ||
                 di->src[k].producer->inactive)) {
                std::fprintf(stderr,
                    "AUDIT-ISSUE cycle=%llu consumer seq=%llu "
                    "pc=0x%llx '%s' src%u dep=%d -> producer "
                    "seq=%llu pc=0x%llx sq=%d inact=%d\n",
                    (unsigned long long)now,
                    (unsigned long long)di->seq,
                    (unsigned long long)di->pc,
                    disassemble(di->inst).c_str(), k,
                    (int)di->lineDep[k],
                    (unsigned long long)di->src[k].producer->seq,
                    (unsigned long long)di->src[k].producer->pc,
                    di->src[k].producer->squashed() ? 1 : 0,
                    di->src[k].producer->inactive ? 1 : 0);
            }
#endif
        }
        if (di->moveMarked) {
            std::int8_t d = di->moveSrcDep;
            if (d >= 0) {
                const DynInstPtr &p =
                    line.insts[static_cast<std::size_t>(d)];
                di->moveAlias = p->moveMarked ? p->moveAlias
                                              : Operand{p, 0};
            } else {
                di->moveAlias = rename_.read(di->moveSrcReg);
            }
        }
    }
    // Phase 2: apply destination mappings in program order.
    for (auto &di : line.insts) {
        di->issueCycle = now;
        tracePipe(tracer_, obs::PipeStage::Rename, *di, now);
        tracePipe(tracer_, obs::PipeStage::Issue, *di, now);
        if (di->elided) {
            // Dead write: completes at issue, maps nothing (its
            // same-region overwriter later in this line supplies
            // the register's next mapping).
            di->completeCycle = now;
            di->phase = InstPhase::Complete;
            tracePipe(tracer_, obs::PipeStage::Complete, *di, now);
        } else if (di->moveMarked) {
            di->completeCycle = now;
            di->phase = InstPhase::Complete;
            tracePipe(tracer_, obs::PipeStage::Complete, *di, now);
            if (!di->inactive)
                rename_.alias(di->inst.dest, di->moveAlias);
            if (di->isBranch)
                panic("marked move cannot be a branch");
        } else {
            if (di->inst.hasDest() && !di->inactive)
                rename_.write(di->inst.dest, di);
            out_.toCore.push_back(di.get());
        }
        // The line is discarded right after rename: hand the owning
        // reference straight to the window.
        window_.insts.push_back(std::move(di));
        ++insts_;
    }
}

void
DispatchRename::renameSerialLine(FetchLine &line, Cycle now)
{
    for (auto &di : line.insts) {
        di->issueCycle = now;
        di->numSrcs = di->inst.numSrcs();
        for (unsigned k = 0; k < di->numSrcs; ++k)
            di->src[k] = rename_.read(di->inst.srcReg(k));
        tracePipe(tracer_, obs::PipeStage::Rename, *di, now);
        tracePipe(tracer_, obs::PipeStage::Issue, *di, now);
        if (di->inst.hasDest())
            rename_.write(di->inst.dest, di);
        out_.toCore.push_back(di.get());
        window_.insts.push_back(std::move(di));
        ++insts_;
    }
}

} // namespace tcfill::pipeline
