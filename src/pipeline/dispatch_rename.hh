/**
 * @file
 * The rename/dispatch stage of the decomposed pipeline (DESIGN.md
 * §10): pops the oldest ready line from the FetchLatch, checks window
 * and reservation-station capacity against the issue stage's
 * structural view, resolves source operands against the RenameTable
 * (explicit intra-line dependency marking makes trace lines rename in
 * parallel; I-cache lines rename serially), executes marked moves by
 * aliasing at rename (paper §4.2), inserts everything into the
 * in-flight window, and hands instructions that need a reservation
 * station to the issue stage through the DispatchLatch.
 *
 * Owns the RenameTable; recovery borrows it (renameTable()) for
 * checkpoint-repair rebuilds.
 */

#ifndef TCFILL_PIPELINE_DISPATCH_RENAME_HH
#define TCFILL_PIPELINE_DISPATCH_RENAME_HH

#include "pipeline/issue_stage.hh"
#include "pipeline/latches.hh"
#include "pipeline/stage.hh"
#include "sim/config.hh"
#include "uarch/pipe_hooks.hh"
#include "uarch/rename.hh"

namespace tcfill::pipeline
{

/** Everything the dispatch stage sees of the rest of the machine. */
struct DispatchEnv
{
    const SimConfig &cfg;
    FetchLatch &in;
    DispatchLatch &out;
    InstWindow &window;
    IssueStage &issue;
};

/** Rename (+ move execution at rename) and window insertion. */
class DispatchRename : public Stage
{
  public:
    explicit DispatchRename(const DispatchEnv &env);

    /** One dispatch cycle: rename at most one fetched line. */
    virtual void tick(Cycle now);

    /** The mapping table (recovery rebuilds it after a squash). */
    RenameTable &renameTable() { return rename_; }

    void regStats(stats::Group &master) override;

  private:
    void renameTraceLine(FetchLine &line, Cycle now);
    void renameSerialLine(FetchLine &line, Cycle now);

    const SimConfig &cfg_;
    FetchLatch &in_;
    DispatchLatch &out_;
    InstWindow &window_;
    IssueStage &issue_;

    RenameTable rename_;

    stats::Counter lines_;
    stats::Counter insts_;
};

} // namespace tcfill::pipeline

#endif // TCFILL_PIPELINE_DISPATCH_RENAME_HH
