/**
 * @file
 * The StagePolicy seam (DESIGN.md §10): a bundle of per-stage factory
 * functions the Processor composition root consults when wiring the
 * pipeline. A null factory means "build the standard stage". Future
 * front ends or schedulers (wrong-path-aware fetch, alternate issue
 * policies, program-map-guided fetch) subclass a stage, override its
 * virtual tick()/builder hooks, and supply a factory here — no other
 * stage, latch, or Processor change required.
 */

#ifndef TCFILL_PIPELINE_POLICY_HH
#define TCFILL_PIPELINE_POLICY_HH

#include <functional>
#include <memory>

#include "pipeline/dispatch_rename.hh"
#include "pipeline/fetch_engine.hh"
#include "pipeline/issue_stage.hh"
#include "pipeline/recovery.hh"
#include "pipeline/retire_unit.hh"

namespace tcfill::pipeline
{

/** Factory overrides for the five pipeline stages. */
struct StagePolicy
{
    std::function<std::unique_ptr<FetchEngine>(const FetchEnv &)>
        makeFetch;
    std::function<std::unique_ptr<DispatchRename>(const DispatchEnv &)>
        makeDispatch;
    std::function<std::unique_ptr<IssueStage>(const IssueEnv &)>
        makeIssue;
    std::function<std::unique_ptr<RetireUnit>(const RetireEnv &)>
        makeRetire;
    std::function<std::unique_ptr<RecoveryController>(
        const RecoveryEnv &)>
        makeRecovery;
};

} // namespace tcfill::pipeline

#endif // TCFILL_PIPELINE_POLICY_HH
