/**
 * @file
 * Common base for the first-class pipeline stages (DESIGN.md §10).
 * Each stage owns a stats::Group named after itself — queryable in
 * isolation, which is what the per-stage unit tests drive — and the
 * composition root additionally re-exports every stage counter into
 * the processor-wide "sim" registry via regStats() so dumps and
 * SimResult assembly see one flat namespace.
 */

#ifndef TCFILL_PIPELINE_STAGE_HH
#define TCFILL_PIPELINE_STAGE_HH

#include <string>
#include <utility>

#include "common/stats.hh"
#include "obs/pipe_trace.hh"

namespace tcfill::pipeline
{

/** A pipeline stage: named stats group + optional lifecycle tracer. */
class Stage
{
  public:
    explicit Stage(std::string name) : stats_(std::move(name)) {}
    virtual ~Stage() = default;

    Stage(const Stage &) = delete;
    Stage &operator=(const Stage &) = delete;

    /** This stage's own statistics (also re-exported into "sim"). */
    const stats::Group &stats() const { return stats_; }

    /**
     * Re-export this stage's counters (prefixed with the stage name)
     * and any components it owns into the processor-wide registry.
     */
    virtual void regStats(stats::Group &master) = 0;

    /**
     * Attach a pipeline lifecycle tracer (nullptr detaches). Purely
     * observational; stages forward to owned components as needed.
     */
    virtual void setTracer(obs::PipeTracer *tracer) { tracer_ = tracer; }

  protected:
    stats::Group stats_;
    obs::PipeTracer *tracer_ = nullptr;
};

} // namespace tcfill::pipeline

#endif // TCFILL_PIPELINE_STAGE_HH
