/**
 * @file
 * The front end of the decomposed pipeline (DESIGN.md §10): trace-
 * cache and I-cache line construction, multiple-branch prediction,
 * return-address-stack and indirect-target prediction, and advance of
 * the committed-path oracle. Owns the predictors outright; everything
 * else arrives as a narrow constructor-injected view (FetchEnv).
 *
 * The virtual tick()/line-builder hooks are the StagePolicy seam for
 * alternate front ends (e.g. a wrong-path-aware fetch engine).
 */

#ifndef TCFILL_PIPELINE_FETCH_ENGINE_HH
#define TCFILL_PIPELINE_FETCH_ENGINE_HH

#include "bpred/predictor.hh"
#include "mem/cache.hh"
#include "pipeline/latches.hh"
#include "pipeline/oracle.hh"
#include "pipeline/stage.hh"
#include "sim/config.hh"
#include "trace/tcache.hh"
#include "uarch/inst_pool.hh"
#include "uarch/pipe_hooks.hh"

namespace tcfill::pipeline
{

/** Everything the fetch engine sees of the rest of the machine. */
struct FetchEnv
{
    const SimConfig &cfg;
    OracleStream &oracle;
    SlabArena &arena;
    MemoryHierarchy &mem;
    TraceCache &tcache;
    FetchControl &ctrl;
    FetchLatch &out;
    /** Execution-engine width, for round-robin I-cache slotting. */
    unsigned numFus;
};

/** Trace-line / I-cache line fetch with multi-branch prediction. */
class FetchEngine : public Stage
{
  public:
    explicit FetchEngine(const FetchEnv &env);

    /** One fetch cycle: build at most one line into the FetchLatch. */
    virtual void tick(Cycle now);

    void regStats(stats::Group &master) override;

    std::uint64_t mispredicts() const { return mispredicts_.value(); }
    std::uint64_t rescues() const { return rescues_.value(); }

  protected:
    FetchLine buildTraceLine(const TraceSegment &seg, Cycle ready);
    FetchLine buildICacheLine(Cycle ready);
    DynInstPtr makeDynInst(const Instruction &inst, Addr pc,
                           FetchSource src, Cycle fetch_cycle);

    const SimConfig &cfg_;
    OracleStream &oracle_;
    SlabArena &arena_;
    MemoryHierarchy &mem_;
    TraceCache &tcache_;
    FetchControl &ctrl_;
    FetchLatch &out_;
    unsigned num_fus_;

    // Prediction structures: fetch-owned outright.
    MultiBranchPredictor bpred_;
    ReturnAddressStack ras_;
    IndirectPredictor ipred_;

    InstSeqNum seq_next_ = 1;

    stats::Counter mispredicts_;
    stats::Counter rescues_;
    stats::Counter trace_lines_;
    stats::Counter icache_lines_;
};

} // namespace tcfill::pipeline

#endif // TCFILL_PIPELINE_FETCH_ENGINE_HH
