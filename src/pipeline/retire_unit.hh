/**
 * @file
 * In-order retirement (DESIGN.md §10): drains completed instructions
 * from the head of the in-flight window, feeds each architectural
 * instruction to the FillUnit (the paper's retire→fill handoff),
 * releases serialize stalls, pops the committed-path oracle, and owns
 * the dynamic-optimization result counters (Table 2 / figures 3-5, 7).
 */

#ifndef TCFILL_PIPELINE_RETIRE_UNIT_HH
#define TCFILL_PIPELINE_RETIRE_UNIT_HH

#include <algorithm>
#include <functional>

#include "fill/fill_unit.hh"
#include "obs/timeline.hh"
#include "pipeline/issue_stage.hh"
#include "pipeline/latches.hh"
#include "pipeline/oracle.hh"
#include "pipeline/stage.hh"
#include "sim/config.hh"
#include "uarch/pipe_hooks.hh"

namespace tcfill::pipeline
{

/** Everything the retire unit sees of the rest of the machine. */
struct RetireEnv
{
    const SimConfig &cfg;
    InstWindow &window;
    OracleStream &oracle;
    FillUnit &fill;
    IssueStage &issue;
    FetchControl &ctrl;
};

/**
 * Observational per-commit callback (architectural record + commit
 * cycle), invoked for every retired instruction in program order.
 * Like the PipeTracer hooks it must not mutate simulator state; a
 * hooked run's timing is bit-identical to an unhooked one. Consumers:
 * tracefile::BbvProfiler (basic-block-vector profiling at retire).
 */
using CommitHook = std::function<void(const ExecRecord &, Cycle)>;

/** In-order retire, fill-unit handoff and result accounting. */
class RetireUnit : public Stage
{
  public:
    explicit RetireUnit(const RetireEnv &env);

    /** One retire cycle: commit up to retireWidth instructions. */
    virtual void tick(Cycle now);

    std::uint64_t retired() const { return retired_.value(); }
    Cycle lastRetireCycle() const { return last_retire_cycle_; }

    /** True once the configured maxInsts cap has been reached. */
    bool
    instCapReached() const
    {
        return cfg_.maxInsts && retired() >= cfg_.maxInsts;
    }

    /**
     * Fatal with a window-head diagnostic when nothing has retired
     * for longer than the deadlock window (a model bug, never a
     * legitimate stall).
     */
    void panicIfDeadlocked(Cycle now) const;

    /**
     * Earliest future cycle (>= @p next) this unit can make progress:
     * the window head's completion cycle, @p next itself when the
     * head is a squashed slot (popped for free on the next tick), or
     * kNoCycle when the head is waiting on an event that will arm
     * another stage first (incomplete, or inactive pending branch
     * activation). Used by the Processor's cycle-skipping.
     */
    Cycle
    nextRetireCycle(Cycle next) const
    {
        if (window_.empty())
            return kNoCycle;
        const DynInst &f = *window_.insts.front();
        if (f.squashed())
            return next;
        if (f.inactive || f.phase != InstPhase::Complete)
            return kNoCycle;
        return std::max(f.completeCycle, next);
    }

    /** Attach (or clear, with {}) the per-commit observer. */
    void setCommitHook(CommitHook hook) { commit_hook_ = std::move(hook); }

    /**
     * Attach the interval-telemetry collector (nullptr detaches); a
     * dedicated seam rather than a CommitHook so it composes with a
     * BbvProfiler hook and stays a direct (inlineable) call. Fed once
     * per commit, after the commit's own counter increments, so each
     * interval's deltas include its boundary instruction. Purely
     * observational — timing is bit-identical either way (asserted in
     * tests/test_obs.cc).
     */
    void setTimeline(obs::Timeline *tl) { timeline_ = tl; }

    /**
     * Cycles-at-retired-count probe: when the @p at th instruction
     * commits, *out receives the cycle count a run capped at
     * maxInsts == at would have reported (commit cycle + 1; asserted
     * equal in tests). Purely observational — a probed run's timing is
     * bit-identical to an unprobed one. Lets sampled measurement read
     * the warmup-prefix cycle count out of the full timing run instead
     * of simulating the warmup twice (tracefile::runSampled).
     */
    void
    setRetireCycleProbe(InstSeqNum at, Cycle *out)
    {
        probe_at_ = at;
        probe_cycle_ = out;
    }

    void regStats(stats::Group &master) override;

  private:
    const SimConfig &cfg_;
    InstWindow &window_;
    OracleStream &oracle_;
    FillUnit &fill_;
    IssueStage &issue_;
    FetchControl &ctrl_;

    Cycle last_retire_cycle_ = 0;
    CommitHook commit_hook_;
    obs::Timeline *timeline_ = nullptr;
    InstSeqNum probe_at_ = 0;
    Cycle *probe_cycle_ = nullptr;

    stats::Counter retired_;
    stats::Counter dyn_moves_;
    stats::Counter dyn_reassoc_;
    stats::Counter dyn_scaled_;
    stats::Counter dyn_elided_;
    stats::Counter dyn_move_idioms_;
    stats::Counter bypass_delayed_;
};

} // namespace tcfill::pipeline

#endif // TCFILL_PIPELINE_RETIRE_UNIT_HH
