/**
 * @file
 * Chrome trace-event / Perfetto JSON export of the pipeline: a
 * strict `{"traceEvents":[...]}` writer plus a PipeTracer that turns
 * the per-instruction lifecycle stream into per-stage occupancy
 * spans, fill-unit finalization instants, aggregated squash/recovery
 * episodes and an in-flight-window counter track — loadable directly
 * in chrome://tracing or ui.perfetto.dev.
 *
 * Timebases: simulated events live on pid 1 with 1 cycle rendered as
 * 1 microsecond (`ts`/`dur` are cycle counts); host-side spans
 * (sampled-run checkpoint/restore/fast-forward/measure, emitted by
 * tracefile::runSampled) live on pid 2 in real wall-clock
 * microseconds since the writer was created. The two process tracks
 * are independent — don't compare timestamps across them.
 *
 * Like every obs hook, export is purely observational and
 * null-gated: a run with a TraceEventTracer attached retires the
 * same instructions in the same cycles as an untraced run (asserted
 * in tests/test_obs.cc).
 */

#ifndef TCFILL_OBS_TRACE_EVENTS_HH
#define TCFILL_OBS_TRACE_EVENTS_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string_view>
#include <unordered_map>

#include "common/types.hh"
#include "obs/pipe_trace.hh"

namespace tcfill::obs
{

/** Process IDs of the two timebases in an exported file. */
constexpr int kTracePidSim = 1;   ///< ts = simulated cycles (as us)
constexpr int kTracePidHost = 2;  ///< ts = wall-clock us since open

/**
 * Serializer for the Chrome trace-event JSON array format. Events
 * append under a mutex (sampled-run host spans arrive from pool
 * workers); close() terminates the document and further appends are
 * a bug. Every event carries the `ph`/`ts`/`pid`/`tid` fields the
 * Perfetto importer requires; `args` bodies are caller-rendered JSON
 * member lists (numbers only — keep them machine-parseable).
 */
class TraceEventWriter
{
  public:
    explicit TraceEventWriter(std::ostream &os);
    ~TraceEventWriter();

    /** Write the closing "]}" (idempotent). */
    void close();

    /** Complete event ("X"): a span [ts, ts + dur]. */
    void complete(int pid, int tid, std::string_view name, double ts,
                  double dur, std::string_view args = {});

    /** Instant event ("i", thread-scoped). */
    void instant(int pid, int tid, std::string_view name, double ts,
                 std::string_view args = {});

    /** Counter event ("C"): one series sample. */
    void counter(int pid, std::string_view name, double ts,
                 std::string_view series, double value);

    /** Metadata: name the process / thread tracks ("M"). */
    void processName(int pid, std::string_view name);
    void threadName(int pid, int tid, std::string_view name);

    /** Events emitted so far. */
    std::uint64_t events() const { return events_; }

    /** Wall-clock microseconds since construction (host-span ts). */
    double
    nowUs() const
    {
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
    }

  private:
    void emit(char ph, int pid, int tid, std::string_view name,
              const double *ts, const double *dur,
              std::string_view args);

    std::mutex mu_;
    std::ostream &os_;
    std::uint64_t events_ = 0;
    bool closed_ = false;
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * PipeTracer rendering instruction lifecycles as trace events. Per
 * retired instruction it emits one span per pipeline segment the
 * instruction occupied (fetch→rename, rename→issue, issue→execute,
 * execute→complete, complete→retire), each on its stage's thread
 * track; squashes aggregate into one instant per recovery cycle, and
 * fill-unit finalizations become instants with the per-pass
 * transform counts as args. An in-flight counter track samples the
 * window occupancy each cycle it changes.
 *
 * Attach via Processor::setTracer and call finish() after run() to
 * flush the trailing aggregates (the writer stays open for host
 * spans; the owner calls TraceEventWriter::close()).
 */
class TraceEventTracer : public PipeTracer
{
  public:
    explicit TraceEventTracer(TraceEventWriter &w);

    void instEvent(const PipeEvent &ev) override;
    void fillEvent(const FillEvent &ev) override;
    void policyEvent(const PolicyEvent &ev) override;

    /** Flush pending per-cycle aggregates (squash + occupancy). */
    void finish();

  private:
    /** Lifecycle milestones observed so far for one in-flight inst. */
    struct Life
    {
        Addr pc = 0;
        Cycle stage[5] = {};    ///< fetch/rename/issue/execute/complete
        bool seen[5] = {};
        bool fromTrace = false;
        bool inactive = false;
        bool moveMarked = false;
        bool reassociated = false;
        bool scaled = false;
        bool elided = false;
    };

    void noteStage(const PipeEvent &ev, unsigned idx);
    void emitSpans(const Life &life, Cycle retire_cycle,
                   InstSeqNum seq);
    void occupancyDelta(Cycle now, int delta);
    void flushOccupancy();
    void flushSquashes();

    TraceEventWriter &w_;
    std::unordered_map<InstSeqNum, Life> inflight_;

    // Window-occupancy counter, coalesced to one sample per cycle.
    std::int64_t occupancy_ = 0;
    Cycle occ_cycle_ = 0;
    bool occ_pending_ = false;

    // Per-cycle squash aggregation.
    Cycle squash_cycle_ = 0;
    std::uint64_t squash_count_ = 0;
};

} // namespace tcfill::obs

#endif // TCFILL_OBS_TRACE_EVENTS_HH
