#include "obs/progress.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace tcfill::obs
{

ConsoleProgress::ConsoleProgress(std::ostream &os, std::string label)
    : os_(os), label_(std::move(label))
{
}

void
ConsoleProgress::update(const SweepProgress &p)
{
    std::lock_guard<std::mutex> lk(mu_);
    last_ = p;
    if (finished_)
        return;
    // Repaint only when a point completes; submissions alone would
    // spam one line per enqueue on large sweeps.
    if (p.done == painted_done_)
        return;
    painted_done_ = p.done;
    paint(p, false);
}

void
ConsoleProgress::finish()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_)
        return;
    finished_ = true;
    paint(last_, true);
}

void
ConsoleProgress::paint(const SweepProgress &p, bool final_line)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
        "\r%s %" PRIu64 "/%" PRIu64 " | %" PRIu64 " hits, %" PRIu64
        " live (%u running) | util %3.0f%%",
        label_.c_str(), p.done, p.points, p.cacheHits, p.liveRuns,
        p.running, 100.0 * p.utilization());
    os_ << buf;
    open_line_ = true;
    if (final_line) {
        std::snprintf(buf, sizeof(buf),
            " | %.1f points/s, %.2fs busy / %.2fs wall\n",
            p.pointsPerSec(), p.busySeconds, p.wallSeconds);
        os_ << buf;
        open_line_ = false;
    }
    os_.flush();
}

} // namespace tcfill::obs
