#include "obs/host_prof.hh"

namespace tcfill::obs
{

const char *
hostSectionName(HostSection s)
{
    switch (s) {
      case HostSection::Fill: return "fill";
      case HostSection::Recovery: return "recovery";
      case HostSection::Retire: return "retire";
      case HostSection::Dispatch: return "dispatch";
      case HostSection::Fetch: return "fetch";
      case HostSection::Issue: return "issue";
      case HostSection::Profile: return "profile";
      case HostSection::Checkpoint: return "checkpoint";
      case HostSection::Restore: return "restore";
      case HostSection::FastForward: return "fastForward";
      case HostSection::Measure: return "measure";
      case HostSection::NumSections: break;
    }
    return "?";
}

std::vector<HostProfiler::Row>
HostProfiler::rows() const
{
    std::vector<Row> out;
    for (std::size_t i = 0; i < kSections; ++i) {
        const std::uint64_t calls =
            calls_[i].load(std::memory_order_relaxed);
        if (calls == 0)
            continue;
        out.push_back(Row{
            hostSectionName(static_cast<HostSection>(i)),
            static_cast<double>(ns_[i].load(std::memory_order_relaxed)) *
                1e-9,
            calls});
    }
    return out;
}

} // namespace tcfill::obs
