#include "obs/trace_events.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"
#include "obs/json.hh"

namespace tcfill::obs
{

// --------------------------------------------------------------------
// TraceEventWriter
// --------------------------------------------------------------------

TraceEventWriter::TraceEventWriter(std::ostream &os)
    : os_(os), epoch_(std::chrono::steady_clock::now())
{
    os_ << "{\"traceEvents\": [";
}

TraceEventWriter::~TraceEventWriter()
{
    close();
}

void
TraceEventWriter::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
        return;
    closed_ = true;
    os_ << "\n]}\n";
    os_.flush();
}

void
TraceEventWriter::emit(char ph, int pid, int tid, std::string_view name,
                       const double *ts, const double *dur,
                       std::string_view args)
{
    std::lock_guard<std::mutex> lock(mu_);
    panic_if(closed_, "TraceEventWriter: emit after close()");
    os_ << (events_++ ? ",\n" : "\n");
    os_ << "{\"ph\": \"" << ph << "\", \"pid\": " << pid
        << ", \"tid\": " << tid << ", \"name\": ";
    jsonQuote(os_, name);
    if (ts)
        os_ << ", \"ts\": " << jsonNumber(*ts);
    if (dur)
        os_ << ", \"dur\": " << jsonNumber(*dur);
    if (ph == 'i')
        os_ << ", \"s\": \"t\"";    // thread-scoped instant
    if (!args.empty())
        os_ << ", \"args\": {" << args << '}';
    os_ << '}';
}

void
TraceEventWriter::complete(int pid, int tid, std::string_view name,
                           double ts, double dur, std::string_view args)
{
    emit('X', pid, tid, name, &ts, &dur, args);
}

void
TraceEventWriter::instant(int pid, int tid, std::string_view name,
                          double ts, std::string_view args)
{
    emit('i', pid, tid, name, &ts, nullptr, args);
}

void
TraceEventWriter::counter(int pid, std::string_view name, double ts,
                          std::string_view series, double value)
{
    char args[96];
    std::snprintf(args, sizeof(args), "\"%.*s\": %s",
                  static_cast<int>(series.size()), series.data(),
                  jsonNumber(value).c_str());
    emit('C', pid, 0, name, &ts, nullptr, args);
}

void
TraceEventWriter::processName(int pid, std::string_view name)
{
    char args[96];
    std::snprintf(args, sizeof(args), "\"name\": \"%.*s\"",
                  static_cast<int>(name.size()), name.data());
    const double ts = 0.0;
    emit('M', pid, 0, "process_name", &ts, nullptr, args);
}

void
TraceEventWriter::threadName(int pid, int tid, std::string_view name)
{
    char args[96];
    std::snprintf(args, sizeof(args), "\"name\": \"%.*s\"",
                  static_cast<int>(name.size()), name.data());
    const double ts = 0.0;
    emit('M', pid, tid, "thread_name", &ts, nullptr, args);
}

// --------------------------------------------------------------------
// TraceEventTracer
// --------------------------------------------------------------------

namespace
{

/** Sim-process thread tracks, in display order. */
enum SimTid : int
{
    kTidFetch = 1,
    kTidRename = 2,
    kTidIssue = 3,
    kTidExecute = 4,
    kTidCommit = 5,
    kTidFill = 6,
    kTidRecovery = 7,
};

constexpr const char *kSegmentName[5] = {
    "fetch", "rename", "issue", "execute", "commit",
};

constexpr int kSegmentTid[5] = {
    kTidFetch, kTidRename, kTidIssue, kTidExecute, kTidCommit,
};

} // namespace

TraceEventTracer::TraceEventTracer(TraceEventWriter &w) : w_(w)
{
    w_.processName(kTracePidSim, "tcfill sim (1 cycle = 1us)");
    w_.processName(kTracePidHost, "tcfill host (wall clock)");
    w_.threadName(kTracePidSim, kTidFetch, "fetch");
    w_.threadName(kTracePidSim, kTidRename, "rename");
    w_.threadName(kTracePidSim, kTidIssue, "issue");
    w_.threadName(kTracePidSim, kTidExecute, "execute");
    w_.threadName(kTracePidSim, kTidCommit, "commit");
    w_.threadName(kTracePidSim, kTidFill, "fill unit");
    w_.threadName(kTracePidSim, kTidRecovery, "recovery");
}

void
TraceEventTracer::noteStage(const PipeEvent &ev, unsigned idx)
{
    Life &life = inflight_[ev.seq];
    life.pc = ev.pc;
    life.stage[idx] = ev.cycle;
    life.seen[idx] = true;
    life.fromTrace |= ev.fromTrace;
    life.inactive |= ev.inactive;
    life.moveMarked |= ev.moveMarked;
    life.reassociated |= ev.reassociated;
    life.scaled |= ev.scaled;
    life.elided |= ev.elided;
}

void
TraceEventTracer::occupancyDelta(Cycle now, int delta)
{
    if (occ_pending_ && now != occ_cycle_)
        flushOccupancy();
    occupancy_ += delta;
    occ_cycle_ = now;
    occ_pending_ = true;
}

void
TraceEventTracer::flushOccupancy()
{
    if (!occ_pending_)
        return;
    w_.counter(kTracePidSim, "in-flight",
               static_cast<double>(occ_cycle_), "insts",
               static_cast<double>(occupancy_));
    occ_pending_ = false;
}

void
TraceEventTracer::flushSquashes()
{
    if (squash_count_ == 0)
        return;
    char args[64];
    std::snprintf(args, sizeof(args), "\"squashed\": %" PRIu64,
                  squash_count_);
    w_.instant(kTracePidSim, kTidRecovery, "squash",
               static_cast<double>(squash_cycle_), args);
    squash_count_ = 0;
}

void
TraceEventTracer::emitSpans(const Life &life, Cycle retire_cycle,
                            InstSeqNum seq)
{
    char name[32];
    std::snprintf(name, sizeof(name), "0x%" PRIx64,
                  static_cast<std::uint64_t>(life.pc));
    char args[192];
    std::snprintf(
        args, sizeof(args),
        "\"seq\": %" PRIu64 ", \"fromTrace\": %d, \"inactive\": %d, "
        "\"moveMarked\": %d, \"reassociated\": %d, \"scaled\": %d, "
        "\"elided\": %d",
        static_cast<std::uint64_t>(seq), life.fromTrace ? 1 : 0,
        life.inactive ? 1 : 0, life.moveMarked ? 1 : 0,
        life.reassociated ? 1 : 0, life.scaled ? 1 : 0,
        life.elided ? 1 : 0);

    // One span per pipeline segment between consecutive observed
    // milestones; the final milestone's segment runs to retirement.
    Cycle start = 0;
    int open = -1;      // index of the segment currently open
    for (unsigned i = 0; i < 5; ++i) {
        if (!life.seen[i])
            continue;
        if (open >= 0) {
            const Cycle end =
                life.stage[i] > start ? life.stage[i] : start;
            w_.complete(kTracePidSim, kSegmentTid[open],
                        name, static_cast<double>(start),
                        static_cast<double>(end - start), args);
        }
        open = static_cast<int>(i);
        start = life.stage[i];
    }
    if (open >= 0) {
        const Cycle end = retire_cycle > start ? retire_cycle : start;
        w_.complete(kTracePidSim, kSegmentTid[open], name,
                    static_cast<double>(start),
                    static_cast<double>(end - start), args);
    }
}

void
TraceEventTracer::instEvent(const PipeEvent &ev)
{
    switch (ev.stage) {
      case PipeStage::Fetch:
        noteStage(ev, 0);
        occupancyDelta(ev.cycle, +1);
        break;
      case PipeStage::Rename:
        noteStage(ev, 1);
        break;
      case PipeStage::Issue:
        noteStage(ev, 2);
        break;
      case PipeStage::Execute:
        noteStage(ev, 3);
        break;
      case PipeStage::Complete:
        // Stamp is the completion cycle (may be in the future
        // relative to the emission point); spans are emitted at
        // retire so ordering is irrelevant here.
        noteStage(ev, 4);
        break;
      case PipeStage::Retire: {
        auto it = inflight_.find(ev.seq);
        if (it != inflight_.end()) {
            emitSpans(it->second, ev.cycle, ev.seq);
            inflight_.erase(it);
        }
        occupancyDelta(ev.cycle, -1);
        break;
      }
      case PipeStage::Squash: {
        if (squash_count_ > 0 && ev.cycle != squash_cycle_)
            flushSquashes();
        squash_cycle_ = ev.cycle;
        ++squash_count_;
        if (inflight_.erase(ev.seq))
            occupancyDelta(ev.cycle, -1);
        break;
      }
    }
}

void
TraceEventTracer::fillEvent(const FillEvent &ev)
{
    char name[32];
    std::snprintf(name, sizeof(name), "segment 0x%" PRIx64,
                  static_cast<std::uint64_t>(ev.startPc));
    char args[224];
    std::snprintf(
        args, sizeof(args),
        "\"insts\": %u, \"blocks\": %u, \"movesMarked\": %u, "
        "\"reassociated\": %u, \"scaledAdds\": %u, \"deadElided\": %u, "
        "\"promotedBranches\": %u",
        ev.insts, ev.blocks, ev.movesMarked, ev.reassociated,
        ev.scaledAdds, ev.deadElided, ev.promotedBranches);
    w_.instant(kTracePidSim, kTidFill, name,
               static_cast<double>(ev.cycle), args);
}

void
TraceEventTracer::policyEvent(const PolicyEvent &ev)
{
    char args[96];
    std::snprintf(args, sizeof(args),
                  "\"prevMask\": %u, \"newMask\": %u",
                  unsigned(ev.prevMask), unsigned(ev.newMask));
    w_.instant(kTracePidSim, kTidFill, "policy switch",
               static_cast<double>(ev.cycle), args);
}

void
TraceEventTracer::finish()
{
    flushSquashes();
    flushOccupancy();
    inflight_.clear();  // still-in-flight at run end: no spans
}

} // namespace tcfill::obs
