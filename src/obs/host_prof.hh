/**
 * @file
 * Lightweight host self-profiler: scoped RAII timers around the
 * simulator's own hot sections (the six pipeline-stage ticks plus the
 * sampled-run checkpoint/fast-forward/measure paths) accumulating
 * wall-clock nanoseconds and call counts per section. Reported under
 * `--stats-host` (host.profile in the JSON document) so regressions
 * in a stage's host cost are attributable without an external
 * profiler.
 *
 * Like hostSeconds, everything here is observational wall-clock noise:
 * simulated state never depends on it, and the host.profile section
 * only appears inside the opt-in host block. The accumulators are
 * relaxed atomics so sampled-run pool workers can share one profiler;
 * rows() is called once, after the measured work quiesces.
 *
 * Gating: all timer sites are null-gated on the profiler pointer
 * (ScopedHostTimer with a null profiler never reads the clock), so a
 * run without `--stats-host` pays one predictable branch per section
 * per cycle — the same contract as the PipeTracer hooks, gated in
 * bench/perf_telemetry.
 */

#ifndef TCFILL_OBS_HOST_PROF_HH
#define TCFILL_OBS_HOST_PROF_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace tcfill::obs
{

/** The fixed set of profiled sections. */
enum class HostSection : std::uint8_t
{
    Fill,           ///< FillUnit::tick
    Recovery,       ///< RecoveryController::tick
    Retire,         ///< RetireUnit::tick
    Dispatch,       ///< DispatchRename::tick
    Fetch,          ///< FetchEngine::tick
    Issue,          ///< IssueStage::tick (+ dispatchPending)
    Profile,        ///< sampled run: functional BBV profiling pass
    Checkpoint,     ///< sampled run: checkpoint captures
    Restore,        ///< sampled run: checkpoint restores
    FastForward,    ///< sampled run: residual functional fast-forward
    Measure,        ///< sampled run: per-simpoint timing runs
    NumSections,
};

const char *hostSectionName(HostSection s);

/** Per-section wall-clock accumulator. */
class HostProfiler
{
  public:
    static constexpr std::size_t kSections =
        static_cast<std::size_t>(HostSection::NumSections);

    void
    add(HostSection s, std::uint64_t ns)
    {
        const auto i = static_cast<std::size_t>(s);
        ns_[i].fetch_add(ns, std::memory_order_relaxed);
        calls_[i].fetch_add(1, std::memory_order_relaxed);
    }

    /** One reported section (only sections with calls appear). */
    struct Row
    {
        const char *name;
        double seconds;
        std::uint64_t calls;
    };

    /** Non-empty sections in enum order. */
    std::vector<Row> rows() const;

  private:
    std::atomic<std::uint64_t> ns_[kSections] = {};
    std::atomic<std::uint64_t> calls_[kSections] = {};
};

/**
 * RAII section timer: measures from construction to destruction and
 * adds to @p p. A null profiler makes both ends free of clock reads —
 * the timer sites stay in the build unconditionally.
 */
class ScopedHostTimer
{
  public:
    ScopedHostTimer(HostProfiler *p, HostSection s) : p_(p), s_(s)
    {
        if (p_)
            t0_ = std::chrono::steady_clock::now();
    }

    ~ScopedHostTimer()
    {
        if (p_) {
            const auto dt = std::chrono::steady_clock::now() - t0_;
            p_->add(s_,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(dt)
                            .count()));
        }
    }

    ScopedHostTimer(const ScopedHostTimer &) = delete;
    ScopedHostTimer &operator=(const ScopedHostTimer &) = delete;

  private:
    HostProfiler *p_;
    HostSection s_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace tcfill::obs

#endif // TCFILL_OBS_HOST_PROF_HH
