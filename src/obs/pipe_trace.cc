#include "obs/pipe_trace.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace tcfill::obs
{

const char *
pipeStageName(PipeStage s)
{
    switch (s) {
      case PipeStage::Fetch: return "fetch";
      case PipeStage::Rename: return "rename";
      case PipeStage::Issue: return "issue";
      case PipeStage::Execute: return "execute";
      case PipeStage::Complete: return "complete";
      case PipeStage::Retire: return "retire";
      case PipeStage::Squash: return "squash";
    }
    return "?";
}

void
JsonlPipeTracer::instEvent(const PipeEvent &ev)
{
    // Hand-rolled formatting: this is the hottest observability path
    // (one line per instruction per stage), so avoid ostream state
    // churn and intermediate strings.
    char buf[256];
    int n = std::snprintf(buf, sizeof(buf),
        "{\"ev\":\"%s\",\"seq\":%" PRIu64 ",\"pc\":\"0x%" PRIx64
        "\",\"cycle\":%" PRIu64 ",\"src\":\"%s\"",
        pipeStageName(ev.stage), ev.seq, ev.pc, ev.cycle,
        ev.fromTrace ? "tc" : "ic");
    auto flag = [&](const char *name, bool set) {
        if (set && n > 0 && static_cast<std::size_t>(n) < sizeof(buf)) {
            n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                               ",\"%s\":true", name);
        }
    };
    flag("inactive", ev.inactive);
    flag("wrongPath", !ev.onCorrectPath);
    flag("move", ev.moveMarked);
    flag("reassoc", ev.reassociated);
    flag("scaled", ev.scaled);
    flag("elided", ev.elided);
    flag("mispredict", ev.mispredicted);
    os_ << buf << "}\n";
    ++events_;
}

void
JsonlPipeTracer::fillEvent(const FillEvent &ev)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
        "{\"ev\":\"fill.segment\",\"startPc\":\"0x%" PRIx64
        "\",\"cycle\":%" PRIu64 ",\"insts\":%u,\"blocks\":%u,"
        "\"moves\":%u,\"reassoc\":%u,\"scaled\":%u,\"elided\":%u,"
        "\"promoted\":%u}",
        ev.startPc, ev.cycle, ev.insts, ev.blocks, ev.movesMarked,
        ev.reassociated, ev.scaledAdds, ev.deadElided,
        ev.promotedBranches);
    os_ << buf << "\n";
    ++events_;
}

void
JsonlPipeTracer::policyEvent(const PolicyEvent &ev)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
        "{\"ev\":\"fill.policy\",\"cycle\":%" PRIu64
        ",\"prevMask\":%u,\"newMask\":%u}",
        ev.cycle, unsigned(ev.prevMask), unsigned(ev.newMask));
    os_ << buf << "\n";
    ++events_;
}

} // namespace tcfill::obs
