#include "obs/timeline.hh"

#include "common/kmeans.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace tcfill::obs
{

const char *
TimelineData::schema()
{
    return "tcfill-timeline-v1";
}

void
TimelineData::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("schema", schema());
    w.field("interval", interval);
    w.field("phases", static_cast<std::uint64_t>(phases));
    w.beginArray("counters");
    for (const std::string &name : counters)
        w.value(name);
    w.endArray();
    w.beginArray("intervals");
    for (const TimelineInterval &iv : intervals) {
        w.beginObject();
        w.field("startInst", iv.startInst);
        w.field("insts", iv.insts);
        w.field("startCycle", iv.startCycle);
        w.field("cycles", iv.cycles);
        // Derived from the two integers above, so deterministic.
        w.field("ipc", iv.cycles == 0
                           ? 0.0
                           : static_cast<double>(iv.insts) /
                                 static_cast<double>(iv.cycles));
        w.field("phase", static_cast<std::int64_t>(iv.phase));
        if (maskTracked)
            w.field("passMask", static_cast<std::int64_t>(iv.passMask));
        w.beginArray("deltas");
        for (std::uint64_t d : iv.deltas)
            w.value(d);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

Timeline::Timeline(const stats::Group &stats, InstSeqNum interval,
                   unsigned phases)
    : stats_(stats), phases_(phases),
      data_(std::make_shared<TimelineData>())
{
    panic_if(interval == 0, "timeline interval must be positive");
    data_->interval = interval;
    data_->phases = phases;
    data_->counters = stats.timingCounterNames();
    prev_.assign(data_->counters.size(), 0);
    scratch_.reserve(data_->counters.size());
}

void
Timeline::trackBlock(Addr pc, bool ends_block)
{
    if (!in_block_) {
        block_start_ = pc;
        in_block_ = true;
    }
    ++block_len_;
    if (ends_block) {
        flushBlock();
        in_block_ = false;
    }
}

void
Timeline::flushBlock()
{
    if (block_len_ == 0)
        return;
    cur_blocks_[block_start_] += block_len_;
    block_len_ = 0;
}

void
Timeline::closeInterval(Cycle boundary_cycle)
{
    TimelineInterval iv;
    iv.startInst = data_cut_inst_;
    iv.insts = insts_ - data_cut_inst_;
    iv.startCycle = last_cut_cycle_;
    iv.cycles = boundary_cycle - last_cut_cycle_;
    if (mask_probe_)
        iv.passMask = *mask_probe_;

    scratch_.clear();
    stats_.timingCounterValues(scratch_);
    iv.deltas.resize(scratch_.size());
    for (std::size_t i = 0; i < scratch_.size(); ++i)
        iv.deltas[i] = scratch_[i] - prev_[i];
    prev_ = scratch_;

    if (phases_ > 0) {
        // A block straddling the boundary contributes its halves to
        // both intervals under the same start-PC key (BbvProfiler
        // semantics).
        flushBlock();
        interval_blocks_.push_back(std::move(cur_blocks_));
        cur_blocks_.clear();
    }

    data_->intervals.push_back(std::move(iv));
    data_cut_inst_ = insts_;
    last_cut_cycle_ = boundary_cycle;
}

void
Timeline::cut(Cycle now)
{
    // Boundary convention: a run capped at exactly this retired count
    // would report `now + 1` cycles (the retire-cycle probe's value),
    // so interval cycle spans tile the run's total exactly.
    closeInterval(now + 1);
}

void
Timeline::assignPhases()
{
    const std::size_t n = data_->intervals.size();
    if (phases_ == 0 || n == 0)
        return;

    std::vector<BbvPoint> pts(n);
    for (std::size_t i = 0; i < n; ++i) {
        pts[i] = projectBbv(interval_blocks_[i],
                            data_->intervals[i].insts);
    }
    const KmeansResult km = kmeansBbv(pts, phases_, kBbvSelectSeed);

    // Relabel clusters in first-appearance order so phase 0 is always
    // the run's opening phase regardless of centroid seeding order.
    std::vector<int> relabel(km.centroids.size(), -1);
    int next = 0;
    for (std::size_t i = 0; i < n; ++i) {
        int &label = relabel[km.assign[i]];
        if (label < 0)
            label = next++;
        data_->intervals[i].phase = label;
    }
}

std::shared_ptr<const TimelineData>
Timeline::finish(Cycle end_cycle)
{
    panic_if(!data_, "Timeline::finish() called twice");
    if (insts_ > data_cut_inst_)
        closeInterval(end_cycle);
    assignPhases();
    return std::move(data_);
}

} // namespace tcfill::obs
