/**
 * @file
 * Phase-resolved interval telemetry: the Timeline collector cuts the
 * run into fixed-length intervals of retired instructions and
 * snapshots the delta of every registered timing-model counter
 * (stats::Group) at each boundary, yielding a per-interval time
 * series — IPC, trace-cache hit/miss, fill-unit transform counts,
 * bypass-delay attribution — instead of end-of-run totals. When phase
 * tagging is enabled it additionally tracks each interval's
 * basic-block vector (SimPoint-style, at commit) and k-means-clusters
 * the intervals with the same fixed-seed machinery the simpoint
 * selector uses (common/kmeans.hh), labeling every interval with a
 * phase ID numbered by first appearance.
 *
 * Determinism contract: the collector observes only architectural
 * commit order and timing-model counters, so the serialized
 * `timeline` section is byte-identical across -j1/-j8, across
 * scheduler implementations (non-timing diagnostics are excluded at
 * registration — see stats::Group::addCounter) and across live
 * record/replay runs. Enabling it never changes simulated cycles
 * (asserted in tests/test_obs.cc).
 */

#ifndef TCFILL_OBS_TIMELINE_HH
#define TCFILL_OBS_TIMELINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace tcfill::obs
{

class JsonWriter;

/** One completed timeline interval. */
struct TimelineInterval
{
    InstSeqNum startInst = 0;   ///< retired count at interval start
    InstSeqNum insts = 0;       ///< instructions retired in interval
    Cycle startCycle = 0;       ///< cycle count at interval start
    Cycle cycles = 0;           ///< cycles the interval spanned
    /** BBV phase/cluster ID (first-appearance order); -1 untagged. */
    int phase = -1;
    /**
     * Fill-policy pass mask active at the interval boundary; -1 when
     * no mask probe is attached (static-policy and legacy runs, whose
     * serialized bytes must not change).
     */
    int passMask = -1;
    /** Per-counter increments, ordered like TimelineData::counters. */
    std::vector<std::uint64_t> deltas;
};

/** The full serialized-into-JSON timeline of one run. */
struct TimelineData
{
    /** Section schema tag ("tcfill-timeline-v1"). */
    static const char *schema();

    InstSeqNum interval = 0;    ///< configured interval length
    unsigned phases = 0;        ///< requested phase count (0 = off)
    /** Whether intervals carry a passMask column (probe attached). */
    bool maskTracked = false;
    /** Timing-counter column names, registration order. */
    std::vector<std::string> counters;
    std::vector<TimelineInterval> intervals;

    /**
     * Emit as one JSON object (the `timeline` section of a
     * tcfill-stats-v1 result). Deterministic bytes: fixed key order,
     * integer deltas, per-interval ipc derived from the integers.
     */
    void toJson(JsonWriter &w) const;
};

/**
 * The collector the RetireUnit feeds (one call per committed
 * instruction, via RetireUnit::setTimeline). Like the PipeTracer
 * hooks it is purely observational and runtime-null-gated at the
 * commit site.
 */
class Timeline
{
  public:
    /**
     * @p stats is the processor's master registry — counter columns
     * are captured at construction, so build the Timeline after all
     * stages registered (Processor::wireStages does).
     * @p interval is the cut length in retired instructions (> 0);
     * @p phases requests BBV phase tagging with that cluster count
     * (0 disables the per-interval block tracking entirely).
     */
    Timeline(const stats::Group &stats, InstSeqNum interval,
             unsigned phases);

    /**
     * Account one committed instruction. @p pc is its PC,
     * @p ends_block mirrors the BbvProfiler block-end predicate
     * (control transfer or serializing; only consulted when phase
     * tagging is on) and @p now is the commit cycle. Inline: this is
     * the per-commit hot path.
     */
    void
    onRetire(Addr pc, bool ends_block, Cycle now)
    {
        if (phases_ > 0)
            trackBlock(pc, ends_block);
        ++insts_;
        if (insts_ - data_cut_inst_ >= data_->interval)
            cut(now);
    }

    /**
     * Attach a fill-policy mask probe: each closed interval then
     * records the mask active at its boundary (read through the
     * pointer, which must outlive the Timeline). Null detaches.
     * Observational only — wired by the Processor exactly when the
     * run uses a non-static policy, so legacy timeline bytes never
     * change.
     */
    void
    setMaskProbe(const std::uint8_t *mask)
    {
        mask_probe_ = mask;
        data_->maskTracked = mask != nullptr;
    }

    /**
     * Close the trailing partial interval (if any) against the run's
     * final cycle count, run phase clustering, and hand the finished
     * series over (the Timeline itself is done after this).
     */
    std::shared_ptr<const TimelineData> finish(Cycle end_cycle);

  private:
    void cut(Cycle now);
    void closeInterval(Cycle boundary_cycle);
    void trackBlock(Addr pc, bool ends_block);
    void flushBlock();
    void assignPhases();

    const stats::Group &stats_;
    unsigned phases_;

    std::shared_ptr<TimelineData> data_;

    InstSeqNum insts_ = 0;          ///< total retired so far
    InstSeqNum data_cut_inst_ = 0;  ///< retired count at last cut
    Cycle last_cut_cycle_ = 0;      ///< boundary cycle of last cut
    const std::uint8_t *mask_probe_ = nullptr;

    /** Counter snapshot at the last cut (timing counters, in order). */
    std::vector<std::uint64_t> prev_;
    std::vector<std::uint64_t> scratch_;

    // ---- per-interval BBV tracking (phases_ > 0 only) ---------------
    Addr block_start_ = 0;
    bool in_block_ = false;
    std::uint64_t block_len_ = 0;
    std::map<Addr, std::uint64_t> cur_blocks_;
    /** One BBV per completed interval, parallel to data_->intervals. */
    std::vector<std::map<Addr, std::uint64_t>> interval_blocks_;
};

} // namespace tcfill::obs

#endif // TCFILL_OBS_TIMELINE_HH
