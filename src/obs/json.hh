/**
 * @file
 * Minimal, dependency-free JSON support for the observability layer:
 * a deterministic streaming writer (stable key order is the caller's,
 * number formatting is round-trip shortest and locale-independent) and
 * a small recursive-descent parser used by tests and tools to validate
 * round-trips. Header-only so lower layers (common/stats) can emit
 * JSON without a link dependency on tcfill_obs.
 */

#ifndef TCFILL_OBS_JSON_HH
#define TCFILL_OBS_JSON_HH

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace tcfill::obs
{

/** Escape and quote @p s as a JSON string into @p os. */
inline void
jsonQuote(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/**
 * Deterministic decimal rendering of a double: shortest round-trip
 * form via to_chars where available, else %.17g. Both are stable for
 * a given binary, which is what the byte-identical-output guarantees
 * rest on.
 */
inline std::string
jsonNumber(double v)
{
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec == std::errc())
        return std::string(buf, ptr);
#endif
    char fbuf[64];
    std::snprintf(fbuf, sizeof(fbuf), "%.17g", v);
    return fbuf;
}

/**
 * Streaming JSON writer with two-space pretty printing. Keys are
 * emitted in call order, so output is byte-deterministic whenever the
 * caller's values are.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &
    beginObject()
    {
        preValue();
        os_ << '{';
        stack_.push_back({true, 0});
        return *this;
    }

    JsonWriter &
    beginObject(std::string_view k)
    {
        key(k);
        return beginObject();
    }

    JsonWriter &
    endObject()
    {
        closeScope('}');
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        preValue();
        os_ << '[';
        stack_.push_back({false, 0});
        return *this;
    }

    JsonWriter &
    beginArray(std::string_view k)
    {
        key(k);
        return beginArray();
    }

    JsonWriter &
    endArray()
    {
        closeScope(']');
        return *this;
    }

    JsonWriter &
    key(std::string_view k)
    {
        panic_if(stack_.empty() || !stack_.back().isObject,
                 "JsonWriter: key outside an object");
        separator();
        jsonQuote(os_, k);
        os_ << ": ";
        have_key_ = true;
        return *this;
    }

    JsonWriter &value(std::string_view v) { preValue(); jsonQuote(os_, v); return *this; }
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(const std::string &v) { return value(std::string_view(v)); }
    JsonWriter &value(bool v) { preValue(); os_ << (v ? "true" : "false"); return *this; }
    JsonWriter &value(double v) { preValue(); os_ << jsonNumber(v); return *this; }
    JsonWriter &value(std::uint64_t v) { preValue(); os_ << v; return *this; }
    JsonWriter &value(std::int64_t v) { preValue(); os_ << v; return *this; }
    JsonWriter &value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }

    template <typename T>
    JsonWriter &
    field(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** Terminate the document with a trailing newline. */
    void
    finish()
    {
        panic_if(!stack_.empty(), "JsonWriter: unclosed scopes");
        os_ << '\n';
    }

  private:
    struct Scope
    {
        bool isObject;
        unsigned count;
    };

    void
    separator()
    {
        if (!stack_.empty() && stack_.back().count++ > 0)
            os_ << ',';
        newlineIndent();
    }

    void
    preValue()
    {
        if (have_key_) {
            have_key_ = false;  // key() already positioned us
            return;
        }
        if (!stack_.empty()) {
            panic_if(stack_.back().isObject,
                     "JsonWriter: value without a key inside an object");
            separator();
        }
    }

    void
    closeScope(char c)
    {
        panic_if(stack_.empty(), "JsonWriter: unbalanced close");
        bool empty = stack_.back().count == 0;
        stack_.pop_back();
        if (!empty)
            newlineIndent();
        os_ << c;
    }

    void
    newlineIndent()
    {
        os_ << '\n';
        for (std::size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }

    std::ostream &os_;
    std::vector<Scope> stack_;
    bool have_key_ = false;
};

/**
 * Parsed JSON document node. Objects preserve insertion order (so a
 * parse-and-reserialize of our own output is stable).
 */
struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        Null, Bool, Number, String, Array, Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue *
    find(std::string_view k) const
    {
        for (const auto &[name, v] : obj) {
            if (name == k)
                return &v;
        }
        return nullptr;
    }

    /** Object member lookup; fatals when absent. */
    const JsonValue &
    at(std::string_view k) const
    {
        const JsonValue *v = find(k);
        if (!v)
            fatal("JSON object has no member '%.*s'",
                  static_cast<int>(k.size()), k.data());
        return *v;
    }

    double num() const { return number; }

    /**
     * Number as an unsigned 64-bit integer; 0 when negative, NaN or
     * >= 2^64, where the raw cast would be undefined behavior
     * (untrusted wire payloads reach this accessor).
     */
    std::uint64_t
    u64() const
    {
        if (!(number >= 0.0) || number >= 18446744073709551616.0)
            return 0;
        return static_cast<std::uint64_t>(number);
    }

    /** Parse @p text; nullopt on malformed input. */
    static std::optional<JsonValue> tryParse(std::string_view text);

    /** Parse @p text; fatals on malformed input. */
    static JsonValue
    parse(std::string_view text)
    {
        auto v = tryParse(text);
        if (!v)
            fatal("malformed JSON document (%zu bytes)", text.size());
        return *std::move(v);
    }
};

/**
 * Strict member-by-member reader over one parsed JSON object: every
 * accessor marks its member consumed, reports missing/mistyped
 * members through a caller-owned error string (never by aborting),
 * and finish() rejects members no accessor touched. The deserializers
 * of wire payloads (sim/config_io, sim/result_io) are built from
 * nested ObjectReaders so a schema drift in either direction — a
 * field the reader does not know, or one the writer stopped emitting
 * — fails loudly instead of silently dropping data.
 */
class ObjectReader
{
  public:
    ObjectReader(const JsonValue &v, const std::string &path,
                 std::string &err)
        : v_(v), path_(path), err_(err)
    {
        if (!v.isObject()) {
            fail("expected an object");
            return;
        }
        seen_.assign(v.obj.size(), false);
    }

    bool ok() const { return ok_; }

    /** Look up (and consume) a member; error + nullptr when absent. */
    const JsonValue *
    member(const char *name)
    {
        if (!ok_)
            return nullptr;
        for (std::size_t i = 0; i < v_.obj.size(); ++i) {
            if (v_.obj[i].first == name) {
                seen_[i] = true;
                return &v_.obj[i].second;
            }
        }
        fail(std::string("missing member '") + name + "'");
        return nullptr;
    }

    /** Consume a member without reading it (writer-derived fields). */
    void
    skip(const char *name)
    {
        member(name);
    }

    /** Like member(), but absence is not an error (optional fields). */
    const JsonValue *
    optional(const char *name)
    {
        if (!ok_)
            return nullptr;
        for (std::size_t i = 0; i < v_.obj.size(); ++i) {
            if (v_.obj[i].first == name) {
                seen_[i] = true;
                return &v_.obj[i].second;
            }
        }
        return nullptr;
    }

    bool
    boolean(const char *name, bool &out)
    {
        const JsonValue *m = member(name);
        if (!m)
            return false;
        if (!m->isBool())
            return fail(std::string("member '") + name +
                        "' is not a boolean");
        out = m->boolean;
        return true;
    }

    template <typename T>
    bool
    integer(const char *name, T &out)
    {
        const JsonValue *m = member(name);
        if (!m)
            return false;
        if (!m->isNumber())
            return fail(std::string("member '") + name +
                        "' is not a number");
        const double d = m->number;
        if (!(d >= 0.0) || d != std::floor(d) ||
            d >= std::ldexp(1.0, std::numeric_limits<T>::digits))
            return fail(std::string("member '") + name +
                        "' is not an unsigned integer in range");
        out = static_cast<T>(d);
        return true;
    }

    bool
    real(const char *name, double &out)
    {
        const JsonValue *m = member(name);
        if (!m)
            return false;
        if (!m->isNumber())
            return fail(std::string("member '") + name +
                        "' is not a number");
        out = m->number;
        return true;
    }

    bool
    string(const char *name, std::string &out)
    {
        const JsonValue *m = member(name);
        if (!m)
            return false;
        if (!m->isString())
            return fail(std::string("member '") + name +
                        "' is not a string");
        out = m->str;
        return true;
    }

    /** Report a semantic error at this reader's path. */
    bool
    error(const std::string &what)
    {
        return fail(what);
    }

    /** Reject members no accessor consumed. */
    bool
    finish()
    {
        if (!ok_)
            return false;
        for (std::size_t i = 0; i < v_.obj.size(); ++i) {
            if (!seen_[i])
                return fail("unknown member '" + v_.obj[i].first +
                            "'");
        }
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (ok_) {
            ok_ = false;
            err_ = path_ + ": " + what;
        }
        return false;
    }

    const JsonValue &v_;
    std::string path_;
    std::string &err_;
    std::vector<bool> seen_;
    bool ok_ = true;
};

namespace detail
{

/** Recursive-descent JSON parser over a string_view cursor. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : s_(text) {}

    bool
    parseDocument(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view lit)
    {
        if (s_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                return false;
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    return false;
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
                    else return false;
                }
                // Only BMP escapes are produced by our writer; encode
                // as UTF-8 without surrogate-pair handling.
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                return false;
            }
        }
        return false;
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return false;
        std::string tok(s_.substr(start, pos_ - start));
        char *end = nullptr;
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(tok.c_str(), &end);
        return end && *end == '\0';
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                skipWs();
                std::string name;
                if (!parseString(name))
                    return false;
                skipWs();
                if (!consume(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member))
                    return false;
                out.obj.emplace_back(std::move(name), std::move(member));
                skipWs();
                if (consume('}'))
                    return true;
                if (!consume(','))
                    return false;
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue elem;
                if (!parseValue(elem))
                    return false;
                out.arr.push_back(std::move(elem));
                skipWs();
                if (consume(']'))
                    return true;
                if (!consume(','))
                    return false;
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (literal("true")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (literal("false")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (literal("null")) {
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    std::string_view s_;
    std::size_t pos_ = 0;
};

} // namespace detail

inline std::optional<JsonValue>
JsonValue::tryParse(std::string_view text)
{
    JsonValue v;
    detail::JsonParser p(text);
    if (!p.parseDocument(v))
        return std::nullopt;
    return v;
}

} // namespace tcfill::obs

#endif // TCFILL_OBS_JSON_HH
