/**
 * @file
 * Per-instruction pipeline lifecycle tracer (gem5/Kanata-style): the
 * timing model reports one event per stage an instruction passes
 * through (fetch, rename, issue, execute, complete, retire, squash),
 * stamped with the simulated cycle and the fill-unit pass annotations
 * carried by the trace-cache line (move-marked, reassociated, scaled,
 * elided). The fill unit additionally reports one event per finalized
 * segment.
 *
 * Gating: the hooks are runtime-gated on a null tracer pointer (one
 * predictable branch per event site) and compile-time-gated by
 * TCFILL_PIPE_TRACE_ENABLED (CMake option TCFILL_PIPE_TRACE; when
 * OFF the hook bodies compile away entirely). Tracing is purely
 * observational: enabling it never changes simulated cycles or IPC.
 */

#ifndef TCFILL_OBS_PIPE_TRACE_HH
#define TCFILL_OBS_PIPE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hh"

#ifndef TCFILL_PIPE_TRACE_ENABLED
#define TCFILL_PIPE_TRACE_ENABLED 1
#endif

namespace tcfill::obs
{

/** Pipeline stages an instruction lifecycle event can report. */
enum class PipeStage : std::uint8_t
{
    Fetch,      ///< line built from the trace cache or I-cache
    Rename,     ///< source operands resolved against the rename table
    Issue,      ///< dispatched to a reservation station (or completed
                ///< in rename: marked moves and elided dead writes)
    Execute,    ///< selected by a functional unit
    Complete,   ///< result timestamp known (stamp is the completion
                ///< cycle, which may be later than the emission point)
    Retire,     ///< committed in order
    Squash,     ///< cancelled by misprediction recovery
};

const char *pipeStageName(PipeStage s);

/** One instruction lifecycle event. */
struct PipeEvent
{
    PipeStage stage = PipeStage::Fetch;
    InstSeqNum seq = 0;
    Addr pc = 0;
    Cycle cycle = 0;

    bool fromTrace = false;     ///< fetched from the trace cache
    bool inactive = false;      ///< issued past the predicted exit
    bool onCorrectPath = true;

    // Fill-unit pass annotations carried by the fetched line.
    bool moveMarked = false;
    bool reassociated = false;
    bool scaled = false;
    bool elided = false;

    bool mispredicted = false;  ///< branches: resolves against prediction
};

/** One finalized fill-unit segment with its per-pass transform counts. */
struct FillEvent
{
    Addr startPc = 0;
    Cycle cycle = 0;            ///< finalize cycle (install is +latency)
    unsigned insts = 0;
    unsigned blocks = 0;
    unsigned movesMarked = 0;
    unsigned reassociated = 0;
    unsigned scaledAdds = 0;
    unsigned deadElided = 0;
    unsigned promotedBranches = 0;
};

/** A fill-policy pass-mask switch taking effect at a finalize. */
struct PolicyEvent
{
    Cycle cycle = 0;
    std::uint8_t prevMask = 0;
    std::uint8_t newMask = 0;
};

/**
 * Tracer interface the pipeline hook points call. Implementations
 * must not mutate simulator state; events for one Processor arrive
 * from that Processor's thread only.
 *
 * Stage attribution: Fetch events come from pipeline::FetchEngine;
 * Rename/Issue from pipeline::DispatchRename; Execute/Complete from
 * the ExecCore inside pipeline::IssueStage; Retire from
 * pipeline::RetireUnit; Squash from pipeline::RecoveryController;
 * fillEvent() from the FillUnit. Processor::setTracer fans one
 * tracer out to all of them.
 */
class PipeTracer
{
  public:
    virtual ~PipeTracer() = default;

    virtual void instEvent(const PipeEvent &ev) = 0;
    virtual void fillEvent(const FillEvent &) {}
    virtual void policyEvent(const PolicyEvent &) {}
};

/**
 * JSONL emitter: one compact JSON object per line, in emission order
 * (cycle-ordered per stage site). Suitable for jq / pandas and for
 * conversion to Kanata with tools/check_stats_json.py's sibling
 * scripts.
 */
class JsonlPipeTracer : public PipeTracer
{
  public:
    explicit JsonlPipeTracer(std::ostream &os) : os_(os) {}

    void instEvent(const PipeEvent &ev) override;
    void fillEvent(const FillEvent &ev) override;
    void policyEvent(const PolicyEvent &ev) override;

    std::uint64_t events() const { return events_; }

  private:
    std::ostream &os_;
    std::uint64_t events_ = 0;
};

/** In-memory collector for tests and programmatic inspection. */
class RecordingPipeTracer : public PipeTracer
{
  public:
    void instEvent(const PipeEvent &ev) override { insts.push_back(ev); }
    void fillEvent(const FillEvent &ev) override { fills.push_back(ev); }
    void policyEvent(const PolicyEvent &ev) override
    {
        policies.push_back(ev);
    }

    std::vector<PipeEvent> insts;
    std::vector<FillEvent> fills;
    std::vector<PolicyEvent> policies;
};

} // namespace tcfill::obs

#endif // TCFILL_OBS_PIPE_TRACE_HH
