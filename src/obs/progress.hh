/**
 * @file
 * Sweep progress and throughput metrics: a snapshot struct the
 * SimRunner fills on every submit/completion, the callback type it
 * reports through, and a throttled console reporter used by the CLI
 * (--progress) and the bench drivers.
 */

#ifndef TCFILL_OBS_PROGRESS_HH
#define TCFILL_OBS_PROGRESS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>

namespace tcfill::obs
{

/**
 * Aggregate state of a sweep through a SimRunner. "Points" are
 * submit() calls: a point is done either immediately (result-cache
 * hit) or when its live simulation finishes.
 */
struct SweepProgress
{
    std::uint64_t points = 0;       ///< submissions seen so far
    std::uint64_t done = 0;         ///< points already satisfied
    std::uint64_t cacheHits = 0;    ///< points served from the cache
    std::uint64_t liveRuns = 0;     ///< simulations enqueued
    std::uint64_t liveDone = 0;     ///< simulations finished
    unsigned running = 0;           ///< workers executing right now
    unsigned workers = 0;           ///< pool size

    /** Host seconds spent inside simulation jobs (summed). */
    double busySeconds = 0.0;
    /** Host seconds since the first submission. */
    double wallSeconds = 0.0;

    /** Mean fraction of the pool kept busy since the first submit. */
    double
    utilization() const
    {
        return workers == 0 || wallSeconds <= 0.0
            ? 0.0
            : busySeconds / (wallSeconds * workers);
    }

    double
    pointsPerSec() const
    {
        return wallSeconds <= 0.0
            ? 0.0
            : static_cast<double>(done) / wallSeconds;
    }
};

/**
 * Progress callback. Invoked by the SimRunner outside its internal
 * lock, potentially from several worker threads at once; must be
 * thread-safe and must not call back into the runner.
 */
using ProgressFn = std::function<void(const SweepProgress &)>;

/**
 * Throttled single-line console reporter:
 *   <label> 12/40 | 5 hits, 7 live (3 running) | util 85%
 * Repaints (carriage return, no newline) only when `done` advances;
 * finish() prints the final summary with throughput and a newline.
 */
class ConsoleProgress
{
  public:
    explicit ConsoleProgress(std::ostream &os, std::string label = "sweep");

    /** Thread-safe; usable directly as a ProgressFn. */
    void operator()(const SweepProgress &p) { update(p); }
    void update(const SweepProgress &p);

    /** Print the closing summary line (idempotent). */
    void finish();

  private:
    void paint(const SweepProgress &p, bool final_line);

    std::mutex mu_;
    std::ostream &os_;
    std::string label_;
    SweepProgress last_;
    std::uint64_t painted_done_ = ~std::uint64_t(0);
    bool open_line_ = false;
    bool finished_ = false;
};

} // namespace tcfill::obs

#endif // TCFILL_OBS_PROGRESS_HH
