/**
 * @file
 * The fill unit (paper §3, §4.1): collects retired instructions into
 * multi-block trace segments, applies branch promotion and the four
 * dynamic trace optimizations, and installs finished segments into
 * the trace cache after a configurable fill-pipeline latency.
 */

#ifndef TCFILL_FILL_FILL_UNIT_HH
#define TCFILL_FILL_FILL_UNIT_HH

#include <deque>
#include <memory>
#include <vector>

#include "arch/executor.hh"
#include "bpred/predictor.hh"
#include "common/stats.hh"
#include "fill/passes.hh"
#include "fill/policy.hh"
#include "obs/pipe_trace.hh"
#include "trace/segment.hh"
#include "trace/tcache.hh"

namespace tcfill
{

/** Fill unit configuration (paper defaults). */
struct FillUnitConfig
{
    /** Latency through the fill pipeline, in cycles (paper: 1/5/10). */
    Cycle latency = 5;
    /** Pack past block boundaries up to the 16-instruction limit. */
    bool packTraces = true;
    /**
     * Terminate segments after taken backward control transfers
     * (loop bottoms), pinning segment starts to loop heads. Stops
     * boundary drift but also forbids multi-iteration packing;
     * kept as an ablation knob (bench/abl_fill_policy).
     */
    bool alignLoopHeads = false;
    /**
     * Restart the pending segment at instructions whose fetch missed
     * the trace cache (the default boundary-convergence mechanism):
     * the fill unit then builds exactly the segments the fetch stream
     * asks for, while still packing freely across iterations once
     * fetch is hitting.
     */
    bool restartAtMissTargets = true;
    /** Promote strongly biased branches via the bias table. */
    bool promoteBranches = true;
    unsigned maxInsts = kSegmentMaxInsts;
    unsigned maxCondBranches = kSegmentMaxCondBranches;
    FillOptimizations opts{};
    /** Pass-selection policy (default: static, i.e. opts as-is). */
    FillPolicyParams policy{};
};

/**
 * The fill unit. Call retire() for every committed instruction in
 * order; call tick() each cycle (or at fetch time) to install
 * segments whose fill latency has elapsed.
 */
class FillUnit
{
  public:
    FillUnit(const FillUnitConfig &config, TraceCache &tcache,
             BiasTable &bias);

    /**
     * Collect one retired instruction at cycle @p now.
     * @param miss_target the instruction's fetch missed the trace
     *        cache and started an instruction-cache line — a future
     *        fetch address the trace cache should serve.
     * @param bypass_delayed the instruction's result arrived through
     *        a delayed (cross-cluster) bypass — a feedback signal for
     *        adaptive pass-selection policies.
     */
    void retire(const ExecRecord &rec, Cycle now,
                bool miss_target = false, bool bypass_delayed = false);

    /** Install all segments whose readyCycle <= @p now. */
    void tick(Cycle now);

    /** Force the pending partial segment to finalize (tests). */
    void flushPending(Cycle now);

    const FillUnitConfig &config() const { return config_; }

    // ---- statistics ---------------------------------------------------
    std::uint64_t segmentsBuilt() const { return segments_.value(); }
    std::uint64_t instsCollected() const { return insts_.value(); }
    std::uint64_t movesMarked() const { return pipeline_.movesMarked(); }
    std::uint64_t reassociations() const
    {
        return pipeline_.reassociations();
    }
    std::uint64_t scaledAddsCreated() const { return pipeline_.scaledAdds(); }
    std::uint64_t deadWritesElided() const { return pipeline_.deadElided(); }

    // ---- pass-selection policy ----------------------------------------
    const FillPolicy &policy() const { return *policy_; }

    /** Stable address of the active mask (Timeline interval probe). */
    const std::uint8_t *activeMaskPtr() const { return policy_->maskPtr(); }

    /** Decision record plus pass transform totals (SimResult). */
    PolicySummary policySummary() const;

    /** Mean instructions per finalized segment. */
    double avgSegmentLength() const;

    void regStats(stats::Group &group);

    /**
     * Attach a lifecycle tracer (usually via Processor::setTracer);
     * emits one FillEvent per finalized segment, summarizing the
     * transforms each optimization pass applied.
     */
    void setTracer(obs::PipeTracer *tracer) { tracer_ = tracer; }

  private:
    void finalize(Cycle now);

    FillUnitConfig config_;
    TraceCache &tcache_;
    BiasTable &bias_;

    PassPipeline pipeline_;
    std::unique_ptr<FillPolicy> policy_;
    /** Cached policy_->wantsRetireSignals(): one branch on hot path. */
    bool policy_signals_ = false;
    /** Mask applied to the previous finalize (policy-switch tracing). */
    int last_mask_ = -1;

    TraceSegment pending_;
    unsigned pending_cond_branches_ = 0;
    unsigned pending_blocks_ = 1;
    unsigned pending_cf_region_ = 0;
    PlacementHints placement_hints_;

    struct InFlight
    {
        Cycle readyCycle;
        TraceSegment seg;
    };
    std::deque<InFlight> fill_pipe_;

    stats::Counter segments_;
    stats::Counter insts_;
    stats::Counter promoted_branches_;
    stats::Histogram seg_length_{kSegmentMaxInsts + 1};

    obs::PipeTracer *tracer_ = nullptr;
};

} // namespace tcfill

#endif // TCFILL_FILL_FILL_UNIT_HH
