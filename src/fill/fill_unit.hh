/**
 * @file
 * The fill unit (paper §3, §4.1): collects retired instructions into
 * multi-block trace segments, applies branch promotion and the four
 * dynamic trace optimizations, and installs finished segments into
 * the trace cache after a configurable fill-pipeline latency.
 */

#ifndef TCFILL_FILL_FILL_UNIT_HH
#define TCFILL_FILL_FILL_UNIT_HH

#include <deque>
#include <vector>

#include "arch/executor.hh"
#include "bpred/predictor.hh"
#include "common/stats.hh"
#include "fill/passes.hh"
#include "obs/pipe_trace.hh"
#include "trace/segment.hh"
#include "trace/tcache.hh"

namespace tcfill
{

/** Which dynamic trace optimizations the fill unit performs. */
struct FillOptimizations
{
    bool markMoves = false;
    bool reassociate = false;
    bool scaledAdds = false;
    bool placement = false;
    /**
     * Extension (paper §5 future work): same-region dead-write
     * elision. Not part of the paper's evaluated configuration, so
     * not included in all().
     */
    bool deadCodeElim = false;
    ReassocOptions reassocOptions{};

    /** The paper's four evaluated optimizations. */
    static FillOptimizations
    all()
    {
        return {true, true, true, true, false, {}};
    }

    /** The four paper optimizations plus dead-write elision. */
    static FillOptimizations
    extended()
    {
        return {true, true, true, true, true, {}};
    }

    static FillOptimizations none() { return {}; }
};

/** Fill unit configuration (paper defaults). */
struct FillUnitConfig
{
    /** Latency through the fill pipeline, in cycles (paper: 1/5/10). */
    Cycle latency = 5;
    /** Pack past block boundaries up to the 16-instruction limit. */
    bool packTraces = true;
    /**
     * Terminate segments after taken backward control transfers
     * (loop bottoms), pinning segment starts to loop heads. Stops
     * boundary drift but also forbids multi-iteration packing;
     * kept as an ablation knob (bench/abl_fill_policy).
     */
    bool alignLoopHeads = false;
    /**
     * Restart the pending segment at instructions whose fetch missed
     * the trace cache (the default boundary-convergence mechanism):
     * the fill unit then builds exactly the segments the fetch stream
     * asks for, while still packing freely across iterations once
     * fetch is hitting.
     */
    bool restartAtMissTargets = true;
    /** Promote strongly biased branches via the bias table. */
    bool promoteBranches = true;
    unsigned maxInsts = kSegmentMaxInsts;
    unsigned maxCondBranches = kSegmentMaxCondBranches;
    FillOptimizations opts{};
};

/**
 * The fill unit. Call retire() for every committed instruction in
 * order; call tick() each cycle (or at fetch time) to install
 * segments whose fill latency has elapsed.
 */
class FillUnit
{
  public:
    FillUnit(const FillUnitConfig &config, TraceCache &tcache,
             BiasTable &bias);

    /**
     * Collect one retired instruction at cycle @p now.
     * @param miss_target the instruction's fetch missed the trace
     *        cache and started an instruction-cache line — a future
     *        fetch address the trace cache should serve.
     */
    void retire(const ExecRecord &rec, Cycle now,
                bool miss_target = false);

    /** Install all segments whose readyCycle <= @p now. */
    void tick(Cycle now);

    /** Force the pending partial segment to finalize (tests). */
    void flushPending(Cycle now);

    const FillUnitConfig &config() const { return config_; }

    // ---- statistics ---------------------------------------------------
    std::uint64_t segmentsBuilt() const { return segments_.value(); }
    std::uint64_t instsCollected() const { return insts_.value(); }
    std::uint64_t movesMarked() const { return moves_.value(); }
    std::uint64_t reassociations() const { return reassoc_.value(); }
    std::uint64_t scaledAddsCreated() const { return scaled_.value(); }
    std::uint64_t deadWritesElided() const { return dce_.value(); }

    /** Mean instructions per finalized segment. */
    double avgSegmentLength() const;

    void regStats(stats::Group &group);

    /**
     * Attach a lifecycle tracer (usually via Processor::setTracer);
     * emits one FillEvent per finalized segment, summarizing the
     * transforms each optimization pass applied.
     */
    void setTracer(obs::PipeTracer *tracer) { tracer_ = tracer; }

  private:
    void finalize(Cycle now);

    FillUnitConfig config_;
    TraceCache &tcache_;
    BiasTable &bias_;

    TraceSegment pending_;
    unsigned pending_cond_branches_ = 0;
    unsigned pending_blocks_ = 1;
    unsigned pending_cf_region_ = 0;
    PlacementHints placement_hints_;

    struct InFlight
    {
        Cycle readyCycle;
        TraceSegment seg;
    };
    std::deque<InFlight> fill_pipe_;

    stats::Counter segments_;
    stats::Counter insts_;
    stats::Counter moves_;
    stats::Counter reassoc_;
    stats::Counter scaled_;
    stats::Counter dce_;
    stats::Counter promoted_branches_;
    stats::Histogram seg_length_{kSegmentMaxInsts + 1};

    obs::PipeTracer *tracer_ = nullptr;
};

} // namespace tcfill

#endif // TCFILL_FILL_FILL_UNIT_HH
