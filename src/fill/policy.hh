/**
 * @file
 * Fill-unit pass-selection policies. The paper evaluates its four
 * optimizations as a whole-run static configuration; this seam makes
 * the choice a per-segment decision instead. FillUnit asks its
 * FillPolicy for the active PassMask at every segment finalize;
 * policies in turn observe the retire stream (PCs for an online BBV
 * phase tracker, cycles for window IPC, bypass-delay flags) and may
 * change the mask at decision-window boundaries.
 *
 * StaticPolicy is the compatibility anchor: it never changes the
 * mask and requests no retire signals, so the simulated machine is
 * bit-identical to the pre-policy boolean dispatch (golden fixtures
 * pin this). The adaptive policies are deterministic functions of the
 * committed instruction stream and the cycle numbers, so runs remain
 * reproducible across schedulers, thread counts and record/replay.
 */

#ifndef TCFILL_FILL_POLICY_HH
#define TCFILL_FILL_POLICY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/kmeans.hh"
#include "common/types.hh"
#include "fill/passes.hh"

namespace tcfill
{

/** Which pass-selection policy drives the fill pipeline. */
enum class FillPolicyKind : std::uint8_t
{
    Static = 0,     ///< fixed mask from FillOptimizations (default)
    Phase,          ///< per-BBV-phase explore-then-exploit
    Feedback,       ///< IPC/bypass feedback with hysteresis
    Oracle,         ///< replay an offline per-phase best map
};

/** Policy selection and tuning knobs (part of SimConfig). */
struct FillPolicyParams
{
    FillPolicyKind kind = FillPolicyKind::Static;

    /** Online phase tracker: maximum distinct phases to allocate. */
    unsigned maxPhases = 8;

    /** Decision window length in retired instructions. */
    InstSeqNum windowInsts = 10'000;

    /**
     * Squared projected-BBV distance above which a window opens a new
     * phase (if the cap allows) rather than joining the nearest one.
     */
    double newPhaseDist = 0.05;

    /**
     * FeedbackPolicy: minimum relative IPC gain a trial window must
     * show over the stable baseline to be adopted.
     */
    double hysteresis = 0.02;

    /**
     * OraclePolicy map: "*=MASK" for a uniform mask, or
     * "0=MASK,1=MASK,...[,*=MASK]" keyed by online phase id. Mask
     * tokens as in parsePassMask ("all", "none", "moves+placement",
     * a decimal value, ...).
     */
    std::string oracleMap;
};

/** Summary of one phase's decisions for the SimResult policy section. */
struct PolicyPhaseStat
{
    int phase = -1;
    /** The mask the policy most recently chose for this phase. */
    unsigned mask = 0;
    std::uint64_t windows = 0;
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
};

/**
 * Deterministic decision record a policy leaves behind; joins
 * SimResult (and thus --stats-json / --compare-timing) for
 * non-static runs.
 */
struct PolicySummary
{
    std::string kind = "static";
    unsigned finalMask = 0;
    std::uint64_t windows = 0;
    std::uint64_t switches = 0;
    std::uint64_t phasesSeen = 0;
    // Filled in by FillUnit from the pass pipeline counters.
    std::uint64_t movesMarked = 0;
    std::uint64_t reassociations = 0;
    std::uint64_t scaledAdds = 0;
    std::uint64_t deadElided = 0;
    std::vector<PolicyPhaseStat> phases;
};

/**
 * Online BBV phase tracker: accumulates per-block instruction counts
 * over a decision window at retire, and labels each closed window
 * with a phase id by nearest frozen centroid (new centroid if the
 * distance exceeds the threshold and the cap allows). Input is the
 * architectural committed stream only, so labels are identical across
 * timing configurations of the same workload — which is what makes
 * per-phase best maps composable from uniform-mask runs.
 */
class OnlinePhaseTracker
{
  public:
    OnlinePhaseTracker(unsigned max_phases, double new_phase_dist)
        : max_phases_(max_phases ? max_phases : 1),
          thresh2_(new_phase_dist)
    {}

    /** Feed one committed instruction. */
    void
    note(Addr pc, bool ends_block)
    {
        if (!in_block_) {
            block_start_ = pc;
            in_block_ = true;
        }
        ++block_len_;
        if (ends_block) {
            blocks_[block_start_] += block_len_;
            block_len_ = 0;
            in_block_ = false;
        }
    }

    /** Close the current window of @p insts instructions: label it. */
    int closeWindow(std::uint64_t insts);

    std::size_t phases() const { return centroids_.size(); }

  private:
    unsigned max_phases_;
    double thresh2_;
    Addr block_start_ = 0;
    bool in_block_ = false;
    std::uint64_t block_len_ = 0;
    std::map<Addr, std::uint64_t> blocks_;
    std::vector<BbvPoint> centroids_;
};

/**
 * The pass-selection seam. FillUnit reads mask() at every segment
 * finalize; policies that adapt additionally receive every commit
 * via onRetire (gated by wantsRetireSignals() so the static hot path
 * stays one branch).
 */
class FillPolicy
{
  public:
    FillPolicy(const char *kind, PassMask initial, bool wants_signals)
        : mask_(initial), kind_(kind), wants_signals_(wants_signals)
    {}

    virtual ~FillPolicy() = default;

    const char *kind() const { return kind_; }

    /** The mask the fill unit applies to the next finalized segment. */
    PassMask mask() const { return mask_; }

    /** Stable address of the mask, for the Timeline interval probe. */
    const std::uint8_t *maskPtr() const { return &mask_; }

    /** Whether the fill unit must feed commit signals to onRetire. */
    bool wantsRetireSignals() const { return wants_signals_; }

    /**
     * One committed instruction: its PC, whether it ends a basic
     * block (control or serializing), the retire cycle, and whether
     * its result came through a delayed bypass (fig7 signal).
     */
    virtual void
    onRetire(Addr pc, bool ends_block, Cycle now, bool bypass_delayed)
    {
        (void)pc;
        (void)ends_block;
        (void)now;
        (void)bypass_delayed;
    }

    /** Fill @p out with this policy's decision record. */
    virtual void
    summarize(PolicySummary &out) const
    {
        out.kind = kind_;
        out.finalMask = mask_;
        out.windows = windows_;
        out.switches = switches_;
    }

    std::uint64_t switches() const { return switches_; }
    std::uint64_t windows() const { return windows_; }

  protected:
    /** Change the active mask, counting actual changes. */
    void
    setMask(PassMask m)
    {
        if (m != mask_) {
            mask_ = m;
            ++switches_;
        }
    }

    PassMask mask_;
    std::uint64_t windows_ = 0;
    std::uint64_t switches_ = 0;

  private:
    const char *kind_;
    bool wants_signals_;
};

/** Fixed mask for the whole run — the pre-policy behavior. */
class StaticPolicy final : public FillPolicy
{
  public:
    explicit StaticPolicy(PassMask mask)
        : FillPolicy("static", mask, false)
    {}
};

/**
 * Shared windowing for the adaptive policies: accumulates commit
 * signals, closes a decision window every windowInsts retired
 * instructions, computes the window's IPC and bypass-delay fraction
 * (and phase label when tracking), and hands the measurement to the
 * subclass. Window cycle spans use the same now+1 boundary convention
 * as the Timeline, so spans tile the run exactly.
 */
class WindowedFillPolicy : public FillPolicy
{
  public:
    WindowedFillPolicy(const char *kind, PassMask initial,
                       const FillPolicyParams &params, bool track_phases);

    void onRetire(Addr pc, bool ends_block, Cycle now,
                  bool bypass_delayed) final;

    void summarize(PolicySummary &out) const override;

    /**
     * One closed decision window: @p phase is the online phase label
     * (-1 when phase tracking is off), @p ipc the window's retired
     * IPC, @p bypass_frac the fraction of commits flagged
     * bypass-delayed. Public so unit tests can drive the decision
     * machinery directly without a simulation.
     */
    virtual void onWindow(int phase, double ipc, double bypass_frac) = 0;

  protected:
    const FillPolicyParams params_;

  private:
    std::unique_ptr<OnlinePhaseTracker> tracker_;
    InstSeqNum window_insts_ = 0;
    std::uint64_t window_bypass_ = 0;
    Cycle window_start_cycle_ = 0;

    struct PhaseAgg
    {
        std::uint64_t windows = 0;
        std::uint64_t insts = 0;
        std::uint64_t cycles = 0;
        unsigned mask = 0;
    };
    std::vector<PhaseAgg> phase_agg_;    // index = phase id (or 0 for -1)
    bool untracked_seen_ = false;
};

/**
 * Per-phase explore-then-exploit: the first time a phase recurs, try
 * each candidate mask (derived from the configured static mask) for
 * one window, then lock in the best-IPC candidate for that phase.
 * Assumes phase locality (the next window is predicted to stay in
 * the current phase), which is also what makes it deterministic.
 */
class PhasePolicy final : public WindowedFillPolicy
{
  public:
    PhasePolicy(PassMask initial, const FillPolicyParams &params);

    void onWindow(int phase, double ipc, double bypass_frac) override;

    const std::vector<PassMask> &candidates() const { return candidates_; }

    void summarize(PolicySummary &out) const override;

  private:
    struct PhaseState
    {
        unsigned next = 0;
        double best_ipc = -1.0;
        PassMask best = 0;
        bool exploring = true;
    };

    PhaseState &stateFor(int phase);

    std::vector<PassMask> candidates_;
    std::vector<PhaseState> states_;
};

/**
 * Signal-driven adaptation without phase knowledge: keep an EWMA IPC
 * baseline over stable windows, periodically run a one-window trial
 * of an alternative mask, and adopt it only when the trial beats the
 * baseline by the hysteresis margin. A high bypass-delay fraction
 * biases the next trial toward toggling the placement pass (cluster
 * steering is what bypass delays indict).
 */
class FeedbackPolicy final : public WindowedFillPolicy
{
  public:
    static constexpr unsigned kTrialEvery = 4;
    static constexpr double kBypassHigh = 0.10;
    static constexpr double kEwmaAlpha = 0.25;

    FeedbackPolicy(PassMask initial, const FillPolicyParams &params);

    void onWindow(int phase, double ipc, double bypass_frac) override;

    bool inTrial() const { return in_trial_; }
    double baselineIpc() const { return baseline_ipc_; }

  private:
    PassMask pickTrial(double bypass_frac);

    std::vector<PassMask> candidates_;
    double baseline_ipc_ = -1.0;
    unsigned since_trial_ = 0;
    bool in_trial_ = false;
    PassMask stable_mask_;
    unsigned rotate_ = 0;
};

/**
 * Replays an offline per-phase mask map (FillPolicyParams::oracleMap)
 * keyed by the online tracker's phase ids. With a uniform map
 * ("*=MASK") the mask never changes, so timing is identical to the
 * equivalent static configuration — which both validates the seam
 * and, via the per-phase window accounting in the summary, provides
 * the per-phase IPC data the composed best map is built from.
 */
class OraclePolicy final : public WindowedFillPolicy
{
  public:
    OraclePolicy(PassMask initial, const FillPolicyParams &params);

    void onWindow(int phase, double ipc, double bypass_frac) override;

    PassMask maskFor(int phase) const;

  private:
    std::vector<int> map_phase_;       // parallel arrays: phase id ...
    std::vector<PassMask> map_mask_;   // ... -> mask
    PassMask default_mask_;
};

/**
 * Build the policy configured by @p params for a fill unit whose
 * static configuration is @p opts. Fatals on invalid parameters.
 */
std::unique_ptr<FillPolicy> makeFillPolicy(const FillPolicyParams &params,
                                           const FillOptimizations &opts);

/**
 * The candidate mask set the adaptive policies explore, derived from
 * the configured static mask M: {M, M without placement,
 * placement-only, none}, deduplicated preserving order.
 */
std::vector<PassMask> policyCandidateMasks(PassMask initial);

/** One-line-per-policy help text for --list-policies. */
std::string listFillPolicies();

/** Parse a --fill-policy token; fatals on unknown names. */
FillPolicyKind parseFillPolicyKind(const std::string &token);

/** The token parseFillPolicyKind accepts for @p kind. */
const char *fillPolicyKindName(FillPolicyKind kind);

} // namespace tcfill

#endif // TCFILL_FILL_POLICY_HH
