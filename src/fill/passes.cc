#include "fill/passes.hh"

#include <array>

#include "common/logging.hh"

namespace tcfill
{

namespace
{

/** Pointer to the k-th used source-register field of @p inst. */
RegIndex *
srcField(Instruction &inst, unsigned slot)
{
    std::array<RegIndex *, 3> fields{&inst.src1, &inst.src2, &inst.src3};
    unsigned seen = 0;
    for (RegIndex *f : fields) {
        if (*f != Instruction::kNoReg) {
            if (seen == slot)
                return f;
            ++seen;
        }
    }
    return nullptr;
}

} // namespace

RegIndex
getSrcReg(const Instruction &inst, unsigned slot)
{
    return inst.srcReg(slot);
}

void
setSrcReg(Instruction &inst, unsigned slot, RegIndex reg)
{
    RegIndex *f = srcField(inst, slot);
    panic_if(f == nullptr, "setSrcReg: slot %u not present", slot);
    *f = reg;
}

void
markDependencies(TraceSegment &seg)
{
    // lastWriter[r]: index of the most recent instruction writing r.
    std::array<std::int8_t, kNumArchRegs> last_writer;
    last_writer.fill(kDepLiveIn);

    for (std::size_t i = 0; i < seg.insts.size(); ++i) {
        TraceInst &ti = seg.insts[i];
        const unsigned nsrcs = ti.inst.numSrcs();
        for (unsigned k = 0; k < 3; ++k)
            ti.srcDep[k] = kDepLiveIn;
        for (unsigned k = 0; k < nsrcs; ++k) {
            RegIndex r = ti.inst.srcReg(k);
            if (r != kRegZero)
                ti.srcDep[k] = last_writer[r];
        }
        if (ti.inst.hasDest())
            last_writer[ti.inst.dest] = static_cast<std::int8_t>(i);
        ti.liveOut = true;
    }

    // Live-out: destination not overwritten later within the segment.
    for (std::size_t i = 0; i < seg.insts.size(); ++i) {
        TraceInst &ti = seg.insts[i];
        if (!ti.inst.hasDest())
            continue;
        ti.liveOut =
            last_writer[ti.inst.dest] == static_cast<std::int8_t>(i);
    }
}

unsigned
markMoves(TraceSegment &seg)
{
    unsigned marked = 0;
    for (std::size_t i = 0; i < seg.insts.size(); ++i) {
        TraceInst &ti = seg.insts[i];
        auto ms = moveSource(ti.inst);
        if (!ms)
            continue;

        // Find the operand slot holding the copied register.
        const unsigned nsrcs = ti.inst.numSrcs();
        std::int8_t src_dep = kDepLiveIn;
        for (unsigned k = 0; k < nsrcs; ++k) {
            if (ti.inst.srcReg(k) == *ms) {
                src_dep = ti.srcDep[k];
                break;
            }
        }

        ti.isMove = true;
        ti.moveSrc = *ms;
        ti.moveSrcDep = src_dep;
        ++marked;

        // Rewire intra-segment consumers of this move to the move's
        // source (paper §4.2), so they need not wait for the rename
        // read of the move's mapping.
        for (std::size_t j = i + 1; j < seg.insts.size(); ++j) {
            TraceInst &c = seg.insts[j];
            const unsigned cn = c.inst.numSrcs();
            for (unsigned k = 0; k < cn; ++k) {
                if (c.srcDep[k] == static_cast<std::int8_t>(i)) {
                    setSrcReg(c.inst, k, *ms);
                    c.srcDep[k] = src_dep;
                }
            }
        }
    }
    return marked;
}

unsigned
reassociate(TraceSegment &seg, const ReassocOptions &opts)
{
    unsigned rewritten = 0;
    for (std::size_t j = 0; j < seg.insts.size(); ++j) {
        TraceInst &tj = seg.insts[j];
        if (tj.isMove)
            continue;

        const bool is_addi = tj.inst.op == Op::ADDI;
        const bool is_disp_mem = opts.foldMemDisplacement &&
            (tj.inst.isLoad() || tj.inst.isStore()) &&
            tj.inst.op != Op::LWX && tj.inst.op != Op::SWX;
        if (!is_addi && !is_disp_mem)
            continue;

        // Both forms take the candidate producer via operand slot 0
        // (ADDI's single source / the memory op's base register).
        std::int8_t d = tj.srcDep[0];
        if (d < 0)
            continue;
        TraceInst &tp = seg.insts[static_cast<std::size_t>(d)];
        if (tp.inst.op != Op::ADDI || tp.isMove)
            continue;
        if (opts.crossBlockOnly && tp.cfRegion == tj.cfRegion)
            continue;

        const std::int64_t sum =
            static_cast<std::int64_t>(tp.inst.imm) + tj.inst.imm;
        if (sum < -32768 || sum > 32767)
            continue;   // would not fit the 16-bit immediate field

        setSrcReg(tj.inst, 0, tp.inst.src1);
        tj.inst.imm = static_cast<std::int32_t>(sum);
        tj.srcDep[0] = tp.srcDep[0];
        tj.reassociated = true;
        ++rewritten;
    }
    return rewritten;
}

namespace
{

/** Candidate operand slots for scaled-operand absorption, by op. */
unsigned
scaleCandidates(Op op, unsigned out[2])
{
    switch (op) {
      case Op::ADD:
        out[0] = 0; out[1] = 1;
        return 2;
      case Op::LWX:
        out[0] = 1; out[1] = 0;     // prefer the index operand
        return 2;
      case Op::SWX:
        out[0] = 1;                 // index only; never the store data
        return 1;
      case Op::LW: case Op::LB: case Op::LBU: case Op::LH: case Op::LHU:
      case Op::SW: case Op::SB: case Op::SH:
        out[0] = 0;                 // base register
        return 1;
      default:
        return 0;
    }
}

} // namespace

unsigned
createScaledAdds(TraceSegment &seg)
{
    unsigned scaled = 0;
    for (std::size_t j = 0; j < seg.insts.size(); ++j) {
        TraceInst &tj = seg.insts[j];
        if (tj.isMove || tj.hasScale())
            continue;

        unsigned cand[2];
        unsigned ncand = scaleCandidates(tj.inst.op, cand);
        for (unsigned ci = 0; ci < ncand; ++ci) {
            unsigned k = cand[ci];
            if (k >= tj.inst.numSrcs())
                continue;
            std::int8_t d = tj.srcDep[k];
            if (d < 0)
                continue;
            TraceInst &tp = seg.insts[static_cast<std::size_t>(d)];
            if (tp.inst.op != Op::SLLI || tp.isMove)
                continue;
            if (tp.inst.shamt < 1 || tp.inst.shamt > 3)
                continue;   // limit ALU path to ~2 gate delays (§4.4)

            setSrcReg(tj.inst, k, tp.inst.src1);
            tj.srcDep[k] = tp.srcDep[0];
            tj.scaledSrcIdx = static_cast<std::uint8_t>(k);
            tj.scaleAmt = tp.inst.shamt;
            ++scaled;
            break;
        }
    }
    return scaled;
}

void
placeInstructions(TraceSegment &seg, unsigned num_slots,
                  unsigned slots_per_cluster, PlacementHints *hints)
{
    panic_if(slots_per_cluster == 0, "placement: zero cluster width");
    const std::size_t n = seg.insts.size();
    panic_if(n > num_slots, "placement: segment larger than slot count");

    // Cluster each instruction was placed into; -1 = unplaced.
    std::array<int, kSegmentMaxInsts> placed_cluster;
    placed_cluster.fill(-1);
    std::array<bool, kSegmentMaxInsts> placed{};

    // Marked moves never reach a functional unit: park them at their
    // original index, exclude them from slot competition, and
    // propagate the cluster affinity of the value they alias.
    std::size_t remaining = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (seg.insts[i].isMove || seg.insts[i].deadElided) {
            seg.insts[i].slot = seg.insts[i].origIdx & 15;
            placed[i] = true;
        } else {
            ++remaining;
        }
    }

    const unsigned num_clusters = num_slots / slots_per_cluster;

    // Dependence depth of each instruction within the segment: the
    // length of its longest producer chain. The operand on the
    // deepest chain is the one that arrives last, so the cluster of
    // *that* producer is where the instruction wants to execute.
    std::array<unsigned, kSegmentMaxInsts> depth{};
    for (std::size_t i = 0; i < n; ++i) {
        const TraceInst &ti = seg.insts[i];
        const unsigned nsrcs = ti.inst.numSrcs();
        unsigned d = 0;
        for (unsigned k = 0; k < nsrcs; ++k) {
            if (ti.srcDep[k] >= 0) {
                d = std::max(d,
                    depth[static_cast<std::size_t>(ti.srcDep[k])] + 1);
            }
        }
        depth[i] = d;
    }

    // Free slots per cluster (lowest slot first within a cluster).
    std::array<unsigned, 16> used_in_cluster{};

    auto slot_in = [&](unsigned cl) -> int {
        if (used_in_cluster[cl] >= slots_per_cluster)
            return -1;
        return static_cast<int>(cl * slots_per_cluster +
                                used_in_cluster[cl]);
    };

    // Instruction-major placement: walk the segment in program order
    // and steer each instruction to the cluster of its last-arriving
    // (deepest-chain) producer — placed in this segment, or known
    // from a recent one via the persistent hints.
    for (std::size_t i = 0; i < n; ++i) {
        if (placed[i])
            continue;
        const TraceInst &ti = seg.insts[i];
        const unsigned nsrcs = ti.inst.numSrcs();

        int want = -1;
        unsigned best_depth = 0;
        for (unsigned k = 0; k < nsrcs; ++k) {
            std::int8_t d = ti.srcDep[k];
            if (d >= 0) {
                auto di = static_cast<std::size_t>(d);
                if (placed_cluster[di] >= 0 &&
                    depth[di] + 1 >= best_depth) {
                    best_depth = depth[di] + 1;
                    want = placed_cluster[di];
                }
            } else if (hints && best_depth == 0) {
                RegIndex r = ti.inst.srcReg(k);
                if (r != kRegZero && hints->cluster[r] >= 0 &&
                    want < 0) {
                    want = hints->cluster[r];
                }
            }
        }

        int s = want >= 0 ? slot_in(static_cast<unsigned>(want)) : -1;
        if (s < 0 && i > 0 && placed_cluster[i - 1] >= 0) {
            // Program-order locality: neighbors are often related even
            // when the segment carries no explicit dependence (the
            // identity routing's accidental strength).
            s = slot_in(static_cast<unsigned>(placed_cluster[i - 1]));
        }
        if (s < 0) {
            // Fall back to the emptiest cluster (lowest index wins).
            unsigned best_cl = 0;
            for (unsigned cl = 1; cl < num_clusters; ++cl) {
                if (used_in_cluster[cl] < used_in_cluster[best_cl])
                    best_cl = cl;
            }
            s = slot_in(best_cl);
        }
        panic_if(s < 0, "placement: no free slot");

        seg.insts[i].slot = static_cast<std::uint8_t>(s);
        placed[i] = true;
        placed_cluster[i] =
            static_cast<int>(static_cast<unsigned>(s) /
                             slots_per_cluster);
        ++used_in_cluster[static_cast<unsigned>(placed_cluster[i])];
        --remaining;
    }
    panic_if(remaining != 0, "placement: instructions left unplaced");

    if (hints) {
        // Record where each register's newest value now lives.
        for (std::size_t i = 0; i < n; ++i) {
            const TraceInst &ti = seg.insts[i];
            if (!ti.inst.hasDest())
                continue;
            if (ti.isMove) {
                hints->cluster[ti.inst.dest] =
                    ti.moveSrc != Instruction::kNoReg &&
                            ti.moveSrc != kRegZero
                        ? hints->cluster[ti.moveSrc]
                        : static_cast<std::int8_t>(-1);
            } else {
                hints->cluster[ti.inst.dest] = placed_cluster[i] >= 0
                    ? static_cast<std::int8_t>(placed_cluster[i])
                    : static_cast<std::int8_t>(-1);
            }
        }
    }
}

unsigned
eliminateDeadWrites(TraceSegment &seg)
{
    unsigned elided = 0;
    const std::size_t n = seg.insts.size();
    for (std::size_t i = 0; i < n; ++i) {
        TraceInst &ti = seg.insts[i];
        if (!ti.inst.hasDest() || ti.isMove || ti.deadElided)
            continue;
        if (ti.inst.isMem() || ti.inst.isControl() ||
            ti.inst.isSerializing()) {
            continue;
        }

        // Find an overwriter of the destination within the same
        // control-flow region.
        // A marked move also overwrites (it re-aliases the mapping),
        // and an elided instruction's own same-region overwriter
        // transitively covers it, so any destination match counts.
        std::size_t j = n;
        for (std::size_t k = i + 1;
             k < n && seg.insts[k].cfRegion == ti.cfRegion; ++k) {
            if (seg.insts[k].inst.hasDest() &&
                seg.insts[k].inst.dest == ti.inst.dest) {
                j = k;
                break;
            }
        }
        if (j == n)
            continue;

        // No surviving consumer may reference instruction i. (A
        // marked move aliasing i still propagates its value, so it
        // counts as a reader.)
        bool read = false;
        for (std::size_t k = i + 1; k < n && !read; ++k) {
            const TraceInst &tk = seg.insts[k];
            const unsigned nsrcs = tk.inst.numSrcs();
            for (unsigned s = 0; s < nsrcs; ++s) {
                if (tk.srcDep[s] == static_cast<std::int8_t>(i)) {
                    read = true;
                    break;
                }
            }
            if (tk.isMove &&
                tk.moveSrcDep == static_cast<std::int8_t>(i)) {
                read = true;
            }
        }
        if (read)
            continue;

        ti.deadElided = true;
        ++elided;
    }
    return elided;
}

void
placeIdentity(TraceSegment &seg)
{
    for (auto &ti : seg.insts)
        ti.slot = ti.origIdx & 15;
}

PassMask
passMaskFromOpts(const FillOptimizations &opts)
{
    PassMask m = kPassMaskNone;
    if (opts.markMoves)
        m |= kPassMarkMoves;
    if (opts.reassociate)
        m |= kPassReassociate;
    if (opts.scaledAdds)
        m |= kPassScaledAdds;
    if (opts.deadCodeElim)
        m |= kPassDeadCodeElim;
    if (opts.placement)
        m |= kPassPlacement;
    return m;
}

FillOptimizations
optsFromPassMask(PassMask mask, const FillOptimizations &base)
{
    FillOptimizations o = base;
    o.markMoves = mask & kPassMarkMoves;
    o.reassociate = mask & kPassReassociate;
    o.scaledAdds = mask & kPassScaledAdds;
    o.deadCodeElim = mask & kPassDeadCodeElim;
    o.placement = mask & kPassPlacement;
    return o;
}

std::string
passMaskName(PassMask mask)
{
    if (mask == kPassMaskNone)
        return "none";
    if (mask == kPassMaskAll)
        return "all";
    if (mask == kPassMaskExtended)
        return "extended";
    static const struct { PassMask bit; const char *name; } kBits[] = {
        {kPassMarkMoves, "moves"},     {kPassReassociate, "reassoc"},
        {kPassScaledAdds, "scaled"},   {kPassDeadCodeElim, "dce"},
        {kPassPlacement, "placement"},
    };
    std::string out;
    for (const auto &b : kBits) {
        if (!(mask & b.bit))
            continue;
        if (!out.empty())
            out += '+';
        out += b.name;
    }
    return out;
}

PassMask
parsePassMask(const std::string &token)
{
    if (token == "none")
        return kPassMaskNone;
    if (token == "all")
        return kPassMaskAll;
    if (token == "extended")
        return kPassMaskExtended;
    if (!token.empty() && token.find_first_not_of("0123456789") ==
                              std::string::npos) {
        unsigned long v = std::stoul(token);
        fatal_if(v > kPassMaskEvery, "pass mask value out of range: %s",
                 token.c_str());
        return static_cast<PassMask>(v);
    }
    PassMask m = kPassMaskNone;
    std::size_t pos = 0;
    while (pos <= token.size()) {
        std::size_t end = token.find('+', pos);
        if (end == std::string::npos)
            end = token.size();
        const std::string part = token.substr(pos, end - pos);
        if (part == "moves")
            m |= kPassMarkMoves;
        else if (part == "reassoc")
            m |= kPassReassociate;
        else if (part == "scaled")
            m |= kPassScaledAdds;
        else if (part == "dce")
            m |= kPassDeadCodeElim;
        else if (part == "placement")
            m |= kPassPlacement;
        else
            fatal("unknown pass mask token '%s' in '%s'", part.c_str(),
                  token.c_str());
        pos = end + 1;
    }
    return m;
}

// --------------------------------------------------------------------
// Pass objects
// --------------------------------------------------------------------

namespace
{

class MarkMovesPass final : public TracePass
{
  public:
    MarkMovesPass() : TracePass("mark-moves", kPassMarkMoves) {}

    void
    apply(TraceSegment &seg, PassContext &) override
    {
        applied_ += markMoves(seg);
    }
};

class ReassociatePass final : public TracePass
{
  public:
    ReassociatePass() : TracePass("reassociate", kPassReassociate) {}

    void
    apply(TraceSegment &seg, PassContext &ctx) override
    {
        applied_ += reassociate(seg, ctx.reassoc);
    }
};

class ScaledAddsPass final : public TracePass
{
  public:
    ScaledAddsPass() : TracePass("scaled-adds", kPassScaledAdds) {}

    void
    apply(TraceSegment &seg, PassContext &) override
    {
        applied_ += createScaledAdds(seg);
    }
};

class DeadWritePass final : public TracePass
{
  public:
    DeadWritePass() : TracePass("dead-write-elision", kPassDeadCodeElim) {}

    void
    apply(TraceSegment &seg, PassContext &) override
    {
        applied_ += eliminateDeadWrites(seg);
    }
};

class PlacementPass final : public TracePass
{
  public:
    PlacementPass() : TracePass("placement", kPassPlacement) {}

    void
    apply(TraceSegment &seg, PassContext &ctx) override
    {
        placeInstructions(seg, kSegmentMaxInsts, 4, ctx.hints);
        ++applied_;
    }

    void
    applyDisabled(TraceSegment &seg, PassContext &) override
    {
        placeIdentity(seg);
    }
};

} // namespace

PassPipeline::PassPipeline(const ReassocOptions &reassoc)
    : reassoc_(reassoc)
{
    passes_.push_back(std::make_unique<MarkMovesPass>());
    passes_.push_back(std::make_unique<ReassociatePass>());
    passes_.push_back(std::make_unique<ScaledAddsPass>());
    passes_.push_back(std::make_unique<DeadWritePass>());
    passes_.push_back(std::make_unique<PlacementPass>());
}

void
PassPipeline::run(TraceSegment &seg, PassMask mask, PlacementHints *hints)
{
    markDependencies(seg);
    PassContext ctx{reassoc_, hints};
    for (auto &p : passes_) {
        if (mask & p->bit())
            p->apply(seg, ctx);
        else
            p->applyDisabled(seg, ctx);
    }
}

const stats::Counter &PassPipeline::movesCounter() const
{
    return passes_[0]->applied();
}

const stats::Counter &PassPipeline::reassocCounter() const
{
    return passes_[1]->applied();
}

const stats::Counter &PassPipeline::scaledCounter() const
{
    return passes_[2]->applied();
}

const stats::Counter &PassPipeline::dceCounter() const
{
    return passes_[3]->applied();
}

bool
depsConsistent(const TraceSegment &seg)
{
    for (std::size_t i = 0; i < seg.insts.size(); ++i) {
        const TraceInst &ti = seg.insts[i];
        const unsigned nsrcs = ti.inst.numSrcs();
        for (unsigned k = 0; k < nsrcs; ++k) {
            std::int8_t d = ti.srcDep[k];
            if (d == kDepLiveIn)
                continue;
            if (d < 0 || static_cast<std::size_t>(d) >= i)
                return false;
            const TraceInst &tp = seg.insts[static_cast<std::size_t>(d)];
            if (!tp.inst.hasDest())
                return false;
            if (tp.inst.dest != ti.inst.srcReg(k))
                return false;
        }
    }
    return true;
}

} // namespace tcfill
