#include "fill/fill_unit.hh"

#include "common/logging.hh"

namespace tcfill
{

FillUnit::FillUnit(const FillUnitConfig &config, TraceCache &tcache,
                   BiasTable &bias)
    : config_(config), tcache_(tcache), bias_(bias),
      pipeline_(config.opts.reassocOptions),
      policy_(makeFillPolicy(config.policy, config.opts)),
      policy_signals_(policy_->wantsRetireSignals())
{
    fatal_if(config.maxInsts == 0 || config.maxInsts > kSegmentMaxInsts,
             "fill unit: maxInsts must be in [1,%u]", kSegmentMaxInsts);
    fatal_if(config.maxCondBranches > kSegmentMaxCondBranches,
             "fill unit: maxCondBranches must be <= %u",
             kSegmentMaxCondBranches);
}

void
FillUnit::retire(const ExecRecord &rec, Cycle now, bool miss_target,
                 bool bypass_delayed)
{
    const Instruction &inst = rec.inst;

    // Feed adaptive pass-selection policies the commit stream. Done
    // first so a window decision is already in force if this very
    // instruction triggers a finalize below.
    if (policy_signals_) {
        policy_->onRetire(rec.pc,
                          inst.isControl() || inst.isSerializing(), now,
                          bypass_delayed);
    }

    // Boundary convergence: start a fresh segment at addresses the
    // fetch stream demanded from the instruction cache.
    if (miss_target && config_.restartAtMissTargets &&
        !pending_.empty()) {
        finalize(now);
    }

    // Train the bias table with every retired conditional branch so
    // promotion state is current before we decide how to record it.
    bool is_cond = inst.isCondBranch();
    bool promoted = false;
    if (is_cond && config_.promoteBranches) {
        bias_.observe(rec.pc, rec.taken);
        // A branch may only be recorded promoted if its bias direction
        // matches this occurrence (it always does right after observe:
        // a flip resets the run to this direction and demotes).
        promoted = bias_.isPromoted(rec.pc);
    }

    // Finalize-before rules: the incoming instruction does not fit.
    if (!pending_.empty()) {
        bool full = pending_.size() >= config_.maxInsts;
        bool too_many_branches =
            is_cond && !promoted &&
            pending_cond_branches_ >= config_.maxCondBranches;
        if (full || too_many_branches)
            finalize(now);
    }

    if (pending_.empty()) {
        pending_.startPc = rec.pc;
        pending_cond_branches_ = 0;
        pending_blocks_ = 1;
        pending_cf_region_ = 0;
    }

    TraceInst ti;
    ti.inst = inst;
    ti.pc = rec.pc;
    ti.nextPc = rec.nextPc;
    ti.taken = rec.taken;
    ti.origIdx = static_cast<std::uint8_t>(pending_.size());
    ti.slot = ti.origIdx & 15;
    ti.blockNum = static_cast<std::uint8_t>(pending_blocks_ - 1);
    ti.cfRegion = static_cast<std::uint8_t>(pending_cf_region_);
    if (inst.isControl())
        ++pending_cf_region_;
    if (is_cond && promoted) {
        ti.promoted = true;
        ti.promotedDir = rec.taken;
        ++promoted_branches_;
    }
    pending_.insts.push_back(ti);
    pending_.nextPc = rec.nextPc;

    if (is_cond && !promoted) {
        pending_.predSlots.push_back(
            static_cast<std::uint8_t>(pending_.size() - 1));
        ++pending_cond_branches_;
        ++pending_blocks_;
    }

    // Finalize-after rules (paper §3): returns, indirect branches and
    // serializing instructions terminate the segment; subroutine calls
    // and unconditional direct branches do not.
    bool terminates = inst.isIndirect() || inst.isSerializing();
    // Loop-head alignment: a taken backward transfer ends the segment
    // so the next one starts at the loop head (see config note).
    if (config_.alignLoopHeads && rec.taken && !inst.isCall() &&
        rec.nextPc < rec.pc) {
        terminates = true;
    }
    // Without trace packing, a segment ends at its natural block
    // boundary once the conditional-branch budget is consumed.
    bool packed_out = !config_.packTraces && is_cond && !promoted &&
                      pending_cond_branches_ >= config_.maxCondBranches;
    if (terminates || packed_out || pending_.size() >= config_.maxInsts)
        finalize(now);
}

void
FillUnit::finalize(Cycle now)
{
    if (pending_.empty())
        return;

    TraceSegment seg = std::move(pending_);
    pending_ = TraceSegment{};
    pending_cond_branches_ = 0;
    pending_blocks_ = 1;
    pending_cf_region_ = 0;

    seg.numBlocks = seg.insts.empty()
        ? 1
        : static_cast<unsigned>(seg.insts.back().blockNum) + 1;

    // The optimization pipeline (paper §4) with the pass set the
    // policy currently selects. Dependency pre-decode is part of the
    // baseline fill unit and always runs.
    const PassMask mask = policy_->mask();
#if TCFILL_PIPE_TRACE_ENABLED
    if (tracer_ && last_mask_ >= 0 &&
        mask != static_cast<PassMask>(last_mask_)) {
        obs::PolicyEvent pe;
        pe.cycle = now;
        pe.prevMask = static_cast<std::uint8_t>(last_mask_);
        pe.newMask = mask;
        tracer_->policyEvent(pe);
    }
#endif
    last_mask_ = mask;
    pipeline_.run(seg, mask, &placement_hints_);

    ++segments_;
    insts_ += seg.size();
    seg_length_.sample(seg.size());

#if TCFILL_PIPE_TRACE_ENABLED
    if (tracer_) {
        obs::FillEvent ev;
        ev.startPc = seg.startPc;
        ev.cycle = now;
        ev.insts = static_cast<unsigned>(seg.size());
        ev.blocks = seg.numBlocks;
        for (const TraceInst &ti : seg.insts) {
            ev.movesMarked += ti.isMove;
            ev.reassociated += ti.reassociated;
            ev.scaledAdds += ti.hasScale();
            ev.deadElided += ti.deadElided;
            ev.promotedBranches += ti.promoted;
        }
        tracer_->fillEvent(ev);
    }
#endif

    fill_pipe_.push_back({now + config_.latency, std::move(seg)});
}

void
FillUnit::tick(Cycle now)
{
    while (!fill_pipe_.empty() && fill_pipe_.front().readyCycle <= now) {
        tcache_.install(std::move(fill_pipe_.front().seg));
        fill_pipe_.pop_front();
    }
}

void
FillUnit::flushPending(Cycle now)
{
    finalize(now);
    tick(now + config_.latency);
}

double
FillUnit::avgSegmentLength() const
{
    return seg_length_.mean();
}

PolicySummary
FillUnit::policySummary() const
{
    PolicySummary s;
    policy_->summarize(s);
    s.movesMarked = pipeline_.movesMarked();
    s.reassociations = pipeline_.reassociations();
    s.scaledAdds = pipeline_.scaledAdds();
    s.deadElided = pipeline_.deadElided();
    return s;
}

void
FillUnit::regStats(stats::Group &group)
{
    group.addCounter("fill.segments", segments_, "trace segments built");
    group.addCounter("fill.insts", insts_,
                     "instructions collected into segments");
    group.addCounter("fill.moves_marked", pipeline_.movesCounter(),
                     "register moves marked (static, per segment build)");
    group.addCounter("fill.reassociations", pipeline_.reassocCounter(),
                     "instructions reassociated (static)");
    group.addCounter("fill.scaled_adds", pipeline_.scaledCounter(),
                     "scaled operands created (static)");
    group.addCounter("fill.dead_elided", pipeline_.dceCounter(),
                     "dead writes elided (static, extension)");
    group.addCounter("fill.promoted_branches", promoted_branches_,
                     "conditional branches recorded promoted");
    group.addFormula("fill.avg_segment_length",
        [this]() { return avgSegmentLength(); },
        "mean instructions per segment");
}

} // namespace tcfill
