/**
 * @file
 * The fill unit's trace transformation passes (paper §4). Each pass
 * operates on a finalized TraceSegment in place. Passes must run in
 * the order: markDependencies, markMoves, reassociate,
 * createScaledAdds, placeInstructions — later passes consume the
 * dependency indices earlier passes maintain.
 */

#ifndef TCFILL_FILL_PASSES_HH
#define TCFILL_FILL_PASSES_HH

#include <cstdint>

#include "trace/segment.hh"

namespace tcfill
{

/** Counts of transformations applied to one segment (for Table 2). */
struct PassCounts
{
    unsigned movesMarked = 0;
    unsigned reassociations = 0;
    unsigned scaledAdds = 0;
};

/** Options controlling the reassociation pass. */
struct ReassocOptions
{
    /**
     * Only reassociate pairs that cross a control-flow (block)
     * boundary — the paper's reported configuration, which isolates
     * the gain a static compiler cannot obtain (§4.3).
     */
    bool crossBlockOnly = true;

    /**
     * Also fold a producing ADDI into the displacement of a dependent
     * load/store (same 16-bit immediate format constraint).
     */
    bool foldMemDisplacement = true;
};

/**
 * Baseline dependency pre-decode (paper §4.1): computes srcDep[] /
 * liveOut for every instruction by scanning the segment in order.
 * Must be called first and re-establishes a consistent state.
 */
void markDependencies(TraceSegment &seg);

/**
 * Register-move marking (§4.2): flags move idioms and rewires
 * intra-segment consumers to depend on the move's source.
 * @return number of instructions marked.
 */
unsigned markMoves(TraceSegment &seg);

/**
 * Reassociation (§4.3): combines immediates of dependent ADDI pairs
 * (and optionally ADDI -> load/store displacements), removing one
 * step from the dependency chain. Skips combinations whose result
 * does not fit the 16-bit immediate field.
 * @return number of instructions rewritten.
 */
unsigned reassociate(TraceSegment &seg, const ReassocOptions &opts = {});

/**
 * Scaled-add creation (§4.4): collapses a short (1..3 bit) immediate
 * shift feeding an add or a memory operation into a scaled operand on
 * the consumer. The shift instruction remains in the segment.
 * @return number of consumers scaled.
 */
unsigned createScaledAdds(TraceSegment &seg);

/**
 * Persistent placement state: the cluster each architectural
 * register's most recent producer was steered to, carried across
 * segments by the fill unit so loop-carried (live-in) dependences
 * also benefit from cluster affinity. -1 = no hint.
 */
struct PlacementHints
{
    std::int8_t cluster[kNumArchRegs];

    PlacementHints() { reset(); }

    void
    reset()
    {
        for (auto &c : cluster)
            c = -1;
    }
};

/**
 * Instruction placement (§4.5): assigns each non-move instruction an
 * issue slot, preferring the slot's cluster when a source producer
 * was already placed there — either within this segment or, via
 * @p hints, in a recently built one (loop-carried affinity). With
 * the pass disabled, slot == original index (identity routing).
 *
 * @param slots_per_cluster functional units per cluster (paper: 4).
 * @param num_slots total issue slots (paper: 16).
 * @param hints optional persistent per-register cluster state,
 *        updated as this segment is placed.
 */
void placeInstructions(TraceSegment &seg, unsigned num_slots = 16,
                       unsigned slots_per_cluster = 4,
                       PlacementHints *hints = nullptr);

/** Reset every slot to the identity mapping (baseline routing). */
void placeIdentity(TraceSegment &seg);

/**
 * Dead-write elision — the paper's §5 future-work extension, in its
 * provably safe form: an instruction is elided when its destination
 * is overwritten later in the *same control-flow region* with no
 * intervening reader (checked via the dependency indices, so consumers
 * rewired away by earlier passes count as removed). Same-region pairs
 * can never be split by a partial (early-exit) execution of the line,
 * so no recovery machinery is needed. Memory, control and serializing
 * instructions are never elided; marked moves are already free.
 * Run after move marking / reassociation / scaled adds (which free up
 * consumers, e.g. the leftover shift of a collapsed scaled add) and
 * before placement (elided instructions take no issue slot).
 * @return number of instructions elided.
 */
unsigned eliminateDeadWrites(TraceSegment &seg);

/** Operand-slot access helpers shared by passes and the core. */
RegIndex getSrcReg(const Instruction &inst, unsigned slot);
void setSrcReg(Instruction &inst, unsigned slot, RegIndex reg);

/**
 * Check a segment's dependency indices for internal consistency
 * (every srcDep points at an earlier instruction that writes the
 * operand's register, unless rewritten). Used by tests and debug
 * builds.
 */
bool depsConsistent(const TraceSegment &seg);

} // namespace tcfill

#endif // TCFILL_FILL_PASSES_HH
