/**
 * @file
 * The fill unit's trace transformation passes (paper §4). Each pass
 * operates on a finalized TraceSegment in place. Passes must run in
 * the order: markDependencies, markMoves, reassociate,
 * createScaledAdds, placeInstructions — later passes consume the
 * dependency indices earlier passes maintain.
 */

#ifndef TCFILL_FILL_PASSES_HH
#define TCFILL_FILL_PASSES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "trace/segment.hh"

namespace tcfill
{

/** Counts of transformations applied to one segment (for Table 2). */
struct PassCounts
{
    unsigned movesMarked = 0;
    unsigned reassociations = 0;
    unsigned scaledAdds = 0;
};

/** Options controlling the reassociation pass. */
struct ReassocOptions
{
    /**
     * Only reassociate pairs that cross a control-flow (block)
     * boundary — the paper's reported configuration, which isolates
     * the gain a static compiler cannot obtain (§4.3).
     */
    bool crossBlockOnly = true;

    /**
     * Also fold a producing ADDI into the displacement of a dependent
     * load/store (same 16-bit immediate format constraint).
     */
    bool foldMemDisplacement = true;
};

/** Which dynamic trace optimizations the fill unit performs. */
struct FillOptimizations
{
    bool markMoves = false;
    bool reassociate = false;
    bool scaledAdds = false;
    bool placement = false;
    /**
     * Extension (paper §5 future work): same-region dead-write
     * elision. Not part of the paper's evaluated configuration, so
     * not included in all().
     */
    bool deadCodeElim = false;
    ReassocOptions reassocOptions{};

    /** The paper's four evaluated optimizations. */
    static FillOptimizations
    all()
    {
        return {true, true, true, true, false, {}};
    }

    /** The four paper optimizations plus dead-write elision. */
    static FillOptimizations
    extended()
    {
        return {true, true, true, true, true, {}};
    }

    static FillOptimizations none() { return {}; }
};

// --------------------------------------------------------------------
// Pass masks
// --------------------------------------------------------------------

/**
 * Bitmask over the optional optimization passes, the unit a
 * FillPolicy decides in (fill/policy.hh). markDependencies is the
 * baseline pre-decode and has no bit: it always runs.
 */
using PassMask = std::uint8_t;

constexpr PassMask kPassMaskNone = 0;
constexpr PassMask kPassMarkMoves = 1u << 0;
constexpr PassMask kPassReassociate = 1u << 1;
constexpr PassMask kPassScaledAdds = 1u << 2;
constexpr PassMask kPassDeadCodeElim = 1u << 3;
constexpr PassMask kPassPlacement = 1u << 4;
/** The paper's four evaluated optimizations (FillOptimizations::all). */
constexpr PassMask kPassMaskAll =
    kPassMarkMoves | kPassReassociate | kPassScaledAdds | kPassPlacement;
/** all() plus dead-write elision (FillOptimizations::extended). */
constexpr PassMask kPassMaskExtended = kPassMaskAll | kPassDeadCodeElim;
/** Every pass bit that exists (bound for validation). */
constexpr PassMask kPassMaskEvery = kPassMaskExtended;

/** The mask equivalent of a legacy optimization-boolean struct. */
PassMask passMaskFromOpts(const FillOptimizations &opts);

/** The boolean struct a mask denotes (reassocOptions from @p opts). */
FillOptimizations optsFromPassMask(PassMask mask,
                                   const FillOptimizations &base = {});

/**
 * Canonical display name: "none", "all", "extended" or a '+'-joined
 * list in pipeline order ("moves+scaled+placement").
 */
std::string passMaskName(PassMask mask);

/**
 * Parse a mask token: the names passMaskName() produces, the --opts
 * keyword forms, or a decimal bit value. Fatals on unknown tokens.
 */
PassMask parsePassMask(const std::string &token);

/**
 * Baseline dependency pre-decode (paper §4.1): computes srcDep[] /
 * liveOut for every instruction by scanning the segment in order.
 * Must be called first and re-establishes a consistent state.
 */
void markDependencies(TraceSegment &seg);

/**
 * Register-move marking (§4.2): flags move idioms and rewires
 * intra-segment consumers to depend on the move's source.
 * @return number of instructions marked.
 */
unsigned markMoves(TraceSegment &seg);

/**
 * Reassociation (§4.3): combines immediates of dependent ADDI pairs
 * (and optionally ADDI -> load/store displacements), removing one
 * step from the dependency chain. Skips combinations whose result
 * does not fit the 16-bit immediate field.
 * @return number of instructions rewritten.
 */
unsigned reassociate(TraceSegment &seg, const ReassocOptions &opts = {});

/**
 * Scaled-add creation (§4.4): collapses a short (1..3 bit) immediate
 * shift feeding an add or a memory operation into a scaled operand on
 * the consumer. The shift instruction remains in the segment.
 * @return number of consumers scaled.
 */
unsigned createScaledAdds(TraceSegment &seg);

/**
 * Persistent placement state: the cluster each architectural
 * register's most recent producer was steered to, carried across
 * segments by the fill unit so loop-carried (live-in) dependences
 * also benefit from cluster affinity. -1 = no hint.
 */
struct PlacementHints
{
    std::int8_t cluster[kNumArchRegs];

    PlacementHints() { reset(); }

    void
    reset()
    {
        for (auto &c : cluster)
            c = -1;
    }
};

/**
 * Instruction placement (§4.5): assigns each non-move instruction an
 * issue slot, preferring the slot's cluster when a source producer
 * was already placed there — either within this segment or, via
 * @p hints, in a recently built one (loop-carried affinity). With
 * the pass disabled, slot == original index (identity routing).
 *
 * @param slots_per_cluster functional units per cluster (paper: 4).
 * @param num_slots total issue slots (paper: 16).
 * @param hints optional persistent per-register cluster state,
 *        updated as this segment is placed.
 */
void placeInstructions(TraceSegment &seg, unsigned num_slots = 16,
                       unsigned slots_per_cluster = 4,
                       PlacementHints *hints = nullptr);

/** Reset every slot to the identity mapping (baseline routing). */
void placeIdentity(TraceSegment &seg);

/**
 * Dead-write elision — the paper's §5 future-work extension, in its
 * provably safe form: an instruction is elided when its destination
 * is overwritten later in the *same control-flow region* with no
 * intervening reader (checked via the dependency indices, so consumers
 * rewired away by earlier passes count as removed). Same-region pairs
 * can never be split by a partial (early-exit) execution of the line,
 * so no recovery machinery is needed. Memory, control and serializing
 * instructions are never elided; marked moves are already free.
 * Run after move marking / reassociation / scaled adds (which free up
 * consumers, e.g. the leftover shift of a collapsed scaled add) and
 * before placement (elided instructions take no issue slot).
 * @return number of instructions elided.
 */
unsigned eliminateDeadWrites(TraceSegment &seg);

/** Operand-slot access helpers shared by passes and the core. */
RegIndex getSrcReg(const Instruction &inst, unsigned slot);
void setSrcReg(Instruction &inst, unsigned slot, RegIndex reg);

/**
 * Check a segment's dependency indices for internal consistency
 * (every srcDep points at an earlier instruction that writes the
 * operand's register, unless rewritten). Used by tests and debug
 * builds.
 */
bool depsConsistent(const TraceSegment &seg);

// --------------------------------------------------------------------
// Pass objects
// --------------------------------------------------------------------

/** Shared state a pass may need beyond the segment itself. */
struct PassContext
{
    ReassocOptions reassoc{};
    PlacementHints *hints = nullptr;
};

/**
 * One optional fill-unit transformation, lifted into an object so a
 * FillPolicy can enable or disable it per segment. A pass owns its
 * applied-transform counter; the FillUnit registers it under the
 * legacy fill.* stat name so existing output does not move.
 */
class TracePass
{
  public:
    TracePass(std::string name, PassMask bit)
        : name_(std::move(name)), bit_(bit)
    {}

    virtual ~TracePass() = default;

    const std::string &name() const { return name_; }

    /** This pass's bit in a PassMask. */
    PassMask bit() const { return bit_; }

    /** Transformations applied across all segments (legacy stat). */
    const stats::Counter &applied() const { return applied_; }

    /** Run the transformation on a finalized segment. */
    virtual void apply(TraceSegment &seg, PassContext &ctx) = 0;

    /**
     * Run when the pass is disabled. A no-op for every pass except
     * placement, whose disabled form is identity slot routing.
     */
    virtual void applyDisabled(TraceSegment &seg, PassContext &ctx)
    {
        (void)seg;
        (void)ctx;
    }

  protected:
    stats::Counter applied_;

  private:
    std::string name_;
    PassMask bit_;
};

/**
 * The canonical pass sequence over a finalized segment. Always runs
 * markDependencies first (it is the baseline pre-decode, not a
 * policy choice), then each optional pass in the fixed legal order,
 * gated by the mask bit. For any mask this performs exactly the same
 * call sequence the legacy boolean dispatch performed, so static
 * configurations stay bit-identical.
 */
class PassPipeline
{
  public:
    explicit PassPipeline(const ReassocOptions &reassoc);

    /** Transform @p seg in place with the passes enabled in @p mask. */
    void run(TraceSegment &seg, PassMask mask, PlacementHints *hints);

    std::size_t size() const { return passes_.size(); }
    const TracePass &pass(std::size_t i) const { return *passes_[i]; }

    // Legacy counter access (registered by FillUnit under fill.*).
    const stats::Counter &movesCounter() const;
    const stats::Counter &reassocCounter() const;
    const stats::Counter &scaledCounter() const;
    const stats::Counter &dceCounter() const;

    std::uint64_t movesMarked() const { return movesCounter().value(); }
    std::uint64_t reassociations() const { return reassocCounter().value(); }
    std::uint64_t scaledAdds() const { return scaledCounter().value(); }
    std::uint64_t deadElided() const { return dceCounter().value(); }

  private:
    ReassocOptions reassoc_;
    std::vector<std::unique_ptr<TracePass>> passes_;
};

} // namespace tcfill

#endif // TCFILL_FILL_PASSES_HH
