#include "fill/policy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tcfill
{

// --------------------------------------------------------------------
// OnlinePhaseTracker
// --------------------------------------------------------------------

int
OnlinePhaseTracker::closeWindow(std::uint64_t insts)
{
    // A block straddling the boundary contributes its retired-so-far
    // prefix to this window (same accounting the Timeline uses).
    if (in_block_ && block_len_ > 0) {
        blocks_[block_start_] += block_len_;
        block_len_ = 0;
        // The block continues into the next window from its start PC.
    }
    const BbvPoint p = projectBbv(blocks_, insts);
    blocks_.clear();

    int best = -1;
    double best_d2 = 0.0;
    for (std::size_t i = 0; i < centroids_.size(); ++i) {
        const double d2 = bbvDist2(p, centroids_[i]);
        if (best < 0 || d2 < best_d2) {
            best = static_cast<int>(i);
            best_d2 = d2;
        }
    }
    if (best < 0 || (best_d2 > thresh2_ && centroids_.size() < max_phases_)) {
        centroids_.push_back(p);
        return static_cast<int>(centroids_.size()) - 1;
    }
    return best;
}

// --------------------------------------------------------------------
// WindowedFillPolicy
// --------------------------------------------------------------------

WindowedFillPolicy::WindowedFillPolicy(const char *kind, PassMask initial,
                                       const FillPolicyParams &params,
                                       bool track_phases)
    : FillPolicy(kind, initial, true), params_(params)
{
    fatal_if(params_.windowInsts == 0,
             "fill policy '%s' needs a non-zero decision window", kind);
    if (track_phases)
        tracker_ = std::make_unique<OnlinePhaseTracker>(params_.maxPhases,
                                                        params_.newPhaseDist);
}

void
WindowedFillPolicy::onRetire(Addr pc, bool ends_block, Cycle now,
                             bool bypass_delayed)
{
    if (tracker_)
        tracker_->note(pc, ends_block);
    if (bypass_delayed)
        ++window_bypass_;
    if (++window_insts_ < params_.windowInsts)
        return;

    // Same boundary convention as the Timeline: the window owns
    // [start, now+1), so spans tile the run exactly.
    const Cycle boundary = now + 1;
    const Cycle span = boundary > window_start_cycle_
                           ? boundary - window_start_cycle_
                           : 1;
    const double ipc =
        static_cast<double>(window_insts_) / static_cast<double>(span);
    const double bypass_frac = static_cast<double>(window_bypass_) /
                               static_cast<double>(window_insts_);
    const int phase = tracker_ ? tracker_->closeWindow(window_insts_) : -1;

    ++windows_;
    const std::size_t slot = phase < 0 ? 0 : static_cast<std::size_t>(phase);
    if (phase < 0)
        untracked_seen_ = true;
    if (slot >= phase_agg_.size())
        phase_agg_.resize(slot + 1);
    PhaseAgg &agg = phase_agg_[slot];
    ++agg.windows;
    agg.insts += window_insts_;
    agg.cycles += span;

    onWindow(phase, ipc, bypass_frac);

    // Record the decision now in force for this phase (the mask the
    // policy will apply while the phase persists).
    agg.mask = mask();

    window_insts_ = 0;
    window_bypass_ = 0;
    window_start_cycle_ = boundary;
}

void
WindowedFillPolicy::summarize(PolicySummary &out) const
{
    FillPolicy::summarize(out);
    out.phasesSeen = tracker_ ? tracker_->phases() : 0;
    for (std::size_t i = 0; i < phase_agg_.size(); ++i) {
        const PhaseAgg &agg = phase_agg_[i];
        if (agg.windows == 0)
            continue;
        PolicyPhaseStat st;
        st.phase = untracked_seen_ ? -1 : static_cast<int>(i);
        st.mask = agg.mask;
        st.windows = agg.windows;
        st.insts = agg.insts;
        st.cycles = agg.cycles;
        out.phases.push_back(st);
    }
}

// --------------------------------------------------------------------
// PhasePolicy
// --------------------------------------------------------------------

std::vector<PassMask>
policyCandidateMasks(PassMask initial)
{
    std::vector<PassMask> out;
    auto add = [&out](PassMask m) {
        if (std::find(out.begin(), out.end(), m) == out.end())
            out.push_back(m);
    };
    add(initial);
    add(initial & static_cast<PassMask>(~kPassPlacement));
    add(initial & kPassPlacement);
    add(kPassMaskNone);
    return out;
}

PhasePolicy::PhasePolicy(PassMask initial, const FillPolicyParams &params)
    : WindowedFillPolicy("phase", initial, params, true),
      candidates_(policyCandidateMasks(initial))
{}

PhasePolicy::PhaseState &
PhasePolicy::stateFor(int phase)
{
    const std::size_t idx = static_cast<std::size_t>(phase);
    if (idx >= states_.size())
        states_.resize(idx + 1);
    return states_[idx];
}

void
PhasePolicy::onWindow(int phase, double ipc, double bypass_frac)
{
    (void)bypass_frac;
    PhaseState &st = stateFor(phase);
    if (st.exploring) {
        // Credit the probe only if this window actually ran the
        // candidate under test — the mask in force was chosen for
        // the *previous* window's phase, so a phase transition
        // window measures the wrong mask and is discarded.
        if (mask() == candidates_[st.next]) {
            if (ipc > st.best_ipc) {
                st.best_ipc = ipc;
                st.best = candidates_[st.next];
            }
            if (++st.next >= candidates_.size())
                st.exploring = false;
        }
    }
    setMask(st.exploring ? candidates_[st.next] : st.best);
}

void
PhasePolicy::summarize(PolicySummary &out) const
{
    WindowedFillPolicy::summarize(out);
    // Report the settled (or in-flight) choice per phase.
    for (PolicyPhaseStat &st : out.phases) {
        if (st.phase < 0 ||
            static_cast<std::size_t>(st.phase) >= states_.size())
            continue;
        const PhaseState &ps = states_[static_cast<std::size_t>(st.phase)];
        if (!ps.exploring)
            st.mask = ps.best;
    }
}

// --------------------------------------------------------------------
// FeedbackPolicy
// --------------------------------------------------------------------

FeedbackPolicy::FeedbackPolicy(PassMask initial,
                               const FillPolicyParams &params)
    : WindowedFillPolicy("feedback", initial, params, false),
      candidates_(policyCandidateMasks(initial)), stable_mask_(initial)
{}

PassMask
FeedbackPolicy::pickTrial(double bypass_frac)
{
    // Cluster-steering indictment: lots of delayed bypasses while
    // placement is on -> try a window without it first.
    if (bypass_frac > kBypassHigh && (mask() & kPassPlacement))
        return mask() & static_cast<PassMask>(~kPassPlacement);
    // Otherwise rotate through the candidate set, skipping the mask
    // already in force.
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
        const PassMask m = candidates_[rotate_];
        rotate_ = (rotate_ + 1) % candidates_.size();
        if (m != mask())
            return m;
    }
    return mask();
}

void
FeedbackPolicy::onWindow(int phase, double ipc, double bypass_frac)
{
    (void)phase;
    if (in_trial_) {
        in_trial_ = false;
        since_trial_ = 0;
        if (baseline_ipc_ > 0.0 &&
            ipc > baseline_ipc_ * (1.0 + params_.hysteresis)) {
            stable_mask_ = mask();    // adopt the trial mask
            baseline_ipc_ = ipc;
        } else {
            setMask(stable_mask_);    // revert
        }
        return;
    }

    baseline_ipc_ = baseline_ipc_ < 0.0
                        ? ipc
                        : (1.0 - kEwmaAlpha) * baseline_ipc_ +
                              kEwmaAlpha * ipc;
    if (++since_trial_ < kTrialEvery)
        return;
    const PassMask trial = pickTrial(bypass_frac);
    if (trial != mask()) {
        stable_mask_ = mask();
        setMask(trial);
        in_trial_ = true;
    } else {
        since_trial_ = 0;
    }
}

// --------------------------------------------------------------------
// OraclePolicy
// --------------------------------------------------------------------

OraclePolicy::OraclePolicy(PassMask initial, const FillPolicyParams &params)
    : WindowedFillPolicy("oracle", initial, params, true),
      default_mask_(initial)
{
    fatal_if(params.oracleMap.empty(),
             "oracle fill policy needs --policy-map (e.g. \"*=all\" or "
             "\"0=none,1=all\")");
    const std::string &spec = params.oracleMap;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(pos, end - pos);
        const std::size_t eq = entry.find('=');
        fatal_if(eq == std::string::npos,
                 "oracle map entry '%s' is not KEY=MASK", entry.c_str());
        const std::string key = entry.substr(0, eq);
        const PassMask m = parsePassMask(entry.substr(eq + 1));
        if (key == "*") {
            default_mask_ = m;
        } else {
            fatal_if(key.empty() || key.find_first_not_of("0123456789") !=
                                        std::string::npos,
                     "oracle map key '%s' is not a phase id or '*'",
                     key.c_str());
            map_phase_.push_back(static_cast<int>(std::stoul(key)));
            map_mask_.push_back(m);
        }
        pos = end + 1;
    }
    // The initial mask is the map's prediction for phase 0 (the first
    // window necessarily runs before any label exists).
    setMask(maskFor(0));
    switches_ = 0;    // configuration, not a runtime switch
}

PassMask
OraclePolicy::maskFor(int phase) const
{
    for (std::size_t i = 0; i < map_phase_.size(); ++i)
        if (map_phase_[i] == phase)
            return map_mask_[i];
    return default_mask_;
}

void
OraclePolicy::onWindow(int phase, double ipc, double bypass_frac)
{
    (void)ipc;
    (void)bypass_frac;
    // Phase locality prediction: the next window is expected to stay
    // in the phase just labeled.
    setMask(maskFor(phase));
}

// --------------------------------------------------------------------
// Factory and CLI helpers
// --------------------------------------------------------------------

std::unique_ptr<FillPolicy>
makeFillPolicy(const FillPolicyParams &params, const FillOptimizations &opts)
{
    const PassMask initial = passMaskFromOpts(opts);
    switch (params.kind) {
      case FillPolicyKind::Static:
        return std::make_unique<StaticPolicy>(initial);
      case FillPolicyKind::Phase:
        return std::make_unique<PhasePolicy>(initial, params);
      case FillPolicyKind::Feedback:
        return std::make_unique<FeedbackPolicy>(initial, params);
      case FillPolicyKind::Oracle:
        return std::make_unique<OraclePolicy>(initial, params);
    }
    fatal("unknown fill policy kind %u", unsigned(params.kind));
}

std::string
listFillPolicies()
{
    return
        "  static    fixed pass set from --opts (default; bit-identical\n"
        "            to the pre-policy simulator)\n"
        "  phase     per-BBV-phase explore-then-exploit over candidate\n"
        "            pass sets (online phase tracker at retire)\n"
        "  feedback  window-IPC feedback with hysteresis; high bypass-\n"
        "            delay fractions bias trials against placement\n"
        "  oracle    replay a per-phase best map (--policy-map), e.g.\n"
        "            computed offline from uniform-mask runs\n";
}

FillPolicyKind
parseFillPolicyKind(const std::string &token)
{
    if (token == "static")
        return FillPolicyKind::Static;
    if (token == "phase")
        return FillPolicyKind::Phase;
    if (token == "feedback")
        return FillPolicyKind::Feedback;
    if (token == "oracle")
        return FillPolicyKind::Oracle;
    fatal("unknown fill policy '%s' (see --list-policies)", token.c_str());
}

const char *
fillPolicyKindName(FillPolicyKind kind)
{
    switch (kind) {
      case FillPolicyKind::Static:
        return "static";
      case FillPolicyKind::Phase:
        return "phase";
      case FillPolicyKind::Feedback:
        return "feedback";
      case FillPolicyKind::Oracle:
        return "oracle";
    }
    return "?";
}

} // namespace tcfill
