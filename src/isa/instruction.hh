/**
 * @file
 * Decoded instruction representation, 32-bit binary encoding and
 * decoding, and ISA-level pattern helpers (register-move detection).
 *
 * Binary format follows classic MIPS field layout:
 *   R-form:  op[31:26]=0  rs[25:21] rt[20:16] rd[15:11] sh[10:6] fn[5:0]
 *   I-form:  op[31:26]    rs[25:21] rt[20:16] imm16[15:0]
 *   J-form:  op[31:26]    target26[25:0]        (word address)
 * Conditional branch immediates are signed word offsets relative to
 * the address of the *next* instruction. There are no delay slots.
 */

#ifndef TCFILL_ISA_INSTRUCTION_HH
#define TCFILL_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace tcfill
{

/** Number of architectural integer registers; R0 is hard-wired zero. */
inline constexpr unsigned kNumArchRegs = 32;

/** Conventional register roles used by the assembler and runtime. */
inline constexpr RegIndex kRegZero = 0;
inline constexpr RegIndex kRegSP = 29;
inline constexpr RegIndex kRegRA = 31;

/** Register name for diagnostics ("r0".."r31"). */
std::string regName(RegIndex r);

/**
 * A decoded instruction with normalized operand roles.
 *
 * Operand convention (independent of binary field placement):
 *  - @c dest: destination register, or kNoReg.
 *  - @c src1: first source (base register for memory ops).
 *  - @c src2: second source (index register for LWX/SWX; compare
 *    operand for BEQ/BNE).
 *  - @c src3: store-data register for stores (stores are the only
 *    three-source instructions, and only SWX actually uses all three).
 *  - @c imm:  sign-extended immediate / displacement / branch offset
 *    (in instructions) / absolute jump target (word address).
 *  - @c shamt: shift amount for immediate shifts.
 */
struct Instruction
{
    static constexpr RegIndex kNoReg = 0xff;

    Op op = Op::NOP;
    RegIndex dest = kNoReg;
    RegIndex src1 = kNoReg;
    RegIndex src2 = kNoReg;
    RegIndex src3 = kNoReg;
    std::int32_t imm = 0;
    std::uint8_t shamt = 0;

    bool hasDest() const { return dest != kNoReg && dest != kRegZero; }

    /** Number of register sources actually used (0..3). */
    unsigned
    numSrcs() const
    {
        return (src1 != kNoReg ? 1u : 0u) + (src2 != kNoReg ? 1u : 0u) +
               (src3 != kNoReg ? 1u : 0u);
    }

    /** The i-th used source register (i < numSrcs()). */
    RegIndex
    srcReg(unsigned i) const
    {
        std::array<RegIndex, 3> s{src1, src2, src3};
        unsigned seen = 0;
        for (RegIndex r : s) {
            if (r != kNoReg) {
                if (seen == i)
                    return r;
                ++seen;
            }
        }
        return kNoReg;
    }

    bool isLoad() const { return tcfill::isLoad(op); }
    bool isStore() const { return tcfill::isStore(op); }
    bool isMem() const { return tcfill::isMem(op); }
    bool isCondBranch() const { return tcfill::isCondBranch(op); }
    bool isCall() const { return tcfill::isCall(op); }
    bool isIndirect() const { return tcfill::isIndirect(op); }
    bool isSerializing() const { return tcfill::isSerializing(op); }
    bool isControl() const { return tcfill::isControl(op); }

    /** A return is JR through the link register by convention. */
    bool isReturn() const { return op == Op::JR && src1 == kRegRA; }

    /** Any control-flow instruction that may redirect fetch. */
    bool
    changesControlFlow() const
    {
        return isControl();
    }

    bool operator==(const Instruction &o) const = default;
};

/** Encode a decoded instruction into its 32-bit binary form. */
Word encode(const Instruction &inst);

/** Decode a 32-bit binary word. Unknown encodings decode to NOP. */
Instruction decode(Word raw);

/**
 * If @p inst is semantically a register-to-register move, return the
 * source register being copied. Recognized idioms (paper §4.2): the
 * canonical ADDI Rx <- Ry + 0, plus the R0-based forms ADD/OR/XOR
 * Rx <- Ry op R0, ORI/XORI Rx <- Ry op 0, and SUB Rx <- Ry - R0.
 * Moves to R0 or with no real destination are not moves (dead).
 * Returns std::nullopt otherwise.
 *
 * Note: a move *from* R0 (materializing zero) also qualifies; the
 * rename logic aliases the destination to the hard-wired zero
 * register.
 */
inline std::optional<RegIndex>
moveSource(const Instruction &in)
{
    if (!in.hasDest())
        return std::nullopt;

    switch (in.op) {
      case Op::ADDI:
      case Op::ORI:
      case Op::XORI:
        if (in.imm == 0)
            return in.src1;
        return std::nullopt;
      case Op::ADD:
      case Op::OR:
      case Op::XOR:
        if (in.src2 == kRegZero)
            return in.src1;
        if (in.src1 == kRegZero)
            return in.src2;
        return std::nullopt;
      case Op::SUB:
        if (in.src2 == kRegZero)
            return in.src1;
        return std::nullopt;
      case Op::SLLI:
      case Op::SRLI:
      case Op::SRAI:
        if (in.shamt == 0)
            return in.src1;
        return std::nullopt;
      default:
        return std::nullopt;
    }
}

/** One-line human-readable disassembly, e.g. "addi r3, r5, 42". */
std::string disassemble(const Instruction &inst);

/** Disassemble with PC context so branch targets print absolutely. */
std::string disassemble(const Instruction &inst, Addr pc);

} // namespace tcfill

#endif // TCFILL_ISA_INSTRUCTION_HH
