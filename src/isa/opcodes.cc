#include "isa/opcodes.hh"

// opInfo() and its table are fully inline in the header; this
// translation unit intentionally has nothing left to define.
