#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace tcfill
{

namespace
{

constexpr OpInfo op_table[] = {
    // mnemonic   class              latency
    {"add",    OpClass::IntAlu,  1},   // ADD
    {"sub",    OpClass::IntAlu,  1},   // SUB
    {"and",    OpClass::IntAlu,  1},   // AND
    {"or",     OpClass::IntAlu,  1},   // OR
    {"xor",    OpClass::IntAlu,  1},   // XOR
    {"nor",    OpClass::IntAlu,  1},   // NOR
    {"slt",    OpClass::IntAlu,  1},   // SLT
    {"sltu",   OpClass::IntAlu,  1},   // SLTU
    {"sllv",   OpClass::IntAlu,  1},   // SLLV
    {"srlv",   OpClass::IntAlu,  1},   // SRLV
    {"srav",   OpClass::IntAlu,  1},   // SRAV
    {"mul",    OpClass::IntMul,  3},   // MUL
    {"div",    OpClass::IntDiv, 12},   // DIV
    {"addi",   OpClass::IntAlu,  1},   // ADDI
    {"slti",   OpClass::IntAlu,  1},   // SLTI
    {"sltiu",  OpClass::IntAlu,  1},   // SLTIU
    {"andi",   OpClass::IntAlu,  1},   // ANDI
    {"ori",    OpClass::IntAlu,  1},   // ORI
    {"xori",   OpClass::IntAlu,  1},   // XORI
    {"lui",    OpClass::IntAlu,  1},   // LUI
    {"slli",   OpClass::IntAlu,  1},   // SLLI
    {"srli",   OpClass::IntAlu,  1},   // SRLI
    {"srai",   OpClass::IntAlu,  1},   // SRAI
    {"lb",     OpClass::Load,    1},   // LB
    {"lbu",    OpClass::Load,    1},   // LBU
    {"lh",     OpClass::Load,    1},   // LH
    {"lhu",    OpClass::Load,    1},   // LHU
    {"lw",     OpClass::Load,    1},   // LW
    {"sb",     OpClass::Store,   1},   // SB
    {"sh",     OpClass::Store,   1},   // SH
    {"sw",     OpClass::Store,   1},   // SW
    {"lwx",    OpClass::Load,    1},   // LWX
    {"swx",    OpClass::Store,   1},   // SWX
    {"beq",    OpClass::Control, 1},   // BEQ
    {"bne",    OpClass::Control, 1},   // BNE
    {"blez",   OpClass::Control, 1},   // BLEZ
    {"bgtz",   OpClass::Control, 1},   // BGTZ
    {"bltz",   OpClass::Control, 1},   // BLTZ
    {"bgez",   OpClass::Control, 1},   // BGEZ
    {"j",      OpClass::Control, 1},   // J
    {"jal",    OpClass::Control, 1},   // JAL
    {"jr",     OpClass::Control, 1},   // JR
    {"jalr",   OpClass::Control, 1},   // JALR
    {"nop",    OpClass::Other,   1},   // NOP
    {"syscall",OpClass::Other,   1},   // SYSCALL
    {"halt",   OpClass::Other,   1},   // HALT
};

static_assert(sizeof(op_table) / sizeof(op_table[0]) ==
                  static_cast<std::size_t>(Op::NumOps),
              "op_table out of sync with Op enumeration");

} // namespace

const OpInfo &
opInfo(Op op)
{
    auto idx = static_cast<std::size_t>(op);
    panic_if(idx >= static_cast<std::size_t>(Op::NumOps),
             "opInfo: bad opcode %zu", idx);
    return op_table[idx];
}

} // namespace tcfill
