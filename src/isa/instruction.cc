#include "isa/instruction.hh"

#include <cstdio>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace tcfill
{

namespace
{

// Primary opcode field values (MIPS-style).
enum PrimOp : unsigned
{
    P_RTYPE = 0, P_REGIMM = 1, P_J = 2, P_JAL = 3,
    P_BEQ = 4, P_BNE = 5, P_BLEZ = 6, P_BGTZ = 7,
    P_ADDI = 8, P_SLTI = 10, P_SLTIU = 11,
    P_ANDI = 12, P_ORI = 13, P_XORI = 14, P_LUI = 15,
    P_LB = 32, P_LH = 33, P_LW = 35, P_LBU = 36, P_LHU = 37,
    P_SB = 40, P_SH = 41, P_SW = 43,
    P_HALT = 63,
};

// R-type function field values.
enum Funct : unsigned
{
    F_SLL = 0, F_SRL = 2, F_SRA = 3,
    F_SLLV = 4, F_SRLV = 6, F_SRAV = 7,
    F_JR = 8, F_JALR = 9, F_SYSCALL = 12,
    F_MUL = 24, F_DIV = 26,
    F_ADD = 32, F_SUB = 34,
    F_AND = 36, F_OR = 37, F_XOR = 38, F_NOR = 39,
    F_SLT = 42, F_SLTU = 43,
    F_LWX = 48, F_SWX = 49,
};

Word
packR(unsigned rs, unsigned rt, unsigned rd, unsigned sh, unsigned fn)
{
    Word w = 0;
    w = insertBits(w, 25, 21, rs);
    w = insertBits(w, 20, 16, rt);
    w = insertBits(w, 15, 11, rd);
    w = insertBits(w, 10, 6, sh);
    w = insertBits(w, 5, 0, fn);
    return static_cast<Word>(w);
}

Word
packI(unsigned op, unsigned rs, unsigned rt, std::uint32_t imm16)
{
    Word w = 0;
    w = insertBits(w, 31, 26, op);
    w = insertBits(w, 25, 21, rs);
    w = insertBits(w, 20, 16, rt);
    w = insertBits(w, 15, 0, imm16 & 0xffff);
    return static_cast<Word>(w);
}

unsigned
reg(RegIndex r)
{
    return r == Instruction::kNoReg ? 0 : (r & 31u);
}

} // namespace

std::string
regName(RegIndex r)
{
    if (r == Instruction::kNoReg)
        return "--";
    char buf[8];
    std::snprintf(buf, sizeof(buf), "r%u", unsigned(r));
    return buf;
}

Word
encode(const Instruction &in)
{
    switch (in.op) {
      // --- R-type ALU: rd <- rs op rt
      case Op::ADD: return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_ADD);
      case Op::SUB: return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_SUB);
      case Op::AND: return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_AND);
      case Op::OR:  return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_OR);
      case Op::XOR: return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_XOR);
      case Op::NOR: return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_NOR);
      case Op::SLT: return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_SLT);
      case Op::SLTU:return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_SLTU);
      case Op::MUL: return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_MUL);
      case Op::DIV: return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_DIV);
      // Variable shifts: value in rt (src1), amount in rs (src2).
      case Op::SLLV:return packR(reg(in.src2), reg(in.src1), reg(in.dest), 0, F_SLLV);
      case Op::SRLV:return packR(reg(in.src2), reg(in.src1), reg(in.dest), 0, F_SRLV);
      case Op::SRAV:return packR(reg(in.src2), reg(in.src1), reg(in.dest), 0, F_SRAV);
      // Immediate shifts: value in rt (src1), amount in shamt.
      case Op::SLLI:return packR(0, reg(in.src1), reg(in.dest), in.shamt & 31, F_SLL);
      case Op::SRLI:return packR(0, reg(in.src1), reg(in.dest), in.shamt & 31, F_SRL);
      case Op::SRAI:return packR(0, reg(in.src1), reg(in.dest), in.shamt & 31, F_SRA);
      // Indexed memory: base rs (src1), index rt (src2), data/dest rd.
      case Op::LWX: return packR(reg(in.src1), reg(in.src2), reg(in.dest), 0, F_LWX);
      case Op::SWX: return packR(reg(in.src1), reg(in.src2), reg(in.src3), 0, F_SWX);
      // Indirect control.
      case Op::JR:  return packR(reg(in.src1), 0, 0, 0, F_JR);
      case Op::JALR:return packR(reg(in.src1), 0, reg(in.dest), 0, F_JALR);
      case Op::SYSCALL: return packR(0, 0, 0, 0, F_SYSCALL);
      case Op::NOP: return 0;

      // --- I-type ALU: rt <- rs op imm
      case Op::ADDI: return packI(P_ADDI, reg(in.src1), reg(in.dest), in.imm);
      case Op::SLTI: return packI(P_SLTI, reg(in.src1), reg(in.dest), in.imm);
      case Op::SLTIU:return packI(P_SLTIU, reg(in.src1), reg(in.dest), in.imm);
      case Op::ANDI: return packI(P_ANDI, reg(in.src1), reg(in.dest), in.imm);
      case Op::ORI:  return packI(P_ORI, reg(in.src1), reg(in.dest), in.imm);
      case Op::XORI: return packI(P_XORI, reg(in.src1), reg(in.dest), in.imm);
      case Op::LUI:  return packI(P_LUI, 0, reg(in.dest), in.imm);

      // --- Displaced memory.
      case Op::LB:  return packI(P_LB, reg(in.src1), reg(in.dest), in.imm);
      case Op::LBU: return packI(P_LBU, reg(in.src1), reg(in.dest), in.imm);
      case Op::LH:  return packI(P_LH, reg(in.src1), reg(in.dest), in.imm);
      case Op::LHU: return packI(P_LHU, reg(in.src1), reg(in.dest), in.imm);
      case Op::LW:  return packI(P_LW, reg(in.src1), reg(in.dest), in.imm);
      case Op::SB:  return packI(P_SB, reg(in.src1), reg(in.src3), in.imm);
      case Op::SH:  return packI(P_SH, reg(in.src1), reg(in.src3), in.imm);
      case Op::SW:  return packI(P_SW, reg(in.src1), reg(in.src3), in.imm);

      // --- Control.
      case Op::BEQ: return packI(P_BEQ, reg(in.src1), reg(in.src2), in.imm);
      case Op::BNE: return packI(P_BNE, reg(in.src1), reg(in.src2), in.imm);
      case Op::BLEZ:return packI(P_BLEZ, reg(in.src1), 0, in.imm);
      case Op::BGTZ:return packI(P_BGTZ, reg(in.src1), 0, in.imm);
      case Op::BLTZ:return packI(P_REGIMM, reg(in.src1), 0, in.imm);
      case Op::BGEZ:return packI(P_REGIMM, reg(in.src1), 1, in.imm);
      case Op::J: {
        Word w = 0;
        w = insertBits(w, 31, 26, P_J);
        w = insertBits(w, 25, 0, static_cast<std::uint32_t>(in.imm));
        return w;
      }
      case Op::JAL: {
        Word w = 0;
        w = insertBits(w, 31, 26, P_JAL);
        w = insertBits(w, 25, 0, static_cast<std::uint32_t>(in.imm));
        return w;
      }

      case Op::HALT: return packI(P_HALT, 0, 0, 0);

      default:
        panic("encode: unhandled op %u", unsigned(in.op));
    }
}

namespace
{

Instruction
makeR3(Op op, unsigned rd, unsigned rs, unsigned rt)
{
    Instruction in;
    in.op = op;
    in.dest = static_cast<RegIndex>(rd);
    in.src1 = static_cast<RegIndex>(rs);
    in.src2 = static_cast<RegIndex>(rt);
    return in;
}

Instruction
decodeRType(Word raw)
{
    unsigned rs = bits(raw, 25, 21);
    unsigned rt = bits(raw, 20, 16);
    unsigned rd = bits(raw, 15, 11);
    unsigned sh = bits(raw, 10, 6);
    unsigned fn = bits(raw, 5, 0);

    Instruction in;
    switch (fn) {
      case F_SLL:
        if (raw == 0) {
            in.op = Op::NOP;
            return in;
        }
        in.op = Op::SLLI;
        in.dest = rd; in.src1 = rt; in.shamt = sh;
        return in;
      case F_SRL:
        in.op = Op::SRLI; in.dest = rd; in.src1 = rt; in.shamt = sh;
        return in;
      case F_SRA:
        in.op = Op::SRAI; in.dest = rd; in.src1 = rt; in.shamt = sh;
        return in;
      case F_SLLV: return makeR3(Op::SLLV, rd, rt, rs);
      case F_SRLV: return makeR3(Op::SRLV, rd, rt, rs);
      case F_SRAV: return makeR3(Op::SRAV, rd, rt, rs);
      case F_JR:
        in.op = Op::JR; in.src1 = rs;
        return in;
      case F_JALR:
        in.op = Op::JALR; in.dest = rd; in.src1 = rs;
        return in;
      case F_SYSCALL:
        in.op = Op::SYSCALL;
        return in;
      case F_MUL: return makeR3(Op::MUL, rd, rs, rt);
      case F_DIV: return makeR3(Op::DIV, rd, rs, rt);
      case F_ADD: return makeR3(Op::ADD, rd, rs, rt);
      case F_SUB: return makeR3(Op::SUB, rd, rs, rt);
      case F_AND: return makeR3(Op::AND, rd, rs, rt);
      case F_OR:  return makeR3(Op::OR, rd, rs, rt);
      case F_XOR: return makeR3(Op::XOR, rd, rs, rt);
      case F_NOR: return makeR3(Op::NOR, rd, rs, rt);
      case F_SLT: return makeR3(Op::SLT, rd, rs, rt);
      case F_SLTU:return makeR3(Op::SLTU, rd, rs, rt);
      case F_LWX: return makeR3(Op::LWX, rd, rs, rt);
      case F_SWX: {
        Instruction sw;
        sw.op = Op::SWX;
        sw.src1 = static_cast<RegIndex>(rs);
        sw.src2 = static_cast<RegIndex>(rt);
        sw.src3 = static_cast<RegIndex>(rd);
        return sw;
      }
      default:
        in.op = Op::NOP;
        return in;
    }
}

} // namespace

Instruction
decode(Word raw)
{
    unsigned op = bits(raw, 31, 26);
    unsigned rs = bits(raw, 25, 21);
    unsigned rt = bits(raw, 20, 16);
    auto simm = static_cast<std::int32_t>(sext(bits(raw, 15, 0), 16));
    auto zimm = static_cast<std::int32_t>(bits(raw, 15, 0));

    Instruction in;
    auto ialu = [&](Op o, std::int32_t imm) {
        in.op = o;
        in.dest = static_cast<RegIndex>(rt);
        in.src1 = static_cast<RegIndex>(rs);
        in.imm = imm;
        return in;
    };
    auto load = [&](Op o) {
        in.op = o;
        in.dest = static_cast<RegIndex>(rt);
        in.src1 = static_cast<RegIndex>(rs);
        in.imm = simm;
        return in;
    };
    auto store = [&](Op o) {
        in.op = o;
        in.src1 = static_cast<RegIndex>(rs);
        in.src3 = static_cast<RegIndex>(rt);
        in.imm = simm;
        return in;
    };

    switch (op) {
      case P_RTYPE: return decodeRType(raw);
      case P_REGIMM:
        in.op = (rt == 1) ? Op::BGEZ : Op::BLTZ;
        in.src1 = static_cast<RegIndex>(rs);
        in.imm = simm;
        return in;
      case P_J:
        in.op = Op::J;
        in.imm = static_cast<std::int32_t>(bits(raw, 25, 0));
        return in;
      case P_JAL:
        in.op = Op::JAL;
        in.dest = kRegRA;
        in.imm = static_cast<std::int32_t>(bits(raw, 25, 0));
        return in;
      case P_BEQ: case P_BNE:
        in.op = (op == P_BEQ) ? Op::BEQ : Op::BNE;
        in.src1 = static_cast<RegIndex>(rs);
        in.src2 = static_cast<RegIndex>(rt);
        in.imm = simm;
        return in;
      case P_BLEZ: case P_BGTZ:
        in.op = (op == P_BLEZ) ? Op::BLEZ : Op::BGTZ;
        in.src1 = static_cast<RegIndex>(rs);
        in.imm = simm;
        return in;
      case P_ADDI:  return ialu(Op::ADDI, simm);
      case P_SLTI:  return ialu(Op::SLTI, simm);
      case P_SLTIU: return ialu(Op::SLTIU, simm);
      case P_ANDI:  return ialu(Op::ANDI, zimm);
      case P_ORI:   return ialu(Op::ORI, zimm);
      case P_XORI:  return ialu(Op::XORI, zimm);
      case P_LUI:
        in.op = Op::LUI;
        in.dest = static_cast<RegIndex>(rt);
        in.imm = zimm;
        return in;
      case P_LB:  return load(Op::LB);
      case P_LH:  return load(Op::LH);
      case P_LW:  return load(Op::LW);
      case P_LBU: return load(Op::LBU);
      case P_LHU: return load(Op::LHU);
      case P_SB:  return store(Op::SB);
      case P_SH:  return store(Op::SH);
      case P_SW:  return store(Op::SW);
      case P_HALT:
        in.op = Op::HALT;
        return in;
      default:
        in.op = Op::NOP;
        return in;
    }
}

std::string
disassemble(const Instruction &in)
{
    char buf[96];
    const char *m = mnemonic(in.op);

    switch (in.op) {
      case Op::NOP: case Op::SYSCALL: case Op::HALT:
        return m;
      case Op::SLLI: case Op::SRLI: case Op::SRAI:
        std::snprintf(buf, sizeof(buf), "%s %s, %s, %u", m,
                      regName(in.dest).c_str(), regName(in.src1).c_str(),
                      unsigned(in.shamt));
        return buf;
      case Op::LUI:
        std::snprintf(buf, sizeof(buf), "%s %s, 0x%x", m,
                      regName(in.dest).c_str(), unsigned(in.imm));
        return buf;
      case Op::J: case Op::JAL:
        std::snprintf(buf, sizeof(buf), "%s 0x%x", m,
                      unsigned(in.imm) * 4);
        return buf;
      case Op::JR:
        std::snprintf(buf, sizeof(buf), "%s %s", m,
                      regName(in.src1).c_str());
        return buf;
      case Op::JALR:
        std::snprintf(buf, sizeof(buf), "%s %s, %s", m,
                      regName(in.dest).c_str(), regName(in.src1).c_str());
        return buf;
      default:
        break;
    }

    if (in.isLoad()) {
        if (in.op == Op::LWX) {
            std::snprintf(buf, sizeof(buf), "%s %s, (%s + %s)", m,
                          regName(in.dest).c_str(),
                          regName(in.src1).c_str(),
                          regName(in.src2).c_str());
        } else {
            std::snprintf(buf, sizeof(buf), "%s %s, %d(%s)", m,
                          regName(in.dest).c_str(), in.imm,
                          regName(in.src1).c_str());
        }
        return buf;
    }
    if (in.isStore()) {
        if (in.op == Op::SWX) {
            std::snprintf(buf, sizeof(buf), "%s %s, (%s + %s)", m,
                          regName(in.src3).c_str(),
                          regName(in.src1).c_str(),
                          regName(in.src2).c_str());
        } else {
            std::snprintf(buf, sizeof(buf), "%s %s, %d(%s)", m,
                          regName(in.src3).c_str(), in.imm,
                          regName(in.src1).c_str());
        }
        return buf;
    }
    if (in.isCondBranch()) {
        if (in.src2 != Instruction::kNoReg) {
            std::snprintf(buf, sizeof(buf), "%s %s, %s, %+d", m,
                          regName(in.src1).c_str(),
                          regName(in.src2).c_str(), in.imm);
        } else {
            std::snprintf(buf, sizeof(buf), "%s %s, %+d", m,
                          regName(in.src1).c_str(), in.imm);
        }
        return buf;
    }
    if (in.src2 != Instruction::kNoReg) {
        std::snprintf(buf, sizeof(buf), "%s %s, %s, %s", m,
                      regName(in.dest).c_str(), regName(in.src1).c_str(),
                      regName(in.src2).c_str());
    } else {
        std::snprintf(buf, sizeof(buf), "%s %s, %s, %d", m,
                      regName(in.dest).c_str(), regName(in.src1).c_str(),
                      in.imm);
    }
    return buf;
}

std::string
disassemble(const Instruction &in, Addr pc)
{
    if (in.isCondBranch()) {
        char buf[96];
        Addr target = pc + 4 +
            static_cast<Addr>(static_cast<std::int64_t>(in.imm) * 4);
        std::snprintf(buf, sizeof(buf), "%s -> 0x%llx",
                      disassemble(in).c_str(),
                      static_cast<unsigned long long>(target));
        return buf;
    }
    return disassemble(in);
}

} // namespace tcfill
