/**
 * @file
 * Semantic opcode enumeration and static properties for the tcfill
 * ISA: a SimpleScalar-flavored superset of MIPS-IV with architected
 * delay slots removed and indexed (register+register) memory
 * operations added, exactly as described in the paper's §3.
 */

#ifndef TCFILL_ISA_OPCODES_HH
#define TCFILL_ISA_OPCODES_HH

#include <cstdint>

namespace tcfill
{

/** Semantic operation, produced by the decoder. */
enum class Op : std::uint8_t
{
    // ALU, register form
    ADD, SUB, AND, OR, XOR, NOR, SLT, SLTU,
    SLLV, SRLV, SRAV,
    MUL, DIV,
    // ALU, immediate form
    ADDI, SLTI, SLTIU, ANDI, ORI, XORI, LUI,
    SLLI, SRLI, SRAI,
    // Memory, displaced (base + imm16)
    LB, LBU, LH, LHU, LW,
    SB, SH, SW,
    // Memory, indexed (base + index register)
    LWX, SWX,
    // Control
    BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ,
    J, JAL, JR, JALR,
    // Misc
    NOP, SYSCALL, HALT,

    NumOps
};

/** Coarse functional class of an operation. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< single-cycle integer op
    IntMul,     ///< pipelined multiply
    IntDiv,     ///< unpipelined divide
    Load,
    Store,
    Control,    ///< branches, jumps, calls, returns
    Other,      ///< NOP / SYSCALL / HALT
};

/** Static, ISA-level properties of an Op. */
struct OpInfo
{
    const char *mnemonic;
    OpClass cls;
    /** Execution latency in cycles (loads: address generation only). */
    std::uint8_t latency;
};

namespace detail
{

inline constexpr OpInfo op_table[] = {
    // mnemonic   class              latency
    {"add",    OpClass::IntAlu,  1},   // ADD
    {"sub",    OpClass::IntAlu,  1},   // SUB
    {"and",    OpClass::IntAlu,  1},   // AND
    {"or",     OpClass::IntAlu,  1},   // OR
    {"xor",    OpClass::IntAlu,  1},   // XOR
    {"nor",    OpClass::IntAlu,  1},   // NOR
    {"slt",    OpClass::IntAlu,  1},   // SLT
    {"sltu",   OpClass::IntAlu,  1},   // SLTU
    {"sllv",   OpClass::IntAlu,  1},   // SLLV
    {"srlv",   OpClass::IntAlu,  1},   // SRLV
    {"srav",   OpClass::IntAlu,  1},   // SRAV
    {"mul",    OpClass::IntMul,  3},   // MUL
    {"div",    OpClass::IntDiv, 12},   // DIV
    {"addi",   OpClass::IntAlu,  1},   // ADDI
    {"slti",   OpClass::IntAlu,  1},   // SLTI
    {"sltiu",  OpClass::IntAlu,  1},   // SLTIU
    {"andi",   OpClass::IntAlu,  1},   // ANDI
    {"ori",    OpClass::IntAlu,  1},   // ORI
    {"xori",   OpClass::IntAlu,  1},   // XORI
    {"lui",    OpClass::IntAlu,  1},   // LUI
    {"slli",   OpClass::IntAlu,  1},   // SLLI
    {"srli",   OpClass::IntAlu,  1},   // SRLI
    {"srai",   OpClass::IntAlu,  1},   // SRAI
    {"lb",     OpClass::Load,    1},   // LB
    {"lbu",    OpClass::Load,    1},   // LBU
    {"lh",     OpClass::Load,    1},   // LH
    {"lhu",    OpClass::Load,    1},   // LHU
    {"lw",     OpClass::Load,    1},   // LW
    {"sb",     OpClass::Store,   1},   // SB
    {"sh",     OpClass::Store,   1},   // SH
    {"sw",     OpClass::Store,   1},   // SW
    {"lwx",    OpClass::Load,    1},   // LWX
    {"swx",    OpClass::Store,   1},   // SWX
    {"beq",    OpClass::Control, 1},   // BEQ
    {"bne",    OpClass::Control, 1},   // BNE
    {"blez",   OpClass::Control, 1},   // BLEZ
    {"bgtz",   OpClass::Control, 1},   // BGTZ
    {"bltz",   OpClass::Control, 1},   // BLTZ
    {"bgez",   OpClass::Control, 1},   // BGEZ
    {"j",      OpClass::Control, 1},   // J
    {"jal",    OpClass::Control, 1},   // JAL
    {"jr",     OpClass::Control, 1},   // JR
    {"jalr",   OpClass::Control, 1},   // JALR
    {"nop",    OpClass::Other,   1},   // NOP
    {"syscall",OpClass::Other,   1},   // SYSCALL
    {"halt",   OpClass::Other,   1},   // HALT
};

static_assert(sizeof(op_table) / sizeof(op_table[0]) ==
                  static_cast<std::size_t>(Op::NumOps),
              "op_table out of sync with Op enumeration");

} // namespace detail

/**
 * Property lookup. The decoder only ever produces ops < Op::NumOps,
 * so this is an unchecked table index on the hottest simulator paths.
 */
inline const OpInfo &
opInfo(Op op)
{
    return detail::op_table[static_cast<std::size_t>(op)];
}

inline const char *mnemonic(Op op) { return opInfo(op).mnemonic; }
inline OpClass opClass(Op op) { return opInfo(op).cls; }

inline bool isLoad(Op op) { return opClass(op) == OpClass::Load; }
inline bool isStore(Op op) { return opClass(op) == OpClass::Store; }
inline bool isMem(Op op) { return isLoad(op) || isStore(op); }
inline bool isControl(Op op) { return opClass(op) == OpClass::Control; }

/** Conditional direct branches. */
inline bool
isCondBranch(Op op)
{
    switch (op) {
      case Op::BEQ: case Op::BNE: case Op::BLEZ:
      case Op::BGTZ: case Op::BLTZ: case Op::BGEZ:
        return true;
      default:
        return false;
    }
}

/** Unconditional direct jumps (J / JAL). */
inline bool
isUncondDirect(Op op)
{
    return op == Op::J || op == Op::JAL;
}

/** Calls (direct or indirect). */
inline bool isCall(Op op) { return op == Op::JAL || op == Op::JALR; }

/** Register-indirect control (JR / JALR). Returns are JR via RA. */
inline bool isIndirect(Op op) { return op == Op::JR || op == Op::JALR; }

/** Serializing instructions force trace termination (paper §3). */
inline bool isSerializing(Op op) { return op == Op::SYSCALL ||
                                          op == Op::HALT; }

/** Immediate-form ALU ops eligible for fill-unit reassociation. */
inline bool
isReassociableImm(Op op)
{
    // Only plain additive immediates can be combined by re-summing
    // immediates; logical immediates do not distribute.
    return op == Op::ADDI;
}

/** Immediate shifts eligible for scaled-add collapsing (SLLI only). */
inline bool isScalableShift(Op op) { return op == Op::SLLI; }

/**
 * Ops that can absorb a scaled (shifted) source operand when the fill
 * unit creates a scaled add: plain adds, indexed loads/stores (the
 * shifted value is the index), and displaced memory ops whose base is
 * the shifted value.
 */
inline bool
canAbsorbScale(Op op)
{
    switch (op) {
      case Op::ADD:
      case Op::LWX: case Op::SWX:
      case Op::LW: case Op::LB: case Op::LBU: case Op::LH: case Op::LHU:
      case Op::SW: case Op::SB: case Op::SH:
        return true;
      default:
        return false;
    }
}

} // namespace tcfill

#endif // TCFILL_ISA_OPCODES_HH
