#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace tcfill::stats
{

double
Group::value(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return e.eval();
    }
    fatal("stat '%s.%s' not registered", name_.c_str(), name.c_str());
}

bool
Group::has(const std::string &name) const
{
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const Entry &e) { return e.name == name; });
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &e : entries_) {
        os << std::left << std::setw(40) << (name_ + "." + e.name)
           << std::right << std::setw(16) << std::fixed
           << std::setprecision(4) << e.eval()
           << "  # " << e.desc << "\n";
    }
}

} // namespace tcfill::stats
