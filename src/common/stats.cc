#include "common/stats.hh"

#include <algorithm>
#include <iomanip>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "obs/json.hh"

namespace tcfill::stats
{

double
Group::value(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return e.eval();
    }
    fatal("stat '%s.%s' not registered", name_.c_str(), name.c_str());
}

std::uint64_t
Group::counterValue(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name) {
            fatal_if(!e.counter, "stat '%s.%s' is not a counter",
                     name_.c_str(), name.c_str());
            return e.counter->value();
        }
    }
    fatal("stat '%s.%s' not registered", name_.c_str(), name.c_str());
}

bool
Group::has(const std::string &name) const
{
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const Entry &e) { return e.name == name; });
}

std::vector<std::string>
Group::timingCounterNames() const
{
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto &e : entries_) {
        if (e.counter && e.timing)
            names.push_back(e.name);
    }
    return names;
}

void
Group::timingCounterValues(std::vector<std::uint64_t> &out) const
{
    for (const auto &e : entries_) {
        if (e.counter && e.timing)
            out.push_back(e.counter->value());
    }
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &e : entries_) {
        os << std::left << std::setw(40) << (name_ + "." + e.name)
           << std::right << std::setw(16) << std::fixed
           << std::setprecision(4) << e.eval()
           << "  # " << e.desc << "\n";
    }
}

namespace
{

/** Dotted-name tree used only while emitting JSON. */
struct StatNode
{
    std::vector<std::pair<std::string, StatNode>> children;
    const std::function<double()> *leaf = nullptr;

    StatNode &
    child(const std::string &name)
    {
        for (auto &[n, c] : children) {
            if (n == name)
                return c;
        }
        children.emplace_back(name, StatNode{});
        return children.back().second;
    }
};

void
emitNode(obs::JsonWriter &w, const StatNode &node)
{
    w.beginObject();
    for (const auto &[name, child] : node.children) {
        w.key(name);
        if (child.leaf) {
            panic_if(!child.children.empty(),
                     "stat '%s' is both a value and a prefix",
                     name.c_str());
            w.value((*child.leaf)());
        } else {
            emitNode(w, child);
        }
    }
    w.endObject();
}

} // namespace

void
Group::dumpJson(std::ostream &os) const
{
    StatNode root;
    for (const auto &e : entries_) {
        StatNode *node = &root;
        std::size_t pos = 0;
        while (pos <= e.name.size()) {
            std::size_t dot = e.name.find('.', pos);
            std::string part = e.name.substr(
                pos, dot == std::string::npos ? e.name.size() - pos
                                              : dot - pos);
            node = &node->child(part);
            if (dot == std::string::npos)
                break;
            pos = dot + 1;
        }
        panic_if(node->leaf, "stat '%s.%s' registered twice",
                 name_.c_str(), e.name.c_str());
        node->leaf = &e.eval;
    }
    obs::JsonWriter w(os);
    emitNode(w, root);
    w.finish();
}

} // namespace tcfill::stats
