/**
 * @file
 * Bit-manipulation helpers used by the ISA encoder/decoder, caches and
 * branch predictors.
 */

#ifndef TCFILL_COMMON_BITFIELD_HH
#define TCFILL_COMMON_BITFIELD_HH

#include <cstdint>
#include <type_traits>

namespace tcfill
{

/** A mask of the low @p nbits bits. nbits must be <= 64. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t(0)
                       : (std::uint64_t(1) << nbits) - 1;
}

/** Extract bits [last:first] (inclusive, last >= first) of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned last, unsigned first)
{
    return (value >> first) & mask(last - first + 1);
}

/** Extract the single bit @p pos of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1;
}

/**
 * Insert the low (last-first+1) bits of @p field into bits [last:first]
 * of @p dest and return the result.
 */
constexpr std::uint64_t
insertBits(std::uint64_t dest, unsigned last, unsigned first,
           std::uint64_t field)
{
    std::uint64_t m = mask(last - first + 1) << first;
    return (dest & ~m) | ((field << first) & m);
}

/** Sign-extend the low @p nbits bits of @p value to 64 bits. */
constexpr std::int64_t
sext(std::uint64_t value, unsigned nbits)
{
    std::uint64_t sign_bit = std::uint64_t(1) << (nbits - 1);
    std::uint64_t low = value & mask(nbits);
    return static_cast<std::int64_t>((low ^ sign_bit) - sign_bit);
}

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Population count. */
constexpr unsigned
popCount(std::uint64_t v)
{
    unsigned c = 0;
    while (v) {
        v &= v - 1;
        ++c;
    }
    return c;
}

} // namespace tcfill

#endif // TCFILL_COMMON_BITFIELD_HH
