/**
 * @file
 * Small deterministic PRNG (xorshift128+) used by workload input
 * generation so every simulation run is exactly reproducible.
 */

#ifndef TCFILL_COMMON_RANDOM_HH
#define TCFILL_COMMON_RANDOM_HH

#include <cstdint>

#include "common/logging.hh"

namespace tcfill
{

/**
 * Deterministic xorshift128+ generator. Intentionally not
 * std::mt19937: we want a tiny, header-only, stable-across-platforms
 * stream.
 */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to avoid bad low-entropy states.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            return z ^ (z >> 31);
        };
        s0_ = next();
        s1_ = next();
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform value in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Random::below(0)");
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        panic_if(lo > hi, "Random::range(%lld, %lld)",
                 static_cast<long long>(lo), static_cast<long long>(hi));
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Bernoulli draw: true with probability @p percent / 100. */
    bool
    percent(unsigned p)
    {
        return below(100) < p;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace tcfill

#endif // TCFILL_COMMON_RANDOM_HH
