#include "common/digest.hh"

#include <array>

namespace tcfill::digest
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::string
hex64(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

} // namespace tcfill::digest
