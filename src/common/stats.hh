/**
 * @file
 * Lightweight statistics package: named scalar counters, ratios and
 * histograms registered in groups, with text dumping. Modeled loosely
 * on the SimpleScalar / gem5 stats packages the paper's simulator used.
 */

#ifndef TCFILL_COMMON_STATS_HH
#define TCFILL_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace tcfill::stats
{

/** A monotonically increasing 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Fixed-bucket histogram over [0, buckets); overflow goes to last. */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 0) : counts_(buckets) {}

    void
    sample(std::size_t v, std::uint64_t n = 1)
    {
        if (counts_.empty())
            return;
        std::size_t idx = v < counts_.size() ? v : counts_.size() - 1;
        counts_[idx] += n;
        total_ += n;
        sum_ += static_cast<std::uint64_t>(v) * n;
    }

    std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
    std::uint64_t total() const { return total_; }
    std::size_t buckets() const { return counts_.size(); }

    /** Mean of sampled values (0 when empty). */
    double
    mean() const
    {
        return total_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(total_);
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
        sum_ = 0;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * A named collection of stats. Components register their counters once
 * at construction; Group::dump() prints "name value # description"
 * lines like SimpleScalar's -dumpconfig output.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    /**
     * Register a counter by reference; the component keeps ownership.
     * @p timing marks the counter a fact of the timing model — equal
     * across interchangeable implementations of the same machine (the
     * scan/wakeup schedulers, live/replay commit sources). Pass false
     * for implementation diagnostics whose value depends on *how* the
     * model computes (e.g. scheduler scan-retry counts): they still
     * dump and register normally, but the timeline collector skips
     * them so interval series stay byte-identical across variants.
     */
    void
    addCounter(const std::string &name, const Counter &c,
               const std::string &desc, bool timing = true)
    {
        entries_.push_back({name, desc,
            [&c]() { return static_cast<double>(c.value()); }, &c,
            timing});
    }

    /** Register a derived value computed on demand (e.g. IPC). */
    void
    addFormula(const std::string &name, std::function<double()> fn,
               const std::string &desc)
    {
        entries_.push_back({name, desc, std::move(fn)});
    }

    /** Look up a registered value by name; fatals if missing. */
    double value(const std::string &name) const;

    /**
     * Exact 64-bit value of a registered Counter (no double rounding,
     * unlike value()); fatals if the name is missing or names a
     * formula. This is how SimResult is assembled from the registry.
     */
    std::uint64_t counterValue(const std::string &name) const;

    /** True iff a stat of that name was registered. */
    bool has(const std::string &name) const;

    void dump(std::ostream &os) const;

    /**
     * Hierarchical machine-readable dump: dotted stat names become
     * nested JSON objects ("l1i.hits" -> {"l1i": {"hits": ...}}),
     * preserving registration order, so output is byte-deterministic
     * for a deterministic simulation. Descriptions are omitted — the
     * text dump() remains the human-facing format.
     */
    void dumpJson(std::ostream &os) const;

    const std::string &name() const { return name_; }

    /**
     * Names of the registered timing-model counters (formulas and
     * non-timing diagnostics excluded), in registration order — the
     * column set of the obs::Timeline interval series. Stable for a
     * given wiring, so timeline JSON layout is byte-deterministic.
     */
    std::vector<std::string> timingCounterNames() const;

    /**
     * Append the current values of the timing-model counters to
     * @p out, in the same order as timingCounterNames(). Cheap (one
     * 64-bit load per counter): this is the timeline's interval-cut
     * snapshot path.
     */
    void timingCounterValues(std::vector<std::uint64_t> &out) const;

  private:
    struct Entry
    {
        std::string name;
        std::string desc;
        std::function<double()> eval;
        /** Backing counter when the entry is one (else nullptr). */
        const Counter *counter = nullptr;
        /** Timing-model fact vs implementation diagnostic. */
        bool timing = true;
    };

    std::string name_;
    std::vector<Entry> entries_;
};

} // namespace tcfill::stats

#endif // TCFILL_COMMON_STATS_HH
