#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace tcfill
{

namespace
{
// Atomic: warn()/inform() are called from SimRunner worker threads
// while a driver may toggle quiet mode on the main thread.
std::atomic<bool> quiet_flag{false};
} // namespace

void
setQuietLogging(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
quietLogging()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

namespace detail
{

std::string
vformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

void
terminatePanic(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
terminateFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
emitWarn(const std::string &msg)
{
    if (!quiet_flag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
emitInform(const std::string &msg)
{
    if (!quiet_flag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace tcfill
