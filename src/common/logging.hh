/**
 * @file
 * gem5-style status and error reporting: panic() for simulator bugs,
 * fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef TCFILL_COMMON_LOGGING_HH
#define TCFILL_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tcfill
{

namespace detail
{

[[noreturn]] void terminatePanic(const char *file, int line,
                                 const std::string &msg);
[[noreturn]] void terminateFatal(const std::string &msg);
void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Suppress warn()/inform() output (used by tests and benches). */
void setQuietLogging(bool quiet);
bool quietLogging();

} // namespace tcfill

/**
 * Report an internal simulator bug and abort. Use only for conditions
 * that can never happen regardless of user input.
 */
#define panic(...)                                                      \
    ::tcfill::detail::terminatePanic(__FILE__, __LINE__,               \
        ::tcfill::detail::vformat(__VA_ARGS__))

/**
 * Report an unrecoverable user-level error (bad configuration,
 * malformed program) and exit(1).
 */
#define fatal(...)                                                      \
    ::tcfill::detail::terminateFatal(::tcfill::detail::vformat(__VA_ARGS__))

/** Abort with a panic if the invariant does not hold. */
#define panic_if(cond, ...)                                             \
    do {                                                                \
        if (cond)                                                       \
            panic(__VA_ARGS__);                                         \
    } while (0)

/** Exit with a fatal error if the condition holds. */
#define fatal_if(cond, ...)                                             \
    do {                                                                \
        if (cond)                                                       \
            fatal(__VA_ARGS__);                                         \
    } while (0)

/** Non-fatal warning to the user. */
#define warn(...)                                                       \
    ::tcfill::detail::emitWarn(::tcfill::detail::vformat(__VA_ARGS__))

/** Informational status message. */
#define inform(...)                                                     \
    ::tcfill::detail::emitInform(::tcfill::detail::vformat(__VA_ARGS__))

#endif // TCFILL_COMMON_LOGGING_HH
