/**
 * @file
 * The one hashing/digest module every content-addressed identity in
 * the tree derives from: CRC-32 (IEEE) for on-disk framing checksums
 * (tcfill-trace-v1 frames, tcfill-store-v1 records, tcfill-svc-v1
 * wire frames) and FNV-1a 64 for compact content keys (workload
 * digests, trace identities, persistent-store shard routing).
 *
 * Centralizing the primitives here is what keeps the three keyings —
 * SimRunner's in-memory result-cache key, the tracefile content
 * identity and the service result-store key — from silently drifting
 * apart: they all compose configCacheKey() (tripwired by the
 * static_asserts in sim/runner.cc) with digests produced by this one
 * implementation, and tests/test_service.cc pins the algorithms to
 * published test vectors so an accidental change orphans no store.
 */

#ifndef TCFILL_COMMON_DIGEST_HH
#define TCFILL_COMMON_DIGEST_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tcfill::digest
{

/** CRC-32 (IEEE 802.3, poly 0xedb88320, init/final xor ~0). */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

/** FNV-1a 64-bit offset basis / prime. */
inline constexpr std::uint64_t kFnv64Offset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv64Prime = 0x100000001b3ull;

/** Incremental FNV-1a 64 over arbitrary byte runs. */
class Fnv64
{
  public:
    Fnv64 &
    update(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            state_ ^= p[i];
            state_ *= kFnv64Prime;
        }
        return *this;
    }

    Fnv64 &
    update(std::string_view s)
    {
        return update(s.data(), s.size());
    }

    std::uint64_t value() const { return state_; }

  private:
    std::uint64_t state_ = kFnv64Offset;
};

/** One-shot FNV-1a 64 of @p s. */
inline std::uint64_t
fnv64(std::string_view s)
{
    return Fnv64().update(s).value();
}

/** Canonical 16-digit lowercase hex rendering of a 64-bit digest. */
std::string hex64(std::uint64_t v);

} // namespace tcfill::digest

#endif // TCFILL_COMMON_DIGEST_HH
