/**
 * @file
 * Deterministic BBV clustering primitives shared by the SimPoint
 * selector (tracefile/sample.cc) and the timeline phase tagger
 * (obs/timeline.cc): random-projection of basic-block-vector interval
 * summaries into a fixed low dimension, and a fixed-seed k-means
 * (k-means++ seeding + Lloyd iterations) over the projected points.
 *
 * Everything here is bit-deterministic: projection weights are hashed
 * from the block PC (no stored matrix), the generator seed is a
 * compile-time constant, and all tie-breaks are low-index, so the
 * same intervals always cluster the same way on every platform. The
 * SimPoint golden fixture (tests/golden/compress-sample.json) pins
 * this numerically — any change to the arithmetic or its order is a
 * breaking change.
 */

#ifndef TCFILL_COMMON_KMEANS_HH
#define TCFILL_COMMON_KMEANS_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hh"

namespace tcfill
{

/** Projection dimensionality (SimPoint uses 15; 16 packs nicely). */
constexpr std::size_t kBbvProjDims = 16;

/** Fixed seed: clustering must be reproducible across runs/platforms. */
constexpr std::uint64_t kBbvSelectSeed = 0x51e0b0d15ee7ull;

/** One interval's BBV, random-projected to kBbvProjDims dimensions. */
using BbvPoint = std::array<double, kBbvProjDims>;

/**
 * Pseudo-random projection weight for (block PC, dimension) in
 * [-1, 1), derived by hashing so no projection matrix is stored and
 * every interval sees the same weights. SplitMix64 finalizer.
 */
double bbvProjWeight(Addr pc, std::size_t dim);

/**
 * Project an interval's per-block instruction counts (keyed by block
 * start PC, summing to @p insts), normalized to frequencies.
 */
BbvPoint projectBbv(const std::map<Addr, std::uint64_t> &blocks,
                    std::uint64_t insts);

double bbvDist2(const BbvPoint &a, const BbvPoint &b);

/** Clustering of a point set: per-point labels + final centroids. */
struct KmeansResult
{
    /** Cluster index per input point (into centroids). */
    std::vector<std::size_t> assign;
    /** Final centroids; size <= requested k (degenerate inputs). */
    std::vector<BbvPoint> centroids;
};

/**
 * Cluster @p pts into (at most) @p k groups: k-means++ seeding from a
 * fixed-seed tcfill::Random stream, then Lloyd iterations to
 * convergence (bounded at 100; assignment ties break low-index, empty
 * clusters keep their centroid). Returns fewer than @p k clusters
 * only when the seeding degenerates (all residual distances zero).
 */
KmeansResult kmeansBbv(const std::vector<BbvPoint> &pts, unsigned k,
                       std::uint64_t seed = kBbvSelectSeed);

} // namespace tcfill

#endif // TCFILL_COMMON_KMEANS_HH
