/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * paper-style result tables (one row per benchmark).
 */

#ifndef TCFILL_COMMON_TABLE_HH
#define TCFILL_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace tcfill
{

/** Builds an aligned text table with a header row and separator. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 2);

    /** Format a value as a percentage string, e.g. "17.3%". */
    static std::string pct(double fraction, int prec = 1);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tcfill

#endif // TCFILL_COMMON_TABLE_HH
