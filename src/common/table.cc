#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace tcfill
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    fatal_if(header_.empty(), "TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    fatal_if(row.size() != header_.size(),
             "TextTable row has %zu cells, header has %zu",
             row.size(), header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, fraction * 100.0);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            // Left-align the first (name) column, right-align numbers.
            if (c == 0) {
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            } else {
                os << std::string(widths[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << "\n";
    };

    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace tcfill
