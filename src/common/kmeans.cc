#include "common/kmeans.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"

namespace tcfill
{

double
bbvProjWeight(Addr pc, std::size_t dim)
{
    std::uint64_t z = pc * 0x9e3779b97f4a7c15ull + dim + 1;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * (2.0 / 9007199254740992.0) -
           1.0;
}

BbvPoint
projectBbv(const std::map<Addr, std::uint64_t> &blocks,
           std::uint64_t insts)
{
    BbvPoint v{};
    if (insts == 0)
        return v;
    const double inv = 1.0 / static_cast<double>(insts);
    for (const auto &[pc, count] : blocks) {
        const double f = static_cast<double>(count) * inv;
        for (std::size_t d = 0; d < kBbvProjDims; ++d)
            v[d] += f * bbvProjWeight(pc, d);
    }
    return v;
}

double
bbvDist2(const BbvPoint &a, const BbvPoint &b)
{
    double s = 0.0;
    for (std::size_t d = 0; d < kBbvProjDims; ++d) {
        const double diff = a[d] - b[d];
        s += diff * diff;
    }
    return s;
}

KmeansResult
kmeansBbv(const std::vector<BbvPoint> &pts, unsigned k,
          std::uint64_t seed)
{
    panic_if(k == 0, "kmeansBbv needs k > 0");
    const std::size_t n = pts.size();
    KmeansResult out;
    if (n == 0)
        return out;
    k = static_cast<unsigned>(std::min<std::size_t>(k, n));

    // k-means++ seeding from a fixed-seed deterministic stream.
    Random rng(seed);
    std::vector<BbvPoint> &centroids = out.centroids;
    centroids.reserve(k);
    centroids.push_back(pts[rng.below(n)]);
    std::vector<double> best(n, 0.0);
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            best[i] = bbvDist2(pts[i], centroids[0]);
            for (std::size_t c = 1; c < centroids.size(); ++c)
                best[i] = std::min(best[i],
                                   bbvDist2(pts[i], centroids[c]));
            total += best[i];
        }
        if (total <= 0.0) {
            // All points coincide with a centroid; further centroids
            // are redundant, stop with fewer clusters.
            break;
        }
        // Draw proportional to squared distance using a fixed-point
        // slice of the generator (deterministic, no doubles from rng).
        const double r = total *
            (static_cast<double>(rng.next() >> 11) /
             9007199254740992.0);
        double acc = 0.0;
        std::size_t pick = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            acc += best[i];
            if (acc >= r) {
                pick = i;
                break;
            }
        }
        centroids.push_back(pts[pick]);
    }

    // Lloyd iterations to convergence (bounded; ties break low-index
    // so assignment is deterministic).
    std::vector<std::size_t> &assign = out.assign;
    assign.assign(n, 0);
    for (int iter = 0; iter < 100; ++iter) {
        bool moved = false;
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t bc = 0;
            double bd = bbvDist2(pts[i], centroids[0]);
            for (std::size_t c = 1; c < centroids.size(); ++c) {
                const double d = bbvDist2(pts[i], centroids[c]);
                if (d < bd) {
                    bd = d;
                    bc = c;
                }
            }
            if (assign[i] != bc) {
                assign[i] = bc;
                moved = true;
            }
        }
        if (!moved && iter > 0)
            break;
        std::vector<BbvPoint> sums(centroids.size(), BbvPoint{});
        std::vector<std::size_t> counts(centroids.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t d = 0; d < kBbvProjDims; ++d)
                sums[assign[i]][d] += pts[i][d];
            ++counts[assign[i]];
        }
        for (std::size_t c = 0; c < centroids.size(); ++c) {
            if (counts[c] == 0)
                continue; // empty cluster keeps its centroid
            for (std::size_t d = 0; d < kBbvProjDims; ++d)
                centroids[c][d] = sums[c][d] /
                    static_cast<double>(counts[c]);
        }
    }
    return out;
}

} // namespace tcfill
