/**
 * @file
 * Fundamental scalar types shared by every tcfill module.
 */

#ifndef TCFILL_COMMON_TYPES_HH
#define TCFILL_COMMON_TYPES_HH

#include <cstdint>

namespace tcfill
{

/** Byte address in the simulated machine's flat address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Dynamic-instruction sequence number (monotonic over a run). */
using InstSeqNum = std::uint64_t;

/** Architectural register index (0..numArchRegs-1). */
using RegIndex = std::uint8_t;

/** Physical register / operand tag in the renamed machine. */
using PhysRegIndex = std::uint32_t;

/** 32-bit machine word: the ISA is a 32-bit RISC. */
using Word = std::uint32_t;
using SWord = std::int32_t;

/** Sentinel for "no cycle assigned yet". */
inline constexpr Cycle kNoCycle = ~Cycle(0);

/** Sentinel for "no address". */
inline constexpr Addr kNoAddr = ~Addr(0);

} // namespace tcfill

#endif // TCFILL_COMMON_TYPES_HH
