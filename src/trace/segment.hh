/**
 * @file
 * Trace segment representation: up to 16 instructions from a single
 * dynamic path, with explicit dependency pre-decode and the fill
 * unit's optimization metadata (paper §3 and §4.1).
 *
 * Per-instruction metadata budget, tracked for the paper's storage
 * accounting: 7 bits of baseline pre-decode (3 destination live-out /
 * overwrite bits, 2 source-internal bits, 2 block-number bits), plus
 * 1 bit for register-move marking, 2 bits for scaled adds and 4 bits
 * for instruction placement when the optimizations are enabled.
 */

#ifndef TCFILL_TRACE_SEGMENT_HH
#define TCFILL_TRACE_SEGMENT_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace tcfill
{

/** Maximum instructions per trace segment. */
inline constexpr unsigned kSegmentMaxInsts = 16;
/** Maximum dynamically predicted conditional branches per segment. */
inline constexpr unsigned kSegmentMaxCondBranches = 3;
/** Maximum blocks (2-bit block number). */
inline constexpr unsigned kSegmentMaxBlocks = 4;

/** Sentinel source-dependency value: operand is live-in to the trace. */
inline constexpr std::int8_t kDepLiveIn = -1;

/** One instruction slot within a trace segment. */
struct TraceInst
{
    /**
     * The (possibly rewritten) instruction. Reassociation and move
     * rewiring change source registers / immediates relative to the
     * architectural instruction at @c pc.
     */
    Instruction inst;

    /** Original architectural PC (tag for predictor training). */
    Addr pc = 0;

    /** Recorded next PC on the trace's path. */
    Addr nextPc = 0;

    /** Recorded branch direction at segment construction. */
    bool taken = false;

    /** Block number within the segment (0..3, checkpoint groups —
     *  promoted branches do not end blocks). */
    std::uint8_t blockNum = 0;

    /**
     * Control-flow region within the segment: increments at *every*
     * control transfer, including promoted branches and unconditional
     * jumps. This is the boundary the reassociation restriction
     * (§4.3 "cross a control flow boundary") is defined against; a
     * promoted branch is still a boundary a compiler could not
     * optimize across.
     */
    std::uint8_t cfRegion = 0;

    /** Position in original program order (memory ordering). */
    std::uint8_t origIdx = 0;

    /**
     * Per-source dependency pre-decode: index of the producing
     * instruction within this segment, or kDepLiveIn. Indexed in
     * srcReg() order (0..numSrcs()-1).
     */
    std::int8_t srcDep[3] = {kDepLiveIn, kDepLiveIn, kDepLiveIn};

    /** Destination is live-out of the segment (not overwritten). */
    bool liveOut = true;

    // ---- register-move marking (1 bit + rewiring info) ---------------
    bool isMove = false;
    /** Architectural source of the move (kRegZero for zero-idioms). */
    RegIndex moveSrc = Instruction::kNoReg;
    /** Dependency index of the move's source (producer or live-in). */
    std::int8_t moveSrcDep = kDepLiveIn;

    // ---- scaled add (2 bits) ------------------------------------------
    /** Which source operand is pre-shifted; 0xff = none. */
    std::uint8_t scaledSrcIdx = 0xff;
    /** Shift amount 1..3 applied to that operand. */
    std::uint8_t scaleAmt = 0;

    // ---- instruction placement (4 bits) -------------------------------
    /** Issue slot (functional unit) assigned by the fill unit. */
    std::uint8_t slot = 0;

    // ---- branch promotion ----------------------------------------------
    /** Conditional branch carries an embedded static prediction. */
    bool promoted = false;
    /** The embedded direction (== taken at construction). */
    bool promotedDir = false;

    // ---- dead-write elision (paper §5 future work) --------------------
    /**
     * The destination is overwritten within the same control-flow
     * region with no intervening reader: the instruction need not
     * execute at all. Restricted to same-region pairs so no partial
     * execution of the line can ever need the elided value (the
     * paper's "atomic trace" recovery problem does not arise).
     */
    bool deadElided = false;

    // ---- bookkeeping -----------------------------------------------------
    /** Instruction was rewritten by reassociation (stats). */
    bool reassociated = false;

    bool hasScale() const { return scaledSrcIdx != 0xff; }

    /** Taken target of a conditional branch in this slot. */
    Addr
    condTarget() const
    {
        return pc + 4 +
            (static_cast<Addr>(static_cast<std::int64_t>(inst.imm)) << 2);
    }
};

/** A completed multi-block trace segment. */
struct TraceSegment
{
    Addr startPc = 0;
    std::vector<TraceInst> insts;

    /**
     * Indices of the non-promoted conditional branches, in order; the
     * i-th gets its prediction from PHT i. Size <= 3.
     */
    std::vector<std::uint8_t> predSlots;

    /** Fetch address following the segment along its recorded path. */
    Addr nextPc = 0;

    /** Number of blocks (checkpoint groups). */
    unsigned numBlocks = 1;

    bool empty() const { return insts.empty(); }
    std::size_t size() const { return insts.size(); }

    /**
     * Storage bits for this segment's instructions given which
     * optimizations are enabled (paper §4.6 accounting).
     */
    static std::size_t
    bitsPerInst(bool moves, bool scaled, bool placement)
    {
        std::size_t b = 32 + 7;     // instruction + baseline pre-decode
        if (moves)
            b += 1;
        if (scaled)
            b += 2;
        if (placement)
            b += 4;
        return b;
    }
};

} // namespace tcfill

#endif // TCFILL_TRACE_SEGMENT_HH
