/**
 * @file
 * The trace cache: a 2K-entry, 4-way set-associative store of trace
 * segments indexed by starting fetch address (paper §3: ~156KB for
 * the baseline — 128KB of 4-byte instructions plus 28KB of 7-bit
 * pre-decode).
 */

#ifndef TCFILL_TRACE_TCACHE_HH
#define TCFILL_TRACE_TCACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "trace/segment.hh"

namespace tcfill
{

/** Set-associative trace segment store with LRU replacement. */
class TraceCache
{
  public:
    struct Params
    {
        std::size_t entries = 2048;     ///< total lines
        std::size_t ways = 4;
        /// Optimization bits present in each line (storage accounting).
        bool moveBits = false;
        bool scaledBits = false;
        bool placementBits = false;
    };

    TraceCache();
    explicit TraceCache(const Params &params);

    /**
     * Look up a segment starting at @p pc; updates LRU and hit/miss
     * counters. Returns nullptr on miss. The pointer remains valid
     * until the next install() into the same set.
     *
     * The cache is path-associative: several ways may hold segments
     * with the same start address but different internal branch
     * paths. Without a selector the most recently used match wins.
     */
    const TraceSegment *lookup(Addr pc);

    /**
     * Path-associative lookup with prediction-directed way selection:
     * @p score rates each tag-matching way (e.g. by how many
     * instructions the current branch predictions would keep); the
     * highest-scoring way is returned (MRU breaks ties).
     */
    const TraceSegment *
    lookup(Addr pc,
           const std::function<std::size_t(const TraceSegment &)>
               &score);

    /** Tag probe without side effects. */
    bool probe(Addr pc) const;

    /**
     * Install @p seg. A resident segment with the same start PC *and*
     * the same internal path is refreshed in place; otherwise the LRU
     * way is replaced (other paths from the same start address are
     * kept — path associativity).
     */
    void install(TraceSegment seg);

    /** Drop all segments. */
    void flush();

    /** Visit every resident segment (diagnostics / examples). */
    void forEach(const std::function<void(const TraceSegment &)> &fn)
        const;

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t installs() const { return installs_.value(); }

    /**
     * Total storage in bits for the configured geometry at full
     * occupancy: entries * 16 inst * bits-per-inst.
     */
    std::size_t storageBits() const;

    std::size_t numSets() const { return num_sets_; }

    void regStats(stats::Group &group);

  private:
    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        TraceSegment seg;
    };

    std::size_t setIndex(Addr pc) const;

    Params params_;
    std::size_t num_sets_;
    std::vector<Way> ways_;     // num_sets_ * ways, row-major
    std::uint64_t use_clock_ = 0;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter installs_;
    stats::Counter replacements_;
};

} // namespace tcfill

#endif // TCFILL_TRACE_TCACHE_HH
