#include "trace/tcache.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace tcfill
{

TraceCache::TraceCache() : TraceCache(Params{})
{
}

TraceCache::TraceCache(const Params &params) : params_(params)
{
    fatal_if(params.ways == 0, "trace cache: zero ways");
    fatal_if(params.entries % params.ways != 0,
             "trace cache: entries not divisible by ways");
    num_sets_ = params.entries / params.ways;
    fatal_if(!isPowerOf2(num_sets_),
             "trace cache: set count must be a power of two");
    ways_.resize(params.entries);
}

std::size_t
TraceCache::setIndex(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) & (num_sets_ - 1));
}

const TraceSegment *
TraceCache::lookup(Addr pc)
{
    return lookup(pc, nullptr);
}

const TraceSegment *
TraceCache::lookup(Addr pc,
                   const std::function<std::size_t(const TraceSegment &)>
                       &score)
{
    Way *set = &ways_[setIndex(pc) * params_.ways];
    ++use_clock_;

    Way *best = nullptr;
    std::size_t best_score = 0;
    for (std::size_t w = 0; w < params_.ways; ++w) {
        Way &way = set[w];
        if (!way.valid || way.tag != pc)
            continue;
        std::size_t s = score ? score(way.seg) : 1;
        // Higher score wins; MRU breaks ties.
        if (!best || s > best_score ||
            (s == best_score && way.lastUse > best->lastUse)) {
            best = &way;
            best_score = s;
        }
    }

    if (best) {
        best->lastUse = use_clock_;
        ++hits_;
        return &best->seg;
    }
    ++misses_;
    return nullptr;
}

namespace
{

/** Same dynamic path: equal start and per-slot (pc, direction). */
bool
samePath(const TraceSegment &a, const TraceSegment &b)
{
    std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a.insts[i].pc != b.insts[i].pc ||
            a.insts[i].taken != b.insts[i].taken) {
            return false;
        }
    }
    return true;
}

} // namespace

bool
TraceCache::probe(Addr pc) const
{
    const Way *set = &ways_[setIndex(pc) * params_.ways];
    for (std::size_t w = 0; w < params_.ways; ++w) {
        if (set[w].valid && set[w].tag == pc)
            return true;
    }
    return false;
}

void
TraceCache::install(TraceSegment seg)
{
    panic_if(seg.empty(), "installing empty trace segment");
    panic_if(seg.size() > kSegmentMaxInsts,
             "segment of %zu instructions exceeds line capacity",
             seg.size());

    Way *set = &ways_[setIndex(seg.startPc) * params_.ways];
    ++use_clock_;

    Way *victim = set;
    for (std::size_t w = 0; w < params_.ways; ++w) {
        Way &way = set[w];
        if (way.valid && way.tag == seg.startPc &&
            samePath(way.seg, seg)) {
            // Same start address and path: refresh in place, but never
            // let a shorter prefix clobber a longer packed segment.
            if (seg.size() >= way.seg.size())
                way.seg = std::move(seg);
            way.lastUse = use_clock_;
            ++installs_;
            return;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }

    if (victim->valid)
        ++replacements_;
    victim->valid = true;
    victim->tag = seg.startPc;
    victim->lastUse = use_clock_;
    victim->seg = std::move(seg);
    ++installs_;
}

void
TraceCache::flush()
{
    for (auto &way : ways_)
        way.valid = false;
}

void
TraceCache::forEach(
    const std::function<void(const TraceSegment &)> &fn) const
{
    for (const auto &way : ways_) {
        if (way.valid)
            fn(way.seg);
    }
}

std::size_t
TraceCache::storageBits() const
{
    return params_.entries * kSegmentMaxInsts *
           TraceSegment::bitsPerInst(params_.moveBits, params_.scaledBits,
                                     params_.placementBits);
}

void
TraceCache::regStats(stats::Group &group)
{
    group.addCounter("tcache.hits", hits_, "trace cache hits");
    group.addCounter("tcache.misses", misses_, "trace cache misses");
    group.addCounter("tcache.installs", installs_,
                     "segments installed");
    group.addCounter("tcache.replacements", replacements_,
                     "valid segments evicted");
    group.addFormula("tcache.hit_rate",
        [this]() {
            auto total = hits_.value() + misses_.value();
            return total == 0 ? 0.0
                : static_cast<double>(hits_.value()) /
                      static_cast<double>(total);
        },
        "trace cache hit rate");
}

} // namespace tcfill
