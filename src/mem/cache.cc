#include "mem/cache.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace tcfill
{

SetAssocCache::SetAssocCache(const CacheParams &params) : params_(params)
{
    fatal_if(!isPowerOf2(params.lineBytes),
             "%s: line size must be a power of two", params.name.c_str());
    fatal_if(params.ways == 0, "%s: zero ways", params.name.c_str());
    fatal_if(params.sizeBytes % (params.lineBytes * params.ways) != 0,
             "%s: size not divisible by way size", params.name.c_str());
    num_sets_ = params.sizeBytes / (params.lineBytes * params.ways);
    fatal_if(!isPowerOf2(num_sets_), "%s: set count must be a power of two",
             params.name.c_str());
    line_shift_ = floorLog2(params.lineBytes);
    lines_.resize(num_sets_ * params.ways);
}

std::size_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr >> line_shift_) & (num_sets_ - 1);
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return addr >> line_shift_;
}

bool
SetAssocCache::access(Addr addr)
{
    Line *set = &lines_[setIndex(addr) * params_.ways];
    Addr tag = tagOf(addr);
    ++use_clock_;

    Line *victim = set;
    for (std::size_t w = 0; w < params_.ways; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = use_clock_;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = use_clock_;
    return false;
}

bool
SetAssocCache::probe(Addr addr) const
{
    const Line *set = &lines_[setIndex(addr) * params_.ways];
    Addr tag = tagOf(addr);
    for (std::size_t w = 0; w < params_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::invalidate(Addr addr)
{
    Line *set = &lines_[setIndex(addr) * params_.ways];
    Addr tag = tagOf(addr);
    for (std::size_t w = 0; w < params_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            set[w].valid = false;
    }
}

void
SetAssocCache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

void
SetAssocCache::regStats(stats::Group &group) const
{
    group.addCounter(params_.name + ".hits", hits_, "cache hits");
    group.addCounter(params_.name + ".misses", misses_, "cache misses");
    group.addFormula(params_.name + ".miss_rate",
        [this]() {
            auto total = hits_.value() + misses_.value();
            return total == 0 ? 0.0
                : static_cast<double>(misses_.value()) /
                      static_cast<double>(total);
        },
        "fraction of accesses that missed");
}

MemoryHierarchy::MemoryHierarchy() : MemoryHierarchy(Params{})
{
}

MemoryHierarchy::MemoryHierarchy(const Params &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d), l2_(params.l2)
{
}

Cycle
MemoryHierarchy::accessShared(SetAssocCache &l1, Addr addr, Cycle now)
{
    if (l1.access(addr))
        return now;

    Cycle ready = now + params_.l2Latency;
    if (l2_.access(addr))
        return ready;

    // L2 miss: go to memory over the shared bus.
    Cycle start = std::max(ready, bus_free_);
    if (start > ready)
        bus_conflict_cycles_ += start - ready;
    bus_free_ = start + params_.memBusOccupancy;
    return start + params_.memLatency;
}

Cycle
MemoryHierarchy::accessInst(Addr addr, Cycle now)
{
    return accessShared(l1i_, addr, now);
}

Cycle
MemoryHierarchy::accessData(Addr addr, Cycle now)
{
    return accessShared(l1d_, addr, now);
}

void
MemoryHierarchy::regStats(stats::Group &group) const
{
    l1i_.regStats(group);
    l1d_.regStats(group);
    l2_.regStats(group);
    group.addCounter("mem.bus_conflict_cycles", bus_conflict_cycles_,
                     "cycles requests waited on the memory bus");
}

} // namespace tcfill
