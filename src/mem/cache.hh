/**
 * @file
 * Generic set-associative cache tag array with true-LRU replacement.
 * This is a timing-only model: data values live in the functional
 * Memory; the cache tracks presence and supplies hit/miss decisions.
 */

#ifndef TCFILL_MEM_CACHE_HH
#define TCFILL_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace tcfill
{

/** Geometry and identity of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 4096;
    std::size_t lineBytes = 64;
    std::size_t ways = 4;
};

/** Set-associative tag store with LRU replacement. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /**
     * Look up @p addr; on miss, allocate its line (evicting LRU).
     * @return true on hit.
     */
    bool access(Addr addr);

    /** Look up without allocating or touching LRU state. */
    bool probe(Addr addr) const;

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr);

    /** Drop all lines. */
    void flush();

    const CacheParams &params() const { return params_; }
    std::size_t numSets() const { return num_sets_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Register hit/miss counters with a stats group. */
    void regStats(stats::Group &group) const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params_;
    std::size_t num_sets_;
    unsigned line_shift_;
    std::vector<Line> lines_;   // num_sets_ * ways, row-major by set
    std::uint64_t use_clock_ = 0;
    stats::Counter hits_;
    stats::Counter misses_;
};

/**
 * The paper's three-level hierarchy for timing purposes:
 * L1 (I or D) -> unified L2 (6-cycle) -> memory (50-cycle, single bus).
 * Requests are non-blocking; the memory bus serializes L2 misses.
 */
class MemoryHierarchy
{
  public:
    struct Params
    {
        CacheParams l1i{"l1i", 4 * 1024, 64, 4};
        CacheParams l1d{"l1d", 64 * 1024, 64, 4};
        CacheParams l2{"l2", 1024 * 1024, 64, 4};
        Cycle l2Latency = 6;
        Cycle memLatency = 50;
        /** Bus occupancy per memory access (serialization grain). */
        Cycle memBusOccupancy = 8;
    };

    MemoryHierarchy();
    explicit MemoryHierarchy(const Params &params);

    /**
     * Perform an instruction fetch lookup at @p now; returns the cycle
     * the line is available.
     */
    Cycle accessInst(Addr addr, Cycle now);

    /** Data access (load or store, write-allocate). */
    Cycle accessData(Addr addr, Cycle now);

    const SetAssocCache &l1i() const { return l1i_; }
    const SetAssocCache &l1d() const { return l1d_; }
    const SetAssocCache &l2() const { return l2_; }

    void regStats(stats::Group &group) const;

  private:
    Cycle accessShared(SetAssocCache &l1, Addr addr, Cycle now);

    Params params_;
    SetAssocCache l1i_;
    SetAssocCache l1d_;
    SetAssocCache l2_;
    Cycle bus_free_ = 0;
    stats::Counter bus_conflict_cycles_;
};

} // namespace tcfill

#endif // TCFILL_MEM_CACHE_HH
