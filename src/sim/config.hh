/**
 * @file
 * Top-level simulator configuration, defaulting to the paper's §3
 * experimental model: 16-wide fetch with a 2K-entry 4-way trace
 * cache, 4KB supporting I-cache, 64KB L1D / 1MB L2, a three-PHT
 * multiple-branch predictor with an 8KB bias table, and a 16-unit
 * execution engine in four clusters with 32-entry reservation
 * stations, inactive issue and checkpoint repair.
 */

#ifndef TCFILL_SIM_CONFIG_HH
#define TCFILL_SIM_CONFIG_HH

#include <string>

#include "bpred/predictor.hh"
#include "fill/fill_unit.hh"
#include "mem/cache.hh"
#include "trace/tcache.hh"
#include "uarch/exec_core.hh"

namespace tcfill
{

/**
 * Full simulator configuration.
 *
 * NOTE: every behavior-affecting field (including those of the nested
 * params structs) must also be serialized by configCacheKey() in
 * sim/runner.cc — the SimRunner result cache treats configs with
 * equal keys as interchangeable.
 */
struct SimConfig
{
    std::string name = "baseline";

    FillUnitConfig fill{};
    TraceCache::Params tcache{};
    MemoryHierarchy::Params mem{};
    MultiBranchPredictor::Params bpred{};
    BiasTable::Params bias{};
    ExecCoreParams core{};

    /** Fetch from the trace cache (false: I-cache only, ablation). */
    bool useTraceCache = true;

    /** Issue blocks past the predicted exit inactively (paper §3). */
    bool inactiveIssue = true;

    unsigned fetchWidth = 16;
    unsigned fetchQueueLines = 4;
    unsigned retireWidth = 16;
    /** In-flight instruction cap (window size). */
    unsigned windowCap = 512;
    unsigned rasDepth = 32;

    /** Stop after this many retired instructions (0 = run to halt). */
    InstSeqNum maxInsts = 0;
    /** Hard cycle cap as a safety net (0 = none). */
    Cycle maxCycles = 0;

    /**
     * Timeline telemetry (obs/timeline.hh): snapshot the delta of
     * every timing-model counter each time this many instructions
     * retire (0 = off). Purely observational — never changes
     * simulated cycles — but keyed in configCacheKey() because it
     * changes the SimResult document (the timeline section).
     */
    InstSeqNum statsInterval = 0;
    /**
     * Tag timeline intervals with one of this many BBV phase
     * clusters (0 = no tagging; requires statsInterval != 0).
     */
    unsigned statsPhases = 0;

    /**
     * Convenience: the paper's baseline with a chosen optimization
     * set and fill latency.
     */
    static SimConfig
    withOpts(const FillOptimizations &opts, Cycle fill_latency = 5)
    {
        SimConfig cfg;
        cfg.fill.opts = opts;
        cfg.fill.latency = fill_latency;
        cfg.tcache.moveBits = opts.markMoves;
        cfg.tcache.scaledBits = opts.scaledAdds;
        cfg.tcache.placementBits = opts.placement;
        return cfg;
    }
};

} // namespace tcfill

#endif // TCFILL_SIM_CONFIG_HH
