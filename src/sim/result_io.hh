/**
 * @file
 * SimResult record (de)serialization for the service layer. A
 * *record* is the deterministic body of one result — exactly
 * SimResult::toJson(include_host=false) — rendered as a standalone
 * JSON object. Records are what the persistent result store holds and
 * what the tcfill-svc-v1 protocol ships; resultFromJson() inverts
 * them so a client can re-emit a tcfill-stats-v1 document
 * byte-identical to one written from the freshly computed results
 * (double fields survive because obs::jsonNumber renders shortest
 * round-trip forms; derived fields — ipc, the frac* family, per-phase
 * IPC — are recomputed from the same integers).
 */

#ifndef TCFILL_SIM_RESULT_IO_HH
#define TCFILL_SIM_RESULT_IO_HH

#include <string>

#include "sim/result.hh"

namespace tcfill
{

namespace obs
{
struct JsonValue;
} // namespace obs

/** Render the deterministic record text of @p r (no trailing \n). */
std::string resultRecordText(const SimResult &r);

/**
 * Parse a record (or a full result object with a host section, which
 * is consumed and dropped) back into @p out. Returns false with a
 * description in @p err on unknown / missing / mistyped members.
 * resultRecordText(out) reproduces the input bytes exactly.
 */
bool resultFromJson(const obs::JsonValue &v, SimResult &out,
                    std::string &err);

/** Convenience: parse record text (resultFromJson over a parse). */
bool resultFromRecordText(const std::string &text, SimResult &out,
                          std::string &err);

} // namespace tcfill

#endif // TCFILL_SIM_RESULT_IO_HH
