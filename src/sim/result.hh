/**
 * @file
 * Aggregate results of one timing-simulation run; everything the
 * paper's tables and figures report.
 */

#ifndef TCFILL_SIM_RESULT_HH
#define TCFILL_SIM_RESULT_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fill/policy.hh"
#include "obs/timeline.hh"

namespace tcfill
{

namespace obs { class JsonWriter; }

/** Results of a Processor::run(). */
struct SimResult
{
    std::string config;
    std::string workload;

    /**
     * Committed-stream provenance: "live" (in-process Executor),
     * "record" (live run teeing a trace file), "replay" (trace-file
     * ReplayExecutor) or "sample" (BBV-selected interval). Replayed
     * and live documents are comparable modulo this field — see
     * tools/check_stats_json.py --compare-replay.
     */
    std::string mode = "live";

    /**
     * The effective retire limit this run was configured with
     * (SimConfig::maxInsts; 0 = run to halt). Recorded so documents
     * produced at different caps are never silently compared.
     */
    InstSeqNum maxInsts = 0;

    InstSeqNum retired = 0;
    Cycle cycles = 0;

    /**
     * Host wall-clock seconds spent inside Processor::run() for this
     * result. Purely observational (simulated state never depends on
     * it); a cached SimRunner hit reports the original run's time.
     */
    double hostSeconds = 0.0;

    /**
     * Result provenance: "computed" (freshly simulated), "memory"
     * (served from a SimRunner in-process result cache — including
     * attaching to an in-flight duplicate) or "store" (read back from
     * a persistent service result store, src/service/store.hh). For
     * the non-computed provenances hostSeconds / simInstsPerSec
     * describe the *original* run, not a new measurement. Excluded
     * from the determinism equality checks in tests/test_runner.cc
     * and from --compare-replay in tools/check_stats_json.py.
     */
    std::string cacheHit = "computed";

    /**
     * Content digest of the simulation's input source: FNV-1a 64 (hex)
     * of "workload:<name>@<scale>" for live/sample runs, of
     * "trace:<crc>:<size>" (the tracefile content identity) for
     * record/replay runs. Together with the exhaustive config key this
     * is the service store key's identity half; recorded per result so
     * store-served documents carry their own provenance.
     */
    std::string sourceDigest;

    /**
     * Sampled-run mechanics accounting (mode == "sample" only; all
     * zero otherwise). Describes how the estimate was produced —
     * checkpoint journal size, restore traffic, residual functional
     * fast-forwarding and worker-pool width — not what it estimates,
     * so it lives in the host section of the JSON document (the pool
     * width is a host choice and must not break the byte-identical
     * determinism contract of the body).
     */
    struct SampleHost
    {
        std::uint64_t checkpoints = 0;      ///< checkpoints captured
        std::uint64_t checkpointPages = 0;  ///< pages journaled
        std::uint64_t restores = 0;         ///< checkpoint restores
        std::uint64_t restoredPages = 0;    ///< pages applied on restore
        std::uint64_t ffInsts = 0;          ///< residual fast-forward insts
        std::uint64_t simpoints = 0;        ///< measurement tasks
        std::uint64_t jobs = 0;             ///< worker threads used
    } sample;

    /**
     * Interval telemetry series (cfg.statsInterval != 0 only; null
     * otherwise). Deterministic simulation data — serialized in the
     * document body (not the host section) and byte-identical across
     * -j1/-j8, schedulers and record/replay. Shared (immutable) so
     * SimRunner result-cache copies stay cheap.
     */
    std::shared_ptr<const obs::TimelineData> timeline;

    /**
     * Fill-policy decision record (non-static --fill-policy runs
     * only; null otherwise, so legacy documents do not change).
     * Deterministic simulation data — policy decisions are a function
     * of the committed stream and cycle numbers, so this section is
     * timing-affecting and byte-identical across -j1/-j8, schedulers
     * and record/replay (tests/test_policy.cc pins this). Shared
     * (immutable) for cheap result-cache copies.
     */
    std::shared_ptr<const PolicySummary> policy;

    /**
     * Host self-profiler rows (--stats-host with profiling only;
     * empty otherwise). Wall-clock noise like hostSeconds — emitted
     * under host.profile, never in the deterministic body.
     */
    struct HostProfileRow
    {
        std::string name;
        double seconds = 0.0;
        std::uint64_t calls = 0;
    };
    std::vector<HostProfileRow> hostProfile;

    /** Simulator throughput: simulated instructions per host second. */
    double
    simInstsPerSec() const
    {
        return hostSeconds <= 0.0
            ? 0.0
            : static_cast<double>(retired) / hostSeconds;
    }

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(retired) /
                                 static_cast<double>(cycles);
    }

    // ---- front end ----------------------------------------------------
    std::uint64_t tcHits = 0;
    std::uint64_t tcMisses = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t inactiveRescues = 0;      ///< mispredicts hidden by
                                            ///< inactive issue
    /** Fetch cycles lost from mispredict detection to resolution. */
    std::uint64_t mispredictStallCycles = 0;
    std::uint64_t segmentsBuilt = 0;
    double avgSegmentLength = 0.0;
    double bpredAccuracy = 0.0;

    double
    tcHitRate() const
    {
        auto total = tcHits + tcMisses;
        return total == 0 ? 0.0
                          : static_cast<double>(tcHits) /
                                static_cast<double>(total);
    }

    // ---- dynamic optimization counts (Table 2 / figures 3-5) ---------
    std::uint64_t dynMoves = 0;         ///< retired move-marked insts
    std::uint64_t dynReassoc = 0;       ///< retired reassociated insts
    std::uint64_t dynScaled = 0;        ///< retired scaled insts
    std::uint64_t dynMoveIdioms = 0;    ///< architectural move idioms
    std::uint64_t dynElided = 0;        ///< dead writes elided (ext.)

    double fracMoves() const { return frac(dynMoves); }
    double fracReassoc() const { return frac(dynReassoc); }
    double fracScaled() const { return frac(dynScaled); }
    double
    fracTransformed() const
    {
        return frac(dynMoves + dynReassoc + dynScaled);
    }
    double fracMoveIdioms() const { return frac(dynMoveIdioms); }
    double fracElided() const { return frac(dynElided); }

    // ---- bypass network (figure 7) --------------------------------------
    std::uint64_t bypassDelayed = 0;    ///< retired insts whose last
                                        ///< operand crossed clusters
    double
    fracBypassDelayed() const
    {
        return frac(bypassDelayed);
    }

    void dump(std::ostream &os) const;

    /**
     * Emit this result as one JSON object (the caller owns the
     * surrounding document structure — see sim/stats_io.hh).
     * @param include_host also emit the host-timing section
     *        (hostSeconds, simInstsPerSec), which is wall-clock noise
     *        and breaks byte-identical reruns; deterministic fields
     *        only when false.
     */
    void toJson(obs::JsonWriter &w, bool include_host = true) const;

  private:
    double
    frac(std::uint64_t n) const
    {
        return retired == 0 ? 0.0
                            : static_cast<double>(n) /
                                  static_cast<double>(retired);
    }
};

} // namespace tcfill

#endif // TCFILL_SIM_RESULT_HH
