#include "sim/runner.hh"

#include <cstdlib>
#include <sstream>

#include "common/digest.hh"
#include "common/logging.hh"
#include "sim/processor.hh"
#include "workloads/suite.hh"

namespace tcfill
{

// --------------------------------------------------------------------
// Cache keying
// --------------------------------------------------------------------

namespace
{

void
keyCache(std::ostream &os, const CacheParams &c)
{
    os << c.sizeBytes << ',' << c.lineBytes << ',' << c.ways << ';';
}

} // namespace

// Tripwire: configCacheKey() must serialize every behavior-affecting
// field, so any growth of SimConfig or a nested params struct has to
// pass through here. If one of these fires, you added (or removed) a
// field: extend configCacheKey() below, the exhaustive knob test in
// tests/test_runner.cc (ConfigKeyCoversEveryKnob), AND the service
// wire serialization in sim/config_io.cc (configToJson +
// configFromJson; round-trip-tested against this key in
// tests/test_service.cc) — the persistent result store and the
// tcfill-svc-v1 protocol both key off this serialization, so a field
// the key misses would silently alias distinct configs on disk. Then
// update the expected size. Sizes assume the LP64 Itanium ABI both CI
// and the dev containers use; other ABIs skip the check (the unit
// test still runs).
#if defined(__x86_64__) || defined(__aarch64__)
static_assert(sizeof(ReassocOptions) == 2,
              "ReassocOptions changed: update configCacheKey()");
static_assert(sizeof(FillOptimizations) == 7,
              "FillOptimizations changed: update configCacheKey()");
static_assert(sizeof(FillPolicyParams) == sizeof(std::string) + 32,
              "FillPolicyParams changed: update configCacheKey()");
static_assert(sizeof(FillUnitConfig) ==
                  sizeof(FillPolicyParams) + 32,
              "FillUnitConfig changed: update configCacheKey()");
static_assert(sizeof(TraceCache::Params) == 24,
              "TraceCache::Params changed: update configCacheKey()");
static_assert(sizeof(CacheParams) == sizeof(std::string) + 24,
              "CacheParams changed: update configCacheKey()");
static_assert(sizeof(MemoryHierarchy::Params) ==
                  3 * sizeof(CacheParams) + 24,
              "MemoryHierarchy::Params changed: update configCacheKey()");
static_assert(sizeof(MultiBranchPredictor::Params) == 32,
              "MultiBranchPredictor::Params changed: update "
              "configCacheKey()");
static_assert(sizeof(BiasTable::Params) == 16,
              "BiasTable::Params changed: update configCacheKey()");
static_assert(sizeof(ExecCoreParams) == 24,
              "ExecCoreParams changed: update configCacheKey()");
static_assert(sizeof(SimConfig) ==
                  sizeof(std::string) + sizeof(FillPolicyParams) + 376,
              "SimConfig changed: update configCacheKey()");
#endif

std::string
configCacheKey(const SimConfig &cfg)
{
    std::ostringstream os;
    // Top-level machine knobs.
    os << "tc=" << cfg.useTraceCache << ";ii=" << cfg.inactiveIssue
       << ";fw=" << cfg.fetchWidth << ";fq=" << cfg.fetchQueueLines
       << ";rw=" << cfg.retireWidth << ";win=" << cfg.windowCap
       << ";ras=" << cfg.rasDepth << ";mi=" << cfg.maxInsts
       << ";mc=" << cfg.maxCycles
       // Timeline telemetry never changes timing, but it changes the
       // result document (the timeline section), so results produced
       // at different telemetry settings must never alias in the
       // cache.
       << ";ti=" << cfg.statsInterval << ";tp=" << cfg.statsPhases;
    // Fill unit.
    const FillUnitConfig &f = cfg.fill;
    os << "|fill=" << f.latency << ',' << f.packTraces << ','
       << f.alignLoopHeads << ',' << f.restartAtMissTargets << ','
       << f.promoteBranches << ',' << f.maxInsts << ','
       << f.maxCondBranches;
    const FillOptimizations &o = f.opts;
    os << "|opts=" << o.markMoves << o.reassociate << o.scaledAdds
       << o.placement << o.deadCodeElim << ','
       << o.reassocOptions.crossBlockOnly
       << o.reassocOptions.foldMemDisplacement;
    // Pass-selection policy.
    const FillPolicyParams &p = f.policy;
    os << "|policy=" << static_cast<unsigned>(p.kind) << ','
       << p.maxPhases << ',' << p.windowInsts << ',' << p.newPhaseDist
       << ',' << p.hysteresis << ',' << p.oracleMap;
    // Trace cache.
    os << "|tcache=" << cfg.tcache.entries << ',' << cfg.tcache.ways
       << ',' << cfg.tcache.moveBits << cfg.tcache.scaledBits
       << cfg.tcache.placementBits;
    // Memory hierarchy.
    os << "|mem=";
    keyCache(os, cfg.mem.l1i);
    keyCache(os, cfg.mem.l1d);
    keyCache(os, cfg.mem.l2);
    os << cfg.mem.l2Latency << ',' << cfg.mem.memLatency << ','
       << cfg.mem.memBusOccupancy;
    // Predictors.
    os << "|bp=" << cfg.bpred.pht0Entries << ','
       << cfg.bpred.pht1Entries << ',' << cfg.bpred.pht2Entries << ','
       << cfg.bpred.historyBits;
    os << "|bias=" << cfg.bias.entries << ','
       << cfg.bias.promoteThreshold;
    // Execution core. The scheduler kind never changes timing (the
    // timing-identity CI job asserts so) but is keyed anyway: cached
    // results must be reproducible by rerunning the exact config.
    os << "|core=" << cfg.core.numClusters << ','
       << cfg.core.fusPerCluster << ',' << cfg.core.rsEntries << ','
       << cfg.core.crossClusterDelay << ','
       << static_cast<unsigned>(cfg.core.scheduler);
    return os.str();
}

std::string
workloadDigest(const std::string &workload, unsigned scale)
{
    return digest::hex64(digest::fnv64(
        "workload:" + workload + '@' + std::to_string(scale)));
}

std::string
simPointKey(const std::string &workload, unsigned scale,
            const SimConfig &cfg)
{
    return workload + '@' + std::to_string(scale) + '#' +
        configCacheKey(cfg);
}

// --------------------------------------------------------------------
// Pool lifecycle
// --------------------------------------------------------------------

unsigned
SimRunner::defaultThreads()
{
    if (const char *env = std::getenv("TCFILL_THREADS")) {
        unsigned n =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        if (n > 0)
            return n;
        warn("ignoring invalid TCFILL_THREADS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SimRunner &
SimRunner::shared()
{
    static SimRunner instance;
    return instance;
}

SimRunner::SimRunner(unsigned threads)
    : threads_(threads > 0 ? threads : defaultThreads())
{
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

SimRunner::~SimRunner()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_work_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
SimRunner::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_work_.wait(lk,
                          [this] { return stop_ || !jobs_.empty(); });
            if (jobs_.empty())
                return;  // stop_ set and queue drained
            job = std::move(jobs_.front());
            jobs_.pop_front();
            ++running_;
        }
        job();
        {
            std::lock_guard<std::mutex> lk(mu_);
            --running_;
        }
        cv_idle_.notify_all();
    }
}

void
SimRunner::wait()
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_idle_.wait(lk,
                  [this] { return jobs_.empty() && running_ == 0; });
}

// --------------------------------------------------------------------
// Program cache
// --------------------------------------------------------------------

std::shared_ptr<SimRunner::ProgramSlot>
SimRunner::programSlot(const std::string &workload, unsigned scale)
{
    const std::string key =
        workload + '@' + std::to_string(scale);
    std::lock_guard<std::mutex> lk(mu_);
    auto it = programs_.find(key);
    if (it != programs_.end())
        return it->second;
    auto slot = std::make_shared<ProgramSlot>();
    programs_.emplace(key, slot);
    return slot;
}

std::shared_ptr<const Program>
SimRunner::program(const std::string &workload, unsigned scale)
{
    auto slot = programSlot(workload, scale);
    std::call_once(slot->once, [&] {
        slot->prog = std::make_shared<const Program>(
            workloads::build(workload, scale));
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.programsBuilt;
    });
    return slot->prog;
}

// --------------------------------------------------------------------
// Simulation submission
// --------------------------------------------------------------------

std::shared_future<SimResult>
SimRunner::submit(const std::string &workload, const SimConfig &cfg,
                  unsigned scale, bool *cache_hit)
{
    const std::string key = simPointKey(workload, scale, cfg);
    return submitKeyed(key,
                       [this, workload, scale, cfg]() -> SimResult {
                           auto prog = program(workload, scale);
                           Processor proc(*prog, cfg);
                           SimResult res = proc.run();
                           res.sourceDigest =
                               workloadDigest(workload, scale);
                           return res;
                       },
                       cache_hit);
}

std::shared_future<SimResult>
SimRunner::submitKeyed(const std::string &key,
                       std::function<SimResult()> job, bool *cache_hit)
{
    std::unique_lock<std::mutex> lk(mu_);
    if (!sweep_started_) {
        sweep_started_ = true;
        sweep_start_ = std::chrono::steady_clock::now();
    }
    auto it = results_.find(key);
    if (it != results_.end()) {
        ++stats_.resultHits;
        if (cache_hit)
            *cache_hit = true;
        std::shared_future<SimResult> fut = it->second;
        obs::SweepProgress snap = progressLocked();
        obs::ProgressFn fn = progress_fn_;
        lk.unlock();
        notifyProgress(snap, fn);
        return fut;
    }
    ++stats_.resultMisses;
    if (cache_hit)
        *cache_hit = false;

    auto promise = std::make_shared<std::promise<SimResult>>();
    std::shared_future<SimResult> fut =
        promise->get_future().share();
    results_.emplace(key, fut);

    jobs_.push_back([this, job = std::move(job),
                     promise = std::move(promise)] {
        const auto t0 = std::chrono::steady_clock::now();
        SimResult res = job();
        const double busy = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        obs::SweepProgress snap;
        obs::ProgressFn fn;
        // Counters update before the promise resolves, so any thread
        // that has observed the future ready also observes this
        // completion in progress() — keeping the deterministic
        // "done" count exact once every submitted future returned.
        {
            std::lock_guard<std::mutex> jlk(mu_);
            ++live_done_;
            busy_seconds_ += busy;
            snap = progressLocked();
            fn = progress_fn_;
        }
        promise->set_value(std::move(res));
        notifyProgress(snap, fn);
    });
    obs::SweepProgress snap = progressLocked();
    obs::ProgressFn fn = progress_fn_;
    lk.unlock();
    cv_work_.notify_one();
    notifyProgress(snap, fn);
    return fut;
}

SimResult
SimRunner::run(const std::string &workload, const SimConfig &cfg,
               unsigned scale)
{
    bool hit = false;
    SimResult res = submit(workload, cfg, scale, &hit).get();
    res.config = cfg.name;
    res.cacheHit = hit ? "memory" : "computed";
    return res;
}

SimRunner::CacheStats
SimRunner::cacheStats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

// --------------------------------------------------------------------
// Sweep progress / metrics
// --------------------------------------------------------------------

void
SimRunner::setProgress(obs::ProgressFn fn)
{
    std::lock_guard<std::mutex> lk(mu_);
    progress_fn_ = std::move(fn);
}

obs::SweepProgress
SimRunner::progressLocked() const
{
    obs::SweepProgress p;
    p.cacheHits = stats_.resultHits;
    p.liveRuns = stats_.resultMisses;
    p.liveDone = live_done_;
    p.points = stats_.resultHits + stats_.resultMisses;
    p.done = stats_.resultHits + live_done_;
    p.running = running_;
    p.workers = threads_;
    p.busySeconds = busy_seconds_;
    p.wallSeconds = sweep_started_
        ? std::chrono::duration<double>(
              std::chrono::steady_clock::now() - sweep_start_).count()
        : 0.0;
    return p;
}

obs::SweepProgress
SimRunner::progress() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return progressLocked();
}

void
SimRunner::notifyProgress(const obs::SweepProgress &snap,
                          const obs::ProgressFn &fn)
{
    if (fn)
        fn(snap);
}

} // namespace tcfill
