#include "sim/result.hh"

#include <iomanip>

#include "obs/json.hh"

namespace tcfill
{

void
SimResult::dump(std::ostream &os) const
{
    os << "== " << workload << " / " << config << " ==\n"
       << std::fixed << std::setprecision(4)
       << "  mode             " << mode << " (max insts "
       << maxInsts << ")\n"
       << "  retired          " << retired << "\n"
       << "  cycles           " << cycles << "\n"
       << "  IPC              " << ipc() << "\n"
       << "  tc hit rate      " << tcHitRate() << "\n"
       << "  bpred accuracy   " << bpredAccuracy << "\n"
       << "  mispredicts      " << mispredicts << "\n"
       << "  rescues          " << inactiveRescues << "\n"
       << "  mispred stalls   " << mispredictStallCycles << "\n"
       << "  segments         " << segmentsBuilt
       << " (avg len " << avgSegmentLength << ")\n"
       << "  moves marked     " << fracMoves() << "\n"
       << "  reassociated     " << fracReassoc() << "\n"
       << "  scaled           " << fracScaled() << "\n"
       << "  move idioms      " << fracMoveIdioms() << "\n"
       << "  bypass delayed   " << fracBypassDelayed() << "\n"
       << "  host wall        " << hostSeconds << " s ("
       << std::setprecision(0) << simInstsPerSec()
       << std::setprecision(4) << " inst/s)"
       << (cacheHit == "computed" ? "" : " [cached: " + cacheHit + "]")
       << "\n";
}

void
SimResult::toJson(obs::JsonWriter &w, bool include_host) const
{
    w.beginObject();
    w.field("config", config);
    w.field("workload", workload);
    w.field("mode", mode);
    w.field("maxInsts", maxInsts);
    w.field("cacheHit", cacheHit);
    w.field("sourceDigest", sourceDigest);
    w.field("retired", retired);
    w.field("cycles", cycles);
    w.field("ipc", ipc());
    w.field("tcHits", tcHits);
    w.field("tcMisses", tcMisses);
    w.field("tcHitRate", tcHitRate());
    w.field("bpredAccuracy", bpredAccuracy);
    w.field("mispredicts", mispredicts);
    w.field("inactiveRescues", inactiveRescues);
    w.field("mispredictStallCycles", mispredictStallCycles);
    w.field("segmentsBuilt", segmentsBuilt);
    w.field("avgSegmentLength", avgSegmentLength);
    w.field("dynMoves", dynMoves);
    w.field("dynReassoc", dynReassoc);
    w.field("dynScaled", dynScaled);
    w.field("dynMoveIdioms", dynMoveIdioms);
    w.field("dynElided", dynElided);
    w.field("bypassDelayed", bypassDelayed);
    w.field("fracMoves", fracMoves());
    w.field("fracReassoc", fracReassoc());
    w.field("fracScaled", fracScaled());
    w.field("fracTransformed", fracTransformed());
    w.field("fracMoveIdioms", fracMoveIdioms());
    w.field("fracElided", fracElided());
    w.field("fracBypassDelayed", fracBypassDelayed());
    if (timeline) {
        w.key("timeline");
        timeline->toJson(w);
    }
    if (policy) {
        w.beginObject("policy");
        w.field("kind", policy->kind);
        w.field("finalMask",
                static_cast<std::uint64_t>(policy->finalMask));
        w.field("windows", policy->windows);
        w.field("switches", policy->switches);
        w.field("phasesSeen", policy->phasesSeen);
        w.field("movesMarked", policy->movesMarked);
        w.field("reassociations", policy->reassociations);
        w.field("scaledAdds", policy->scaledAdds);
        w.field("deadElided", policy->deadElided);
        w.beginArray("phases");
        for (const PolicyPhaseStat &ps : policy->phases) {
            w.beginObject();
            w.field("phase", static_cast<std::int64_t>(ps.phase));
            w.field("mask", static_cast<std::uint64_t>(ps.mask));
            w.field("windows", ps.windows);
            w.field("insts", ps.insts);
            w.field("cycles", ps.cycles);
            // Derived from the two integers above (deterministic).
            w.field("ipc", ps.cycles == 0
                               ? 0.0
                               : static_cast<double>(ps.insts) /
                                     static_cast<double>(ps.cycles));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    if (include_host) {
        w.beginObject("host");
        w.field("hostSeconds", hostSeconds);
        w.field("simInstsPerSec", simInstsPerSec());
        if (!hostProfile.empty()) {
            w.beginObject("profile");
            for (const HostProfileRow &row : hostProfile) {
                w.beginObject(row.name);
                w.field("seconds", row.seconds);
                w.field("calls", row.calls);
                w.endObject();
            }
            w.endObject();
        }
        if (mode == "sample") {
            w.beginObject("sample");
            w.field("checkpoints", sample.checkpoints);
            w.field("checkpointPages", sample.checkpointPages);
            w.field("restores", sample.restores);
            w.field("restoredPages", sample.restoredPages);
            w.field("ffInsts", sample.ffInsts);
            w.field("simpoints", sample.simpoints);
            w.field("jobs", sample.jobs);
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
}

} // namespace tcfill
