#include "sim/result.hh"

#include <iomanip>

namespace tcfill
{

void
SimResult::dump(std::ostream &os) const
{
    os << "== " << workload << " / " << config << " ==\n"
       << std::fixed << std::setprecision(4)
       << "  retired          " << retired << "\n"
       << "  cycles           " << cycles << "\n"
       << "  IPC              " << ipc() << "\n"
       << "  tc hit rate      " << tcHitRate() << "\n"
       << "  bpred accuracy   " << bpredAccuracy << "\n"
       << "  mispredicts      " << mispredicts << "\n"
       << "  rescues          " << inactiveRescues << "\n"
       << "  mispred stalls   " << mispredictStallCycles << "\n"
       << "  segments         " << segmentsBuilt
       << " (avg len " << avgSegmentLength << ")\n"
       << "  moves marked     " << fracMoves() << "\n"
       << "  reassociated     " << fracReassoc() << "\n"
       << "  scaled           " << fracScaled() << "\n"
       << "  move idioms      " << fracMoveIdioms() << "\n"
       << "  bypass delayed   " << fracBypassDelayed() << "\n"
       << "  host wall        " << hostSeconds << " s ("
       << std::setprecision(0) << simInstsPerSec()
       << std::setprecision(4) << " inst/s)\n";
}

} // namespace tcfill
