/**
 * @file
 * SimRunner: a fixed-size worker-thread pool that executes
 * independent (workload, SimConfig) simulations concurrently.
 *
 * Three layers make large design-space sweeps cheap:
 *
 *  - a keyed result cache: each distinct (workload, scale, config)
 *    point is simulated once per process; every later request —
 *    including one issued while the first is still running — shares
 *    the same future. A baseline config is therefore simulated once
 *    per workload no matter how many variant sweeps reference it.
 *
 *  - a Program build cache: workload kernels are constructed once and
 *    shared read-only across all runs of that workload.
 *
 *  - per-run wall-clock / throughput counters folded into SimResult
 *    (see SimResult::hostSeconds).
 *
 * Determinism: a simulation's outcome depends only on its Program and
 * SimConfig — Processor instances share no mutable state — so every
 * cycle/IPC figure is bit-identical to a serial run regardless of
 * thread count, scheduling order, or cache hits.
 */

#ifndef TCFILL_SIM_RUNNER_HH
#define TCFILL_SIM_RUNNER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "asm/program.hh"
#include "obs/progress.hh"
#include "sim/config.hh"
#include "sim/result.hh"

namespace tcfill
{

/**
 * Stable, exhaustive serialization of every behavior-affecting field
 * of a SimConfig (everything except the cosmetic name). Two configs
 * with equal keys produce bit-identical simulations, so this is the
 * SimRunner result-cache key. Must be extended whenever SimConfig or
 * a nested params struct grows a field (see the note in config.hh).
 */
std::string configCacheKey(const SimConfig &cfg);

/**
 * FNV-1a 64 (hex) content digest of a live workload source identity
 * ("workload:<name>@<scale>") — the SimResult::sourceDigest of every
 * live/sample run and the identity half of the service store key.
 */
std::string workloadDigest(const std::string &workload, unsigned scale);

/**
 * The SimRunner result-cache key of a (workload, scale, config)
 * point: "<workload>@<scale>#<configCacheKey>". Also the persistent
 * service store key (src/service/store.hh), so the in-memory cache,
 * the on-disk store and the daemon's coalescing table all address
 * results identically by construction.
 */
std::string simPointKey(const std::string &workload, unsigned scale,
                        const SimConfig &cfg);

/** Worker-thread pool with result and program caches. */
class SimRunner
{
  public:
    struct CacheStats
    {
        std::uint64_t resultHits = 0;       ///< submits served from cache
        std::uint64_t resultMisses = 0;     ///< simulations enqueued
        std::uint64_t programsBuilt = 0;    ///< distinct kernels built
    };

    /** @param threads worker count; 0 = defaultThreads(). */
    explicit SimRunner(unsigned threads = 0);

    /** Drains all queued work, then joins the workers. */
    ~SimRunner();

    SimRunner(const SimRunner &) = delete;
    SimRunner &operator=(const SimRunner &) = delete;

    /**
     * Enqueue one simulation (or attach to the cached/in-flight one).
     * The returned future never throws for cache hits; a panicking
     * simulation aborts the process as it would serially.
     *
     * Note: a cached result keeps the config *name* of the first
     * submission; use run() when the label matters.
     *
     * @param cache_hit optional out-param: set true when this submit
     *        attached to an already-known point instead of enqueuing
     *        a fresh simulation (result provenance; see
     *        SimResult::cacheHit).
     */
    std::shared_future<SimResult>
    submit(const std::string &workload, const SimConfig &cfg,
           unsigned scale = 1, bool *cache_hit = nullptr);

    /**
     * Enqueue an arbitrary simulation job under an explicit cache
     * key (or attach to the cached/in-flight one). This is how
     * non-(workload, config) points ride the pool and result cache —
     * e.g. trace replays keyed on trace identity
     * (tracefile::submitReplay). The key must capture everything the
     * job's outcome depends on; @p job runs on a worker thread and
     * must be self-contained.
     */
    std::shared_future<SimResult>
    submitKeyed(const std::string &key,
                std::function<SimResult()> job,
                bool *cache_hit = nullptr);

    /**
     * Blocking convenience: submit + wait, with the result's config
     * label rewritten to @p cfg's name and SimResult::cacheHit
     * recording whether this call was served from the result cache.
     */
    SimResult run(const std::string &workload, const SimConfig &cfg,
                  unsigned scale = 1);

    /** Build (once) and share the workload's program image. */
    std::shared_ptr<const Program>
    program(const std::string &workload, unsigned scale = 1);

    /** Block until every queued simulation has finished. */
    void wait();

    unsigned threads() const { return threads_; }

    CacheStats cacheStats() const;

    /**
     * Install (or clear, with nullptr) a progress callback, invoked
     * after every submission and every job completion with a
     * SweepProgress snapshot. Called outside the runner lock, from
     * submitting and worker threads alike: the callback must be
     * thread-safe and must not call back into this runner.
     */
    void setProgress(obs::ProgressFn fn);

    /** Current sweep counters / throughput metrics snapshot. */
    obs::SweepProgress progress() const;

    /**
     * Worker count used when none is requested: the TCFILL_THREADS
     * environment variable if set, else std::hardware_concurrency.
     */
    static unsigned defaultThreads();

    /**
     * Process-wide runner (default thread count) shared by the bench
     * drivers and tools so the result cache spans a whole process.
     */
    static SimRunner &shared();

  private:
    struct ProgramSlot
    {
        std::once_flag once;
        std::shared_ptr<const Program> prog;
    };

    void workerLoop();
    std::shared_ptr<ProgramSlot>
    programSlot(const std::string &workload, unsigned scale);

    /** Snapshot progress under mu_ (caller holds the lock). */
    obs::SweepProgress progressLocked() const;
    /** Invoke the progress callback (outside the lock) if set. */
    void notifyProgress(const obs::SweepProgress &snap,
                        const obs::ProgressFn &fn);

    unsigned threads_;
    std::vector<std::thread> workers_;

    mutable std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_idle_;
    bool stop_ = false;
    unsigned running_ = 0;
    std::deque<std::function<void()>> jobs_;

    std::map<std::string, std::shared_future<SimResult>> results_;
    std::map<std::string, std::shared_ptr<ProgramSlot>> programs_;
    CacheStats stats_;

    // ---- sweep progress / throughput metrics (observational) --------
    obs::ProgressFn progress_fn_;
    std::uint64_t live_done_ = 0;
    double busy_seconds_ = 0.0;
    bool sweep_started_ = false;
    std::chrono::steady_clock::time_point sweep_start_{};
};

} // namespace tcfill

#endif // TCFILL_SIM_RUNNER_HH
