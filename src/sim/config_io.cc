#include "sim/config_io.hh"

#include <cstdint>

#include "obs/json.hh"

namespace tcfill
{

namespace
{

using Scope = obs::ObjectReader;

void
cacheToJson(obs::JsonWriter &w, const char *key, const CacheParams &c)
{
    // CacheParams::name is fixed by the hierarchy slot (and excluded
    // from configCacheKey), so it does not cross the wire.
    w.beginObject(key);
    w.field("sizeBytes", static_cast<std::uint64_t>(c.sizeBytes));
    w.field("lineBytes", static_cast<std::uint64_t>(c.lineBytes));
    w.field("ways", static_cast<std::uint64_t>(c.ways));
    w.endObject();
}

bool
cacheFromJson(const obs::JsonValue &v, const std::string &path,
              CacheParams &out, std::string &err)
{
    Scope s(v, path, err);
    s.integer("sizeBytes", out.sizeBytes);
    s.integer("lineBytes", out.lineBytes);
    s.integer("ways", out.ways);
    return s.finish();
}

} // namespace

void
configToJson(obs::JsonWriter &w, const SimConfig &cfg)
{
    w.beginObject();
    w.field("name", cfg.name);
    w.field("useTraceCache", cfg.useTraceCache);
    w.field("inactiveIssue", cfg.inactiveIssue);
    w.field("fetchWidth", cfg.fetchWidth);
    w.field("fetchQueueLines", cfg.fetchQueueLines);
    w.field("retireWidth", cfg.retireWidth);
    w.field("windowCap", cfg.windowCap);
    w.field("rasDepth", cfg.rasDepth);
    w.field("maxInsts", cfg.maxInsts);
    w.field("maxCycles", cfg.maxCycles);
    w.field("statsInterval", cfg.statsInterval);
    w.field("statsPhases", cfg.statsPhases);

    const FillUnitConfig &f = cfg.fill;
    w.beginObject("fill");
    w.field("latency", f.latency);
    w.field("packTraces", f.packTraces);
    w.field("alignLoopHeads", f.alignLoopHeads);
    w.field("restartAtMissTargets", f.restartAtMissTargets);
    w.field("promoteBranches", f.promoteBranches);
    w.field("maxInsts", f.maxInsts);
    w.field("maxCondBranches", f.maxCondBranches);
    w.beginObject("opts");
    w.field("markMoves", f.opts.markMoves);
    w.field("reassociate", f.opts.reassociate);
    w.field("scaledAdds", f.opts.scaledAdds);
    w.field("placement", f.opts.placement);
    w.field("deadCodeElim", f.opts.deadCodeElim);
    w.beginObject("reassoc");
    w.field("crossBlockOnly", f.opts.reassocOptions.crossBlockOnly);
    w.field("foldMemDisplacement",
            f.opts.reassocOptions.foldMemDisplacement);
    w.endObject();
    w.endObject();
    w.beginObject("policy");
    w.field("kind", fillPolicyKindName(f.policy.kind));
    w.field("maxPhases", f.policy.maxPhases);
    w.field("windowInsts", f.policy.windowInsts);
    w.field("newPhaseDist", f.policy.newPhaseDist);
    w.field("hysteresis", f.policy.hysteresis);
    w.field("oracleMap", f.policy.oracleMap);
    w.endObject();
    w.endObject();

    w.beginObject("tcache");
    w.field("entries", static_cast<std::uint64_t>(cfg.tcache.entries));
    w.field("ways", static_cast<std::uint64_t>(cfg.tcache.ways));
    w.field("moveBits", cfg.tcache.moveBits);
    w.field("scaledBits", cfg.tcache.scaledBits);
    w.field("placementBits", cfg.tcache.placementBits);
    w.endObject();

    w.beginObject("mem");
    cacheToJson(w, "l1i", cfg.mem.l1i);
    cacheToJson(w, "l1d", cfg.mem.l1d);
    cacheToJson(w, "l2", cfg.mem.l2);
    w.field("l2Latency", cfg.mem.l2Latency);
    w.field("memLatency", cfg.mem.memLatency);
    w.field("memBusOccupancy", cfg.mem.memBusOccupancy);
    w.endObject();

    w.beginObject("bpred");
    w.field("pht0Entries",
            static_cast<std::uint64_t>(cfg.bpred.pht0Entries));
    w.field("pht1Entries",
            static_cast<std::uint64_t>(cfg.bpred.pht1Entries));
    w.field("pht2Entries",
            static_cast<std::uint64_t>(cfg.bpred.pht2Entries));
    w.field("historyBits", cfg.bpred.historyBits);
    w.endObject();

    w.beginObject("bias");
    w.field("entries", static_cast<std::uint64_t>(cfg.bias.entries));
    w.field("promoteThreshold", cfg.bias.promoteThreshold);
    w.endObject();

    w.beginObject("core");
    w.field("numClusters", cfg.core.numClusters);
    w.field("fusPerCluster", cfg.core.fusPerCluster);
    w.field("rsEntries", cfg.core.rsEntries);
    w.field("crossClusterDelay", cfg.core.crossClusterDelay);
    w.field("scheduler",
            cfg.core.scheduler == SchedulerKind::Scan ? "scan"
                                                      : "wakeup");
    w.endObject();
    w.endObject();
}

bool
configFromJson(const obs::JsonValue &v, SimConfig &out,
               std::string &err)
{
    out = SimConfig{};
    Scope s(v, "config", err);
    s.string("name", out.name);
    s.boolean("useTraceCache", out.useTraceCache);
    s.boolean("inactiveIssue", out.inactiveIssue);
    s.integer("fetchWidth", out.fetchWidth);
    s.integer("fetchQueueLines", out.fetchQueueLines);
    s.integer("retireWidth", out.retireWidth);
    s.integer("windowCap", out.windowCap);
    s.integer("rasDepth", out.rasDepth);
    s.integer("maxInsts", out.maxInsts);
    s.integer("maxCycles", out.maxCycles);
    s.integer("statsInterval", out.statsInterval);
    s.integer("statsPhases", out.statsPhases);

    if (const obs::JsonValue *fill = s.member("fill")) {
        FillUnitConfig &f = out.fill;
        Scope fs(*fill, "config.fill", err);
        fs.integer("latency", f.latency);
        fs.boolean("packTraces", f.packTraces);
        fs.boolean("alignLoopHeads", f.alignLoopHeads);
        fs.boolean("restartAtMissTargets", f.restartAtMissTargets);
        fs.boolean("promoteBranches", f.promoteBranches);
        fs.integer("maxInsts", f.maxInsts);
        fs.integer("maxCondBranches", f.maxCondBranches);
        if (const obs::JsonValue *opts = fs.member("opts")) {
            Scope os(*opts, "config.fill.opts", err);
            os.boolean("markMoves", f.opts.markMoves);
            os.boolean("reassociate", f.opts.reassociate);
            os.boolean("scaledAdds", f.opts.scaledAdds);
            os.boolean("placement", f.opts.placement);
            os.boolean("deadCodeElim", f.opts.deadCodeElim);
            if (const obs::JsonValue *re = os.member("reassoc")) {
                Scope rs(*re, "config.fill.opts.reassoc", err);
                rs.boolean("crossBlockOnly",
                           f.opts.reassocOptions.crossBlockOnly);
                rs.boolean("foldMemDisplacement",
                           f.opts.reassocOptions.foldMemDisplacement);
                if (!rs.finish())
                    return false;
            }
            if (!os.finish())
                return false;
        }
        if (const obs::JsonValue *pol = fs.member("policy")) {
            Scope ps(*pol, "config.fill.policy", err);
            std::string kind;
            if (ps.string("kind", kind)) {
                bool known = false;
                for (FillPolicyKind k :
                     {FillPolicyKind::Static, FillPolicyKind::Phase,
                      FillPolicyKind::Feedback,
                      FillPolicyKind::Oracle}) {
                    if (kind == fillPolicyKindName(k)) {
                        f.policy.kind = k;
                        known = true;
                        break;
                    }
                }
                if (!known) {
                    err = "config.fill.policy: unknown kind '" + kind +
                        "'";
                    return false;
                }
            }
            ps.integer("maxPhases", f.policy.maxPhases);
            ps.integer("windowInsts", f.policy.windowInsts);
            ps.real("newPhaseDist", f.policy.newPhaseDist);
            ps.real("hysteresis", f.policy.hysteresis);
            ps.string("oracleMap", f.policy.oracleMap);
            if (!ps.finish())
                return false;
        }
        if (!fs.finish())
            return false;
    }

    if (const obs::JsonValue *tc = s.member("tcache")) {
        Scope ts(*tc, "config.tcache", err);
        ts.integer("entries", out.tcache.entries);
        ts.integer("ways", out.tcache.ways);
        ts.boolean("moveBits", out.tcache.moveBits);
        ts.boolean("scaledBits", out.tcache.scaledBits);
        ts.boolean("placementBits", out.tcache.placementBits);
        if (!ts.finish())
            return false;
    }

    if (const obs::JsonValue *mem = s.member("mem")) {
        Scope ms(*mem, "config.mem", err);
        if (const obs::JsonValue *c = ms.member("l1i")) {
            if (!cacheFromJson(*c, "config.mem.l1i", out.mem.l1i, err))
                return false;
        }
        if (const obs::JsonValue *c = ms.member("l1d")) {
            if (!cacheFromJson(*c, "config.mem.l1d", out.mem.l1d, err))
                return false;
        }
        if (const obs::JsonValue *c = ms.member("l2")) {
            if (!cacheFromJson(*c, "config.mem.l2", out.mem.l2, err))
                return false;
        }
        ms.integer("l2Latency", out.mem.l2Latency);
        ms.integer("memLatency", out.mem.memLatency);
        ms.integer("memBusOccupancy", out.mem.memBusOccupancy);
        if (!ms.finish())
            return false;
    }

    if (const obs::JsonValue *bp = s.member("bpred")) {
        Scope bs(*bp, "config.bpred", err);
        bs.integer("pht0Entries", out.bpred.pht0Entries);
        bs.integer("pht1Entries", out.bpred.pht1Entries);
        bs.integer("pht2Entries", out.bpred.pht2Entries);
        bs.integer("historyBits", out.bpred.historyBits);
        if (!bs.finish())
            return false;
    }

    if (const obs::JsonValue *bias = s.member("bias")) {
        Scope bs(*bias, "config.bias", err);
        bs.integer("entries", out.bias.entries);
        bs.integer("promoteThreshold", out.bias.promoteThreshold);
        if (!bs.finish())
            return false;
    }

    if (const obs::JsonValue *core = s.member("core")) {
        Scope cs(*core, "config.core", err);
        cs.integer("numClusters", out.core.numClusters);
        cs.integer("fusPerCluster", out.core.fusPerCluster);
        cs.integer("rsEntries", out.core.rsEntries);
        cs.integer("crossClusterDelay", out.core.crossClusterDelay);
        std::string sched;
        if (cs.string("scheduler", sched)) {
            if (sched == "wakeup") {
                out.core.scheduler = SchedulerKind::Wakeup;
            } else if (sched == "scan") {
                out.core.scheduler = SchedulerKind::Scan;
            } else {
                err = "config.core: unknown scheduler '" + sched + "'";
                return false;
            }
        }
        if (!cs.finish())
            return false;
    }

    return s.finish();
}

} // namespace tcfill
