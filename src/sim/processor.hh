/**
 * @file
 * The cycle-level pipeline simulator as a thin composition root: it
 * owns the shared substrates (functional executor, memory hierarchy,
 * trace cache, fill unit, bias table, committed-path oracle and the
 * DynInst slab arena), wires the five first-class pipeline stages in
 * src/pipeline/ together through explicit latch structs, advances the
 * cycle counter, and assembles the SimResult from the stage stat
 * groups. The stage semantics — trace-cache/I-cache fetch with
 * multiple-branch prediction and inactive issue, rename with move
 * execution, clustered out-of-order issue, in-order retirement
 * feeding the fill unit, and checkpoint-repair misprediction
 * recovery — live in the stage classes (DESIGN.md §10).
 *
 * Timing methodology: the functional Executor supplies the committed
 * path; fetch follows it while consulting the real predictor, trace
 * cache and caches, so all speculation penalties (including the
 * inactive-issue rescue the paper's baseline relies on) are charged
 * at branch-resolution time. See DESIGN.md §3 for the wrong-path
 * modeling notes.
 */

#ifndef TCFILL_SIM_PROCESSOR_HH
#define TCFILL_SIM_PROCESSOR_HH

#include <memory>
#include <optional>
#include <string>

#include "arch/executor.hh"
#include "bpred/predictor.hh"
#include "fill/fill_unit.hh"
#include "mem/cache.hh"
#include "obs/host_prof.hh"
#include "obs/pipe_trace.hh"
#include "obs/timeline.hh"
#include "pipeline/latches.hh"
#include "pipeline/oracle.hh"
#include "pipeline/policy.hh"
#include "sim/config.hh"
#include "sim/result.hh"
#include "trace/tcache.hh"
#include "uarch/inst_pool.hh"

namespace tcfill
{

/** One simulated processor bound to a program. */
class Processor
{
  public:
    /**
     * Build the machine. @p policy may substitute any pipeline stage
     * (see pipeline::StagePolicy); null factories build the standard
     * stages.
     */
    Processor(const Program &prog, const SimConfig &cfg,
              const pipeline::StagePolicy &policy = {});

    /**
     * Build the machine around an externally owned committed-path
     * source instead of a live Executor: a trace-file ReplayExecutor,
     * a RecordingSource tee, or a functionally fast-forwarded
     * Executor (sampling). @p workload labels the result and
     * @p entry is the first fetch PC (the source's next record's PC).
     * @p src must outlive this Processor.
     */
    Processor(CommitSource &src, const std::string &workload,
              Addr entry, const SimConfig &cfg,
              const pipeline::StagePolicy &policy = {});

    /** Run to completion (or the configured caps); returns results. */
    SimResult run();

    /** Current cycle (after run: total cycles). */
    Cycle cycles() const { return cycle_; }
    InstSeqNum retired() const { return retire_->retired(); }

    const TraceCache &traceCache() const { return tcache_; }
    const FillUnit &fillUnit() const { return fill_; }
    const MemoryHierarchy &memory() const { return mem_; }

    // ---- stage views (read-only; experiments and tests) -------------
    const pipeline::FetchEngine &fetchEngine() const { return *fetch_; }
    const pipeline::DispatchRename &dispatchRename() const
    {
        return *dispatch_;
    }
    const pipeline::IssueStage &issueStage() const { return *issue_; }
    const pipeline::RetireUnit &retireUnit() const { return *retire_; }
    const pipeline::RecoveryController &recovery() const
    {
        return *recovery_;
    }

    /** Dump all registered component statistics. */
    void dumpStats(std::ostream &os);

    /** Hierarchical JSON form of the component statistics. */
    void dumpStatsJson(std::ostream &os);

    /**
     * Attach a pipeline lifecycle tracer (nullptr detaches); must be
     * called before run(). Forwarded to every stage, the execution
     * core and the fill unit. Purely observational — a traced run's
     * cycles and IPC are bit-identical to an untraced run (asserted
     * in tests/test_obs).
     */
    void setTracer(obs::PipeTracer *tracer);

    /**
     * Attach an observational per-commit callback (nullptr-like {}
     * detaches); must be set before run(). Forwarded to the retire
     * unit — see pipeline::CommitHook. Timing-invisible.
     */
    void setCommitHook(pipeline::CommitHook hook);

    /**
     * Arm the retire unit's cycles-at-retired-count probe; must be
     * set before run(). When the @p at th instruction commits, *out
     * receives the cycle count a run capped at maxInsts == @p at
     * would have reported. Timing-invisible — see
     * pipeline::RetireUnit::setRetireCycleProbe.
     */
    void setRetireCycleProbe(InstSeqNum at, Cycle *out);

    /**
     * Attach the host self-profiler (nullptr detaches); must be set
     * before run(). Wraps each stage tick in a ScopedHostTimer so
     * host.profile attributes wall-clock to stages. Observational
     * only: simulated cycles are bit-identical with or without it.
     */
    void setHostProfiler(obs::HostProfiler *prof)
    {
        host_prof_ = prof;
    }

  private:
    void doCycle();
    void doCycleProfiled();
    /**
     * Event-driven idle-cycle elision: when no latch holds work for
     * the next tick, advance cycle_ directly to the earliest cycle
     * any stage can act (fetch unblocks, a resolution event fires,
     * the window head completes, or the core selects/finalizes).
     * Pure host-time optimization — every skipped cycle is one where
     * doCycle() would have been a no-op, so the timing model and all
     * statistics are bit-identical (DESIGN.md §13).
     */
    void skipIdleCycles();
    void wireStages(const pipeline::StagePolicy &policy);

    // ---- members ----------------------------------------------------
    // Declared first so it is destroyed last: every DynInstPtr held
    // by the members below lives in storage owned by this arena.
    SlabArena inst_pool_;

    SimConfig cfg_;
    /** Live-mode Executor; empty when an external source is used. */
    std::optional<Executor> own_exec_;
    /** The committed-path source (own_exec_ or the external one). */
    CommitSource &src_;
    std::string workload_;
    Addr entry_pc_;

    MemoryHierarchy mem_;
    BiasTable bias_;
    TraceCache tcache_;
    FillUnit fill_;
    pipeline::OracleStream oracle_;

    // Inter-stage latches (see pipeline/latches.hh for the data flow).
    pipeline::FetchControl ctrl_;
    pipeline::FetchLatch fetch_latch_;
    pipeline::DispatchLatch dispatch_latch_;
    pipeline::InstWindow window_;
    pipeline::ResolutionQueue events_;

    // The five stages, wired in the constructor.
    std::unique_ptr<pipeline::IssueStage> issue_;
    std::unique_ptr<pipeline::FetchEngine> fetch_;
    std::unique_ptr<pipeline::DispatchRename> dispatch_;
    std::unique_ptr<pipeline::RetireUnit> retire_;
    std::unique_ptr<pipeline::RecoveryController> recovery_;

    Cycle cycle_ = 0;

    stats::Group stats_;

    /** Interval telemetry (cfg_.statsInterval != 0 only). */
    std::unique_ptr<obs::Timeline> timeline_;
    obs::HostProfiler *host_prof_ = nullptr;
};

/** Build, run and summarize one (program, config) pair. */
SimResult simulate(const Program &prog, const SimConfig &cfg);

} // namespace tcfill

#endif // TCFILL_SIM_PROCESSOR_HH
