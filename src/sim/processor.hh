/**
 * @file
 * The cycle-level pipeline simulator tying every substrate together:
 * trace-cache/I-cache fetch with multiple-branch prediction and
 * inactive issue, rename (with move execution), the clustered
 * out-of-order engine, in-order retirement feeding the fill unit,
 * and checkpoint-repair misprediction recovery.
 *
 * Timing methodology: the functional Executor supplies the committed
 * path; fetch follows it while consulting the real predictor, trace
 * cache and caches, so all speculation penalties (including the
 * inactive-issue rescue the paper's baseline relies on) are charged
 * at branch-resolution time. See DESIGN.md §3 for the wrong-path
 * modeling notes.
 */

#ifndef TCFILL_SIM_PROCESSOR_HH
#define TCFILL_SIM_PROCESSOR_HH

#include <deque>
#include <queue>
#include <vector>

#include "arch/executor.hh"
#include "bpred/predictor.hh"
#include "fill/fill_unit.hh"
#include "mem/cache.hh"
#include "obs/pipe_trace.hh"
#include "sim/config.hh"
#include "sim/result.hh"
#include "trace/tcache.hh"
#include "uarch/exec_core.hh"
#include "uarch/inst_pool.hh"
#include "uarch/pipe_hooks.hh"
#include "uarch/rename.hh"

namespace tcfill
{

/** One simulated processor bound to a program. */
class Processor
{
  public:
    Processor(const Program &prog, const SimConfig &cfg);

    /** Run to completion (or the configured caps); returns results. */
    SimResult run();

    /** Current cycle (after run: total cycles). */
    Cycle cycles() const { return cycle_; }
    InstSeqNum retired() const { return retired_; }

    const TraceCache &traceCache() const { return tcache_; }
    const FillUnit &fillUnit() const { return fill_; }
    const MemoryHierarchy &memory() const { return mem_; }

    /** Dump all registered component statistics. */
    void dumpStats(std::ostream &os);

    /** Hierarchical JSON form of the component statistics. */
    void dumpStatsJson(std::ostream &os);

    /**
     * Attach a pipeline lifecycle tracer (nullptr detaches); must be
     * called before run(). Forwarded to the execution core and fill
     * unit. Purely observational — a traced run's cycles and IPC are
     * bit-identical to an untraced run (asserted in tests/test_obs).
     */
    void setTracer(obs::PipeTracer *tracer);

  private:
    struct FetchLine
    {
        Cycle readyCycle = 0;
        std::vector<DynInstPtr> insts;
        bool fromTrace = false;
    };

    // ---- pipeline stages ---------------------------------------------
    void doCycle();
    void processResolutions();
    void retireStage();
    void issueStage();
    void fetchStage();

    // ---- fetch helpers --------------------------------------------------
    FetchLine buildTraceLine(const TraceSegment &seg, Cycle ready);
    FetchLine buildICacheLine(Cycle ready);
    DynInstPtr makeDynInst(const Instruction &inst, Addr pc,
                           FetchSource src, Cycle fetch_cycle);

    // ---- oracle management ---------------------------------------------
    /** Ensure >= n unfetched records exist; returns how many do. */
    std::size_t ensureOracle(std::size_t n);
    const ExecRecord &oracleAt(std::size_t i) const;
    bool oracleExhausted();

    // ---- recovery --------------------------------------------------------
    void resolveBranch(const DynInstPtr &di);
    void squashWindow(InstSeqNum lo, InstSeqNum hi, InstSeqNum rescue_lo,
                      InstSeqNum rescue_hi);

    // ---- observability ---------------------------------------------------
    /** Emit one lifecycle event for @p di (no-op without a tracer). */
    void
    traceInst(obs::PipeStage stage, const DynInst &di, Cycle cycle)
    {
        tracePipe(tracer_, stage, di, cycle);
    }

    // ---- members ----------------------------------------------------------
    // Declared first so it is destroyed last: every DynInstPtr held
    // by the members below lives in storage owned by this arena.
    SlabArena inst_pool_;

    SimConfig cfg_;
    Executor exec_;

    MemoryHierarchy mem_;
    MultiBranchPredictor bpred_;
    BiasTable bias_;
    ReturnAddressStack ras_;
    IndirectPredictor ipred_;
    TraceCache tcache_;
    FillUnit fill_;
    ExecCore core_;
    RenameTable rename_;

    // Oracle: committed-path records not yet retired. Records
    // [0, fetch_off_) are fetched and in flight; [fetch_off_, ...) are
    // available to fetch.
    std::deque<ExecRecord> oracle_;
    std::size_t fetch_off_ = 0;

    // Fetch state.
    Addr fetch_pc_ = 0;
    Cycle fetch_avail_ = 0;
    DynInstPtr stall_branch_;       ///< unresolved mispredict gating fetch
    DynInstPtr stall_serialize_;    ///< serializing inst gating fetch
    std::deque<FetchLine> fetch_queue_;

    // In-flight window, fetch order.
    std::deque<DynInstPtr> window_;

    // Branch-resolution events: (cycle, seq) min-heap.
    struct Event
    {
        Cycle cycle;
        InstSeqNum seq;
        DynInstPtr inst;
        bool operator>(const Event &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events_;

    Cycle cycle_ = 0;
    InstSeqNum seq_next_ = 1;
    InstSeqNum retired_ = 0;
    Cycle last_retire_cycle_ = 0;

    // Result counters.
    std::uint64_t mispredicts_ = 0;
    std::uint64_t rescues_ = 0;
    std::uint64_t mispredict_stall_cycles_ = 0;
    std::uint64_t dyn_moves_ = 0;
    std::uint64_t dyn_reassoc_ = 0;
    std::uint64_t dyn_scaled_ = 0;
    std::uint64_t dyn_elided_ = 0;
    std::uint64_t dyn_move_idioms_ = 0;
    std::uint64_t bypass_delayed_retired_ = 0;

    stats::Group stats_;
    obs::PipeTracer *tracer_ = nullptr;
};

/** Build, run and summarize one (program, config) pair. */
SimResult simulate(const Program &prog, const SimConfig &cfg);

} // namespace tcfill

#endif // TCFILL_SIM_PROCESSOR_HH
