#include "sim/stats_io.hh"

#include "obs/json.hh"

namespace tcfill
{

void
writeStatsJson(std::ostream &os, const std::string &generator,
               const std::vector<SimResult> &results,
               const obs::SweepProgress *sweep, bool include_host,
               const ServiceSweepSummary *service)
{
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("schema", kStatsJsonSchema);
    w.field("generator", generator);
    w.beginArray("results");
    for (const auto &r : results)
        r.toJson(w, include_host);
    w.endArray();
    if (service) {
        w.beginObject("service");
        w.field("points", service->points);
        w.field("storeHits", service->storeHits);
        w.field("memoryHits", service->memoryHits);
        w.field("computed", service->computed);
        w.endObject();
    }
    if (sweep) {
        w.beginObject("sweep");
        w.field("points", sweep->points);
        w.field("done", sweep->done);
        w.field("cacheHits", sweep->cacheHits);
        w.field("liveRuns", sweep->liveRuns);
        w.endObject();
        if (include_host) {
            w.beginObject("host");
            w.field("workers", sweep->workers);
            w.field("wallSeconds", sweep->wallSeconds);
            w.field("busySeconds", sweep->busySeconds);
            w.field("utilization", sweep->utilization());
            w.field("pointsPerSec", sweep->pointsPerSec());
            w.endObject();
        }
    }
    w.endObject();
    w.finish();
}

} // namespace tcfill
