/**
 * @file
 * Machine-readable stats emission shared by the CLI, the bench
 * drivers and the tests: one JSON document per sweep, schema
 * "tcfill-stats-v1", validated by tools/check_stats_json.py.
 *
 * Layout:
 *   {
 *     "schema": "tcfill-stats-v1",
 *     "generator": "<tool name>",
 *     "results": [ <SimResult::toJson records, submission order> ],
 *     "service": { points, storeHits, memoryHits,         // optional:
 *                  computed },                            // tcfilld runs
 *     "sweep":   { points, done, cacheHits, liveRuns },   // optional
 *     "host":    { workers, wallSeconds, busySeconds,     // optional,
 *                  utilization, pointsPerSec }            // wall-clock
 *   }
 *
 * Everything outside "host" (and the per-result "host" sections) is a
 * pure function of the simulated points and their submission order,
 * so default emission is byte-identical across reruns and across
 * SimRunner thread counts.
 */

#ifndef TCFILL_SIM_STATS_IO_HH
#define TCFILL_SIM_STATS_IO_HH

#include <ostream>
#include <string>
#include <vector>

#include "obs/progress.hh"
#include "sim/result.hh"

namespace tcfill
{

/** Schema identifier stamped into every stats JSON document. */
inline constexpr const char *kStatsJsonSchema = "tcfill-stats-v1";

/**
 * Provenance totals of a sweep served by the simulation service
 * (tools/tcfill_client): where each requested point's result came
 * from. points == storeHits + memoryHits + computed.
 */
struct ServiceSweepSummary
{
    std::uint64_t points = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t memoryHits = 0;
    std::uint64_t computed = 0;
};

/**
 * Write one stats document.
 * @param generator tool name recorded in the document.
 * @param results   per-point records, in submission order.
 * @param sweep     optional sweep counters (deterministic subset is
 *                  always written; host-side fields only with
 *                  @p include_host).
 * @param include_host include wall-clock sections (hostSeconds,
 *        worker utilization...). Leave false when byte-identical
 *        reruns matter more than throughput trajectories.
 * @param service   optional service provenance totals (sweeps served
 *        by a tcfilld daemon). Deterministic for a warm or cold
 *        store, but run-order dependent — replay comparisons strip
 *        the section (REPLAY_VOLATILE_DOC_KEYS).
 */
void writeStatsJson(std::ostream &os, const std::string &generator,
                    const std::vector<SimResult> &results,
                    const obs::SweepProgress *sweep = nullptr,
                    bool include_host = false,
                    const ServiceSweepSummary *service = nullptr);

} // namespace tcfill

#endif // TCFILL_SIM_STATS_IO_HH
