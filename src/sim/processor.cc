#include "sim/processor.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace tcfill
{

namespace
{

/** Cycles of no retirement after which we declare a model deadlock. */
constexpr Cycle kDeadlockWindow = 200000;

} // namespace

Processor::Processor(const Program &prog, const SimConfig &cfg)
    : cfg_(cfg), exec_(prog), mem_(cfg.mem), bpred_(cfg.bpred),
      bias_(cfg.bias), ras_(cfg.rasDepth), ipred_(),
      tcache_(cfg.tcache), fill_(cfg.fill, tcache_, bias_),
      core_(cfg.core, mem_), stats_("sim")
{
    fetch_pc_ = prog.entry;

    mem_.regStats(stats_);
    bpred_.regStats(stats_);
    bias_.regStats(stats_);
    tcache_.regStats(stats_);
    fill_.regStats(stats_);
    core_.regStats(stats_);
    rename_.regStats(stats_);
}

// --------------------------------------------------------------------
// Oracle management
// --------------------------------------------------------------------

std::size_t
Processor::ensureOracle(std::size_t n)
{
    while (oracle_.size() < fetch_off_ + n && !exec_.halted())
        oracle_.push_back(exec_.step());
    return oracle_.size() - fetch_off_;
}

const ExecRecord &
Processor::oracleAt(std::size_t i) const
{
    return oracle_[fetch_off_ + i];
}

bool
Processor::oracleExhausted()
{
    return ensureOracle(1) == 0;
}

// --------------------------------------------------------------------
// Dynamic instruction construction
// --------------------------------------------------------------------

DynInstPtr
Processor::makeDynInst(const Instruction &inst, Addr pc, FetchSource src,
                       Cycle fetch_cycle)
{
    // Pooled allocation: the DynInst (refcount included) comes from
    // the per-processor slab arena and recycles when the last
    // reference drops (see inst_pool.hh) — no per-instruction malloc.
    DynInstPtr di = allocDynInst(inst_pool_);
    di->seq = seq_next_++;
    di->pc = pc;
    di->inst = inst;
    di->archInst = inst;
    di->source = src;
    di->fetchCycle = fetch_cycle;
    di->latency = opInfo(inst.op).latency;
    di->isLoad = inst.isLoad();
    di->isStore = inst.isStore();
    di->isBranch = inst.isControl();
    if (di->isStore)
        di->dataOperand = static_cast<int>(inst.numSrcs()) - 1;
    return di;
}

// --------------------------------------------------------------------
// Fetch: trace cache path
// --------------------------------------------------------------------

Processor::FetchLine
Processor::buildTraceLine(const TraceSegment &seg, Cycle ready)
{
    const std::size_t n = seg.size();
    const std::size_t avail = ensureOracle(n);

    // How far the committed path matches the trace's recorded path.
    std::size_t match_len = 0;
    while (match_len < n && match_len < avail &&
           oracleAt(match_len).pc == seg.insts[match_len].pc) {
        ++match_len;
    }
    panic_if(match_len == 0, "trace line start does not match fetch PC");

    // Consult the multiple-branch predictor: the predicted exit is the
    // first internal branch predicted against the trace's direction.
    std::size_t active_len = n;
    std::ptrdiff_t mispredict_idx = -1;
    std::array<int, kSegmentMaxInsts> slot_of;
    slot_of.fill(-1);
    unsigned pred_count = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const TraceInst &ti = seg.insts[i];
        if (!ti.inst.isCondBranch())
            continue;
        const bool on_path = i < match_len;
        bool pred_dir;
        if (ti.promoted) {
            pred_dir = ti.promotedDir;
            if (on_path)
                bpred_.pushHistory(oracleAt(i).taken);
        } else {
            unsigned slot = std::min(pred_count, 2u);
            slot_of[i] = static_cast<int>(slot);
            pred_dir = bpred_.predict(ti.pc, slot);
            ++pred_count;
            // Fetch-time training with the resolved outcome (models
            // speculative history update with perfect repair; retire-
            // time training adds an in-flight staleness artifact that
            // swamps the optimization effects being measured).
            if (on_path)
                bpred_.update(ti.pc, slot, oracleAt(i).taken);
        }
        if (active_len == n && pred_dir != ti.taken)
            active_len = i + 1;
        if (on_path && mispredict_idx < 0 &&
            pred_dir != oracleAt(i).taken) {
            mispredict_idx = static_cast<std::ptrdiff_t>(i);
        }
    }

    // How much of the line issues: everything (inactive issue) or just
    // the predicted-active prefix.
    const std::size_t fetch_n =
        cfg_.inactiveIssue ? n : std::min(n, active_len);

    FetchLine line;
    line.readyCycle = ready;
    line.fromTrace = true;
    line.insts.reserve(fetch_n);

    // RAS prediction for a segment-ending return (the only place a
    // return can appear, since indirect control terminates segments).
    Addr ras_pred = kNoAddr;

    for (std::size_t i = 0; i < fetch_n; ++i) {
        const TraceInst &ti = seg.insts[i];
        const bool correct = i < match_len;

        DynInstPtr di = makeDynInst(ti.inst, ti.pc,
                                    FetchSource::TraceCache, ready);
        di->fu = ti.slot;
        di->lineIdx = static_cast<std::uint8_t>(i);
        for (unsigned k = 0; k < 3; ++k)
            di->lineDep[k] = ti.srcDep[k];
        di->moveMarked = ti.isMove;
        di->elided = ti.deadElided;
        di->moveSrcReg =
            ti.moveSrc == Instruction::kNoReg ? kRegZero : ti.moveSrc;
        di->moveSrcDep = ti.moveSrcDep;
        di->reassociated = ti.reassociated;
        di->scaled = ti.hasScale();
        di->promotedBranch = ti.promoted;
        di->predSlot = slot_of[i];
        di->onCorrectPath = correct;
        di->inactive = i >= active_len;

        if (correct) {
            const ExecRecord &rec = oracleAt(i);
            di->archInst = rec.inst;
            di->nextPc = rec.nextPc;
            di->taken = rec.taken;
            di->effAddr = rec.effAddr;
            di->moveIdiom = moveSource(rec.inst).has_value();

            // Return address stack tracks the committed path.
            if (rec.inst.isCall())
                ras_.push(rec.pc + 4);
            else if (rec.inst.isReturn())
                ras_pred = ras_.pop();
        } else {
            di->taken = ti.taken;
        }
        line.insts.push_back(std::move(di));
    }

    // End-of-segment indirect control: predict the next fetch address
    // through the RAS (returns) or the indirect predictor (computed
    // jumps / indirect calls). Only meaningful when predictions
    // follow the whole trace and the trace matched to its end.
    if (active_len == n && match_len == n &&
        seg.insts[n - 1].inst.isIndirect()) {
        const TraceInst &last = seg.insts[n - 1];
        Addr target =
            last.inst.isReturn() ? ras_pred : ipred_.predict(last.pc);
        if (mispredict_idx < 0 && target != oracleAt(n - 1).nextPc)
            mispredict_idx = static_cast<std::ptrdiff_t>(n) - 1;
        if (!last.inst.isReturn())
            ipred_.update(last.pc, oracleAt(n - 1).nextPc);
    }

    // Attach misprediction / inactive-issue metadata to branches.
    const std::size_t consumed = std::min(fetch_n, match_len);
    if (mispredict_idx >= 0) {
        auto bi = static_cast<std::size_t>(mispredict_idx);
        panic_if(bi >= line.insts.size(),
                 "mispredicted branch outside the fetched prefix");
        DynInstPtr &br = line.insts[bi];
        br->mispredicted = true;
        ++mispredicts_;

        const bool rescue = cfg_.inactiveIssue &&
            bi + 1 == active_len && match_len > active_len;
        if (rescue) {
            br->rescueLo = line.insts[active_len]->seq;
            br->rescueHi = line.insts[match_len - 1]->seq + 1;
            br->redirectPc = oracleAt(match_len - 1).nextPc;
            ++rescues_;
        } else {
            br->redirectPc = oracleAt(bi).nextPc;
        }
        stall_branch_ = br;
    } else {
        // Invariant: match_len >= 1 (checked at entry) and
        // fetch_n >= 1, so at least one oracle record was consumed
        // and the no-mispredict redirect always follows the committed
        // path. A predicted exit address influences timing only
        // through mispredict detection, never through this redirect.
        panic_if(consumed == 0,
                 "no-mispredict redirect with nothing consumed");
        fetch_pc_ = oracleAt(consumed - 1).nextPc;
    }

    // The predicted-exit branch discards trailing inactive work when
    // its prediction was right.
    if (active_len < fetch_n) {
        DynInstPtr &exit_br = line.insts[active_len - 1];
        exit_br->discardLo = line.insts[active_len]->seq;
        exit_br->discardHi = line.insts[fetch_n - 1]->seq + 1;
    }

    // Serializing instructions gate fetch until they retire.
    for (const auto &di : line.insts) {
        if (di->onCorrectPath && di->inst.isSerializing()) {
            stall_serialize_ = di;
            break;
        }
    }

    fetch_off_ += consumed;
    return line;
}

// --------------------------------------------------------------------
// Fetch: supporting instruction cache path
// --------------------------------------------------------------------

Processor::FetchLine
Processor::buildICacheLine(Cycle ready)
{
    FetchLine line;
    line.readyCycle = ready;
    line.fromTrace = false;

    const std::size_t line_bytes = cfg_.mem.l1i.lineBytes;
    std::size_t i = 0;
    Addr pc = fetch_pc_;
    Addr ras_pred = kNoAddr;

    while (i < cfg_.fetchWidth) {
        if (ensureOracle(i + 1) <= i)
            break;  // program ends here
        const ExecRecord &rec = oracleAt(i);
        panic_if(rec.pc != pc, "I-cache fetch diverged from oracle");

        DynInstPtr di = makeDynInst(rec.inst, rec.pc,
                                    FetchSource::InstCache, ready);
        di->missLineStart = i == 0;
        di->fu = static_cast<int>(i % core_.numFus());
        di->nextPc = rec.nextPc;
        di->taken = rec.taken;
        di->effAddr = rec.effAddr;
        di->moveIdiom = moveSource(rec.inst).has_value();
        line.insts.push_back(di);
        ++i;

        if (rec.inst.isCall())
            ras_.push(rec.pc + 4);
        else if (rec.inst.isReturn())
            ras_pred = ras_.pop();

        if (rec.inst.isControl() || rec.inst.isSerializing()) {
            // One block per cycle: stop at the first control-flow or
            // serializing instruction.
            break;
        }
        pc += 4;
        if ((pc & (line_bytes - 1)) == 0)
            break;  // crossed the I-cache line
    }

    if (line.insts.empty())
        return line;

    // Resolve the fetch redirection for the block-ending instruction.
    DynInstPtr last = line.insts.back();
    const Instruction &li = last->inst;
    bool mispred = false;
    if (li.isCondBranch()) {
        last->predSlot = 0;
        bool pred = bpred_.predict(last->pc, 0);
        mispred = pred != last->taken;
        bpred_.update(last->pc, 0, last->taken);
    } else if (li.isIndirect()) {
        Addr target =
            li.isReturn() ? ras_pred : ipred_.predict(last->pc);
        mispred = target != last->nextPc;
        if (!li.isReturn())
            ipred_.update(last->pc, last->nextPc);
    }

    if (mispred) {
        last->mispredicted = true;
        last->redirectPc = last->nextPc;
        stall_branch_ = last;
        ++mispredicts_;
    } else {
        fetch_pc_ = last->nextPc;
    }

    if (last->inst.isSerializing())
        stall_serialize_ = last;

    fetch_off_ += line.insts.size();
    return line;
}

// --------------------------------------------------------------------
// Pipeline stages
// --------------------------------------------------------------------

void
Processor::fetchStage()
{
    if (stall_branch_ || stall_serialize_)
        return;
    if (cycle_ < fetch_avail_)
        return;
    if (fetch_queue_.size() >= cfg_.fetchQueueLines)
        return;
    if (oracleExhausted())
        return;

    panic_if(oracleAt(0).pc != fetch_pc_,
             "fetch PC 0x%llx diverged from committed path 0x%llx",
             static_cast<unsigned long long>(fetch_pc_),
             static_cast<unsigned long long>(oracleAt(0).pc));

    // Path-associative lookup with MRU way selection. (Prediction-
    // directed selection is a tempting alternative, but picking the
    // way the predictor agrees with defeats inactive issue: the trace
    // can then never carry the correct path past a mispredicted exit,
    // so every mispredict pays the full resolution latency. MRU keeps
    // the most recent path in the line, and inactive issue covers the
    // prediction/trace disagreements — measurably better.)
    FetchLine line;
    if (cfg_.useTraceCache) {
        if (const TraceSegment *seg = tcache_.lookup(fetch_pc_)) {
            line = buildTraceLine(*seg, cycle_);
            fetch_avail_ = cycle_ + 1;
#if TCFILL_PIPE_TRACE_ENABLED
            if (tracer_) {
                for (const auto &di : line.insts)
                    traceInst(obs::PipeStage::Fetch, *di,
                              di->fetchCycle);
            }
#endif
            if (!line.insts.empty())
                fetch_queue_.push_back(std::move(line));
            return;
        }
    }

    // Trace cache miss: fetch one block through the supporting
    // instruction cache.
    Cycle done = mem_.accessInst(fetch_pc_, cycle_);
    line = buildICacheLine(done);
    fetch_avail_ = done + 1;
#if TCFILL_PIPE_TRACE_ENABLED
    if (tracer_) {
        for (const auto &di : line.insts)
            traceInst(obs::PipeStage::Fetch, *di, di->fetchCycle);
    }
#endif
    if (!line.insts.empty())
        fetch_queue_.push_back(std::move(line));
}

void
Processor::issueStage()
{
    if (fetch_queue_.empty())
        return;
    FetchLine &line = fetch_queue_.front();
    if (cycle_ < line.readyCycle + 1)
        return;

    // Structural checks: window capacity and reservation stations.
    if (window_.size() + line.insts.size() > cfg_.windowCap)
        return;
    std::array<unsigned, 64> need{};
    for (const auto &di : line.insts) {
        if (!di->moveMarked && !di->elided)
            ++need[static_cast<unsigned>(di->fu) % 64];
    }
    for (unsigned fu = 0; fu < core_.numFus(); ++fu) {
        if (need[fu] > core_.rsFree(fu))
            return;
    }

    // Phase 1: resolve source operands. Trace lines read all live-ins
    // against the line-entry mapping (explicit dependency marking
    // makes parallel rename possible); I-cache lines rename serially.
    if (line.fromTrace) {
        for (auto &di : line.insts) {
            di->numSrcs = di->inst.numSrcs();
            for (unsigned k = 0; k < di->numSrcs; ++k) {
                std::int8_t d = di->lineDep[k];
                if (d >= 0) {
                    DynInstPtr p = line.insts[static_cast<std::size_t>(d)];
                    di->src[k] = p->moveMarked ? p->moveAlias
                                               : Operand{p, 0};
                } else {
                    di->src[k] = rename_.read(di->inst.srcReg(k));
                }
#ifdef TCFILL_SQUASH_AUDIT
                if (di->src[k].producer &&
                    (di->src[k].producer->squashed() ||
                     di->src[k].producer->inactive)) {
                    std::fprintf(stderr,
                        "AUDIT-ISSUE cycle=%llu consumer seq=%llu "
                        "pc=0x%llx '%s' src%u dep=%d -> producer "
                        "seq=%llu pc=0x%llx sq=%d inact=%d\n",
                        (unsigned long long)cycle_,
                        (unsigned long long)di->seq,
                        (unsigned long long)di->pc,
                        disassemble(di->inst).c_str(), k,
                        (int)di->lineDep[k],
                        (unsigned long long)di->src[k].producer->seq,
                        (unsigned long long)di->src[k].producer->pc,
                        di->src[k].producer->squashed() ? 1 : 0,
                        di->src[k].producer->inactive ? 1 : 0);
                }
#endif
            }
            if (di->moveMarked) {
                std::int8_t d = di->moveSrcDep;
                if (d >= 0) {
                    DynInstPtr p = line.insts[static_cast<std::size_t>(d)];
                    di->moveAlias = p->moveMarked ? p->moveAlias
                                                  : Operand{p, 0};
                } else {
                    di->moveAlias = rename_.read(di->moveSrcReg);
                }
            }
        }
        // Phase 2: apply destination mappings in program order.
        for (auto &di : line.insts) {
            di->issueCycle = cycle_;
            traceInst(obs::PipeStage::Rename, *di, cycle_);
            traceInst(obs::PipeStage::Issue, *di, cycle_);
            if (di->elided) {
                // Dead write: completes at issue, maps nothing (its
                // same-region overwriter later in this line supplies
                // the register's next mapping).
                di->completeCycle = cycle_;
                di->phase = InstPhase::Complete;
                traceInst(obs::PipeStage::Complete, *di, cycle_);
            } else if (di->moveMarked) {
                di->completeCycle = cycle_;
                di->phase = InstPhase::Complete;
                traceInst(obs::PipeStage::Complete, *di, cycle_);
                if (!di->inactive)
                    rename_.alias(di->inst.dest, di->moveAlias);
                if (di->isBranch)
                    panic("marked move cannot be a branch");
            } else {
                if (di->inst.hasDest() && !di->inactive)
                    rename_.write(di->inst.dest, di);
                core_.dispatch(di);
            }
            window_.push_back(di);
        }
    } else {
        for (auto &di : line.insts) {
            di->issueCycle = cycle_;
            di->numSrcs = di->inst.numSrcs();
            for (unsigned k = 0; k < di->numSrcs; ++k)
                di->src[k] = rename_.read(di->inst.srcReg(k));
            traceInst(obs::PipeStage::Rename, *di, cycle_);
            traceInst(obs::PipeStage::Issue, *di, cycle_);
            if (di->inst.hasDest())
                rename_.write(di->inst.dest, di);
            core_.dispatch(di);
            window_.push_back(di);
        }
    }

    fetch_queue_.pop_front();
}

void
Processor::retireStage()
{
    unsigned count = 0;
    while (!window_.empty()) {
        DynInstPtr di = window_.front();
        if (di->squashed()) {
            window_.pop_front();    // squashed slots retire for free
            continue;
        }
        if (count >= cfg_.retireWidth)
            break;
        if (di->phase != InstPhase::Complete ||
            di->completeCycle > cycle_) {
            break;
        }
        if (di->inactive)
            break;  // must be activated by its branch first
        panic_if(!di->onCorrectPath,
                 "retiring a wrong-path instruction");

        window_.pop_front();
        ++count;
        ++retired_;
        last_retire_cycle_ = cycle_;
        traceInst(obs::PipeStage::Retire, *di, cycle_);

        // Predictors train at fetch (see buildTraceLine); retirement
        // only drives the fill unit and bookkeeping.
        if (di->isStore)
            core_.retireStore(di);

        // Feed the fill unit the architectural instruction.
        ExecRecord rec;
        rec.seq = di->seq;
        rec.pc = di->pc;
        rec.nextPc = di->nextPc;
        rec.inst = di->archInst;
        rec.taken = di->taken;
        rec.effAddr = di->effAddr;
        fill_.retire(rec, cycle_, di->missLineStart);

        // Dynamic optimization accounting (Table 2, figures 3-5, 7).
        if (di->moveMarked)
            ++dyn_moves_;
        if (di->reassociated)
            ++dyn_reassoc_;
        if (di->scaled)
            ++dyn_scaled_;
        if (di->elided)
            ++dyn_elided_;
        if (di->moveIdiom)
            ++dyn_move_idioms_;
        if (di->bypassDelayed)
            ++bypass_delayed_retired_;

        if (di == stall_serialize_)
            stall_serialize_ = nullptr;

        panic_if(oracle_.empty(), "oracle underflow at retire");
        panic_if(oracle_.front().pc != di->pc,
                 "retired 0x%llx but oracle front is 0x%llx",
                 static_cast<unsigned long long>(di->pc),
                 static_cast<unsigned long long>(oracle_.front().pc));
        oracle_.pop_front();
        --fetch_off_;

        if (cfg_.maxInsts && retired_ >= cfg_.maxInsts)
            return;
    }
}

// --------------------------------------------------------------------
// Branch resolution & recovery
// --------------------------------------------------------------------

void
Processor::squashWindow(InstSeqNum lo, InstSeqNum hi,
                        InstSeqNum rescue_lo, InstSeqNum rescue_hi)
{
    for (auto &di : window_) {
        if (di->seq < lo || di->seq >= hi)
            continue;
        if (di->seq >= rescue_lo && di->seq < rescue_hi)
            continue;
        di->phase = InstPhase::Squashed;
        traceInst(obs::PipeStage::Squash, *di, cycle_);
    }
    core_.squashRange(lo, hi, rescue_lo, rescue_hi);

#ifdef TCFILL_SQUASH_AUDIT
    for (auto &di : window_) {
        if (di->squashed())
            continue;
        for (unsigned k = 0; k < di->numSrcs; ++k) {
            const Operand &op = di->src[k];
            if (op.producer && op.producer->squashed() &&
                op.producer->completeCycle == kNoCycle) {
                std::fprintf(stderr,
                    "AUDIT cycle=%llu squash[%llu,%llu) rescue[%llu,%llu)"
                    " survivor seq=%llu pc=0x%llx '%s' act=%d cor=%d"
                    " src%u -> squashed seq=%llu pc=0x%llx '%s'\n",
                    (unsigned long long)cycle_,
                    (unsigned long long)lo, (unsigned long long)hi,
                    (unsigned long long)rescue_lo,
                    (unsigned long long)rescue_hi,
                    (unsigned long long)di->seq,
                    (unsigned long long)di->pc,
                    disassemble(di->inst).c_str(), di->inactive ? 0 : 1,
                    di->onCorrectPath ? 1 : 0, k,
                    (unsigned long long)op.producer->seq,
                    (unsigned long long)op.producer->pc,
                    disassemble(op.producer->inst).c_str());
            }
        }
    }
#endif
}

void
Processor::resolveBranch(const DynInstPtr &di)
{
#ifdef TCFILL_SQUASH_AUDIT
    std::fprintf(stderr,
        "AUDIT-RESOLVE cycle=%llu seq=%llu pc=0x%llx sq=%d misp=%d "
        "rescue[%llu,%llu) discard[%llu,%llu)\n",
        (unsigned long long)cycle_, (unsigned long long)di->seq,
        (unsigned long long)di->pc, di->squashed() ? 1 : 0,
        di->mispredicted ? 1 : 0,
        (unsigned long long)di->rescueLo,
        (unsigned long long)di->rescueHi,
        (unsigned long long)di->discardLo,
        (unsigned long long)di->discardHi);
#endif
    if (di->squashed())
        return;

    if (di->mispredicted) {
        squashWindow(di->seq + 1, ~InstSeqNum(0), di->rescueLo,
                     di->rescueHi);
        // Activate the rescued inactive instructions (inactive issue's
        // payoff: the correct continuation is already in flight).
        if (di->rescueHi > di->rescueLo) {
            for (auto &w : window_) {
                if (w->seq >= di->rescueLo && w->seq < di->rescueHi)
                    w->inactive = false;
            }
        }
        rename_.rebuild(window_);
        fetch_pc_ = di->redirectPc;
        fetch_avail_ = std::max(fetch_avail_, cycle_ + 1);
        mispredict_stall_cycles_ += cycle_ - di->fetchCycle;
        // Drop any younger lines still waiting to issue (there are
        // none in the common case because fetch stalls, but a line
        // fetched the same cycle the mispredict was detected could
        // linger).
        while (!fetch_queue_.empty() &&
               !fetch_queue_.back().insts.empty() &&
               fetch_queue_.back().insts.front()->seq > di->seq) {
            fetch_queue_.pop_back();
        }
        if (stall_branch_ == di)
            stall_branch_ = nullptr;
        return;
    }

    // Correct prediction: discard the inactive tail, if any.
    if (di->discardHi > di->discardLo)
        squashWindow(di->discardLo, di->discardHi, 0, 0);
}

void
Processor::processResolutions()
{
    while (!events_.empty() && events_.top().cycle <= cycle_) {
        DynInstPtr di = events_.top().inst;
        events_.pop();
        if (di->isBranch || di->discardHi > di->discardLo)
            resolveBranch(di);
    }
}

// --------------------------------------------------------------------
// Main loop
// --------------------------------------------------------------------

void
Processor::doCycle()
{
    fill_.tick(cycle_);
    processResolutions();
    retireStage();
    issueStage();
    fetchStage();
    core_.tick(cycle_, [this](const DynInstPtr &di) {
        if (di->isBranch || di->discardHi > di->discardLo ||
            di->mispredicted) {
            events_.push({di->completeCycle, di->seq, di});
        }
    });
    ++cycle_;
}

SimResult
Processor::run()
{
    const auto wall_start = std::chrono::steady_clock::now();
    while (true) {
        if (cfg_.maxInsts && retired_ >= cfg_.maxInsts)
            break;
        if (cfg_.maxCycles && cycle_ >= cfg_.maxCycles)
            break;
        if (exec_.halted() && window_.empty() && fetch_queue_.empty() &&
            fetch_off_ >= oracle_.size() && oracle_.empty()) {
            break;
        }
        if (cycle_ - last_retire_cycle_ > kDeadlockWindow &&
            !window_.empty()) {
            const DynInst &f = *window_.front();
            std::string ops;
            for (unsigned k = 0; k < f.numSrcs; ++k) {
                const Operand &op = f.src[k];
                char buf[96];
                if (op.producer) {
                    std::snprintf(buf, sizeof(buf),
                        " src%u<-seq%llu(ph%d,cc%lld)", k,
                        static_cast<unsigned long long>(
                            op.producer->seq),
                        static_cast<int>(op.producer->phase),
                        op.producer->completeCycle == kNoCycle
                            ? -1LL
                            : static_cast<long long>(
                                  op.producer->completeCycle));
                } else {
                    std::snprintf(buf, sizeof(buf), " src%u@%llu", k,
                        static_cast<unsigned long long>(op.rfAvail));
                }
                ops += buf;
            }
            panic("no retirement for %llu cycles: model deadlock "
                  "(window=%zu, front pc=0x%llx '%s' seq=%llu phase=%d "
                  "inactive=%d correct=%d fu=%d issue=%lld cc=%lld%s)",
                  static_cast<unsigned long long>(kDeadlockWindow),
                  window_.size(),
                  static_cast<unsigned long long>(f.pc),
                  disassemble(f.inst).c_str(),
                  static_cast<unsigned long long>(f.seq),
                  static_cast<int>(f.phase), f.inactive ? 1 : 0,
                  f.onCorrectPath ? 1 : 0, f.fu,
                  f.issueCycle == kNoCycle
                      ? -1LL
                      : static_cast<long long>(f.issueCycle),
                  f.completeCycle == kNoCycle
                      ? -1LL
                      : static_cast<long long>(f.completeCycle),
                  ops.c_str());
        }
        doCycle();
    }

    SimResult res;
    res.config = cfg_.name;
    res.workload = exec_.program().name;
    res.retired = retired_;
    res.cycles = cycle_;
    res.hostSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - wall_start).count();
    res.tcHits = tcache_.hits();
    res.tcMisses = tcache_.misses();
    res.mispredicts = mispredicts_;
    res.inactiveRescues = rescues_;
    res.mispredictStallCycles = mispredict_stall_cycles_;
    res.segmentsBuilt = fill_.segmentsBuilt();
    res.avgSegmentLength = fill_.avgSegmentLength();
    res.bpredAccuracy =
        stats_.has("bpred.accuracy") ? stats_.value("bpred.accuracy")
                                     : 0.0;
    res.dynMoves = dyn_moves_;
    res.dynReassoc = dyn_reassoc_;
    res.dynScaled = dyn_scaled_;
    res.dynElided = dyn_elided_;
    res.dynMoveIdioms = dyn_move_idioms_;
    res.bypassDelayed = bypass_delayed_retired_;
    return res;
}

void
Processor::dumpStats(std::ostream &os)
{
    stats_.dump(os);
}

void
Processor::dumpStatsJson(std::ostream &os)
{
    stats_.dumpJson(os);
}

void
Processor::setTracer(obs::PipeTracer *tracer)
{
    tracer_ = tracer;
    core_.setTracer(tracer);
    fill_.setTracer(tracer);
}

SimResult
simulate(const Program &prog, const SimConfig &cfg)
{
    Processor proc(prog, cfg);
    return proc.run();
}

} // namespace tcfill
