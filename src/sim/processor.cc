#include "sim/processor.hh"

#include <algorithm>
#include <chrono>

namespace tcfill
{

// --------------------------------------------------------------------
// Construction: wire the stages through the latches
// --------------------------------------------------------------------

Processor::Processor(const Program &prog, const SimConfig &cfg,
                     const pipeline::StagePolicy &policy)
    : cfg_(cfg), own_exec_(std::in_place, prog), src_(*own_exec_),
      workload_(prog.name), entry_pc_(prog.entry), mem_(cfg.mem),
      bias_(cfg.bias), tcache_(cfg.tcache),
      fill_(cfg.fill, tcache_, bias_), oracle_(src_), stats_("sim")
{
    wireStages(policy);
}

Processor::Processor(CommitSource &src, const std::string &workload,
                     Addr entry, const SimConfig &cfg,
                     const pipeline::StagePolicy &policy)
    : cfg_(cfg), src_(src), workload_(workload), entry_pc_(entry),
      mem_(cfg.mem), bias_(cfg.bias), tcache_(cfg.tcache),
      fill_(cfg.fill, tcache_, bias_), oracle_(src_), stats_("sim")
{
    wireStages(policy);
}

void
Processor::wireStages(const pipeline::StagePolicy &policy)
{
    ctrl_.pc = entry_pc_;

    // The issue stage goes first: fetch needs its FU count for
    // round-robin I-cache slotting.
    pipeline::IssueEnv issue_env{cfg_.core, mem_, dispatch_latch_,
                                 events_};
    issue_ = policy.makeIssue
                 ? policy.makeIssue(issue_env)
                 : std::make_unique<pipeline::IssueStage>(issue_env);

    pipeline::FetchEnv fetch_env{cfg_,    oracle_,      inst_pool_,
                                 mem_,    tcache_,      ctrl_,
                                 fetch_latch_, issue_->numFus()};
    fetch_ = policy.makeFetch
                 ? policy.makeFetch(fetch_env)
                 : std::make_unique<pipeline::FetchEngine>(fetch_env);

    pipeline::DispatchEnv dispatch_env{cfg_, fetch_latch_,
                                       dispatch_latch_, window_,
                                       *issue_};
    dispatch_ =
        policy.makeDispatch
            ? policy.makeDispatch(dispatch_env)
            : std::make_unique<pipeline::DispatchRename>(dispatch_env);

    pipeline::RetireEnv retire_env{cfg_, window_, oracle_,
                                   fill_, *issue_, ctrl_};
    retire_ = policy.makeRetire
                  ? policy.makeRetire(retire_env)
                  : std::make_unique<pipeline::RetireUnit>(retire_env);

    pipeline::RecoveryEnv recovery_env{window_, dispatch_->renameTable(),
                                       ctrl_,   fetch_latch_,
                                       *issue_, events_};
    recovery_ = policy.makeRecovery
                    ? policy.makeRecovery(recovery_env)
                    : std::make_unique<pipeline::RecoveryController>(
                          recovery_env);

    // Registration order fixes the text/JSON stats layout; keep it
    // stable (the golden-fixture CI job compares bytes).
    mem_.regStats(stats_);
    fetch_->regStats(stats_);    // bpred.* + fetch.*
    bias_.regStats(stats_);
    tcache_.regStats(stats_);
    fill_.regStats(stats_);
    issue_->regStats(stats_);    // core.* + issue.*
    dispatch_->regStats(stats_); // rename.* + dispatch.*
    retire_->regStats(stats_);
    recovery_->regStats(stats_);

    // Interval telemetry: built after registration so the collector
    // sees the full (ordered) timing-counter column set.
    if (cfg_.statsInterval != 0) {
        timeline_ = std::make_unique<obs::Timeline>(
            stats_, cfg_.statsInterval, cfg_.statsPhases);
        retire_->setTimeline(timeline_.get());
        // Record the active pass mask per interval, but only for
        // adaptive policies: static runs must keep their serialized
        // timeline bytes (golden fixtures pin them).
        if (cfg_.fill.policy.kind != FillPolicyKind::Static)
            timeline_->setMaskProbe(fill_.activeMaskPtr());
    }
}

// --------------------------------------------------------------------
// Main loop
// --------------------------------------------------------------------

void
Processor::doCycle()
{
    if (host_prof_) {
        doCycleProfiled();
        return;
    }
    fill_.tick(cycle_);
    recovery_->tick(cycle_);
    retire_->tick(cycle_);
    dispatch_->tick(cycle_);
    issue_->dispatchPending();
    fetch_->tick(cycle_);
    issue_->tick(cycle_);
    ++cycle_;
}

void
Processor::doCycleProfiled()
{
    using obs::HostSection;
    using obs::ScopedHostTimer;
    {
        ScopedHostTimer t(host_prof_, HostSection::Fill);
        fill_.tick(cycle_);
    }
    {
        ScopedHostTimer t(host_prof_, HostSection::Recovery);
        recovery_->tick(cycle_);
    }
    {
        ScopedHostTimer t(host_prof_, HostSection::Retire);
        retire_->tick(cycle_);
    }
    {
        ScopedHostTimer t(host_prof_, HostSection::Dispatch);
        dispatch_->tick(cycle_);
    }
    {
        ScopedHostTimer t(host_prof_, HostSection::Issue);
        issue_->dispatchPending();
    }
    {
        ScopedHostTimer t(host_prof_, HostSection::Fetch);
        fetch_->tick(cycle_);
    }
    {
        ScopedHostTimer t(host_prof_, HostSection::Issue);
        issue_->tick(cycle_);
    }
    ++cycle_;
}


void
Processor::skipIdleCycles()
{
    const Cycle next = cycle_;  // first unsimulated cycle
    Cycle wake = kNoCycle;

    // Fetch: eligible as soon as the front end is unstalled, the
    // latch has room and the oracle still has instructions; its next
    // action is at avail.
    if (!ctrl_.stalled() &&
        fetch_latch_.size() < cfg_.fetchQueueLines &&
        !oracle_.exhausted()) {
        wake = std::max(ctrl_.avail, next);
        if (wake <= next)
            return;
    }
    // Dispatch: the latch front renames at readyCycle + 1. A ready
    // line blocked only by window capacity imposes no bound of its
    // own — retirement frees the window, and retire ticks before
    // dispatch, so skipping to the retire bound is exact.
    if (!fetch_latch_.empty()) {
        const pipeline::FetchLine &line = fetch_latch_.lines.front();
        const Cycle renames = line.readyCycle + 1;
        if (renames > next) {
            wake = std::min(wake, renames);
        } else if (window_.size() + line.insts.size() <=
                   cfg_.windowCap) {
            return;     // dispatch can act on the very next tick
        }
    }
    // The remaining sources are checked cheapest-first: any bound at
    // or before `next` means no skip, so bail before paying for the
    // core's ready-queue scan (the common case while the machine is
    // busy draining work).
    // Window head completing (or a squashed slot popping for free).
    const Cycle retires = retire_->nextRetireCycle(next);
    if (retires <= next)
        return;
    wake = std::min(wake, retires);
    // Branch-resolution events (recovery processes cycle <= now).
    if (!events_.empty()) {
        const Cycle resolves = events_.heap.top().cycle;
        if (resolves <= next)
            return;
        wake = std::min(wake, resolves);
    }
    // Core select / pending-store finalize.
    wake = std::min(wake, issue_->nextEventCycle(next));

    if (wake == kNoCycle || wake <= next)
        return;     // quiescent (deadlock path keeps stepping) or busy
    if (cfg_.maxCycles)
        wake = std::min(wake, cfg_.maxCycles);
    if (wake > cycle_)
        cycle_ = wake;
}

SimResult
Processor::run()
{
    const auto wall_start = std::chrono::steady_clock::now();
    while (true) {
        if (retire_->instCapReached())
            break;
        if (cfg_.maxCycles && cycle_ >= cfg_.maxCycles)
            break;
        if (src_.halted() && window_.empty() && fetch_latch_.empty() &&
            oracle_.drained()) {
            break;
        }
        retire_->panicIfDeadlocked(cycle_);
        doCycle();
        // Don't skip past a termination condition: the loop top must
        // observe it at exactly this cycle count (res.cycles).
        if (retire_->instCapReached() ||
            (src_.halted() && window_.empty() &&
             fetch_latch_.empty() && oracle_.drained())) {
            continue;
        }
        skipIdleCycles();
    }

    // Every counter comes out of the stats registry so a stage's
    // counter hoists automatically flow into the result.
    SimResult res;
    res.config = cfg_.name;
    res.workload = workload_;
    res.maxInsts = cfg_.maxInsts;
    res.retired = stats_.counterValue("retire.retired");
    res.cycles = cycle_;
    res.hostSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - wall_start).count();
    res.tcHits = stats_.counterValue("tcache.hits");
    res.tcMisses = stats_.counterValue("tcache.misses");
    res.mispredicts = stats_.counterValue("fetch.mispredicts");
    res.inactiveRescues = stats_.counterValue("fetch.inactive_rescues");
    res.mispredictStallCycles =
        stats_.counterValue("recovery.mispredict_stall_cycles");
    res.segmentsBuilt = stats_.counterValue("fill.segments");
    res.avgSegmentLength = fill_.avgSegmentLength();
    res.bpredAccuracy =
        stats_.has("bpred.accuracy") ? stats_.value("bpred.accuracy")
                                     : 0.0;
    res.dynMoves = stats_.counterValue("retire.dyn_moves");
    res.dynReassoc = stats_.counterValue("retire.dyn_reassoc");
    res.dynScaled = stats_.counterValue("retire.dyn_scaled");
    res.dynElided = stats_.counterValue("retire.dyn_elided");
    res.dynMoveIdioms = stats_.counterValue("retire.dyn_move_idioms");
    res.bypassDelayed = stats_.counterValue("retire.bypass_delayed");
    if (timeline_) {
        res.timeline = timeline_->finish(cycle_);
        retire_->setTimeline(nullptr);
        timeline_.reset();
    }
    // Policy decision record: only for non-static policies, so legacy
    // result documents are byte-identical to the pre-policy code.
    if (cfg_.fill.policy.kind != FillPolicyKind::Static) {
        res.policy =
            std::make_shared<const PolicySummary>(fill_.policySummary());
    }
    return res;
}

void
Processor::dumpStats(std::ostream &os)
{
    stats_.dump(os);
}

void
Processor::dumpStatsJson(std::ostream &os)
{
    stats_.dumpJson(os);
}

void
Processor::setTracer(obs::PipeTracer *tracer)
{
    fetch_->setTracer(tracer);
    dispatch_->setTracer(tracer);
    issue_->setTracer(tracer); // forwards to the ExecCore
    retire_->setTracer(tracer);
    recovery_->setTracer(tracer);
    fill_.setTracer(tracer);
}

void
Processor::setCommitHook(pipeline::CommitHook hook)
{
    retire_->setCommitHook(std::move(hook));
}

void
Processor::setRetireCycleProbe(InstSeqNum at, Cycle *out)
{
    retire_->setRetireCycleProbe(at, out);
}

SimResult
simulate(const Program &prog, const SimConfig &cfg)
{
    Processor proc(prog, cfg);
    return proc.run();
}

} // namespace tcfill
