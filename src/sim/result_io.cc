#include "sim/result_io.hh"

#include <memory>
#include <sstream>

#include "obs/json.hh"

namespace tcfill
{

namespace
{

bool
timelineFromJson(const obs::JsonValue &v, SimResult &out,
                 std::string &err)
{
    auto data = std::make_shared<obs::TimelineData>();
    obs::ObjectReader t(v, "result.timeline", err);
    std::string schema;
    if (t.string("schema", schema) &&
        schema != obs::TimelineData::schema())
        return t.error("unexpected schema '" + schema + "'");
    t.integer("interval", data->interval);
    t.integer("phases", data->phases);
    if (const obs::JsonValue *counters = t.member("counters")) {
        if (!counters->isArray())
            return t.error("'counters' is not an array");
        for (const obs::JsonValue &c : counters->arr) {
            if (!c.isString())
                return t.error("counter name is not a string");
            data->counters.push_back(c.str);
        }
    }
    if (const obs::JsonValue *ivs = t.member("intervals")) {
        if (!ivs->isArray())
            return t.error("'intervals' is not an array");
        for (const obs::JsonValue &e : ivs->arr) {
            obs::TimelineInterval iv;
            obs::ObjectReader r(e, "result.timeline.intervals", err);
            r.integer("startInst", iv.startInst);
            r.integer("insts", iv.insts);
            r.integer("startCycle", iv.startCycle);
            r.integer("cycles", iv.cycles);
            r.skip("ipc");  // derived from insts/cycles
            // Signed (-1 = untagged): route around the unsigned
            // integer() accessor.
            double phase = -1.0;
            r.real("phase", phase);
            iv.phase = static_cast<int>(phase);
            // Present exactly when the producing run had a policy
            // mask probe attached; its presence is the maskTracked
            // flag's serialized form.
            if (const obs::JsonValue *mask = r.optional("passMask")) {
                if (!mask->isNumber())
                    return r.error("'passMask' is not a number");
                iv.passMask = static_cast<int>(mask->number);
                data->maskTracked = true;
            }
            if (const obs::JsonValue *deltas = r.member("deltas")) {
                if (!deltas->isArray())
                    return r.error("'deltas' is not an array");
                for (const obs::JsonValue &d : deltas->arr) {
                    if (!d.isNumber())
                        return r.error("delta is not a number");
                    iv.deltas.push_back(d.u64());
                }
            }
            if (!r.finish())
                return false;
            data->intervals.push_back(std::move(iv));
        }
    }
    if (!t.finish())
        return false;
    out.timeline = std::move(data);
    return true;
}

bool
policyFromJson(const obs::JsonValue &v, SimResult &out,
               std::string &err)
{
    auto pol = std::make_shared<PolicySummary>();
    obs::ObjectReader p(v, "result.policy", err);
    p.string("kind", pol->kind);
    p.integer("finalMask", pol->finalMask);
    p.integer("windows", pol->windows);
    p.integer("switches", pol->switches);
    p.integer("phasesSeen", pol->phasesSeen);
    p.integer("movesMarked", pol->movesMarked);
    p.integer("reassociations", pol->reassociations);
    p.integer("scaledAdds", pol->scaledAdds);
    p.integer("deadElided", pol->deadElided);
    if (const obs::JsonValue *phases = p.member("phases")) {
        if (!phases->isArray())
            return p.error("'phases' is not an array");
        for (const obs::JsonValue &e : phases->arr) {
            PolicyPhaseStat ps;
            obs::ObjectReader r(e, "result.policy.phases", err);
            // Signed (-1 = untracked aggregate).
            double phase = -1.0;
            r.real("phase", phase);
            ps.phase = static_cast<int>(phase);
            r.integer("mask", ps.mask);
            r.integer("windows", ps.windows);
            r.integer("insts", ps.insts);
            r.integer("cycles", ps.cycles);
            r.skip("ipc");  // derived from insts/cycles
            if (!r.finish())
                return false;
            pol->phases.push_back(ps);
        }
    }
    if (!p.finish())
        return false;
    out.policy = std::move(pol);
    return true;
}

} // namespace

std::string
resultRecordText(const SimResult &r)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    r.toJson(w, /*include_host=*/false);
    return os.str();
}

bool
resultFromJson(const obs::JsonValue &v, SimResult &out,
               std::string &err)
{
    out = SimResult{};
    obs::ObjectReader r(v, "result", err);
    r.string("config", out.config);
    r.string("workload", out.workload);
    r.string("mode", out.mode);
    r.integer("maxInsts", out.maxInsts);
    r.string("cacheHit", out.cacheHit);
    r.string("sourceDigest", out.sourceDigest);
    r.integer("retired", out.retired);
    r.integer("cycles", out.cycles);
    r.skip("ipc");  // derived
    r.integer("tcHits", out.tcHits);
    r.integer("tcMisses", out.tcMisses);
    r.skip("tcHitRate");  // derived
    r.real("bpredAccuracy", out.bpredAccuracy);
    r.integer("mispredicts", out.mispredicts);
    r.integer("inactiveRescues", out.inactiveRescues);
    r.integer("mispredictStallCycles", out.mispredictStallCycles);
    r.integer("segmentsBuilt", out.segmentsBuilt);
    r.real("avgSegmentLength", out.avgSegmentLength);
    r.integer("dynMoves", out.dynMoves);
    r.integer("dynReassoc", out.dynReassoc);
    r.integer("dynScaled", out.dynScaled);
    r.integer("dynMoveIdioms", out.dynMoveIdioms);
    r.integer("dynElided", out.dynElided);
    r.integer("bypassDelayed", out.bypassDelayed);
    // The frac* family is derived from the counts above.
    r.skip("fracMoves");
    r.skip("fracReassoc");
    r.skip("fracScaled");
    r.skip("fracTransformed");
    r.skip("fracMoveIdioms");
    r.skip("fracElided");
    r.skip("fracBypassDelayed");
    if (const obs::JsonValue *tl = r.optional("timeline")) {
        if (!timelineFromJson(*tl, out, err))
            return false;
    }
    if (const obs::JsonValue *pol = r.optional("policy")) {
        if (!policyFromJson(*pol, out, err))
            return false;
    }
    // A full (non-record) result object may carry a wall-clock host
    // section; records never do. Accept and drop it.
    r.optional("host");
    return r.finish();
}

bool
resultFromRecordText(const std::string &text, SimResult &out,
                     std::string &err)
{
    auto v = obs::JsonValue::tryParse(text);
    if (!v) {
        err = "malformed result record JSON";
        return false;
    }
    return resultFromJson(*v, out, err);
}

} // namespace tcfill
