/**
 * @file
 * JSON (de)serialization of SimConfig for the tcfill-svc-v1 service
 * protocol: every behavior-affecting knob configCacheKey() covers,
 * plus the cosmetic name. The round-trip invariant — parsing a
 * serialized config reproduces the exact configCacheKey() — is what
 * lets the daemon key its persistent store off configs that crossed
 * the wire (tested per knob in tests/test_service.cc).
 *
 * Parsing is strict but non-fatal: unknown members, missing members
 * and type mismatches are reported through the error string, never by
 * aborting — a daemon must survive malformed requests.
 */

#ifndef TCFILL_SIM_CONFIG_IO_HH
#define TCFILL_SIM_CONFIG_IO_HH

#include <string>

#include "sim/config.hh"

namespace tcfill
{

namespace obs
{
class JsonWriter;
struct JsonValue;
} // namespace obs

/** Emit @p cfg as one JSON object (all knobs, fixed key order). */
void configToJson(obs::JsonWriter &w, const SimConfig &cfg);

/**
 * Parse a configToJson() object into @p out (a default SimConfig plus
 * every serialized knob). Returns false with a description in @p err
 * on any unknown / missing / mistyped member; @p out is unspecified
 * then.
 */
bool configFromJson(const obs::JsonValue &v, SimConfig &out,
                    std::string &err);

} // namespace tcfill

#endif // TCFILL_SIM_CONFIG_IO_HH
