#include "service/protocol.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/digest.hh"

namespace tcfill::service
{

namespace
{

void
putU32(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t
getU32(const char *p)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1]))
         << 8) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]))
         << 24);
}

bool
readFully(int fd, char *dst, std::size_t n, bool &sawEof)
{
    std::size_t got = 0;
    sawEof = false;
    while (got < n) {
        ssize_t r = ::read(fd, dst + got, n - got);
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r == 0) {
            sawEof = true;
            return got == 0;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
writeFully(int fd, const char *src, std::size_t n)
{
    std::size_t put = 0;
    while (put < n) {
        ssize_t r = ::write(fd, src + put, n - put);
        if (r > 0) {
            put += static_cast<std::size_t>(r);
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

std::string
encodeFrame(std::string_view payload)
{
    std::string out;
    out.reserve(payload.size() + kFrameOverhead);
    putU32(out, kFrameMagic);
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload.data(), payload.size());
    putU32(out, digest::crc32(payload.data(), payload.size()));
    return out;
}

const char *
frameStatusName(FrameStatus s)
{
    switch (s) {
      case FrameStatus::Ok: return "ok";
      case FrameStatus::NeedMore: return "need-more";
      case FrameStatus::BadMagic: return "bad-magic";
      case FrameStatus::TooLarge: return "too-large";
      case FrameStatus::BadCrc: return "bad-crc";
    }
    return "?";
}

FrameStatus
decodeFrame(std::string_view buf, std::string &payload,
            std::size_t &consumed)
{
    if (buf.size() < 8)
        return FrameStatus::NeedMore;
    if (getU32(buf.data()) != kFrameMagic)
        return FrameStatus::BadMagic;
    std::uint32_t len = getU32(buf.data() + 4);
    if (len > kMaxFramePayload)
        return FrameStatus::TooLarge;
    std::size_t total = 8 + static_cast<std::size_t>(len) + 4;
    if (buf.size() < total)
        return FrameStatus::NeedMore;
    std::uint32_t want = getU32(buf.data() + 8 + len);
    if (digest::crc32(buf.data() + 8, len) != want)
        return FrameStatus::BadCrc;
    payload.assign(buf.data() + 8, len);
    consumed = total;
    return FrameStatus::Ok;
}

const char *
wireStatusName(WireStatus s)
{
    switch (s) {
      case WireStatus::Ok: return "ok";
      case WireStatus::Eof: return "eof";
      case WireStatus::Error: return "error";
      case WireStatus::Corrupt: return "corrupt";
    }
    return "?";
}

bool
writeFrame(int fd, std::string_view payload)
{
    std::string frame = encodeFrame(payload);
    return writeFully(fd, frame.data(), frame.size());
}

WireStatus
readFrame(int fd, std::string &payload)
{
    char header[8];
    bool sawEof = false;
    if (!readFully(fd, header, sizeof(header), sawEof))
        return WireStatus::Error;
    if (sawEof)
        return WireStatus::Eof;
    if (getU32(header) != kFrameMagic)
        return WireStatus::Corrupt;
    std::uint32_t len = getU32(header + 4);
    if (len > kMaxFramePayload)
        return WireStatus::Corrupt;
    payload.resize(len);
    if (len > 0) {
        if (!readFully(fd, payload.data(), len, sawEof) || sawEof)
            return WireStatus::Error;
    }
    char trailer[4];
    if (!readFully(fd, trailer, sizeof(trailer), sawEof) || sawEof)
        return WireStatus::Error;
    if (digest::crc32(payload.data(), payload.size()) !=
        getU32(trailer))
        return WireStatus::Corrupt;
    return WireStatus::Ok;
}

} // namespace tcfill::service
