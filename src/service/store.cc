#include "service/store.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/digest.hh"
#include "common/logging.hh"
#include "tracefile/format.hh"

namespace tcfill::service
{

namespace
{

constexpr char kStoreMagic[8] = {'t', 'c', 'f', 's', 't', 'o', 'r', '1'};
constexpr std::uint32_t kStoreVersion = 1;
constexpr std::size_t kHeaderBytes = 12;

constexpr std::uint8_t kOpPut = 0x01;
constexpr std::uint8_t kOpTouch = 0x02;
constexpr std::uint8_t kOpErase = 0x03;

void
putU32(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

bool
getU32(const std::string &buf, std::size_t &pos, std::uint32_t &v)
{
    if (buf.size() - pos < 4)
        return false;
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(buf.data() + pos);
    v = static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    pos += 4;
    return true;
}

std::uint32_t
entryCrc(const std::string &key, const std::string &value)
{
    std::uint32_t crc = digest::crc32(key.data(), key.size());
    return digest::crc32(value.data(), value.size(), crc);
}

std::string
headerBytes()
{
    std::string h(kStoreMagic, sizeof(kStoreMagic));
    putU32(h, kStoreVersion);
    return h;
}

bool
writeFully(int fd, const char *src, std::size_t n)
{
    std::size_t put = 0;
    while (put < n) {
        ssize_t r = ::write(fd, src + put, n - put);
        if (r > 0) {
            put += static_cast<std::size_t>(r);
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

ResultStore::ResultStore(std::string dir, std::uint64_t maxBytes)
    : dir_(std::move(dir)), path_(dir_ + "/results.tcfstore"),
      maxBytes_(maxBytes)
{
}

ResultStore::~ResultStore()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
ResultStore::load(std::string &err)
{
    std::lock_guard<std::mutex> lk(mu_);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        err = "cannot create store dir '" + dir_ + "': " + ec.message();
        return false;
    }
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
        err = "cannot open '" + path_ + "': " +
            std::string(std::strerror(errno));
        return false;
    }
    // One process owns the log at a time: a daemon and an offline
    // --compact racing on the same dir would rename a fresh inode
    // under the other's open fd and silently drop its appends.
    if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
        err = "'" + path_ + "' is locked by another process "
            "(a running tcfilld or --compact); refusing to open";
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
        err = "cannot size '" + path_ + "'";
        return false;
    }
    if (end == 0) {
        std::string h = headerBytes();
        if (!writeFully(fd_, h.data(), h.size())) {
            err = "cannot write store header to '" + path_ + "'";
            return false;
        }
        logBytes_ = h.size();
        stats_.logBytes = logBytes_;
        return true;
    }
    std::string log(static_cast<std::size_t>(end), '\0');
    std::size_t got = 0;
    while (got < log.size()) {
        ssize_t r = ::pread(fd_, log.data() + got, log.size() - got,
                            static_cast<off_t>(got));
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        err = "cannot read '" + path_ + "'";
        return false;
    }
    return replayLog(log, err);
}

bool
ResultStore::replayLog(const std::string &log, std::string &err)
{
    if (log.size() < kHeaderBytes ||
        std::memcmp(log.data(), kStoreMagic, sizeof(kStoreMagic)) != 0) {
        err = "'" + path_ + "' is not a tcfstor1 result store";
        return false;
    }
    std::size_t vpos = sizeof(kStoreMagic);
    std::uint32_t version = 0;
    getU32(log, vpos, version);
    if (version != kStoreVersion) {
        err = "'" + path_ + "' has unsupported store version " +
            std::to_string(version);
        return false;
    }

    index_.clear();
    lru_.clear();
    stats_.liveBytes = 0;
    std::size_t pos = kHeaderBytes;
    std::size_t lastGood = pos;
    bool torn = false;
    while (pos < log.size()) {
        std::uint8_t op = static_cast<std::uint8_t>(log[pos++]);
        std::uint64_t keyLen = 0;
        if (!tracefile::getVarint(log, pos, keyLen) ||
            log.size() - pos < keyLen) {
            torn = true;
            break;
        }
        std::string key = log.substr(pos, keyLen);
        pos += keyLen;
        if (op == kOpPut) {
            std::uint64_t valLen = 0;
            if (!tracefile::getVarint(log, pos, valLen) ||
                log.size() - pos < valLen) {
                torn = true;
                break;
            }
            std::size_t valOff = pos;
            pos += valLen;
            std::uint32_t want = 0;
            if (!getU32(log, pos, want)) {
                torn = true;
                break;
            }
            std::uint32_t crc =
                digest::crc32(key.data(), key.size());
            crc = digest::crc32(log.data() + valOff, valLen, crc);
            if (crc != want) {
                torn = true;
                break;
            }
            auto it = index_.find(key);
            if (it != index_.end())
                dropLocked(key, /*logErase=*/false);
            lru_.push_front(key);
            Entry e;
            e.valueOffset = valOff;
            e.valueLen = static_cast<std::uint32_t>(valLen);
            e.crc = want;
            e.lruIt = lru_.begin();
            stats_.liveBytes += key.size() + valLen;
            index_.emplace(std::move(key), e);
        } else if (op == kOpTouch || op == kOpErase) {
            std::uint32_t want = 0;
            if (!getU32(log, pos, want)) {
                torn = true;
                break;
            }
            if (digest::crc32(key.data(), key.size()) != want) {
                torn = true;
                break;
            }
            auto it = index_.find(key);
            if (it != index_.end()) {
                if (op == kOpTouch) {
                    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
                } else {
                    dropLocked(key, /*logErase=*/false);
                }
            }
        } else {
            torn = true;
            break;
        }
        lastGood = pos;
    }

    logBytes_ = lastGood;
    if (torn || lastGood < log.size()) {
        // Crash-torn or corrupt tail: drop it so future appends land
        // on a clean boundary.
        stats_.recoveredDrops++;
        warn("result store '%s': dropping %zu corrupt trailing bytes",
             path_.c_str(), log.size() - lastGood);
        if (::ftruncate(fd_, static_cast<off_t>(lastGood)) != 0) {
            err = "cannot truncate corrupt tail of '" + path_ + "'";
            return false;
        }
    }
    stats_.liveRecords = index_.size();
    stats_.logBytes = logBytes_;
    return true;
}

bool
ResultStore::appendRecord(const std::string &record)
{
    if (::lseek(fd_, static_cast<off_t>(logBytes_), SEEK_SET) < 0)
        return false;
    if (!writeFully(fd_, record.data(), record.size()))
        return false;
    logBytes_ += record.size();
    stats_.logBytes = logBytes_;
    return true;
}

void
ResultStore::touchLocked(const std::string &key, Entry &e)
{
    if (e.lruIt == lru_.begin())
        return;
    lru_.splice(lru_.begin(), lru_, e.lruIt);
    std::string record;
    record.push_back(static_cast<char>(kOpTouch));
    tracefile::putVarint(record, key.size());
    record += key;
    putU32(record, digest::crc32(key.data(), key.size()));
    appendRecord(record);
}

void
ResultStore::dropLocked(const std::string &key, bool logErase)
{
    auto it = index_.find(key);
    if (it == index_.end())
        return;
    stats_.liveBytes -= key.size() + it->second.valueLen;
    lru_.erase(it->second.lruIt);
    index_.erase(it);
    stats_.liveRecords = index_.size();
    if (logErase) {
        std::string record;
        record.push_back(static_cast<char>(kOpErase));
        tracefile::putVarint(record, key.size());
        record += key;
        putU32(record, digest::crc32(key.data(), key.size()));
        appendRecord(record);
    }
}

bool
ResultStore::readValueLocked(const std::string &key, const Entry &e,
                             std::string &value)
{
    value.resize(e.valueLen);
    std::size_t got = 0;
    while (got < value.size()) {
        ssize_t r = ::pread(
            fd_, value.data() + got, value.size() - got,
            static_cast<off_t>(e.valueOffset + got));
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        return false;
    }
    return entryCrc(key, value) == e.crc;
}

bool
ResultStore::get(const std::string &key, std::string &value)
{
    std::lock_guard<std::mutex> lk(mu_);
    stats_.gets++;
    auto it = index_.find(key);
    if (it == index_.end()) {
        stats_.misses++;
        return false;
    }
    if (!readValueLocked(key, it->second, value)) {
        // The bytes under this entry rotted on disk; invalidate it so
        // the caller recomputes rather than trusting them.
        stats_.corruptDrops++;
        stats_.misses++;
        warn("result store '%s': CRC mismatch, invalidating one entry",
             path_.c_str());
        dropLocked(key, /*logErase=*/true);
        return false;
    }
    touchLocked(key, it->second);
    stats_.hits++;
    return true;
}

bool
ResultStore::put(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(key);
    if (it != index_.end())
        dropLocked(key, /*logErase=*/false);

    std::string record;
    record.push_back(static_cast<char>(kOpPut));
    tracefile::putVarint(record, key.size());
    record += key;
    tracefile::putVarint(record, value.size());
    std::size_t valRel = record.size();
    record += value;
    std::uint32_t crc = entryCrc(key, value);
    putU32(record, crc);

    std::uint64_t valOff = logBytes_ + valRel;
    if (!appendRecord(record))
        return false;

    lru_.push_front(key);
    Entry e;
    e.valueOffset = valOff;
    e.valueLen = static_cast<std::uint32_t>(value.size());
    e.crc = crc;
    e.lruIt = lru_.begin();
    index_[key] = e;
    stats_.liveBytes += key.size() + value.size();
    stats_.liveRecords = index_.size();
    stats_.puts++;

    // Size cap: shed least-recently-used entries, always keeping the
    // entry just written. Copy the victim key: dropLocked() erases the
    // list node lru_.back() refers into, then logs an ERASE record
    // built from the key.
    while (maxBytes_ != 0 && stats_.liveBytes > maxBytes_ &&
           lru_.size() > 1) {
        std::string victim = lru_.back();
        dropLocked(victim, /*logErase=*/true);
        stats_.evictions++;
    }
    return true;
}

bool
ResultStore::erase(const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (index_.find(key) == index_.end())
        return false;
    dropLocked(key, /*logErase=*/true);
    return true;
}

bool
ResultStore::compact(std::string &err)
{
    std::lock_guard<std::mutex> lk(mu_);
    std::string fresh = headerBytes();
    // Replaying PUTs pushes each key to the LRU front, so writing
    // least-recent first reproduces today's recency order on reload.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        const Entry &e = index_.at(*it);
        std::string value;
        if (!readValueLocked(*it, e, value)) {
            err = "corrupt entry during compaction of '" + path_ + "'";
            return false;
        }
        fresh.push_back(static_cast<char>(kOpPut));
        tracefile::putVarint(fresh, it->size());
        fresh += *it;
        tracefile::putVarint(fresh, value.size());
        fresh += value;
        putU32(fresh, e.crc);
    }

    std::string tmp = path_ + ".tmp";
    int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tfd < 0) {
        err = "cannot open '" + tmp + "' for compaction";
        return false;
    }
    bool ok = writeFully(tfd, fresh.data(), fresh.size()) &&
        ::fsync(tfd) == 0;
    ::close(tfd);
    if (!ok || std::rename(tmp.c_str(), path_.c_str()) != 0) {
        err = "cannot replace '" + path_ + "' with compacted log";
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd_);
    fd_ = ::open(path_.c_str(), O_RDWR, 0644);
    if (fd_ < 0) {
        err = "cannot reopen compacted '" + path_ + "'";
        return false;
    }
    if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
        err = "cannot re-lock compacted '" + path_ + "'";
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    return replayLog(fresh, err);
}

std::uint64_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return index_.size();
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

} // namespace tcfill::service
