#include "service/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <sstream>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/digest.hh"
#include "common/logging.hh"
#include "obs/json.hh"
#include "service/protocol.hh"
#include "service/source.hh"
#include "sim/config_io.hh"
#include "sim/runner.hh"
#include "workloads/suite.hh"

namespace tcfill::service
{

namespace
{

std::string
errorPayload(const std::string &message, std::uint64_t id,
             bool hasId)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("type", "error");
    if (hasId)
        w.field("id", id);
    w.field("message", message);
    w.endObject();
    return os.str();
}

std::string
simplePayload(const char *type)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("type", type);
    w.endObject();
    return os.str();
}

bool
knownWorkload(const std::string &name)
{
    for (const workloads::Workload &w : workloads::suite()) {
        if (w.name == name || w.shortName == name)
            return true;
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------
// Shard worker (forked child process)
// ---------------------------------------------------------------------

void
shardWorkerMain(int fd, unsigned threads)
{
    SimRunner pool(threads);

    // All frames leave through the responder thread, in submission
    // order: results stay deterministic per shard and the socket never
    // sees interleaved writes.
    struct Pending
    {
        std::uint64_t id = 0;
        std::string name;       ///< config label to restore
        bool hit = false;       ///< pool result-cache hit
        std::shared_future<SimResult> fut;
        std::string error;      ///< when set, reply is a jobError
    };
    std::mutex qmu;
    std::condition_variable qcv;
    std::deque<Pending> queue;
    bool eof = false;

    std::thread responder([&] {
        for (;;) {
            Pending p;
            {
                std::unique_lock<std::mutex> lk(qmu);
                qcv.wait(lk, [&] { return eof || !queue.empty(); });
                if (queue.empty())
                    return;
                p = std::move(queue.front());
                queue.pop_front();
            }
            std::ostringstream os;
            obs::JsonWriter w(os);
            w.beginObject();
            if (!p.error.empty()) {
                w.field("type", "error");
                w.field("id", p.id);
                w.field("message", p.error);
            } else {
                SimResult res = p.fut.get();
                res.config = p.name;
                w.field("type", "result");
                w.field("id", p.id);
                w.field("cacheHit", p.hit ? "memory" : "computed");
                w.field("record", normalizedRecordText(res));
            }
            w.endObject();
            if (!writeFrame(fd, os.str()))
                return;
        }
    });

    std::string payload;
    for (;;) {
        WireStatus st = readFrame(fd, payload);
        if (st != WireStatus::Ok)
            break;
        auto v = obs::JsonValue::tryParse(payload);
        Pending p;
        std::string workload;
        unsigned scale = 1;
        SimConfig cfg;
        std::string perr;
        bool ok = false;
        if (v && v->isObject()) {
            obs::ObjectReader r(*v, "job", perr);
            std::string type;
            r.string("type", type);
            r.integer("id", p.id);
            r.string("workload", workload);
            r.integer("scale", scale);
            const obs::JsonValue *c = r.member("config");
            ok = c && type == "job" && configFromJson(*c, cfg, perr) &&
                r.finish();
        } else {
            perr = "malformed job frame";
        }
        if (ok) {
            p.name = cfg.name;
            p.fut = pool.submit(workload, cfg, scale, &p.hit);
        } else {
            p.error = perr;
        }
        {
            std::lock_guard<std::mutex> lk(qmu);
            queue.push_back(std::move(p));
        }
        qcv.notify_one();
    }

    {
        std::lock_guard<std::mutex> lk(qmu);
        eof = true;
    }
    qcv.notify_one();
    responder.join();
}

// ---------------------------------------------------------------------
// Daemon (parent process)
// ---------------------------------------------------------------------

Daemon::Daemon(DaemonOptions opts)
    : opts_(std::move(opts)), stats_("service")
{
    if (opts_.shards == 0)
        opts_.shards = 1;
    stats_.addCounter("connections", connCount_,
                      "client connections accepted");
    stats_.addCounter("sweeps", sweepCount_, "sweep requests served");
    stats_.addCounter("points", pointCount_,
                      "simulation points requested");
    stats_.addCounter("storeHits", storeHitCount_,
                      "points served from the persistent store");
    stats_.addCounter("memoryHits", memoryHitCount_,
                      "points served from memory (coalesced or pool)");
    stats_.addCounter("computed", computedCount_,
                      "points freshly simulated");
    stats_.addCounter("coalesced", coalescedCount_,
                      "points attached to an in-flight duplicate");
    stats_.addCounter("dispatched", dispatchedCount_,
                      "jobs sent to shard workers");
    stats_.addCounter("completed", completedCount_,
                      "jobs answered by shard workers");
    stats_.addCounter("errors", errorCount_,
                      "error replies sent to clients");
    stats_.addFormula("inFlight",
                      [this] {
                          return static_cast<double>(
                              dispatchedCount_.value() -
                              completedCount_.value());
                      },
                      "jobs currently queued at shard workers");
}

Daemon::~Daemon()
{
    // Half-close towards each shard: the child sees EOF, drains its
    // queue (writing any remaining results), and exits; the reader
    // thread then sees EOF in turn.
    for (auto &s : shards_) {
        if (s->fd >= 0)
            ::shutdown(s->fd, SHUT_WR);
    }
    for (auto &s : shards_) {
        if (s->reader.joinable())
            s->reader.join();
        if (s->fd >= 0)
            ::close(s->fd);
        if (s->pid > 0) {
            int status = 0;
            ::waitpid(s->pid, &status, 0);
        }
    }
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (!opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
}

bool
Daemon::start(std::string &err)
{
    if (opts_.socketPath.empty()) {
        err = "daemon requires a socket path";
        return false;
    }
    sockaddr_un addr{};
    if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
        err = "socket path '" + opts_.socketPath + "' is too long";
        return false;
    }
    std::signal(SIGPIPE, SIG_IGN);

    // Fork every shard before any thread exists in this process.
    for (unsigned i = 0; i < opts_.shards; ++i) {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            err = "socketpair failed: " +
                std::string(std::strerror(errno));
            return false;
        }
        pid_t pid = ::fork();
        if (pid < 0) {
            err = "fork failed: " + std::string(std::strerror(errno));
            ::close(sv[0]);
            ::close(sv[1]);
            return false;
        }
        if (pid == 0) {
            ::close(sv[0]);
            for (auto &s : shards_)
                ::close(s->fd);
            shardWorkerMain(sv[1], opts_.shardThreads);
            ::close(sv[1]);
            std::_Exit(0);
        }
        ::close(sv[1]);
        auto s = std::make_unique<Shard>();
        s->pid = pid;
        s->fd = sv[0];
        shards_.push_back(std::move(s));
    }
    for (auto &s : shards_)
        s->reader = std::thread([this, sp = s.get()] {
            shardReaderLoop(*sp);
        });

    if (!opts_.storeDir.empty()) {
        store_ = std::make_unique<ResultStore>(opts_.storeDir,
                                               opts_.maxStoreBytes);
        if (!store_->load(err))
            return false;
    }

    ::unlink(opts_.socketPath.c_str());
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        err = "socket failed: " + std::string(std::strerror(errno));
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = "cannot bind '" + opts_.socketPath + "': " +
            std::string(std::strerror(errno));
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        err = "listen failed: " + std::string(std::strerror(errno));
        return false;
    }
    return true;
}

void
Daemon::requestShutdown()
{
    stop_.store(true);
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
}

void
Daemon::serve()
{
    while (!stop_.load()) {
        int cfd = ::accept(listenFd_, nullptr, nullptr);
        if (cfd < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++connCount_;
        }
        std::lock_guard<std::mutex> lk(connMu_);
        // Reap connections that already finished.
        for (auto &c : connections_) {
            if (c->done.load() && c->t.joinable()) {
                c->t.join();
                ::close(c->fd);
                c->fd = -1;
            }
        }
        connections_.erase(
            std::remove_if(connections_.begin(), connections_.end(),
                           [](const std::unique_ptr<ConnSlot> &c) {
                               return c->fd < 0;
                           }),
            connections_.end());
        auto slot = std::make_unique<ConnSlot>();
        slot->fd = cfd;
        ConnSlot *raw = slot.get();
        connections_.push_back(std::move(slot));
        raw->t = std::thread([this, raw] {
            connectionLoop(raw->fd);
            raw->done.store(true);
        });
    }

    // Shutdown: unblock and join every remaining connection.
    std::lock_guard<std::mutex> lk(connMu_);
    for (auto &c : connections_) {
        if (c->fd >= 0)
            ::shutdown(c->fd, SHUT_RDWR);
    }
    for (auto &c : connections_) {
        if (c->t.joinable())
            c->t.join();
        if (c->fd >= 0)
            ::close(c->fd);
    }
    connections_.clear();
}

Daemon::Resolution
Daemon::resolvePoint(const std::string &workload, unsigned scale,
                     const SimConfig &cfg)
{
    std::string key = simPointKey(workload, scale, cfg);

    std::unique_lock<std::mutex> lk(mu_);
    if (store_) {
        std::string record;
        if (store_->get(key, record)) {
            auto fl = std::make_shared<Flight>();
            fl->promise.set_value(
                Outcome{true, "", "store", std::move(record)});
            fl->future = fl->promise.get_future().share();
            return {fl->future, ""};
        }
    }
    auto it = flights_.find(key);
    if (it != flights_.end()) {
        // Identical point already being simulated: attach. The waiter
        // reports a memory hit — it cost no simulation.
        ++coalescedCount_;
        return {it->second->future, "memory"};
    }

    auto fl = std::make_shared<Flight>();
    fl->future = fl->promise.get_future().share();
    flights_[key] = fl;
    std::uint64_t jid = nextJobId_++;
    unsigned shard = static_cast<unsigned>(
        digest::fnv64(key) % shards_.size());
    pendingJobs_[jid] = PendingJob{key, fl, shard};
    ++dispatchedCount_;
    lk.unlock();

    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("type", "job");
    w.field("id", jid);
    w.field("workload", workload);
    w.field("scale", scale);
    w.key("config");
    configToJson(w, cfg);
    w.endObject();

    Shard &s = *shards_[shard];
    bool sent = false;
    {
        std::lock_guard<std::mutex> wl(s.writeMu);
        sent = writeFrame(s.fd, os.str());
    }
    if (!sent) {
        std::lock_guard<std::mutex> lk2(mu_);
        if (pendingJobs_.erase(jid) > 0) {
            flights_.erase(key);
            fl->promise.set_value(
                Outcome{false, "shard worker unavailable", "", ""});
        }
    }
    return {fl->future, ""};
}

void
Daemon::shardReaderLoop(Shard &shard)
{
    std::string payload;
    for (;;) {
        WireStatus st = readFrame(shard.fd, payload);
        if (st != WireStatus::Ok)
            break;
        auto v = obs::JsonValue::tryParse(payload);
        if (!v || !v->isObject())
            continue;
        const obs::JsonValue *type = v->find("type");
        const obs::JsonValue *idv = v->find("id");
        if (!type || !type->isString() || !idv || !idv->isNumber())
            continue;
        std::uint64_t id = idv->u64();

        std::shared_ptr<Flight> fl;
        std::string key;
        {
            std::lock_guard<std::mutex> lk(mu_);
            auto it = pendingJobs_.find(id);
            if (it == pendingJobs_.end())
                continue;
            key = it->second.key;
            fl = it->second.flight;
            pendingJobs_.erase(it);
            flights_.erase(key);
            ++completedCount_;
        }
        if (type->str == "result") {
            const obs::JsonValue *hit = v->find("cacheHit");
            const obs::JsonValue *rec = v->find("record");
            std::string prov =
                hit && hit->isString() ? hit->str : "computed";
            std::string record = rec && rec->isString() ? rec->str : "";
            if (store_ && !record.empty())
                store_->put(key, record);
            fl->promise.set_value(
                Outcome{true, "", std::move(prov), std::move(record)});
        } else {
            const obs::JsonValue *msg = v->find("message");
            fl->promise.set_value(Outcome{
                false,
                msg && msg->isString() ? msg->str : "shard error", "",
                ""});
        }
    }

    // No more replies will ever be read from this shard, even if the
    // worker is still alive (e.g. this loop ended on a corrupt frame).
    // Shut the socket down so later dispatches hashed here fail fast
    // in resolvePoint() instead of hanging their flights forever.
    ::shutdown(shard.fd, SHUT_RDWR);

    // EOF/corruption from this shard: during shutdown the pending set
    // is empty; otherwise the worker died and its jobs must fail
    // rather than hang their clients.
    std::vector<std::shared_ptr<Flight>> orphans;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (auto it = pendingJobs_.begin();
             it != pendingJobs_.end();) {
            if (shards_[it->second.shard].get() == &shard) {
                orphans.push_back(it->second.flight);
                flights_.erase(it->second.key);
                it = pendingJobs_.erase(it);
            } else {
                ++it;
            }
        }
    }
    if (!orphans.empty())
        warn("service: shard worker exited with %zu jobs pending",
             orphans.size());
    for (auto &fl : orphans)
        fl->promise.set_value(
            Outcome{false, "shard worker exited", "", ""});
}

void
Daemon::dumpStats(std::ostream &os)
{
    std::lock_guard<std::mutex> lk(mu_);
    stats_.dump(os);
}

std::string
Daemon::statsPayload()
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("type", "stats");
    w.field("schema", kSvcSchema);
    w.field("shards", opts_.shards);
    {
        std::lock_guard<std::mutex> lk(mu_);
        w.beginObject("service");
        w.field("connections", connCount_.value());
        w.field("sweeps", sweepCount_.value());
        w.field("points", pointCount_.value());
        w.field("storeHits", storeHitCount_.value());
        w.field("memoryHits", memoryHitCount_.value());
        w.field("computed", computedCount_.value());
        w.field("coalesced", coalescedCount_.value());
        w.field("dispatched", dispatchedCount_.value());
        w.field("completed", completedCount_.value());
        w.field("errors", errorCount_.value());
        w.field("inFlight", dispatchedCount_.value() -
                completedCount_.value());
        w.endObject();
    }
    if (store_) {
        StoreStats s = store_->stats();
        w.beginObject("store");
        w.field("puts", s.puts);
        w.field("gets", s.gets);
        w.field("hits", s.hits);
        w.field("misses", s.misses);
        w.field("evictions", s.evictions);
        w.field("recoveredDrops", s.recoveredDrops);
        w.field("corruptDrops", s.corruptDrops);
        w.field("liveRecords", s.liveRecords);
        w.field("liveBytes", s.liveBytes);
        w.field("logBytes", s.logBytes);
        w.endObject();
    }
    w.endObject();
    return os.str();
}

void
Daemon::connectionLoop(int fd)
{
    std::string payload;
    for (;;) {
        WireStatus st = readFrame(fd, payload);
        if (st != WireStatus::Ok) {
            if (st == WireStatus::Corrupt)
                warn("service: dropping connection on corrupt frame");
            return;
        }
        auto v = obs::JsonValue::tryParse(payload);
        if (!v || !v->isObject()) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++errorCount_;
            }
            writeFrame(fd, errorPayload("malformed message", 0, false));
            continue;
        }
        const obs::JsonValue *type = v->find("type");
        std::string t = type && type->isString() ? type->str : "";
        if (t == "hello") {
            std::ostringstream os;
            obs::JsonWriter w(os);
            w.beginObject();
            w.field("type", "hello");
            w.field("schema", kSvcSchema);
            w.field("shards", opts_.shards);
            w.endObject();
            writeFrame(fd, os.str());
        } else if (t == "ping") {
            writeFrame(fd, simplePayload("pong"));
        } else if (t == "stats") {
            writeFrame(fd, statsPayload());
        } else if (t == "shutdown") {
            writeFrame(fd, simplePayload("ok"));
            requestShutdown();
            return;
        } else if (t == "sweep") {
            handleSweep(fd, *v);
        } else {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++errorCount_;
            }
            writeFrame(fd, errorPayload(
                "unknown message type '" + t + "'", 0, false));
        }
    }
}

void
Daemon::handleSweep(int fd, const obs::JsonValue &v)
{
    const obs::JsonValue *idv = v.find("id");
    std::uint64_t id = idv && idv->isNumber() ? idv->u64() : 0;
    const obs::JsonValue *pts = v.find("points");
    if (!pts || !pts->isArray() || pts->arr.empty()) {
        std::lock_guard<std::mutex> lk(mu_);
        ++errorCount_;
        writeFrame(fd, errorPayload("sweep has no points", id, true));
        return;
    }

    // Parse and validate every point before dispatching any, so a
    // malformed request costs no simulation.
    struct Point
    {
        std::string workload;
        unsigned scale = 1;
        SimConfig cfg;
    };
    std::vector<Point> points;
    points.reserve(pts->arr.size());
    for (const obs::JsonValue &e : pts->arr) {
        Point p;
        std::string perr;
        obs::ObjectReader r(e, "sweep.points", perr);
        r.string("workload", p.workload);
        r.integer("scale", p.scale);
        const obs::JsonValue *c = r.member("config");
        bool ok = c && configFromJson(*c, p.cfg, perr) && r.finish();
        if (ok && p.scale == 0) {
            ok = false;
            perr = "sweep.points: scale must be >= 1";
        }
        if (ok && !knownWorkload(p.workload)) {
            ok = false;
            perr = "unknown workload '" + p.workload + "'";
        }
        if (!ok) {
            std::lock_guard<std::mutex> lk(mu_);
            ++errorCount_;
            writeFrame(fd, errorPayload(perr, id, true));
            return;
        }
        points.push_back(std::move(p));
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        ++sweepCount_;
        pointCount_ += points.size();
    }

    std::vector<Resolution> res;
    res.reserve(points.size());
    for (const Point &p : points)
        res.push_back(resolvePoint(p.workload, p.scale, p.cfg));

    std::uint64_t storeHits = 0, memoryHits = 0, computed = 0;
    for (std::size_t i = 0; i < res.size(); ++i) {
        Outcome out = res[i].future.get();
        if (!out.ok) {
            std::lock_guard<std::mutex> lk(mu_);
            ++errorCount_;
            writeFrame(fd, errorPayload(out.error, id, true));
            return;
        }
        std::string prov = res[i].provenance.empty()
            ? out.provenance
            : res[i].provenance;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (prov == "store")
                ++storeHitCount_;
            else if (prov == "memory")
                ++memoryHitCount_;
            else
                ++computedCount_;
        }
        if (prov == "store")
            ++storeHits;
        else if (prov == "memory")
            ++memoryHits;
        else
            ++computed;

        std::ostringstream os;
        obs::JsonWriter w(os);
        w.beginObject();
        w.field("type", "result");
        w.field("id", id);
        w.field("index", static_cast<std::uint64_t>(i));
        w.field("cacheHit", prov);
        w.field("record", out.record);
        w.endObject();
        if (!writeFrame(fd, os.str()))
            return;

        std::ostringstream ps;
        obs::JsonWriter pw(ps);
        pw.beginObject();
        pw.field("type", "progress");
        pw.field("id", id);
        pw.field("done", static_cast<std::uint64_t>(i + 1));
        pw.field("points",
                 static_cast<std::uint64_t>(points.size()));
        pw.field("storeHits", storeHits);
        pw.field("memoryHits", memoryHits);
        pw.field("computed", computed);
        pw.endObject();
        if (!writeFrame(fd, ps.str()))
            return;
    }

    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("type", "done");
    w.field("id", id);
    w.field("points", static_cast<std::uint64_t>(points.size()));
    w.field("storeHits", storeHits);
    w.field("memoryHits", memoryHits);
    w.field("computed", computed);
    w.endObject();
    writeFrame(fd, os.str());
}

} // namespace tcfill::service
