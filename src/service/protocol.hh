/**
 * @file
 * tcfill-svc-v1: the framing layer of the simulation service. Every
 * message — client↔daemon and daemon↔shard-worker alike — is one JSON
 * object shipped in a length-prefixed, CRC-checked frame:
 *
 *   magic    u32 LE   kFrameMagic ("tsv1")
 *   len      u32 LE   payload byte length (<= kMaxFramePayload)
 *   payload  bytes    UTF-8 JSON object with a "type" member
 *   crc      u32 LE   CRC-32 (IEEE) of payload — common/digest
 *
 * The CRC mirrors the tcfill-trace-v1 frame convention: a frame is
 * either delivered intact or rejected as corrupt; there is no partial
 * acceptance. Messages (by "type"):
 *
 *   client → daemon:  hello, ping, stats, sweep{id, points:[{workload,
 *                     scale, config}]}, shutdown
 *   daemon → client:  hello{schema}, pong, stats{service, store,
 *                     shards}, result{id, index, cacheHit, record},
 *                     progress{id, done, points, storeHits,
 *                     memoryHits, computed}, done{id, points,
 *                     storeHits, memoryHits, computed}, error{message
 *                     [, id]}, ok
 *   daemon → shard:   job{id, workload, scale, config}
 *   shard → daemon:   result{id, cacheHit, record}, error{id, message}
 *
 * `config` objects are sim/config_io serializations; `record` strings
 * are sim/result_io deterministic result records.
 */

#ifndef TCFILL_SERVICE_PROTOCOL_HH
#define TCFILL_SERVICE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tcfill::service
{

/** Protocol schema tag exchanged in the hello handshake. */
inline constexpr const char *kSvcSchema = "tcfill-svc-v1";

/** Frame magic: "tsv1", little-endian. */
inline constexpr std::uint32_t kFrameMagic = 0x31767374u;

/** Upper bound on one frame's payload (sanity cap, not a target). */
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/** Bytes of framing around a payload (magic + len + crc). */
inline constexpr std::size_t kFrameOverhead = 12;

/** Wrap @p payload in one complete frame. */
std::string encodeFrame(std::string_view payload);

/** Outcome of decoding a frame from a byte buffer. */
enum class FrameStatus : std::uint8_t
{
    Ok,         ///< one frame decoded; `consumed` bytes used
    NeedMore,   ///< buffer holds only a frame prefix
    BadMagic,   ///< leading bytes are not a frame
    TooLarge,   ///< declared payload exceeds kMaxFramePayload
    BadCrc,     ///< payload checksum mismatch
};

const char *frameStatusName(FrameStatus s);

/**
 * Try to decode one frame from the front of @p buf. On Ok, @p payload
 * receives the payload and @p consumed the total frame size; on any
 * other status both are unspecified.
 */
FrameStatus decodeFrame(std::string_view buf, std::string &payload,
                        std::size_t &consumed);

/** Outcome of reading one frame from a stream socket. */
enum class WireStatus : std::uint8_t
{
    Ok,         ///< one intact frame read
    Eof,        ///< clean end of stream at a frame boundary
    Error,      ///< read/write syscall failure or mid-frame EOF
    Corrupt,    ///< framing violation (magic/size/CRC)
};

const char *wireStatusName(WireStatus s);

/** Write one complete frame to @p fd (retrying short writes). */
bool writeFrame(int fd, std::string_view payload);

/** Read one complete frame's payload from @p fd (blocking). */
WireStatus readFrame(int fd, std::string &payload);

} // namespace tcfill::service

#endif // TCFILL_SERVICE_PROTOCOL_HH
