#include "service/client.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/json.hh"
#include "service/protocol.hh"
#include "sim/config_io.hh"
#include "sim/result_io.hh"

namespace tcfill::service
{

namespace
{

std::string
typedPayload(const char *type)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("type", type);
    w.endObject();
    return os.str();
}

/** The "message" of an error frame, or a generic fallback. */
std::string
errorText(const obs::JsonValue &v)
{
    const obs::JsonValue *msg = v.find("message");
    return msg && msg->isString() ? msg->str : "server error";
}

} // namespace

bool
ServiceClient::connect(const std::string &socketPath, std::string &err)
{
    close();
    sockaddr_un addr{};
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        err = "socket path '" + socketPath + "' is too long";
        return false;
    }
    std::signal(SIGPIPE, SIG_IGN);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        err = "socket failed: " + std::string(std::strerror(errno));
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = "cannot connect to '" + socketPath + "': " +
            std::string(std::strerror(errno));
        close();
        return false;
    }

    std::string reply;
    if (!request(typedPayload("hello"), reply, err)) {
        close();
        return false;
    }
    auto v = obs::JsonValue::tryParse(reply);
    const obs::JsonValue *schema = v ? v->find("schema") : nullptr;
    if (!schema || !schema->isString() || schema->str != kSvcSchema) {
        err = "server does not speak " + std::string(kSvcSchema);
        close();
        return false;
    }
    return true;
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServiceClient::request(const std::string &payload, std::string &reply,
                       std::string &err)
{
    if (fd_ < 0) {
        err = "not connected";
        return false;
    }
    if (!writeFrame(fd_, payload)) {
        err = "cannot write to server";
        return false;
    }
    WireStatus st = readFrame(fd_, reply);
    if (st != WireStatus::Ok) {
        err = std::string("server connection ") + wireStatusName(st);
        return false;
    }
    return true;
}

bool
ServiceClient::ping(std::string &err)
{
    std::string reply;
    if (!request(typedPayload("ping"), reply, err))
        return false;
    auto v = obs::JsonValue::tryParse(reply);
    const obs::JsonValue *type = v ? v->find("type") : nullptr;
    if (!type || !type->isString() || type->str != "pong") {
        err = v ? errorText(*v) : "malformed pong";
        return false;
    }
    return true;
}

bool
ServiceClient::serverStats(std::string &payload, std::string &err)
{
    if (!request(typedPayload("stats"), payload, err))
        return false;
    auto v = obs::JsonValue::tryParse(payload);
    const obs::JsonValue *type = v ? v->find("type") : nullptr;
    if (!type || !type->isString() || type->str != "stats") {
        err = v ? errorText(*v) : "malformed stats reply";
        return false;
    }
    return true;
}

bool
ServiceClient::shutdownServer(std::string &err)
{
    std::string reply;
    if (!request(typedPayload("shutdown"), reply, err))
        return false;
    auto v = obs::JsonValue::tryParse(reply);
    const obs::JsonValue *type = v ? v->find("type") : nullptr;
    if (!type || !type->isString() || type->str != "ok") {
        err = v ? errorText(*v) : "malformed shutdown reply";
        return false;
    }
    return true;
}

bool
ServiceClient::sweep(const std::vector<Point> &points,
                     std::vector<SimResult> &out, SweepSummary &summary,
                     std::string &err, obs::ProgressFn progress)
{
    out.clear();
    summary = SweepSummary{};
    if (fd_ < 0) {
        err = "not connected";
        return false;
    }
    if (points.empty()) {
        err = "sweep has no points";
        return false;
    }

    std::uint64_t id = nextId_++;
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("type", "sweep");
    w.field("id", id);
    w.beginArray("points");
    for (const Point &p : points) {
        w.beginObject();
        w.field("workload", p.workload);
        w.field("scale", p.scale);
        w.key("config");
        configToJson(w, p.config);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (!writeFrame(fd_, os.str())) {
        err = "cannot write to server";
        return false;
    }

    out.resize(points.size());
    std::string payload;
    for (;;) {
        WireStatus st = readFrame(fd_, payload);
        if (st != WireStatus::Ok) {
            err = std::string("server connection ") +
                wireStatusName(st);
            return false;
        }
        auto v = obs::JsonValue::tryParse(payload);
        if (!v || !v->isObject()) {
            err = "malformed server frame";
            return false;
        }
        const obs::JsonValue *type = v->find("type");
        std::string t =
            type && type->isString() ? type->str : "";
        if (t == "error") {
            err = errorText(*v);
            return false;
        }
        if (t == "result") {
            const obs::JsonValue *idx = v->find("index");
            const obs::JsonValue *hit = v->find("cacheHit");
            const obs::JsonValue *rec = v->find("record");
            if (!idx || !idx->isNumber() || !rec ||
                !rec->isString()) {
                err = "malformed result frame";
                return false;
            }
            std::size_t i = static_cast<std::size_t>(idx->u64());
            if (i >= out.size()) {
                err = "result index out of range";
                return false;
            }
            SimResult &res = out[i];
            if (!resultFromRecordText(rec->str, res, err))
                return false;
            // Provenance and the cosmetic config label are
            // client-side facts: the record itself is normalized.
            res.cacheHit = hit && hit->isString() ? hit->str
                                                  : "computed";
            res.config = points[i].config.name;
            continue;
        }
        if (t == "progress") {
            if (progress) {
                obs::SweepProgress p;
                const obs::JsonValue *m = nullptr;
                if ((m = v->find("points")) && m->isNumber())
                    p.points = m->u64();
                if ((m = v->find("done")) && m->isNumber())
                    p.done = m->u64();
                std::uint64_t stored = 0, memory = 0, computed = 0;
                if ((m = v->find("storeHits")) && m->isNumber())
                    stored = m->u64();
                if ((m = v->find("memoryHits")) && m->isNumber())
                    memory = m->u64();
                if ((m = v->find("computed")) && m->isNumber())
                    computed = m->u64();
                p.cacheHits = stored + memory;
                p.liveRuns = computed;
                p.liveDone = computed;
                progress(p);
            }
            continue;
        }
        if (t == "done") {
            const obs::JsonValue *m = nullptr;
            if ((m = v->find("points")) && m->isNumber())
                summary.points = m->u64();
            if ((m = v->find("storeHits")) && m->isNumber())
                summary.storeHits = m->u64();
            if ((m = v->find("memoryHits")) && m->isNumber())
                summary.memoryHits = m->u64();
            if ((m = v->find("computed")) && m->isNumber())
                summary.computed = m->u64();
            return true;
        }
        err = "unexpected server frame '" + t + "'";
        return false;
    }
}

SimResult
RemoteSource::fetch(const std::string &workload, unsigned scale,
                    const SimConfig &cfg)
{
    std::vector<ServiceClient::Point> pts(1);
    pts[0].workload = workload;
    pts[0].scale = scale;
    pts[0].config = cfg;
    std::vector<SimResult> out;
    ServiceClient::SweepSummary summary;
    std::string err;
    if (!client_.sweep(pts, out, summary, err))
        fatal("service: %s", err.c_str());
    return out.at(0);
}

} // namespace tcfill::service
