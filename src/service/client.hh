/**
 * @file
 * ServiceClient: the tcfill-svc-v1 client side. Connects to a tcfilld
 * Unix-domain socket, performs the hello schema handshake, and runs
 * batched sweeps: points go out in one frame, results stream back in
 * request order as parsed SimResults whose cacheHit records where the
 * daemon found each one (store / memory / computed). Interleaved
 * progress frames feed an obs::ProgressFn, so the CLI's throttled
 * console reporter works unchanged against a remote daemon.
 *
 * RemoteSource adapts a connected client to the ResultSource seam
 * (one-point sweeps), composing with StoreSource for a local
 * read-through cache in front of a remote daemon.
 */

#ifndef TCFILL_SERVICE_CLIENT_HH
#define TCFILL_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/progress.hh"
#include "service/source.hh"
#include "sim/config.hh"
#include "sim/result.hh"

namespace tcfill::service
{

class ServiceClient
{
  public:
    /** One requested simulation point. */
    struct Point
    {
        std::string workload;
        unsigned scale = 1;
        SimConfig config;
    };

    /** Provenance totals of one sweep, from the daemon's done frame. */
    struct SweepSummary
    {
        std::uint64_t points = 0;
        std::uint64_t storeHits = 0;
        std::uint64_t memoryHits = 0;
        std::uint64_t computed = 0;
    };

    ServiceClient() = default;
    ~ServiceClient() { close(); }

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Connect and handshake. False + @p err on failure. */
    bool connect(const std::string &socketPath, std::string &err);

    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * Run one batched sweep. On success @p out holds one SimResult
     * per point, in order, and @p summary the daemon's provenance
     * totals. @p progress (optional) is invoked per completed point.
     */
    bool sweep(const std::vector<Point> &points,
               std::vector<SimResult> &out, SweepSummary &summary,
               std::string &err, obs::ProgressFn progress = nullptr);

    bool ping(std::string &err);

    /** Fetch the daemon's stats frame (raw JSON payload text). */
    bool serverStats(std::string &payload, std::string &err);

    /** Ask the daemon to exit (acknowledged before it does). */
    bool shutdownServer(std::string &err);

  private:
    bool request(const std::string &payload, std::string &reply,
                 std::string &err);

    int fd_ = -1;
    std::uint64_t nextId_ = 1;
};

/** ResultSource over a connected ServiceClient (one-point sweeps). */
class RemoteSource final : public ResultSource
{
  public:
    explicit RemoteSource(ServiceClient &client) : client_(client) {}

    /** fatal()s on protocol or server errors (CLI semantics). */
    SimResult fetch(const std::string &workload, unsigned scale,
                    const SimConfig &cfg) override;

  private:
    ServiceClient &client_;
};

} // namespace tcfill::service

#endif // TCFILL_SERVICE_CLIENT_HH
