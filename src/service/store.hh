/**
 * @file
 * Persistent content-addressed result store ("tcfstor1"). Maps
 * simulation-point keys — simPointKey(): workload@scale plus the full
 * 50-knob configCacheKey text — to deterministic SimResult record
 * text (sim/result_io). The on-disk format is a single append-only
 * log, results.tcfstore:
 *
 *   header   "tcfstor1" (8 bytes) + u32 LE version (1)
 *   records, each CRC-terminated like tcfill-trace-v1 frames:
 *     PUT    u8 0x01, varint keyLen, key, varint valLen, value,
 *            u32 LE CRC-32(key || value)
 *     TOUCH  u8 0x02, varint keyLen, key, u32 LE CRC-32(key)
 *     ERASE  u8 0x03, varint keyLen, key, u32 LE CRC-32(key)
 *
 * load() replays the log into an in-memory index; the first torn or
 * CRC-corrupt record truncates the log back to the last good byte (a
 * crash mid-append costs at most the record being written). Every
 * get() re-reads its value bytes from disk and re-verifies the CRC,
 * so silent on-disk corruption of one record degrades to a miss for
 * that key, never a wrong result. TOUCH records persist recency, so
 * the LRU order survives restarts; when maxBytes is set, put() evicts
 * least-recently-used entries (appending ERASE) until live key+value
 * bytes fit. compact() rewrites the log with one PUT per live entry
 * in LRU order and swaps it in atomically via rename.
 *
 * All public methods are thread-safe behind one internal mutex.
 */

#ifndef TCFILL_SERVICE_STORE_HH
#define TCFILL_SERVICE_STORE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace tcfill::service
{

/** Monotonic operation counters, for `service.` stats and tooling. */
struct StoreStats
{
    std::uint64_t puts = 0;         ///< accepted put() calls
    std::uint64_t gets = 0;         ///< get() calls
    std::uint64_t hits = 0;         ///< get() calls returning a value
    std::uint64_t misses = 0;       ///< get() calls without one
    std::uint64_t evictions = 0;    ///< entries dropped for the cap
    std::uint64_t recoveredDrops = 0; ///< bytes-truncating loads' losses
    std::uint64_t corruptDrops = 0; ///< entries invalidated by get() CRC
    std::uint64_t liveRecords = 0;  ///< keys currently resident
    std::uint64_t liveBytes = 0;    ///< live key+value payload bytes
    std::uint64_t logBytes = 0;     ///< on-disk log size incl. header
};

class ResultStore
{
  public:
    /**
     * @param dir       store directory (created if missing)
     * @param maxBytes  live key+value byte cap; 0 = unbounded
     */
    ResultStore(std::string dir, std::uint64_t maxBytes = 0);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** Open/replay the log. False + @p err on unrecoverable failure. */
    bool load(std::string &err);

    /**
     * Fetch the value for @p key, CRC-verifying the on-disk bytes and
     * refreshing its LRU position. False on miss (or on a corrupt
     * record, which is invalidated in passing).
     */
    bool get(const std::string &key, std::string &value);

    /** Insert/overwrite @p key, evicting LRU entries past the cap. */
    bool put(const std::string &key, const std::string &value);

    /** Drop @p key if present (appends ERASE). */
    bool erase(const std::string &key);

    /**
     * Rewrite the log to exactly the live entries (least-recently
     * used first) and atomically replace it. Reclaims space held by
     * overwritten, erased, and TOUCH records.
     */
    bool compact(std::string &err);

    std::uint64_t size() const;
    StoreStats stats() const;
    const std::string &path() const { return path_; }

  private:
    struct Entry
    {
        std::uint64_t valueOffset = 0;  ///< value bytes, within the log
        std::uint32_t valueLen = 0;
        std::uint32_t crc = 0;          ///< CRC-32(key || value)
        std::list<std::string>::iterator lruIt;
    };

    bool replayLog(const std::string &log, std::string &err);
    bool appendRecord(const std::string &record);
    void touchLocked(const std::string &key, Entry &e);
    void dropLocked(const std::string &key, bool logErase);
    bool readValueLocked(const std::string &key, const Entry &e,
                         std::string &value);

    mutable std::mutex mu_;
    std::string dir_;
    std::string path_;
    std::uint64_t maxBytes_;
    int fd_ = -1;
    std::uint64_t logBytes_ = 0;
    std::unordered_map<std::string, Entry> index_;
    std::list<std::string> lru_;    ///< front = most recently used
    StoreStats stats_;
};

} // namespace tcfill::service

#endif // TCFILL_SERVICE_STORE_HH
