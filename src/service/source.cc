#include "service/source.hh"

#include "common/logging.hh"
#include "service/store.hh"
#include "sim/result_io.hh"
#include "sim/runner.hh"

namespace tcfill::service
{

SimResult
RunnerSource::fetch(const std::string &workload, unsigned scale,
                    const SimConfig &cfg)
{
    return runner_.run(workload, cfg, scale);
}

SimResult
StoreSource::fetch(const std::string &workload, unsigned scale,
                   const SimConfig &cfg)
{
    std::string key = simPointKey(workload, scale, cfg);
    std::string record;
    if (store_.get(key, record)) {
        SimResult res;
        std::string err;
        if (resultFromRecordText(record, res, err)) {
            // The config *name* is cosmetic and excluded from the
            // key, so relabel with the requested one (as
            // SimRunner::run does for memory hits).
            res.config = cfg.name;
            res.cacheHit = "store";
            return res;
        }
        // A record that CRC-verified but no longer parses means the
        // record schema moved on; recompute and overwrite it.
        warn("result store: stale record for '%s' (%s); recomputing",
             workload.c_str(), err.c_str());
    }
    SimResult res = next_.fetch(workload, scale, cfg);
    store_.put(key, normalizedRecordText(res));
    return res;
}

std::string
normalizedRecordText(const SimResult &r)
{
    if (r.cacheHit == "computed")
        return resultRecordText(r);
    SimResult norm = r;
    norm.cacheHit = "computed";
    return resultRecordText(norm);
}

} // namespace tcfill::service
