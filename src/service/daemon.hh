/**
 * @file
 * tcfilld core: a long-lived simulation service. One parent process
 * owns the Unix-domain listening socket, the persistent ResultStore
 * and the request-coalescing flight table; simulation itself runs in
 * a set of forked *shard* worker processes, each holding its own
 * SimRunner pool and in-memory result cache, connected to the parent
 * by a socketpair speaking tcfill-svc-v1 job frames.
 *
 * A sweep request resolves each point in order:
 *
 *   1. persistent store hit        → "store"   (no shard involved)
 *   2. identical point in flight   → "memory"  (coalesced: attach to
 *      the existing future; two identical concurrent requests cost
 *      one simulation)
 *   3. dispatch to shard fnv64(simPointKey) % shards; the shard
 *      answers "memory" (its pool cache) or "computed", and the
 *      parent persists the returned record before replying.
 *
 * The shard hash is stable, so a recurring point always lands on the
 * same shard and its program/result caches stay hot. Results stream
 * back to the client in request order with interleaved progress
 * frames, feeding the client-side obs::ProgressFn seam.
 *
 * Fork-before-threads: start() forks every shard before the parent
 * creates its reader/accept threads, so shard children never inherit
 * a multi-threaded address space.
 */

#ifndef TCFILL_SERVICE_DAEMON_HH
#define TCFILL_SERVICE_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <sys/types.h>

#include "common/stats.hh"
#include "service/store.hh"
#include "sim/config.hh"

namespace tcfill::obs
{
struct JsonValue;
} // namespace tcfill::obs

namespace tcfill::service
{

struct DaemonOptions
{
    std::string socketPath;         ///< Unix-domain socket to bind
    std::string storeDir;           ///< empty = no persistent store
    std::uint64_t maxStoreBytes = 0; ///< live-bytes cap; 0 = unbounded
    unsigned shards = 1;            ///< worker processes (>= 1)
    unsigned shardThreads = 0;      ///< per-shard pool; 0 = default
};

class Daemon
{
  public:
    explicit Daemon(DaemonOptions opts);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Fork the shard workers, open the store, bind and listen. False
     * + @p err on failure. Must be called from a process that has not
     * started threads yet (the shards are forked here).
     */
    bool start(std::string &err);

    /** Accept and serve connections until requestShutdown(). */
    void serve();

    /**
     * Stop serve() from another thread or a signal handler: flips the
     * stop flag and shuts down the listening socket (both
     * async-signal-safe).
     */
    void requestShutdown();

    const DaemonOptions &options() const { return opts_; }
    ResultStore *store() { return store_.get(); }

    /** Text dump of the `service.` counter group. */
    void dumpStats(std::ostream &os);

  private:
    /** How one requested point was (or failed to be) satisfied. */
    struct Outcome
    {
        bool ok = false;
        std::string error;
        std::string provenance;     ///< store | memory | computed
        std::string record;         ///< deterministic result record
    };

    /** One in-flight simulation point, shared by coalesced waiters. */
    struct Flight
    {
        std::promise<Outcome> promise;
        std::shared_future<Outcome> future;
    };

    struct Shard
    {
        pid_t pid = -1;
        int fd = -1;                ///< parent end of the socketpair
        std::mutex writeMu;         ///< serializes job frames
        std::thread reader;
    };

    struct Resolution
    {
        std::shared_future<Outcome> future;
        /// Provenance override for coalesced waiters ("memory"); the
        /// future's own provenance applies when empty.
        std::string provenance;
    };

    struct PendingJob
    {
        std::string key;
        std::shared_ptr<Flight> flight;
        unsigned shard = 0;
    };

    struct ConnSlot
    {
        int fd = -1;
        std::thread t;
        std::atomic<bool> done{false};
    };

    Resolution resolvePoint(const std::string &workload, unsigned scale,
                            const SimConfig &cfg);
    void shardReaderLoop(Shard &shard);
    void connectionLoop(int fd);
    void handleSweep(int fd, const obs::JsonValue &v);
    std::string statsPayload();

    DaemonOptions opts_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::unique_ptr<ResultStore> store_;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::mutex mu_;                 ///< flights, jobs, counters
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
    std::unordered_map<std::uint64_t, PendingJob> pendingJobs_;
    std::uint64_t nextJobId_ = 1;

    std::mutex connMu_;
    std::vector<std::unique_ptr<ConnSlot>> connections_;

    // `service.` stats group: counters mutate only under mu_.
    stats::Group stats_;
    stats::Counter connCount_;
    stats::Counter sweepCount_;
    stats::Counter pointCount_;
    stats::Counter storeHitCount_;
    stats::Counter memoryHitCount_;
    stats::Counter computedCount_;
    stats::Counter coalescedCount_;
    stats::Counter dispatchedCount_;
    stats::Counter completedCount_;
    stats::Counter errorCount_;
};

/**
 * Shard worker entry point (runs in the forked child): serve job
 * frames on @p fd with a SimRunner of @p threads workers until EOF,
 * then drain and return. Exposed for the protocol tests.
 */
void shardWorkerMain(int fd, unsigned threads);

} // namespace tcfill::service

#endif // TCFILL_SERVICE_DAEMON_HH
