/**
 * @file
 * ResultSource: the seam that lets the three ways of obtaining a
 * simulation point's SimResult compose — run it (SimRunner, which
 * itself dedupes via its in-memory keyed cache), read it from the
 * persistent ResultStore, or ask a remote tcfilld (RemoteSource, in
 * client.hh). StoreSource decorates any inner source: store hit →
 * parsed record with cacheHit "store"; miss → fetch from the inner
 * source and persist the deterministic record on the way out. The
 * layering is by construction consistent because every layer keys on
 * the same simPointKey() text.
 */

#ifndef TCFILL_SERVICE_SOURCE_HH
#define TCFILL_SERVICE_SOURCE_HH

#include <string>

#include "sim/config.hh"
#include "sim/result.hh"

namespace tcfill
{
class SimRunner;
} // namespace tcfill

namespace tcfill::service
{

class ResultStore;

/** One way of obtaining the SimResult of a simulation point. */
class ResultSource
{
  public:
    virtual ~ResultSource() = default;

    /**
     * Produce the result of (workload, scale, cfg). SimResult::cacheHit
     * records how: "computed", "memory" (in-process cache) or "store".
     */
    virtual SimResult fetch(const std::string &workload, unsigned scale,
                            const SimConfig &cfg) = 0;
};

/** Leaf source: simulate on a SimRunner pool (memory-cache aware). */
class RunnerSource final : public ResultSource
{
  public:
    explicit RunnerSource(SimRunner &runner) : runner_(runner) {}

    SimResult fetch(const std::string &workload, unsigned scale,
                    const SimConfig &cfg) override;

  private:
    SimRunner &runner_;
};

/** Decorator: consult a persistent store before the inner source. */
class StoreSource final : public ResultSource
{
  public:
    StoreSource(ResultStore &store, ResultSource &next)
        : store_(store), next_(next)
    {
    }

    SimResult fetch(const std::string &workload, unsigned scale,
                    const SimConfig &cfg) override;

  private:
    ResultStore &store_;
    ResultSource &next_;
};

/**
 * Normalize @p r to the provenance-free record text the store (and
 * the tcfill-svc-v1 wire) carries: cacheHit forced to "computed" so
 * byte-identity of records never depends on which cache layer served
 * a particular run.
 */
std::string normalizedRecordText(const SimResult &r);

} // namespace tcfill::service

#endif // TCFILL_SERVICE_SOURCE_HH
